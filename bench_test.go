package diversecast_test

// This file is the benchmark harness for the paper's evaluation: one
// benchmark family per figure (Figures 2–7) plus the worked example
// (Tables 2–4) and the ablations called out in DESIGN.md.
//
// Quality figures (2–5) report the analytical waiting time W_b of each
// algorithm as the custom metric "Wb_s" (seconds); the paper's y-axis.
// Complexity figures (6–7) are the ns/op timings of the same
// allocations — the paper's Figures 6 and 7 plot exactly this pair of
// curves for DRP-CDS and GOPT.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"diversecast/internal/airsim"
	"diversecast/internal/baseline"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/gopt"
	"diversecast/internal/workload"
)

// benchAllocators is the comparison set of the paper's figures.
func benchAllocators(seed int64) []core.Allocator {
	return []core.Allocator{
		baseline.NewVFK(),
		core.NewDRP(),
		core.NewDRPCDS(),
		&gopt.GOPT{PopulationSize: 120, Generations: 600, Stagnation: 80, Polish: true, Seed: seed},
	}
}

// benchAllocate times alg on db/k and reports the resulting W_b.
func benchAllocate(b *testing.B, alg core.Allocator, db *core.Database, k int) {
	b.Helper()
	var wb float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := alg.Allocate(db, k)
		if err != nil {
			b.Fatal(err)
		}
		wb = core.WaitingTime(a, workload.PaperBandwidth)
	}
	b.ReportMetric(wb, "Wb_s")
}

// BenchmarkTables2to4 reproduces the paper's worked example end to
// end: DRP (example-consistent order) plus the full CDS refinement on
// the Table 2 profile.
func BenchmarkTables2to4(b *testing.B) {
	db := core.PaperExampleDatabase()
	var cost float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := core.NewDRPExampleConsistent().Allocate(db, core.PaperExampleK)
		if err != nil {
			b.Fatal(err)
		}
		refined, err := core.NewCDS().Refine(a)
		if err != nil {
			b.Fatal(err)
		}
		cost = core.Cost(refined)
	}
	b.ReportMetric(cost, "cost") // the paper's 22.29
}

// BenchmarkFigure2 sweeps the channel count K (waiting-time figure).
func BenchmarkFigure2(b *testing.B) {
	db := workload.PaperDefaults(11).MustGenerate()
	for _, k := range []int{4, 6, 8, 10} {
		for _, alg := range benchAllocators(11) {
			b.Run(fmt.Sprintf("K=%d/%s", k, alg.Name()), func(b *testing.B) {
				benchAllocate(b, alg, db, k)
			})
		}
	}
}

// BenchmarkFigure3 sweeps the database size N (waiting-time figure).
func BenchmarkFigure3(b *testing.B) {
	for _, n := range []int{60, 120, 180} {
		db := workload.Config{N: n, Theta: 0.8, Phi: 2, Seed: 11}.MustGenerate()
		for _, alg := range benchAllocators(11) {
			b.Run(fmt.Sprintf("N=%d/%s", n, alg.Name()), func(b *testing.B) {
				benchAllocate(b, alg, db, 6)
			})
		}
	}
}

// BenchmarkFigure4 sweeps the diversity parameter Φ (waiting-time
// figure; the VFK collapse lives here).
func BenchmarkFigure4(b *testing.B) {
	for _, phi := range []float64{0, 1, 2, 3} {
		db := workload.Config{N: 120, Theta: 0.8, Phi: phi, Seed: 11}.MustGenerate()
		for _, alg := range benchAllocators(11) {
			b.Run(fmt.Sprintf("Phi=%g/%s", phi, alg.Name()), func(b *testing.B) {
				benchAllocate(b, alg, db, 6)
			})
		}
	}
}

// BenchmarkFigure5 sweeps the skewness parameter θ (waiting-time
// figure).
func BenchmarkFigure5(b *testing.B) {
	for _, theta := range []float64{0.4, 0.8, 1.2, 1.6} {
		db := workload.Config{N: 120, Theta: theta, Phi: 2, Seed: 11}.MustGenerate()
		for _, alg := range benchAllocators(11) {
			b.Run(fmt.Sprintf("Theta=%g/%s", theta, alg.Name()), func(b *testing.B) {
				benchAllocate(b, alg, db, 6)
			})
		}
	}
}

// BenchmarkFigure6 is the execution-time comparison over K: the ns/op
// column of DRP-CDS versus GOPT is the paper's Figure 6. GOPT is
// pinned to Workers: 1 here — the timing figures measure algorithmic
// cost, so the parallel evaluation fabric must not fold wall-clock by
// however many cores the benchmark machine happens to have.
func BenchmarkFigure6(b *testing.B) {
	db := workload.PaperDefaults(11).MustGenerate()
	for _, k := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("K=%d/DRP-CDS", k), func(b *testing.B) {
			benchAllocate(b, core.NewDRPCDS(), db, k)
		})
		b.Run(fmt.Sprintf("K=%d/GOPT", k), func(b *testing.B) {
			g := &gopt.GOPT{PopulationSize: 120, Generations: 600, Stagnation: 80, Polish: true, Seed: 11, Workers: 1}
			benchAllocate(b, g, db, k)
		})
	}
}

// BenchmarkFigure7 is the execution-time comparison over N (the
// paper's Figure 7; GOPT's time grows faster in N than in K). Serial
// GOPT for the same reason as Figure 6.
func BenchmarkFigure7(b *testing.B) {
	for _, n := range []int{60, 120, 180} {
		db := workload.Config{N: n, Theta: 0.8, Phi: 2, Seed: 11}.MustGenerate()
		b.Run(fmt.Sprintf("N=%d/DRP-CDS", n), func(b *testing.B) {
			benchAllocate(b, core.NewDRPCDS(), db, 6)
		})
		b.Run(fmt.Sprintf("N=%d/GOPT", n), func(b *testing.B) {
			g := &gopt.GOPT{PopulationSize: 120, Generations: 600, Stagnation: 80, Polish: true, Seed: 11, Workers: 1}
			benchAllocate(b, g, db, 6)
		})
	}
}

// BenchmarkAblationSplitPolicy compares DRP's published max-cost pop
// rule against the worked example's max-reduction rule (DESIGN.md
// discrepancy note): both quality and cost of the different orders.
func BenchmarkAblationSplitPolicy(b *testing.B) {
	db := workload.PaperDefaults(13).MustGenerate()
	for _, d := range []*core.DRP{core.NewDRP(), core.NewDRPExampleConsistent()} {
		b.Run(d.Policy.String(), func(b *testing.B) {
			benchAllocate(b, d, db, 6)
		})
	}
}

// BenchmarkAblationRefinement isolates what each stage buys: DRP
// alone, CDS from a flat start, and the full DRP-CDS pipeline.
func BenchmarkAblationRefinement(b *testing.B) {
	db := workload.PaperDefaults(17).MustGenerate()
	const k = 6
	b.Run("DRP-only", func(b *testing.B) {
		benchAllocate(b, core.NewDRP(), db, k)
	})
	b.Run("CDS-from-flat", func(b *testing.B) {
		flat := &core.Refined{Base: baseline.NewFlat(), Refiner: core.NewCDS()}
		benchAllocate(b, flat, db, k)
	})
	b.Run("DRP-CDS", func(b *testing.B) {
		benchAllocate(b, core.NewDRPCDS(), db, k)
	})
}

// BenchmarkAblationContiguity bounds the cost of DRP's dimension
// reduction: CONTIG-DP is the exact optimum over contiguous br-order
// partitions, so (CONTIG-DP − GOPT) isolates what contiguity itself
// gives up.
func BenchmarkAblationContiguity(b *testing.B) {
	db := workload.PaperDefaults(19).MustGenerate()
	const k = 6
	for _, alg := range []core.Allocator{
		core.NewDRP(),
		baseline.NewContigDP(),
		baseline.NewGreedy(),
	} {
		b.Run(alg.Name(), func(b *testing.B) {
			benchAllocate(b, alg, db, k)
		})
	}
}

// BenchmarkSimulators compares the closed-form replay against the
// event-driven engine on the same trace.
func BenchmarkSimulators(b *testing.B) {
	db := workload.Config{N: 60, Theta: 0.8, Phi: 1.5, Seed: 23}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 5)
	if err != nil {
		b.Fatal(err)
	}
	p, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition)
	if err != nil {
		b.Fatal(err)
	}
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: 2000, Rate: 100, Seed: 29})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("closed-form", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := airsim.Measure(p, trace); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("event-driven", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := airsim.EventDriven(p, trace); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProgramBuild measures broadcast-program compilation.
func BenchmarkProgramBuild(b *testing.B) {
	db := workload.PaperDefaults(31).MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition); err != nil {
			b.Fatal(err)
		}
	}
}

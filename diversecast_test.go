package diversecast_test

import (
	"math"
	"testing"
	"time"

	"diversecast"
)

// These tests exercise the public facade end to end, the way a
// downstream user would.

func TestPublicPipeline(t *testing.T) {
	db, err := diversecast.GenerateWorkload(diversecast.WorkloadConfig{
		N: 80, Theta: 0.8, Phi: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	alloc, err := diversecast.NewDRPCDS().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	wb := diversecast.WaitingTime(alloc, diversecast.PaperBandwidth)
	if wb <= 0 {
		t.Fatalf("waiting time %v", wb)
	}

	prog, err := diversecast.BuildProgram(alloc, diversecast.PaperBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := diversecast.GenerateTrace(db, diversecast.TraceConfig{
		Requests: 20000, Rate: 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := diversecast.Simulate(prog, trace)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Wait.Mean-wb)/wb > 0.05 {
		t.Fatalf("empirical %v vs analytical %v", res.Wait.Mean, wb)
	}
}

func TestPublicAllocatorsAgreeOnOrdering(t *testing.T) {
	db, err := diversecast.GenerateWorkload(diversecast.WorkloadConfig{
		N: 50, Theta: 0.8, Phi: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	costs := make(map[string]float64)
	for _, alg := range []diversecast.Allocator{
		diversecast.NewVFK(),
		diversecast.NewDRP(),
		diversecast.NewDRPCDS(),
		diversecast.NewGOPT(4),
	} {
		a, err := alg.Allocate(db, 5)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		costs[alg.Name()] = diversecast.Cost(a)
	}
	if !(costs["GOPT"] <= costs["DRP-CDS"]*1.02 &&
		costs["DRP-CDS"] <= costs["DRP"]+1e-9 &&
		costs["DRP-CDS"] <= costs["VFK"]+1e-9) {
		t.Fatalf("cost ordering violated: %v", costs)
	}
}

func TestPublicPaperExample(t *testing.T) {
	db := diversecast.PaperExampleDatabase()
	if db.Len() != 15 {
		t.Fatalf("paper database has %d items", db.Len())
	}
	a, err := diversecast.NewDRPCDS().Allocate(db, diversecast.PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	// The default DRP follows the published pseudocode (max-cost
	// pops), whose CDS local optimum differs slightly from the
	// worked example's 22.29 (see internal/core's golden tests for
	// the exact reproduction); it must land within a couple percent.
	if c := diversecast.Cost(a); c > 22.29*1.02 {
		t.Fatalf("DRP-CDS cost %v more than 2%% above the paper's 22.29", c)
	}
}

func TestPublicCatalogAndRefiner(t *testing.T) {
	cat, err := diversecast.CatalogByName("media-portal", 5)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]int, cat.DB.Len())
	for i := range flat {
		flat[i] = i % 4
	}
	a, err := diversecast.NewAllocation(cat.DB, 4, flat)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := diversecast.NewCDS().Refine(a)
	if err != nil {
		t.Fatal(err)
	}
	if diversecast.Cost(refined) > diversecast.Cost(a) {
		t.Fatal("refinement increased cost")
	}
}

func TestPublicNetcastRoundTrip(t *testing.T) {
	db, err := diversecast.NewDatabase([]diversecast.Item{
		{ID: 1, Freq: 0.6, Size: 2},
		{ID: 2, Freq: 0.4, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := diversecast.NewDRPCDS().Allocate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := diversecast.BuildProgram(alloc, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := diversecast.ServeBroadcast("127.0.0.1:0", diversecast.BroadcastServerConfig{
		Program: prog, TimeScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := diversecast.TuneBroadcast(srv.Addr().String(), 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec, wait, err := c.WaitForItem(1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Begin.ItemID != 1 || wait <= 0 {
		t.Fatalf("reception %+v, wait %v", rec.Begin, wait)
	}
}

func TestPublicExperimentDispatch(t *testing.T) {
	cfg := diversecast.QuickExperimentConfig()
	cfg.Seeds = cfg.Seeds[:1]
	fig, err := diversecast.RunFigure("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig4" || len(fig.Rows) == 0 {
		t.Fatalf("figure %+v", fig)
	}
	if len(diversecast.FigureIDs()) != 6 {
		t.Fatal("expected 6 figure ids")
	}
}

func TestPublicOnDemandAndHybrid(t *testing.T) {
	db, err := diversecast.GenerateWorkload(diversecast.WorkloadConfig{
		N: 40, Theta: 1.0, Phi: 2, Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := diversecast.GenerateTrace(db, diversecast.TraceConfig{
		Requests: 2000, Rate: 5, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheds := diversecast.OnDemandSchedulers()
	if len(scheds) != 4 {
		t.Fatalf("%d schedulers", len(scheds))
	}
	res, err := diversecast.SimulateOnDemand(db, trace, scheds[2], diversecast.PaperBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(trace) {
		t.Fatalf("served %d", res.Requests)
	}
	plan, err := diversecast.BuildHybrid(db, diversecast.HybridConfig{
		PushChannels: 2, Bandwidth: diversecast.PaperBandwidth,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := plan.Evaluate(trace)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Push.N+hres.Pull.N != len(trace) {
		t.Fatal("hybrid lost requests")
	}
}

func TestPublicCache(t *testing.T) {
	db, err := diversecast.GenerateWorkload(diversecast.WorkloadConfig{
		N: 30, Theta: 1.0, Phi: 1.5, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := diversecast.NewDRPCDS().Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := diversecast.BuildProgram(alloc, diversecast.PaperBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := diversecast.GenerateTrace(db, diversecast.TraceConfig{
		Requests: 5000, Rate: 30, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := diversecast.NewClientCache(diversecast.CachePolicies()[2], 40) // PIX
	if err != nil {
		t.Fatal(err)
	}
	res, err := diversecast.SimulateWithCache(alloc, prog, c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio <= 0 {
		t.Fatal("cache never hit")
	}
	noCache := diversecast.WaitingTime(alloc, diversecast.PaperBandwidth)
	if res.Wait.Mean >= noCache {
		t.Fatalf("cached wait %v not below analytic no-cache wait %v", res.Wait.Mean, noCache)
	}
}

func TestPublicQueries(t *testing.T) {
	db, err := diversecast.GenerateWorkload(diversecast.WorkloadConfig{
		N: 40, Theta: 0.9, Phi: 1, Seed: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := diversecast.NewDRPCDS().Allocate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	training, err := diversecast.GenerateQueries(db, diversecast.QueryWorkloadConfig{
		Queries: 800, Rate: 4, MaxItems: 3, Locality: 0.9, Stride: 13, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := diversecast.GenerateQueries(db, diversecast.QueryWorkloadConfig{
		Queries: 800, Rate: 4, MaxItems: 3, Locality: 0.9, Stride: 13, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := diversecast.BuildProgram(alloc, diversecast.PaperBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := diversecast.BuildProgramCustom(alloc, diversecast.PaperBandwidth,
		diversecast.QueryAffinityOrder(alloc, training))
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := diversecast.EvaluateQueries(base, test)
	if err != nil {
		t.Fatal(err)
	}
	tunedRes, err := diversecast.EvaluateQueries(tuned, test)
	if err != nil {
		t.Fatal(err)
	}
	if tunedRes.Span.Mean >= baseRes.Span.Mean {
		t.Fatalf("affinity order (%v) did not beat base order (%v)",
			tunedRes.Span.Mean, baseRes.Span.Mean)
	}
	span, order, err := diversecast.RetrieveQuery(base, test[0])
	if err != nil {
		t.Fatal(err)
	}
	if span <= 0 || len(order) != len(test[0].Items) {
		t.Fatalf("span %v, order %v", span, order)
	}
}

func TestPublicBroadcastDisks(t *testing.T) {
	db, err := diversecast.GenerateWorkload(diversecast.WorkloadConfig{
		N: 24, Theta: 1.2, Phi: 0.5, Seed: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, layout, err := diversecast.BuildBroadcastDisks(db, diversecast.DiskConfig{
		RelFreq: []int{3, 1}, Bandwidth: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(layout.Disks) != 2 {
		t.Fatalf("%d disks", len(layout.Disks))
	}
	hot := layout.Disks[0][0]
	if occ := prog.Occurrences(hot); len(occ) != 3 {
		t.Fatalf("hot item occurs %d times, want 3", len(occ))
	}
	trace, err := diversecast.GenerateTrace(db, diversecast.TraceConfig{
		Requests: 3000, Rate: 20, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := diversecast.Simulate(prog, trace); err != nil {
		t.Fatal(err)
	}
}

package query

import (
	"testing"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

// Regression test for the back-to-back slot rendezvous: a client whose
// download ends exactly at the next needed slot's start must catch it
// (slot starts are cumulative float sums, so this failed before the
// epsilon-tolerant schedule query in Retrieve, costing a spurious full
// cycle per item). The exhaustive sweep also quantifies the value of
// cycle-adjacency: chains laid out as contiguous blocks must beat the
// same chains scattered by the position order by a wide margin.
func TestAdjacentBlocksBeatScatteredChains(t *testing.T) {
	db := workload.Config{N: 60, Theta: 0.9, Phi: 0, Seed: 8}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Orbit order: consecutive slots differ by +17 positions, so every
	// stride-17 chain occupies consecutive slots.
	orbit := func(_ int, group []int) []int {
		out := make([]int, 0, len(group))
		cur := 0
		for i := 0; i < 60; i++ {
			out = append(out, cur)
			cur = (cur + 17) % 60
		}
		return out
	}
	pOrbit, err := broadcast.BuildCustom(a, 10, orbit)
	if err != nil {
		t.Fatal(err)
	}
	pPos, err := broadcast.Build(a, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	cycle := pOrbit.Channels[0].CycleLength

	meanAndWorst := func(p *broadcast.Program) (float64, float64) {
		var sum, worst float64
		n := 0
		for x := 0; x < 60; x++ {
			items := []int{x, (x + 17) % 60, (x + 34) % 60, (x + 51) % 60}
			for ph := 0; ph < 40; ph++ {
				at := cycle * float64(ph) / 40
				s, _, err := Retrieve(p, Query{Time: at, Items: items})
				if err != nil {
					t.Fatal(err)
				}
				sum += s
				if s > worst {
					worst = s
				}
				n++
			}
		}
		return sum / float64(n), worst
	}

	orbitMean, orbitWorst := meanAndWorst(pOrbit)
	posMean, _ := meanAndWorst(pPos)

	// Adjacency wins by a wide margin on chain queries.
	if orbitMean > posMean*0.75 {
		t.Fatalf("block layout (%v) not clearly better than scattered (%v)", orbitMean, posMean)
	}
	// And no query ever pays more than ~one cycle plus the block: the
	// pre-fix boundary bug made chains cost (m−1) extra cycles.
	if orbitWorst > cycle*1.1 {
		t.Fatalf("worst block span %v exceeds a cycle (%v): missed back-to-back slots", orbitWorst, cycle)
	}
}

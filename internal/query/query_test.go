package query

import (
	"math"
	"testing"
	"testing/quick"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func fixture(t testing.TB, n int, seed int64) (*core.Allocation, *broadcast.Program) {
	t.Helper()
	db := workload.Config{N: n, Theta: 0.9, Phi: 1.5, Seed: seed}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	return a, p
}

func TestGenerateValidation(t *testing.T) {
	db := workload.Config{N: 10, Theta: 1, Phi: 1, Seed: 1}.MustGenerate()
	if _, err := Generate(db, WorkloadConfig{Queries: -1, Rate: 1, MaxItems: 2}); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := Generate(db, WorkloadConfig{Queries: 5, Rate: 1, MaxItems: 0}); err == nil {
		t.Error("MaxItems=0 should fail")
	}
	if _, err := Generate(db, WorkloadConfig{Queries: 5, Rate: 1, MaxItems: 2, Locality: 1.5}); err == nil {
		t.Error("Locality > 1 should fail")
	}
	if _, err := Generate(db, WorkloadConfig{Queries: 5, Rate: 0, MaxItems: 2}); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestGenerateShape(t *testing.T) {
	db := workload.Config{N: 30, Theta: 1, Phi: 1, Seed: 2}.MustGenerate()
	qs, err := Generate(db, WorkloadConfig{Queries: 500, Rate: 5, MaxItems: 4, Locality: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 500 {
		t.Fatalf("%d queries", len(qs))
	}
	prev := 0.0
	for _, q := range qs {
		if q.Time < prev {
			t.Fatal("queries not in time order")
		}
		prev = q.Time
		if len(q.Items) < 1 || len(q.Items) > 4 {
			t.Fatalf("query size %d outside 1..4", len(q.Items))
		}
		seen := map[int]bool{}
		for _, pos := range q.Items {
			if pos < 0 || pos >= db.Len() {
				t.Fatalf("item position %d out of range", pos)
			}
			if seen[pos] {
				t.Fatal("duplicate item in query")
			}
			seen[pos] = true
		}
	}
}

func TestRetrieveValidation(t *testing.T) {
	_, p := fixture(t, 10, 3)
	if _, _, err := Retrieve(p, Query{Time: 0}); err != ErrEmptyQuery {
		t.Errorf("empty query: %v", err)
	}
	if _, _, err := Retrieve(p, Query{Time: 0, Items: []int{1, 1}}); err == nil {
		t.Error("duplicate items should fail")
	}
	if _, _, err := Retrieve(p, Query{Time: 0, Items: []int{999}}); err == nil {
		t.Error("unknown position should fail")
	}
}

func TestSingleItemQueryMatchesWaitFor(t *testing.T) {
	_, p := fixture(t, 20, 4)
	for pos := 0; pos < 20; pos++ {
		for _, at := range []float64{0, 7.7, 123.4} {
			want, err := p.WaitFor(pos, at)
			if err != nil {
				t.Fatal(err)
			}
			span, order, err := Retrieve(p, Query{Time: at, Items: []int{pos}})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(span-want) > 1e-9 {
				t.Fatalf("pos %d at %v: span %v, WaitFor %v", pos, at, span, want)
			}
			if len(order) != 1 || order[0] != pos {
				t.Fatalf("order = %v", order)
			}
		}
	}
}

func TestRetrieveHandBuilt(t *testing.T) {
	// Single channel, items of sizes 10, 20, 10 at bandwidth 10:
	// slots [0,1), [1,3), [3,4), cycle 4.
	db := core.MustNewDatabase([]core.Item{
		{ID: 1, Freq: 0.4, Size: 10},
		{ID: 2, Freq: 0.3, Size: 20},
		{ID: 3, Freq: 0.3, Size: 10},
	})
	a, err := core.NewAllocation(db, 1, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	// Query {0, 2} at t=0: item 0 airs [0,1), item 2 airs [3,4).
	// Greedy downloads 0 (ends 1), then 2 (ends 4): span 4.
	span, order, err := Retrieve(p, Query{Time: 0, Items: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(span-4) > 1e-9 {
		t.Fatalf("span %v, want 4", span)
	}
	if order[0] != 0 || order[1] != 2 {
		t.Fatalf("order %v, want [0 2]", order)
	}
	// Query {0, 2} at t=0.5: item 0's current airing is underway, so
	// greedy takes item 2 at [3,4), then item 0 next cycle [4,5):
	// span 5 − 0.5 = 4.5.
	span, order, err = Retrieve(p, Query{Time: 0.5, Items: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(span-4.5) > 1e-9 {
		t.Fatalf("span %v, want 4.5", span)
	}
	if order[0] != 2 || order[1] != 0 {
		t.Fatalf("order %v, want [2 0]", order)
	}
}

// Properties: the order is a permutation of the query, the span is at
// least the largest single-item wait and at most the sum of
// (cycle+duration) worst cases.
func TestRetrieveProperties(t *testing.T) {
	a, p := fixture(t, 30, 5)
	db := a.Database()
	check := func(rawItems []uint8, rawT uint16) bool {
		if len(rawItems) == 0 {
			return true
		}
		if len(rawItems) > 6 {
			rawItems = rawItems[:6]
		}
		seen := map[int]bool{}
		var items []int
		for _, r := range rawItems {
			pos := int(r) % db.Len()
			if !seen[pos] {
				seen[pos] = true
				items = append(items, pos)
			}
		}
		at := float64(rawT) / 10
		span, order, err := Retrieve(p, Query{Time: at, Items: items})
		if err != nil {
			return false
		}
		if len(order) != len(items) {
			return false
		}
		perm := map[int]bool{}
		for _, pos := range order {
			if !seen[pos] || perm[pos] {
				return false
			}
			perm[pos] = true
		}
		var maxWait, worstSum float64
		for _, pos := range items {
			w, err := p.WaitFor(pos, at)
			if err != nil {
				return false
			}
			if w > maxWait {
				maxWait = w
			}
			c, s, _ := p.Locate(pos)
			worstSum += p.Channels[c].CycleLength + p.Channels[c].Slots[s].Duration
		}
		return span >= maxWait-1e-9 && span <= worstSum+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluate(t *testing.T) {
	a, p := fixture(t, 30, 6)
	qs, err := Generate(a.Database(), WorkloadConfig{
		Queries: 400, Rate: 4, MaxItems: 3, Locality: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(p, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 400 {
		t.Fatalf("queries %d", res.Queries)
	}
	if res.Span.Min <= 0 {
		t.Fatal("non-positive span")
	}
	// Bigger queries take longer on average.
	if res.PerSize[1].N > 10 && res.PerSize[3].N > 10 &&
		res.PerSize[3].Mean <= res.PerSize[1].Mean {
		t.Fatalf("size-3 queries (%v) not slower than size-1 (%v)",
			res.PerSize[3].Mean, res.PerSize[1].Mean)
	}
	if _, err := Evaluate(p, nil); err == nil {
		t.Fatal("empty workload should fail")
	}
}

// The headline property of this package: affinity-aware slot ordering
// cuts query spans on a local workload while leaving single-item
// waits unchanged.
func TestAffinityOrderImprovesQuerySpans(t *testing.T) {
	// A single channel makes within-cycle ordering the dominant
	// effect; with more channels co-accessed items often sit on
	// different channels where slot order cannot help.
	db := workload.Config{N: 60, Theta: 0.9, Phi: 1, Seed: 8}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	training, err := Generate(db, WorkloadConfig{
		Queries: 2000, Rate: 5, MaxItems: 4, Locality: 0.9, Stride: 17, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := Generate(db, WorkloadConfig{
		Queries: 2000, Rate: 5, MaxItems: 4, Locality: 0.9, Stride: 17, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	base, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := broadcast.BuildCustom(a, workload.PaperBandwidth, AffinityOrder(a, training))
	if err != nil {
		t.Fatal(err)
	}

	baseRes, err := Evaluate(base, test)
	if err != nil {
		t.Fatal(err)
	}
	tunedRes, err := Evaluate(tuned, test)
	if err != nil {
		t.Fatal(err)
	}
	if tunedRes.Span.Mean >= baseRes.Span.Mean {
		t.Fatalf("affinity order (%v) did not beat position order (%v)",
			tunedRes.Span.Mean, baseRes.Span.Mean)
	}

	// Single-item waiting times are untouched by reordering: the
	// analytic W_b depends only on the partition.
	if math.Abs(core.WaitingTime(a, 10)-core.WaitingTime(a, 10)) != 0 {
		t.Fatal("unreachable")
	}
	// And empirically: cycle lengths identical.
	for c := range base.Channels {
		if math.Abs(base.Channels[c].CycleLength-tuned.Channels[c].CycleLength) > 1e-9 {
			t.Fatal("reordering changed a cycle length")
		}
	}
}

func TestBuildCustomRejectsNonPermutation(t *testing.T) {
	a, _ := fixture(t, 10, 11)
	_, err := broadcast.BuildCustom(a, 10, func(_ int, group []int) []int {
		return group[:len(group)-1] // drop an item
	})
	if err == nil {
		t.Fatal("non-permutation reorder should fail")
	}
	_, err = broadcast.BuildCustom(a, 10, func(_ int, group []int) []int {
		out := append([]int(nil), group...)
		out[0] = 999 // substitute a foreign position
		return out
	})
	if err == nil {
		t.Fatal("foreign-position reorder should fail")
	}
}

func BenchmarkRetrieve(b *testing.B) {
	a, p := fixture(b, 60, 12)
	qs, err := Generate(a.Database(), WorkloadConfig{
		Queries: 500, Rate: 5, MaxItems: 4, Locality: 0.7, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, _, err := Retrieve(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAffinityImprovementIsSubstantial(t *testing.T) {
	db := workload.Config{N: 60, Theta: 0.9, Phi: 1, Seed: 8}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	training, err := Generate(db, WorkloadConfig{Queries: 2000, Rate: 5, MaxItems: 4, Locality: 0.9, Stride: 17, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	test, err := Generate(db, WorkloadConfig{Queries: 2000, Rate: 5, MaxItems: 4, Locality: 0.9, Stride: 17, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	base, err := broadcast.Build(a, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := broadcast.BuildCustom(a, 10, AffinityOrder(a, training))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(base, test)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := Evaluate(tuned, test)
	if err != nil {
		t.Fatal(err)
	}
	gain := 1 - tu.Span.Mean/b.Span.Mean
	t.Logf("base span %.3f, affinity span %.3f (%.1f%% better)", b.Span.Mean, tu.Span.Mean, 100*gain)
	if gain < 0.02 {
		t.Errorf("affinity gain %.2f%% too small to be meaningful", 100*gain)
	}
}

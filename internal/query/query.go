// Package query models multi-item queries over broadcast programs,
// the territory of the reproduced paper's references [9] and [10]
// (Huang and Chen, dependent-data broadcasting): a client query needs
// a SET of related items, and its latency — the query span — runs
// until the last needed item has been downloaded.
//
// Two pieces are provided. Retrieve implements the standard greedy
// client: among the items still needed, always download the one whose
// next complete transmission finishes earliest. AffinityOrder
// rearranges the items *within* each channel cycle so that co-accessed
// items air back to back; single-item waiting times are unchanged (a
// flat cyclic channel's mean wait is order-independent), but query
// spans shrink.
package query

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/dist"
	"diversecast/internal/stats"
)

// Query is one multi-item request: at Time the client needs every
// item in Items (database positions, no duplicates).
type Query struct {
	Time  float64
	Items []int
}

// WorkloadConfig describes a synthetic query workload.
type WorkloadConfig struct {
	// Queries is the number of queries to generate.
	Queries int
	// Rate is the query arrival rate (queries per second).
	Rate float64
	// MaxItems bounds the query size (uniform in 1..MaxItems).
	MaxItems int
	// Locality is the probability that each additional query item is
	// the previous one's related item (its position advanced by
	// Stride, wrapping) rather than an independent popularity-
	// weighted draw.
	Locality float64
	// Stride is the position offset between related items (default
	// 1: adjacent storage). Strides coprime to N model related data
	// scattered across the database, which naive cycle orders keep
	// far apart.
	Stride int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate draws a query workload against db: the first item of each
// query follows the access-frequency distribution; subsequent items
// follow database adjacency with probability Locality.
func Generate(db *core.Database, cfg WorkloadConfig) ([]Query, error) {
	if cfg.Queries < 0 {
		return nil, fmt.Errorf("query: negative query count %d", cfg.Queries)
	}
	if cfg.MaxItems < 1 {
		return nil, fmt.Errorf("query: MaxItems must be >= 1, got %d", cfg.MaxItems)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("query: Locality must be in [0,1], got %v", cfg.Locality)
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if cfg.Stride < 0 {
		return nil, fmt.Errorf("query: Stride must be positive, got %d", cfg.Stride)
	}
	weights := make([]float64, db.Len())
	for i := range weights {
		weights[i] = db.Item(i).Freq
	}
	alias, err := dist.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gaps, err := dist.ExponentialInterarrivals(rng, cfg.Queries, cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}

	queries := make([]Query, cfg.Queries)
	var now float64
	for qi := range queries {
		now += gaps[qi]
		size := 1 + rng.Intn(cfg.MaxItems)
		seen := make(map[int]bool, size)
		items := make([]int, 0, size)
		cur := alias.Sample(rng)
		for len(items) < size {
			if !seen[cur] {
				seen[cur] = true
				items = append(items, cur)
			}
			if rng.Float64() < cfg.Locality {
				cur = (cur + cfg.Stride) % db.Len()
			} else {
				cur = alias.Sample(rng)
			}
		}
		queries[qi] = Query{Time: now, Items: items}
	}
	return queries, nil
}

// Retrieval errors.
var (
	ErrEmptyQuery = errors.New("query: empty item set")
	ErrDuplicate  = errors.New("query: duplicate item in query")
)

// Retrieve runs the greedy client for one query against a program:
// starting at the query time, repeatedly download the still-needed
// item whose next complete transmission ends earliest. It returns the
// span (finish − query time) and the download order.
func Retrieve(p *broadcast.Program, q Query) (span float64, order []int, err error) {
	if len(q.Items) == 0 {
		return 0, nil, ErrEmptyQuery
	}
	remaining := make(map[int]bool, len(q.Items))
	for _, pos := range q.Items {
		if remaining[pos] {
			return 0, nil, fmt.Errorf("%w: position %d", ErrDuplicate, pos)
		}
		remaining[pos] = true
	}

	now := q.Time
	order = make([]int, 0, len(q.Items))
	for len(remaining) > 0 {
		bestPos, bestEnd := -1, math.Inf(1)
		// A transmission starting exactly when the previous download
		// ends is catchable (back-to-back slots); slot starts are
		// cumulative float sums, so query the schedule a hair early
		// or boundary jitter would miss every adjacent slot and pay a
		// spurious full cycle.
		eps := 1e-9 * (1 + math.Abs(now))
		// Deterministic iteration for tie-stability.
		keys := make([]int, 0, len(remaining))
		for pos := range remaining {
			keys = append(keys, pos)
		}
		sort.Ints(keys)
		for _, pos := range keys {
			start, err := p.NextStart(pos, now-eps)
			if err != nil {
				return 0, nil, fmt.Errorf("query: item %d: %w", pos, err)
			}
			c, s, _ := p.Locate(pos)
			end := start + p.Channels[c].Slots[s].Duration
			if end < bestEnd {
				bestPos, bestEnd = pos, end
			}
		}
		delete(remaining, bestPos)
		order = append(order, bestPos)
		now = bestEnd
	}
	return now - q.Time, order, nil
}

// Result summarizes a query-workload evaluation.
type Result struct {
	Queries int
	// Span is the query latency (arrival to last download).
	Span stats.Summary
	// PerSize summarizes spans by query size (index = size, entry 0
	// unused).
	PerSize []stats.Summary
}

// Evaluate retrieves every query and aggregates the spans.
func Evaluate(p *broadcast.Program, queries []Query) (*Result, error) {
	if len(queries) == 0 {
		return nil, errors.New("query: empty workload")
	}
	var span stats.Accumulator
	maxSize := 0
	for _, q := range queries {
		if len(q.Items) > maxSize {
			maxSize = len(q.Items)
		}
	}
	perSize := make([]stats.Accumulator, maxSize+1)
	for _, q := range queries {
		s, _, err := Retrieve(p, q)
		if err != nil {
			return nil, err
		}
		span.Add(s)
		perSize[len(q.Items)].Add(s)
	}
	res := &Result{Queries: len(queries), Span: span.Summarize()}
	res.PerSize = make([]stats.Summary, len(perSize))
	for i := range perSize {
		res.PerSize[i] = perSize[i].Summarize()
	}
	return res, nil
}

// AffinityOrder builds a slot-reorder function (for
// broadcast.BuildCustom) from a training query workload: within each
// channel, items that co-occur in queries are chained back to back by
// a greedy maximum-affinity walk, so a client needing both catches
// them in one pass instead of paying an extra cycle.
func AffinityOrder(a *core.Allocation, training []Query) func(channel int, group []int) []int {
	// Pairwise co-access weights.
	affinity := make(map[[2]int]float64)
	for _, q := range training {
		for i := 0; i < len(q.Items); i++ {
			for j := i + 1; j < len(q.Items); j++ {
				x, y := q.Items[i], q.Items[j]
				if x > y {
					x, y = y, x
				}
				affinity[[2]int{x, y}]++
			}
		}
	}
	weight := func(x, y int) float64 {
		if x > y {
			x, y = y, x
		}
		return affinity[[2]int{x, y}]
	}
	db := a.Database()

	return func(_ int, group []int) []int {
		if len(group) < 3 {
			return group
		}
		// Greedy chain: start from the most popular item, repeatedly
		// append the unused item with the highest affinity to the
		// current tail (ties and zero affinity: most popular next).
		used := make(map[int]bool, len(group))
		start := group[0]
		for _, pos := range group {
			if db.Item(pos).Freq > db.Item(start).Freq {
				start = pos
			}
		}
		out := []int{start}
		used[start] = true
		for len(out) < len(group) {
			tail := out[len(out)-1]
			best := -1
			bestW, bestF := -1.0, -1.0
			for _, pos := range group {
				if used[pos] {
					continue
				}
				w := weight(tail, pos)
				f := db.Item(pos).Freq
				//diverselint:ignore floateq deliberate exact tie-break: affinity weights are whole counts, equality is exact by construction
				if w > bestW || (w == bestW && f > bestF) {
					best, bestW, bestF = pos, w, f
				}
			}
			out = append(out, best)
			used[best] = true
		}
		return out
	}
}

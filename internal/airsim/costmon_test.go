package airsim_test

import (
	"math"
	"testing"

	"diversecast/internal/airsim"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/obs"
	"diversecast/internal/obs/costmon"
	"diversecast/internal/obs/trace"
	"diversecast/internal/workload"
)

// TestCostMonitorGoldenPaperExample is the realized-vs-analytic
// agreement gate on the paper's worked example (Table 3 allocation:
// DRP split refined by CDS, K=5): a long request trace replayed
// through the closed-form simulator must land every channel's
// realized mean wait on the monitor's analytic Eq. (1) prediction,
// and the prediction itself must equal core.ChannelWaitingTime.
// Everything runs in virtual time under a ManualClock.
func TestCostMonitorGoldenPaperExample(t *testing.T) {
	const bandwidth = 1.0
	db := core.PaperExampleDatabase()
	a, err := core.NewDRPExampleConsistent().Allocate(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err = core.NewCDS().Refine(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, bandwidth, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}

	reqs, err := workload.GenerateTrace(db, workload.TraceConfig{
		Requests: 60000, Rate: 50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	clk := &trace.ManualClock{}
	mon, err := costmon.New(costmon.Config{
		Items:    db.Len(),
		Wait:     costmon.WaitRequest,
		HalfLife: 1e9, // effectively decay-free: the golden check wants raw empirical frequencies
		Registry: obs.NewRegistry(),
		Tracer:   trace.New(trace.Config{Capacity: 1 << 10, Clock: clk}),
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetProgram(p, db.Frequencies()); err != nil {
		t.Fatal(err)
	}

	res, err := airsim.MeasureWith(p, reqs, airsim.Options{CostMonitor: mon})
	if err != nil {
		t.Fatal(err)
	}

	// Advance the virtual clock past the run and sample.
	clk.Set(int64(reqs[len(reqs)-1].Time*1e9) + 1e9)
	mon.Sample()
	rep := mon.Report()

	for c := range p.Channels {
		cr := rep.Channels[c]
		// Prediction ≡ the analytic model.
		want := core.ChannelWaitingTime(a, c, bandwidth)
		if math.Abs(cr.PredictedS-want) > 1e-9 {
			t.Fatalf("channel %d: monitor predicted %v, ChannelWaitingTime %v", c, cr.PredictedS, want)
		}
		if cr.Waits == 0 {
			t.Fatalf("channel %d recorded no waits", c)
		}
		// The monitor's realized mean is exact (histogram Sum/Count),
		// so it must match the simulator's own per-channel mean.
		if sim := res.PerChannel[c].Mean; math.Abs(cr.RealizedMeanS-sim) > 1e-9 {
			t.Fatalf("channel %d: monitor realized %v, simulator %v", c, cr.RealizedMeanS, sim)
		}
		// Golden agreement: realized ≈ predicted. The trace is finite,
		// so allow sampling error.
		if rel := math.Abs(cr.RegretS) / cr.PredictedS; rel > 0.05 {
			t.Fatalf("channel %d: realized %v vs predicted %v (%.1f%% off, want ≤5%%)",
				c, cr.RealizedMeanS, cr.PredictedS, rel*100)
		}
	}

	// The trace was drawn from the solved-for distribution, so the
	// drift sensor must stay quiet.
	score, ok := mon.DriftScore()
	if !ok {
		t.Fatal("drift score not available after 60k observations")
	}
	if score > 0.05 {
		t.Fatalf("drift score %v on an undrifted workload, want < 0.05", score)
	}
	if rep.DriftExceeded {
		t.Fatal("drift alarm tripped on an undrifted workload")
	}
}

// TestCostMonitorEnginesAgree: the closed form and the DES feed a
// monitor identically — same wait count, same realized sums to
// floating-point accuracy — so cost attribution does not depend on
// which engine ran.
func TestCostMonitorEnginesAgree(t *testing.T) {
	db := core.PaperExampleDatabase()
	a, err := core.NewDRPExampleConsistent().Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 2, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.GenerateTrace(db, workload.TraceConfig{
		Requests: 4000, Rate: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	mk := func() *costmon.Monitor {
		clk := &trace.ManualClock{}
		m, err := costmon.New(costmon.Config{
			Items: db.Len(), Wait: costmon.WaitRequest, HalfLife: 1e9,
			Registry: obs.NewRegistry(),
			Tracer:   trace.New(trace.Config{Capacity: 64, Clock: clk}),
			Clock:    clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetProgram(p, db.Frequencies()); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mc, me := mk(), mk()
	if _, err := airsim.MeasureWith(p, reqs, airsim.Options{CostMonitor: mc}); err != nil {
		t.Fatal(err)
	}
	if _, err := airsim.EventDrivenWith(p, reqs, airsim.Options{CostMonitor: me}); err != nil {
		t.Fatal(err)
	}
	rc, re := mc.Report(), me.Report()
	for c := range p.Channels {
		if rc.Channels[c].Waits != re.Channels[c].Waits {
			t.Fatalf("channel %d wait counts differ: closed %d, DES %d",
				c, rc.Channels[c].Waits, re.Channels[c].Waits)
		}
		if rc.Channels[c].Waits == 0 {
			continue
		}
		diff := math.Abs(rc.Channels[c].RealizedMeanS - re.Channels[c].RealizedMeanS)
		if diff > 1e-9 {
			t.Fatalf("channel %d realized means differ by %v", c, diff)
		}
		if rc.Channels[c].TuneIns != re.Channels[c].TuneIns {
			t.Fatalf("channel %d tune-ins differ: closed %d, DES %d",
				c, rc.Channels[c].TuneIns, re.Channels[c].TuneIns)
		}
	}
}

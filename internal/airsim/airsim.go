// Package airsim simulates the broadcast "air": clients tune in at
// request times drawn from the access distribution, probe their
// channel until the wanted item's next transmission begins, then
// download it. It measures the empirical mean waiting time that the
// paper's Eq. (2) predicts analytically, in two independent ways — a
// closed-form replay of the cyclic schedule and a discrete-event
// simulation — which the tests cross-validate against each other and
// against the analytical model.
package airsim

import (
	"errors"
	"fmt"

	"diversecast/internal/broadcast"
	"diversecast/internal/sim"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Result summarizes one simulation run.
type Result struct {
	// Requests is the number of requests served.
	Requests int
	// Wait summarizes the full waiting time (probe + download) over
	// all requests.
	Wait stats.Summary
	// Probe and Download split the waiting time into its two
	// components.
	Probe    stats.Summary
	Download stats.Summary
	// PerChannel summarizes waiting time by the channel serving the
	// request.
	PerChannel []stats.Summary
}

// Errors returned by the simulators.
var (
	ErrNilProgram = errors.New("airsim: nil program")
	ErrEmptyTrace = errors.New("airsim: empty request trace")
)

// Measure replays the cyclic schedule in closed form: for every
// request it computes the next transmission start of the wanted item
// and accumulates probe and download times. It is exact (no
// discretization) and linear in the trace length.
func Measure(p *broadcast.Program, trace []workload.Request) (*Result, error) {
	if p == nil {
		return nil, ErrNilProgram
	}
	if len(trace) == 0 {
		return nil, ErrEmptyTrace
	}
	var wait, probe, download stats.Accumulator
	perChannel := make([]stats.Accumulator, p.K)
	for _, req := range trace {
		start, err := p.NextStart(req.Pos, req.Time)
		if err != nil {
			return nil, fmt.Errorf("airsim: request at %v: %w", req.Time, err)
		}
		c, s, _ := p.Locate(req.Pos)
		d := p.Channels[c].Slots[s].Duration
		pr := start - req.Time
		probe.Add(pr)
		download.Add(d)
		wait.Add(pr + d)
		perChannel[c].Add(pr + d)
	}
	res := &Result{
		Requests: len(trace),
		Wait:     wait.Summarize(),
		Probe:    probe.Summarize(),
		Download: download.Summarize(),
	}
	for _, acc := range perChannel {
		res.PerChannel = append(res.PerChannel, acc.Summarize())
	}
	return res, nil
}

// EventDriven measures the same quantity by running the broadcast as a
// discrete-event simulation: channels emit slot-start events
// cyclically, and waiting clients complete at the end of the first
// transmission that starts at or after their arrival. Its results must
// agree with Measure to floating-point accuracy; it exists to validate
// the closed form against an independent mechanism and to exercise the
// DES engine under load.
func EventDriven(p *broadcast.Program, trace []workload.Request) (*Result, error) {
	if p == nil {
		return nil, ErrNilProgram
	}
	if len(trace) == 0 {
		return nil, ErrEmptyTrace
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("airsim: %w", err)
	}
	if !workload.SortedByTime(trace) {
		return nil, errors.New("airsim: trace must be sorted by time")
	}

	s := sim.New()

	// Waiting clients per item position; served flags per request.
	type pendingReq struct {
		index   int
		arrival float64
	}
	waiting := make(map[int][]pendingReq)
	waits := make([]float64, len(trace))
	probes := make([]float64, len(trace))
	served := 0

	// Client arrivals.
	for i, req := range trace {
		i, req := i, req
		if err := s.At(req.Time, func() {
			waiting[req.Pos] = append(waiting[req.Pos], pendingReq{index: i, arrival: req.Time})
		}); err != nil {
			return nil, fmt.Errorf("airsim: scheduling arrival %d: %w", i, err)
		}
	}
	lastArrival := trace[len(trace)-1].Time

	// Channel broadcasters: each slot-start event serves matching
	// waiters and schedules the next slot. Channels stop rebroadcasting
	// once every request has been served and no arrival is pending.
	var scheduleSlot func(c, idx int, cycleStart float64) error
	scheduleSlot = func(c, idx int, cycleStart float64) error {
		ch := p.Channels[c]
		if len(ch.Slots) == 0 {
			return nil
		}
		slot := ch.Slots[idx]
		at := cycleStart + slot.Start
		return s.At(at, func() {
			// Serve clients that arrived at or before this start.
			q := waiting[slot.Pos]
			kept := q[:0]
			for _, pr := range q {
				if pr.arrival <= at {
					probes[pr.index] = at - pr.arrival
					waits[pr.index] = at + slot.Duration - pr.arrival
					served++
				} else {
					kept = append(kept, pr)
				}
			}
			waiting[slot.Pos] = kept

			if served == len(trace) && at >= lastArrival {
				return // all done; let the event queue drain
			}
			nextIdx := idx + 1
			nextCycle := cycleStart
			if nextIdx == len(ch.Slots) {
				nextIdx = 0
				nextCycle += ch.CycleLength
			}
			if err := scheduleSlot(c, nextIdx, nextCycle); err != nil {
				// Unreachable: times only move forward.
				panic(err)
			}
		})
	}
	for c := range p.Channels {
		if err := scheduleSlot(c, 0, 0); err != nil {
			return nil, fmt.Errorf("airsim: scheduling channel %d: %w", c, err)
		}
	}

	s.Run(0)
	if served != len(trace) {
		return nil, fmt.Errorf("airsim: simulation ended with %d of %d requests served", served, len(trace))
	}

	var wait, probe, download stats.Accumulator
	perChannel := make([]stats.Accumulator, p.K)
	for i, req := range trace {
		c, _, _ := p.Locate(req.Pos)
		wait.Add(waits[i])
		probe.Add(probes[i])
		download.Add(waits[i] - probes[i])
		perChannel[c].Add(waits[i])
	}
	res := &Result{
		Requests: len(trace),
		Wait:     wait.Summarize(),
		Probe:    probe.Summarize(),
		Download: download.Summarize(),
	}
	for _, acc := range perChannel {
		res.PerChannel = append(res.PerChannel, acc.Summarize())
	}
	return res, nil
}

// Package airsim simulates the broadcast "air": clients tune in at
// request times drawn from the access distribution, probe their
// channel until the wanted item's next transmission begins, then
// download it. It measures the empirical mean waiting time that the
// paper's Eq. (2) predicts analytically, in two independent ways — a
// closed-form replay of the cyclic schedule and a discrete-event
// simulation — which the tests cross-validate against each other and
// against the analytical model.
package airsim

import (
	"errors"
	"fmt"

	"diversecast/internal/broadcast"
	"diversecast/internal/obs/costmon"
	"diversecast/internal/obs/trace"
	"diversecast/internal/sim"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Trace span and event names emitted by the simulators. Snake_case
// per the obsnames convention; constants so the analyzer can see them.
const (
	spanBroadcastCycle = "broadcast_cycle"
	eventClientTuneIn  = "client_tune_in"
	eventClientServed  = "client_served"
)

// Options carries cross-cutting run configuration for the simulators.
type Options struct {
	// Tracer receives one broadcast_cycle span per channel cycle
	// (tagged with the channel's F·Z group cost) and one tune-in /
	// served event pair per request, all stamped with the simulation's
	// virtual time (seconds scaled to nanoseconds), so a replayed
	// trace is deterministic and viewer timelines read in sim time.
	// Nil uses trace.Default(), which starts disabled.
	Tracer *trace.Tracer
	// CostMonitor, when set, receives one tune-in (with the requested
	// item's position) and one realized wait per request, both in
	// virtual seconds. Build it with Wait: costmon.WaitRequest and a
	// ManualClock driven in virtual time; the golden tests pin its
	// realized means to the analytic Eq. (1) expectations this way.
	CostMonitor *costmon.Monitor
}

// virtualNS converts virtual simulation seconds to the integer
// nanosecond timestamps the tracer records.
func virtualNS(seconds float64) int64 { return int64(seconds * 1e9) }

// Result summarizes one simulation run.
type Result struct {
	// Requests is the number of requests served.
	Requests int
	// Wait summarizes the full waiting time (probe + download) over
	// all requests.
	Wait stats.Summary
	// Probe and Download split the waiting time into its two
	// components.
	Probe    stats.Summary
	Download stats.Summary
	// PerChannel summarizes waiting time by the channel serving the
	// request.
	PerChannel []stats.Summary
}

// Errors returned by the simulators.
var (
	ErrNilProgram = errors.New("airsim: nil program")
	ErrEmptyTrace = errors.New("airsim: empty request trace")
)

// Measure replays the cyclic schedule in closed form: for every
// request it computes the next transmission start of the wanted item
// and accumulates probe and download times. It is exact (no
// discretization) and linear in the trace length.
func Measure(p *broadcast.Program, reqs []workload.Request) (*Result, error) {
	return MeasureWith(p, reqs, Options{})
}

// MeasureWith is Measure with explicit options (tracing).
func MeasureWith(p *broadcast.Program, reqs []workload.Request, opts Options) (*Result, error) {
	if p == nil {
		return nil, ErrNilProgram
	}
	if len(reqs) == 0 {
		return nil, ErrEmptyTrace
	}
	tr := opts.Tracer
	if tr == nil {
		tr = trace.Default()
	}
	traceOn := tr.Enabled()

	var wait, probe, download stats.Accumulator
	perChannel := make([]stats.Accumulator, p.K)
	horizon := 0.0
	for _, req := range reqs {
		start, err := p.NextStart(req.Pos, req.Time)
		if err != nil {
			return nil, fmt.Errorf("airsim: request at %v: %w", req.Time, err)
		}
		c, s, _ := p.Locate(req.Pos)
		d := p.Channels[c].Slots[s].Duration
		pr := start - req.Time
		probe.Add(pr)
		download.Add(d)
		wait.Add(pr + d)
		perChannel[c].Add(pr + d)
		if opts.CostMonitor != nil {
			opts.CostMonitor.ObserveTuneIn(c, req.Pos)
			opts.CostMonitor.RecordWait(c, pr+d)
		}
		if end := start + d; end > horizon {
			horizon = end
		}
		if traceOn {
			tr.EventAt(eventClientTuneIn, virtualNS(req.Time),
				trace.Int("channel", int64(c)), trace.Int("item", int64(req.Pos)))
			tr.EventAt(eventClientServed, virtualNS(start+d),
				trace.Int("channel", int64(c)), trace.Int("item", int64(req.Pos)),
				trace.Float("probe", pr), trace.Float("wait", pr+d))
		}
	}
	if traceOn {
		emitCycleSpans(tr, p, horizon)
	}
	res := &Result{
		Requests: len(reqs),
		Wait:     wait.Summarize(),
		Probe:    probe.Summarize(),
		Download: download.Summarize(),
	}
	for _, acc := range perChannel {
		res.PerChannel = append(res.PerChannel, acc.Summarize())
	}
	return res, nil
}

// emitCycleSpans replays the cyclic schedule structure over [0,
// horizon] as one span per channel cycle, each tagged with the
// channel's F·Z group cost and cycle length. The closed form never
// iterates cycles itself, so the spans are synthesized from the
// schedule; the event-driven simulator emits the same spans from the
// cycles it actually executes.
func emitCycleSpans(tr *trace.Tracer, p *broadcast.Program, horizon float64) {
	for c, ch := range p.Channels {
		if ch.CycleLength <= 0 {
			continue
		}
		for cycle := 0; ; cycle++ {
			start := float64(cycle) * ch.CycleLength
			if start >= horizon {
				break
			}
			sp := tr.StartAt(spanBroadcastCycle, virtualNS(start),
				trace.Int("channel", int64(c)), trace.Int("cycle", int64(cycle)),
				trace.Float("group_cost", ch.GroupCost),
				trace.Float("cycle_length", ch.CycleLength))
			sp.EndAt(virtualNS(start + ch.CycleLength))
		}
	}
}

// EventDriven measures the same quantity by running the broadcast as a
// discrete-event simulation: channels emit slot-start events
// cyclically, and waiting clients complete at the end of the first
// transmission that starts at or after their arrival. Its results must
// agree with Measure to floating-point accuracy; it exists to validate
// the closed form against an independent mechanism and to exercise the
// DES engine under load.
func EventDriven(p *broadcast.Program, reqs []workload.Request) (*Result, error) {
	return EventDrivenWith(p, reqs, Options{})
}

// EventDrivenWith is EventDriven with explicit options (tracing).
func EventDrivenWith(p *broadcast.Program, reqs []workload.Request, opts Options) (*Result, error) {
	if p == nil {
		return nil, ErrNilProgram
	}
	if len(reqs) == 0 {
		return nil, ErrEmptyTrace
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("airsim: %w", err)
	}
	if !workload.SortedByTime(reqs) {
		return nil, errors.New("airsim: trace must be sorted by time")
	}
	tr := opts.Tracer
	if tr == nil {
		tr = trace.Default()
	}
	traceOn := tr.Enabled()

	s := sim.New()

	// Waiting clients per item position; served flags per request.
	type pendingReq struct {
		index   int
		arrival float64
	}
	waiting := make(map[int][]pendingReq)
	waits := make([]float64, len(reqs))
	probes := make([]float64, len(reqs))
	served := 0

	// Client arrivals.
	for i, req := range reqs {
		i, req := i, req
		if err := s.At(req.Time, func() {
			waiting[req.Pos] = append(waiting[req.Pos], pendingReq{index: i, arrival: req.Time})
			if opts.CostMonitor != nil {
				c, _, _ := p.Locate(req.Pos)
				opts.CostMonitor.ObserveTuneIn(c, req.Pos)
			}
			if traceOn {
				tr.EventAt(eventClientTuneIn, virtualNS(req.Time),
					trace.Int("item", int64(req.Pos)))
			}
		}); err != nil {
			return nil, fmt.Errorf("airsim: scheduling arrival %d: %w", i, err)
		}
	}
	lastArrival := reqs[len(reqs)-1].Time

	// Channel broadcasters: each slot-start event serves matching
	// waiters and schedules the next slot. Channels stop rebroadcasting
	// once every request has been served and no arrival is pending.
	var scheduleSlot func(c, idx int, cycleStart float64) error
	scheduleSlot = func(c, idx int, cycleStart float64) error {
		ch := p.Channels[c]
		if len(ch.Slots) == 0 {
			return nil
		}
		slot := ch.Slots[idx]
		at := cycleStart + slot.Start
		return s.At(at, func() {
			// Serve clients that arrived at or before this start.
			q := waiting[slot.Pos]
			kept := q[:0]
			for _, pr := range q {
				if pr.arrival <= at {
					probes[pr.index] = at - pr.arrival
					waits[pr.index] = at + slot.Duration - pr.arrival
					served++
					if opts.CostMonitor != nil {
						opts.CostMonitor.RecordWait(c, at+slot.Duration-pr.arrival)
					}
					if traceOn {
						tr.EventAt(eventClientServed, virtualNS(at+slot.Duration),
							trace.Int("channel", int64(c)), trace.Int("item", int64(slot.Pos)),
							trace.Float("probe", at-pr.arrival),
							trace.Float("wait", at+slot.Duration-pr.arrival))
					}
				} else {
					kept = append(kept, pr)
				}
			}
			waiting[slot.Pos] = kept

			if served == len(reqs) && at >= lastArrival {
				// All done; let the event queue drain. The final
				// (partial) cycle still gets its span so the timeline
				// covers every slot the simulation executed.
				if traceOn {
					emitOneCycleSpan(tr, ch, c, cycleStart)
				}
				return
			}
			nextIdx := idx + 1
			nextCycle := cycleStart
			if nextIdx == len(ch.Slots) {
				nextIdx = 0
				nextCycle += ch.CycleLength
				// The cycle that just finished becomes a span stamped
				// with virtual time, one per executed cycle per channel.
				if traceOn {
					emitOneCycleSpan(tr, ch, c, cycleStart)
				}
			}
			if err := scheduleSlot(c, nextIdx, nextCycle); err != nil {
				// Unreachable: times only move forward.
				panic(err)
			}
		})
	}
	for c := range p.Channels {
		if err := scheduleSlot(c, 0, 0); err != nil {
			return nil, fmt.Errorf("airsim: scheduling channel %d: %w", c, err)
		}
	}

	s.Run(0)
	if served != len(reqs) {
		return nil, fmt.Errorf("airsim: simulation ended with %d of %d requests served", served, len(reqs))
	}

	var wait, probe, download stats.Accumulator
	perChannel := make([]stats.Accumulator, p.K)
	for i, req := range reqs {
		c, _, _ := p.Locate(req.Pos)
		wait.Add(waits[i])
		probe.Add(probes[i])
		download.Add(waits[i] - probes[i])
		perChannel[c].Add(waits[i])
	}
	res := &Result{
		Requests: len(reqs),
		Wait:     wait.Summarize(),
		Probe:    probe.Summarize(),
		Download: download.Summarize(),
	}
	for _, acc := range perChannel {
		res.PerChannel = append(res.PerChannel, acc.Summarize())
	}
	return res, nil
}

// emitOneCycleSpan records one executed channel cycle as a span over
// its virtual-time window. The cycle ordinal is recovered from the
// start offset (cycle starts are exact multiples of the length).
func emitOneCycleSpan(tr *trace.Tracer, ch broadcast.Channel, c int, cycleStart float64) {
	cycle := 0
	if ch.CycleLength > 0 {
		cycle = int(cycleStart/ch.CycleLength + 0.5)
	}
	sp := tr.StartAt(spanBroadcastCycle, virtualNS(cycleStart),
		trace.Int("channel", int64(c)), trace.Int("cycle", int64(cycle)),
		trace.Float("group_cost", ch.GroupCost),
		trace.Float("cycle_length", ch.CycleLength))
	sp.EndAt(virtualNS(cycleStart + ch.CycleLength))
}

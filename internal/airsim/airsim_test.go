package airsim

import (
	"math"
	"testing"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func fixture(t *testing.T, n, k int, seed int64) (*core.Allocation, *broadcast.Program) {
	t.Helper()
	db := workload.Config{N: n, Theta: 0.8, Phi: 1.5, Seed: seed}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	return a, p
}

func makeTrace(t *testing.T, a *core.Allocation, n int, seed int64) []workload.Request {
	t.Helper()
	trace, err := workload.GenerateTrace(a.Database(), workload.TraceConfig{
		Requests: n, Rate: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestMeasureValidation(t *testing.T) {
	a, p := fixture(t, 10, 3, 1)
	trace := makeTrace(t, a, 10, 2)
	if _, err := Measure(nil, trace); err != ErrNilProgram {
		t.Errorf("nil program: %v", err)
	}
	if _, err := Measure(p, nil); err != ErrEmptyTrace {
		t.Errorf("empty trace: %v", err)
	}
	if _, err := EventDriven(nil, trace); err != ErrNilProgram {
		t.Errorf("nil program (event): %v", err)
	}
	if _, err := EventDriven(p, nil); err != ErrEmptyTrace {
		t.Errorf("empty trace (event): %v", err)
	}
}

func TestEventDrivenRejectsUnsortedTrace(t *testing.T) {
	a, p := fixture(t, 10, 3, 1)
	trace := makeTrace(t, a, 5, 2)
	trace[0], trace[1] = trace[1], trace[0]
	if _, err := EventDriven(p, trace); err == nil {
		t.Fatal("unsorted trace should fail")
	}
}

func TestMeasureBasicInvariants(t *testing.T) {
	a, p := fixture(t, 20, 4, 3)
	trace := makeTrace(t, a, 2000, 4)
	res, err := Measure(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(trace) {
		t.Fatalf("served %d of %d", res.Requests, len(trace))
	}
	if res.Wait.Min <= 0 {
		t.Errorf("minimum wait %v must be positive (download takes time)", res.Wait.Min)
	}
	// Wait = probe + download, means must add up.
	if math.Abs(res.Wait.Mean-(res.Probe.Mean+res.Download.Mean)) > 1e-9 {
		t.Errorf("wait mean %v != probe %v + download %v", res.Wait.Mean, res.Probe.Mean, res.Download.Mean)
	}
	// Per-channel request counts sum to the total.
	total := 0
	for _, s := range res.PerChannel {
		total += s.N
	}
	if total != res.Requests {
		t.Errorf("per-channel counts sum to %d, want %d", total, res.Requests)
	}
}

// The central cross-validation: the discrete-event simulation must
// agree with the closed-form replay request by request (identical
// summaries), because both execute the same cyclic program.
func TestEventDrivenMatchesClosedForm(t *testing.T) {
	for _, tc := range []struct {
		n, k     int
		requests int
	}{
		{10, 2, 300},
		{25, 5, 500},
		{40, 7, 400},
	} {
		a, p := fixture(t, tc.n, tc.k, int64(tc.n))
		trace := makeTrace(t, a, tc.requests, int64(tc.k))
		closed, err := Measure(p, trace)
		if err != nil {
			t.Fatal(err)
		}
		event, err := EventDriven(p, trace)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(closed.Wait.Mean-event.Wait.Mean) > 1e-6 {
			t.Fatalf("N=%d K=%d: closed-form mean %v, event-driven %v",
				tc.n, tc.k, closed.Wait.Mean, event.Wait.Mean)
		}
		if math.Abs(closed.Probe.Mean-event.Probe.Mean) > 1e-6 {
			t.Fatalf("probe means diverge: %v vs %v", closed.Probe.Mean, event.Probe.Mean)
		}
		if math.Abs(closed.Wait.Max-event.Wait.Max) > 1e-6 {
			t.Fatalf("max waits diverge: %v vs %v", closed.Wait.Max, event.Wait.Max)
		}
	}
}

// The reproduction's keystone: the empirical mean waiting time
// converges to the analytical W_b of Eq. (2), validating the model the
// whole optimization is built on.
func TestEmpiricalWaitConvergesToAnalyticalModel(t *testing.T) {
	a, p := fixture(t, 30, 5, 7)
	trace := makeTrace(t, a, 60000, 8)
	res, err := Measure(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	want := core.WaitingTime(a, workload.PaperBandwidth)
	rel := math.Abs(res.Wait.Mean-want) / want
	if rel > 0.02 {
		t.Fatalf("empirical mean %v vs analytical %v (rel err %.3f)", res.Wait.Mean, want, rel)
	}
	// The empirical download component is exactly the download mass
	// over requests drawn from f — check it converges too.
	wantDownload := a.Database().DownloadMass() / workload.PaperBandwidth
	if math.Abs(res.Download.Mean-wantDownload)/wantDownload > 0.03 {
		t.Fatalf("empirical download %v vs analytical %v", res.Download.Mean, wantDownload)
	}
}

// Per-channel empirical means must match Eq. (1)'s channel averages.
func TestPerChannelWaitMatchesEq1(t *testing.T) {
	a, p := fixture(t, 30, 4, 9)
	trace := makeTrace(t, a, 80000, 10)
	res, err := Measure(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < a.K(); c++ {
		if res.PerChannel[c].N < 500 {
			continue // too few samples on cold channels to compare tightly
		}
		want := core.ChannelWaitingTime(a, c, workload.PaperBandwidth)
		got := res.PerChannel[c].Mean
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("channel %d: empirical %v, analytical %v", c, got, want)
		}
	}
}

// A better allocation (lower analytic W_b) must also measure better on
// the same trace — the simulation preserves the optimization's order.
func TestSimulationPreservesAllocationOrdering(t *testing.T) {
	db := workload.Config{N: 40, Theta: 0.8, Phi: 2, Seed: 11}.MustGenerate()
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: 40000, Rate: 50, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	meanFor := func(a *core.Allocation) float64 {
		p, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Measure(p, trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wait.Mean
	}
	good, err := core.NewDRPCDS().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately poor allocation: everything on one channel.
	bad, err := core.NewAllocation(db, 6, make([]int, db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if meanFor(good) >= meanFor(bad) {
		t.Fatalf("DRP-CDS (%v) did not beat single-channel (%v) empirically",
			meanFor(good), meanFor(bad))
	}
}

func TestSingleItemProgram(t *testing.T) {
	db := core.MustNewDatabase([]core.Item{{ID: 1, Freq: 1, Size: 5}})
	a, err := core.NewAllocation(db, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	trace := []workload.Request{{Time: 0.1, Pos: 0}, {Time: 0.6, Pos: 0}}
	res, err := Measure(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle = 0.5s. Request at 0.1 catches the start at 0.5 and
	// finishes at 1.0 (wait 0.9); at 0.6 the next start is 1.0,
	// finishing 1.5 (wait 0.9).
	if math.Abs(res.Wait.Mean-0.9) > 1e-9 {
		t.Fatalf("mean wait %v, want 0.9", res.Wait.Mean)
	}
	ev, err := EventDriven(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Wait.Mean-0.9) > 1e-9 {
		t.Fatalf("event-driven mean %v, want 0.9", ev.Wait.Mean)
	}
}

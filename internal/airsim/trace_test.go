package airsim

import (
	"testing"

	"diversecast/internal/obs/trace"
)

// TestEventDrivenTraceTimeline checks the DES emits per-cycle spans
// and tune-in/served event pairs stamped with virtual time: one
// served event per request, cycle spans tagged with the channel's F·Z
// group cost, timestamps on the virtual (not wall) clock.
func TestEventDrivenTraceTimeline(t *testing.T) {
	a, p := fixture(t, 12, 3, 4)
	reqs := makeTrace(t, a, 40, 5)

	tr := trace.New(trace.Config{Capacity: 1 << 14, RunID: "airsim-des"})
	res, err := EventDrivenWith(p, reqs, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("ring dropped %d records; grow the test capacity", snap.Dropped)
	}

	served := snap.Named("client_served")
	if len(served) != res.Requests {
		t.Fatalf("%d client_served events, want %d", len(served), res.Requests)
	}
	tuneIns := snap.Named("client_tune_in")
	if len(tuneIns) != res.Requests {
		t.Fatalf("%d client_tune_in events, want %d", len(tuneIns), res.Requests)
	}
	// Tune-in timestamps are the request arrival times in virtual ns.
	wantFirst := virtualNS(reqs[0].Time)
	foundFirst := false
	for _, ev := range tuneIns {
		if ev.Start == wantFirst {
			foundFirst = true
		}
	}
	if !foundFirst {
		t.Fatalf("no tune-in at the first arrival's virtual time %d", wantFirst)
	}

	cycles := snap.Named("broadcast_cycle")
	if len(cycles) == 0 {
		t.Fatal("no broadcast_cycle spans")
	}
	seenChannel := make(map[int64]bool)
	for _, sp := range cycles {
		ch, _ := sp.Attr("channel")
		cost, _ := sp.Attr("group_cost")
		clen, _ := sp.Attr("cycle_length")
		seenChannel[ch.Int] = true
		want := p.Channels[ch.Int].GroupCost
		if cost.Float != want {
			t.Fatalf("cycle span on channel %d has group_cost %v, want %v", ch.Int, cost.Float, want)
		}
		// End/start are rounded to ns independently, so allow 1ns slop.
		if d := sp.Dur - virtualNS(clen.Float); d < -1 || d > 1 {
			t.Fatalf("cycle span duration %d ns, want cycle length %v s", sp.Dur, clen.Float)
		}
	}
	// Every channel that served a request broadcast at least one cycle.
	for _, ev := range served {
		ch, _ := ev.Attr("channel")
		if !seenChannel[ch.Int] {
			t.Fatalf("channel %d served requests but emitted no cycle span", ch.Int)
		}
	}
}

// TestMeasureTraceMatchesClosedForm checks the closed-form replay
// emits the same shape: per-request event pairs whose wait attr
// matches the analytic per-request wait, plus synthesized cycle spans
// covering the horizon.
func TestMeasureTraceMatchesClosedForm(t *testing.T) {
	a, p := fixture(t, 12, 3, 4)
	reqs := makeTrace(t, a, 40, 5)

	tr := trace.New(trace.Config{Capacity: 1 << 14, RunID: "airsim-closed"})
	res, err := MeasureWith(p, reqs, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	served := snap.Named("client_served")
	if len(served) != res.Requests {
		t.Fatalf("%d client_served events, want %d", len(served), res.Requests)
	}
	var sum float64
	for _, ev := range served {
		w, ok := ev.Attr("wait")
		if !ok {
			t.Fatalf("served event lacks wait attr: %+v", ev)
		}
		sum += w.Float
	}
	if mean := sum / float64(len(served)); !closeTo(mean, res.Wait.Mean, 1e-9) {
		t.Fatalf("event wait mean %v, result mean %v", mean, res.Wait.Mean)
	}
	if len(snap.Named("broadcast_cycle")) == 0 {
		t.Fatal("closed-form run emitted no cycle spans")
	}
}

// TestSimulatorsQuietWhenDisabled: with no tracer and the default
// disabled, instrumented runs stay silent.
func TestSimulatorsQuietWhenDisabled(t *testing.T) {
	a, p := fixture(t, 10, 3, 1)
	reqs := makeTrace(t, a, 10, 2)
	if _, err := Measure(p, reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := EventDriven(p, reqs); err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Default().Snapshot().Records); n != 0 {
		t.Fatalf("default tracer captured %d records while disabled", n)
	}
}

func closeTo(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

package genetic

import (
	"errors"
	"math"
	"testing"
)

// oneMax counts ones: the classic GA smoke problem.
func oneMax(genes []int) float64 {
	var s float64
	for _, g := range genes {
		s += float64(g)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	fit := func([]int) float64 { return 0 }
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero length", Config{Length: 0, Alphabet: 2}},
		{"zero alphabet", Config{Length: 4, Alphabet: 0}},
		{"population one", Config{Length: 4, Alphabet: 2, PopulationSize: 1}},
		{"negative generations", Config{Length: 4, Alphabet: 2, Generations: -1}},
		{"crossover rate > 1", Config{Length: 4, Alphabet: 2, CrossoverRate: 1.5}},
		{"mutation rate > 1", Config{Length: 4, Alphabet: 2, MutationRate: 1.5}},
		{"tournament too large", Config{Length: 4, Alphabet: 2, PopulationSize: 4, TournamentSize: 9}},
		{"elitism exceeds population", Config{Length: 4, Alphabet: 2, PopulationSize: 4, Elitism: 4}},
		{"short seed", Config{Length: 4, Alphabet: 2, Seeds: [][]int{{0, 1}}}},
		{"seed gene out of range", Config{Length: 2, Alphabet: 2, Seeds: [][]int{{0, 5}}}},
		{"negative stagnation", Config{Length: 4, Alphabet: 2, Stagnation: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg, fit); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	if _, err := Run(Config{Length: 4, Alphabet: 2}, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("nil fitness should fail")
	}
}

func TestSolvesOneMax(t *testing.T) {
	res, err := Run(Config{
		Length:      30,
		Alphabet:    2,
		Generations: 200,
		Seed:        1,
	}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 29 {
		t.Fatalf("best fitness %v, want ≈ 30 (OneMax)", res.BestFitness)
	}
	for _, g := range res.Best {
		if g != 0 && g != 1 {
			t.Fatalf("gene %d outside alphabet", g)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{Length: 20, Alphabet: 4, Generations: 50, Seed: 42}
	a, err := Run(cfg, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatal("identically-seeded runs differ")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("identically-seeded runs found different chromosomes")
		}
	}
}

func TestHistoryMonotoneNonDecreasing(t *testing.T) {
	res, err := Run(Config{Length: 25, Alphabet: 3, Generations: 80, Seed: 3}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best fitness regressed at generation %d: %v < %v",
				i, res.History[i], res.History[i-1])
		}
	}
	if res.BestFitness != res.History[len(res.History)-1] {
		t.Fatal("BestFitness disagrees with final history entry")
	}
}

func TestElitismPreservesBest(t *testing.T) {
	// With elitism the best fitness can never drop, even with a
	// violent mutation rate.
	res, err := Run(Config{
		Length:       15,
		Alphabet:     2,
		Generations:  60,
		MutationRate: 0.5,
		Elitism:      2,
		Seed:         5,
	}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatal("elitism failed to preserve the best chromosome")
		}
	}
}

func TestStagnationStopsEarly(t *testing.T) {
	// A constant fitness stagnates immediately.
	res, err := Run(Config{
		Length:      10,
		Alphabet:    2,
		Generations: 500,
		Stagnation:  5,
		Seed:        7,
	}, func([]int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations > 10 {
		t.Fatalf("ran %d generations despite stagnation limit 5", res.Generations)
	}
}

func TestSeedsEnterPopulation(t *testing.T) {
	// Seeding the known optimum means the run can never do worse.
	optimum := make([]int, 12)
	for i := range optimum {
		optimum[i] = 1
	}
	res, err := Run(Config{
		Length:      12,
		Alphabet:    2,
		Generations: 3,
		Seeds:       [][]int{optimum},
		Seed:        9,
	}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 12 {
		t.Fatalf("seeded optimum lost: best %v", res.BestFitness)
	}
}

func TestRouletteSelection(t *testing.T) {
	res, err := Run(Config{
		Length:      20,
		Alphabet:    2,
		Generations: 150,
		Selection:   Roulette,
		Seed:        11,
	}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 17 {
		t.Fatalf("roulette run best %v, want near 20", res.BestFitness)
	}
}

func TestUniformCrossover(t *testing.T) {
	res, err := Run(Config{
		Length:      20,
		Alphabet:    2,
		Generations: 150,
		CrossoverOp: Uniform,
		Seed:        13,
	}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 18 {
		t.Fatalf("uniform-crossover run best %v, want near 20", res.BestFitness)
	}
}

func TestNegativeFitnessLandscape(t *testing.T) {
	// Minimization via negated objective (how GOPT uses the engine):
	// target is the all-zero string.
	res, err := Run(Config{Length: 18, Alphabet: 3, Generations: 200, Seed: 15},
		func(genes []int) float64 { return -oneMax(genes) })
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < -2 {
		t.Fatalf("minimization reached %v, want near 0", res.BestFitness)
	}
	if math.IsInf(res.BestFitness, -1) {
		t.Fatal("best fitness never updated")
	}
}

func TestOperatorStrings(t *testing.T) {
	if Tournament.String() != "tournament" || Roulette.String() != "roulette" ||
		Selection(9).String() != "unknown" {
		t.Error("Selection.String mismatch")
	}
	if OnePoint.String() != "one-point" || Uniform.String() != "uniform" ||
		Crossover(9).String() != "unknown" {
		t.Error("Crossover.String mismatch")
	}
}

func TestLengthOneChromosome(t *testing.T) {
	res, err := Run(Config{Length: 1, Alphabet: 5, Generations: 30, Seed: 17}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != 4 {
		t.Fatalf("length-1 search best %v, want 4", res.BestFitness)
	}
}

func TestEvaluationsCounted(t *testing.T) {
	res, err := Run(Config{Length: 8, Alphabet: 2, PopulationSize: 10, Generations: 5, Seed: 19}, oneMax)
	if err != nil {
		t.Fatal(err)
	}
	// Initial population plus offspring (elites are not re-evaluated).
	if res.Evaluations < 10 || res.Evaluations > 10+5*10 {
		t.Fatalf("evaluations = %d, outside plausible range", res.Evaluations)
	}
}

func BenchmarkRunOneMax(b *testing.B) {
	cfg := Config{Length: 60, Alphabet: 6, PopulationSize: 50, Generations: 50, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, oneMax); err != nil {
			b.Fatal(err)
		}
	}
}

package genetic

import (
	"math"
	"runtime"
	"strconv"
	"testing"
)

// weightedFitness is a float-heavy deterministic landscape: any
// reordering of evaluation must still reproduce the exact same
// Result, bit for bit, because each chromosome's score depends only
// on its own genes.
func weightedFitness(genes []int) float64 {
	var s float64
	for i, g := range genes {
		s += float64(g) * math.Sin(float64(i+1))
	}
	return s
}

// assertSameResult compares two runs bit-for-bit: best chromosome,
// best fitness, full fitness history, generation and evaluation
// counts.
func assertSameResult(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.BestFitness != b.BestFitness {
		t.Fatalf("%s: BestFitness %v vs %v", label, a.BestFitness, b.BestFitness)
	}
	if a.Generations != b.Generations || a.Evaluations != b.Evaluations {
		t.Fatalf("%s: Generations/Evaluations %d/%d vs %d/%d",
			label, a.Generations, a.Evaluations, b.Generations, b.Evaluations)
	}
	if len(a.Best) != len(b.Best) {
		t.Fatalf("%s: Best length %d vs %d", label, len(a.Best), len(b.Best))
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatalf("%s: Best gene %d: %d vs %d", label, i, a.Best[i], b.Best[i])
		}
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: History length %d vs %d", label, len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: History[%d] bits differ: %v vs %v", label, i, a.History[i], b.History[i])
		}
	}
}

// TestDeterministicAcrossWorkers is the fabric's contract: the same
// seed yields a byte-identical Result whether fitness evaluation runs
// serially, on NumCPU workers, or anywhere in between.
func TestDeterministicAcrossWorkers(t *testing.T) {
	base := Config{Length: 40, Alphabet: 6, PopulationSize: 30, Generations: 40, Seed: 99}

	serialCfg := base
	serialCfg.Workers = 1
	serial, err := Run(serialCfg, weightedFitness)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, runtime.NumCPU()} {
		cfg := base
		cfg.Workers = workers
		got, err := Run(cfg, weightedFitness)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, serial, got, "Workers="+strconv.Itoa(workers))
	}
}

// TestDeterministicAcrossGOMAXPROCS pins the stronger property the
// issue asks for: the same seed at GOMAXPROCS=1 and GOMAXPROCS=NumCPU
// (Workers unset, so the pool tracks GOMAXPROCS) yields a
// byte-identical best chromosome and fitness history.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{Length: 32, Alphabet: 5, PopulationSize: 24, Generations: 30, Seed: 7}

	prev := runtime.GOMAXPROCS(1)
	wide := prev
	if n := runtime.NumCPU(); n > wide {
		wide = n
	}
	narrow, err := Run(cfg, weightedFitness)
	runtime.GOMAXPROCS(wide)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		t.Fatal(err)
	}
	broad, runErr := Run(cfg, weightedFitness)
	runtime.GOMAXPROCS(prev)
	if runErr != nil {
		t.Fatal(runErr)
	}
	assertSameResult(t, narrow, broad, "GOMAXPROCS 1 vs NumCPU")
}

// TestWorkersValidation rejects negative pool sizes.
func TestWorkersValidation(t *testing.T) {
	_, err := Run(Config{Length: 4, Alphabet: 2, Workers: -1}, weightedFitness)
	if err == nil {
		t.Fatal("Workers=-1 accepted")
	}
}

// TestEvalBatchWritesByIndex exercises the pool directly on a batch
// larger than the worker count.
func TestEvalBatchWritesByIndex(t *testing.T) {
	batch := make([][]int, 101)
	for i := range batch {
		batch[i] = []int{i}
	}
	fit := func(genes []int) float64 { return float64(genes[0]) * 1.5 }
	for _, workers := range []int{1, 2, 7, 64, 200} {
		out := evalBatch(batch, fit, workers)
		for i := range out {
			if out[i] != float64(i)*1.5 {
				t.Fatalf("workers=%d: out[%d] = %v", workers, i, out[i])
			}
		}
	}
	if got := evalBatch(nil, fit, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}


package genetic

import "diversecast/internal/obs"

// Worker-pool fabric instrumentation on the process-wide registry:
// how wide the fitness-evaluation pool currently runs and how much of
// the in-flight batch is still queued. Handles are resolved once at
// package init; the pool pays one atomic per event.
var (
	evalWorkers = obs.Default().Gauge("genetic_eval_workers",
		"fitness worker-pool size of the most recent evaluation batch")
	evalQueueDepth = obs.Default().Gauge("genetic_eval_queue_depth",
		"fitness evaluations of the in-flight batch not yet completed")
)

// Package genetic implements a small, reusable genetic-algorithm
// engine over fixed-length integer chromosomes, in the style of
// Holland (1975) and Goldberg (1989) — the references the paper's GOPT
// comparator is built on. internal/gopt instantiates it for channel
// allocation; the engine itself is domain-free.
package genetic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"diversecast/internal/pool"
)

// Fitness scores a chromosome; higher is better. Implementations must
// be deterministic for a given chromosome and, because evaluation is
// fanned out over a worker pool when Config.Workers != 1, safe to
// call from multiple goroutines concurrently (pure functions of the
// gene slice trivially are).
type Fitness func(genes []int) float64

// Selection chooses parents from the scored population.
type Selection int

const (
	// Tournament selection draws TournamentSize candidates uniformly
	// and keeps the fittest. Robust to fitness scaling; the default.
	Tournament Selection = iota
	// Roulette selection samples proportionally to fitness shifted
	// to be positive (classic fitness-proportionate selection).
	Roulette
)

// String returns the selection scheme's name.
func (s Selection) String() string {
	switch s {
	case Tournament:
		return "tournament"
	case Roulette:
		return "roulette"
	default:
		return "unknown"
	}
}

// Crossover chooses the recombination operator.
type Crossover int

const (
	// OnePoint splits both parents at one random locus.
	OnePoint Crossover = iota
	// Uniform draws each gene from either parent with probability ½.
	Uniform
)

// String returns the crossover operator's name.
func (c Crossover) String() string {
	switch c {
	case OnePoint:
		return "one-point"
	case Uniform:
		return "uniform"
	default:
		return "unknown"
	}
}

// Config parameterizes a GA run. Zero fields take the documented
// defaults via withDefaults.
type Config struct {
	// Length is the chromosome length (required).
	Length int
	// Alphabet is the number of values a gene can take; genes are in
	// [0, Alphabet) (required).
	Alphabet int
	// PopulationSize is the number of chromosomes per generation
	// (default 100, minimum 2).
	PopulationSize int
	// Generations bounds the number of generations (default 300).
	Generations int
	// CrossoverRate is the probability a pair is recombined rather
	// than copied (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-gene probability of random reassignment
	// (default 1/Length).
	MutationRate float64
	// TournamentSize is the tournament arity (default 3).
	TournamentSize int
	// Elitism is how many of the fittest chromosomes survive
	// unchanged each generation (default 2).
	Elitism int
	// Stagnation stops the run after this many generations without
	// improvement of the best fitness; 0 disables early stopping.
	Stagnation int
	// Selection and CrossoverOp choose the operators.
	Selection   Selection
	CrossoverOp Crossover
	// Seeds are chromosomes injected into the initial population
	// (each must have Length genes in range); the rest is random.
	Seeds [][]int
	// Seed drives all randomness; runs are reproducible.
	Seed int64
	// Workers bounds the fitness-evaluation worker pool: 0 (the
	// default) uses runtime.GOMAXPROCS(0), 1 evaluates serially on
	// the calling goroutine. Chromosome generation stays serial on a
	// single rng and results are written back by population index, so
	// a run's Result is byte-identical for a given Seed regardless of
	// Workers or GOMAXPROCS — only wall-clock changes. Timing-
	// sensitive callers (the Figure 6–7 execution-time sweeps) pin
	// Workers to 1 so single-thread ns/op curves stay meaningful.
	Workers int
}

// ErrBadConfig wraps configuration validation failures.
var ErrBadConfig = errors.New("genetic: bad config")

func (c Config) withDefaults() (Config, error) {
	if c.Length < 1 {
		return c, fmt.Errorf("%w: Length=%d", ErrBadConfig, c.Length)
	}
	if c.Alphabet < 1 {
		return c, fmt.Errorf("%w: Alphabet=%d", ErrBadConfig, c.Alphabet)
	}
	if c.PopulationSize == 0 {
		c.PopulationSize = 100
	}
	if c.PopulationSize < 2 {
		return c, fmt.Errorf("%w: PopulationSize=%d", ErrBadConfig, c.PopulationSize)
	}
	if c.Generations == 0 {
		c.Generations = 300
	}
	if c.Generations < 1 {
		return c, fmt.Errorf("%w: Generations=%d", ErrBadConfig, c.Generations)
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = 0.9
	}
	if c.CrossoverRate < 0 || c.CrossoverRate > 1 {
		return c, fmt.Errorf("%w: CrossoverRate=%v", ErrBadConfig, c.CrossoverRate)
	}
	if c.MutationRate == 0 {
		c.MutationRate = 1 / float64(c.Length)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return c, fmt.Errorf("%w: MutationRate=%v", ErrBadConfig, c.MutationRate)
	}
	if c.TournamentSize == 0 {
		c.TournamentSize = 3
	}
	if c.TournamentSize < 1 || c.TournamentSize > c.PopulationSize {
		return c, fmt.Errorf("%w: TournamentSize=%d", ErrBadConfig, c.TournamentSize)
	}
	if c.Elitism == 0 {
		c.Elitism = 2
	}
	if c.Elitism < 0 || c.Elitism >= c.PopulationSize {
		return c, fmt.Errorf("%w: Elitism=%d with population %d", ErrBadConfig, c.Elitism, c.PopulationSize)
	}
	if c.Stagnation < 0 {
		return c, fmt.Errorf("%w: Stagnation=%d", ErrBadConfig, c.Stagnation)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("%w: Workers=%d", ErrBadConfig, c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	for i, s := range c.Seeds {
		if len(s) != c.Length {
			return c, fmt.Errorf("%w: seed %d has length %d, want %d", ErrBadConfig, i, len(s), c.Length)
		}
		for j, g := range s {
			if g < 0 || g >= c.Alphabet {
				return c, fmt.Errorf("%w: seed %d gene %d = %d outside [0,%d)", ErrBadConfig, i, j, g, c.Alphabet)
			}
		}
	}
	return c, nil
}

// Result is the outcome of a GA run.
type Result struct {
	// Best is the fittest chromosome found across all generations.
	Best []int
	// BestFitness is its score.
	BestFitness float64
	// History records the best fitness after each generation (length
	// = generations actually run), for convergence analysis.
	History []float64
	// Generations is the number of generations executed (may be less
	// than configured when Stagnation stops the run early).
	Generations int
	// Evaluations counts fitness calls.
	Evaluations int
}

type scored struct {
	genes   []int
	fitness float64
}

// Run executes the genetic algorithm.
func Run(cfg Config, fitness Fitness) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if fitness == nil {
		return nil, fmt.Errorf("%w: nil fitness", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	// evaluateAll scores a batch of chromosomes over the bounded
	// worker pool, writing results by index: the returned slice is
	// identical whatever the pool size or scheduling order.
	evaluateAll := func(batch [][]int) []float64 {
		res.Evaluations += len(batch)
		return evalBatch(batch, fitness, cfg.Workers)
	}

	// Initial population: injected seeds first, the rest random.
	// Generation is serial on the single rng; only evaluation fans
	// out.
	pop := make([]scored, cfg.PopulationSize)
	initial := make([][]int, cfg.PopulationSize)
	for i := range initial {
		genes := make([]int, cfg.Length)
		if i < len(cfg.Seeds) {
			copy(genes, cfg.Seeds[i])
		} else {
			for j := range genes {
				genes[j] = rng.Intn(cfg.Alphabet)
			}
		}
		initial[i] = genes
	}
	for i, fit := range evaluateAll(initial) {
		pop[i] = scored{genes: initial[i], fitness: fit}
	}

	best := scored{fitness: math.Inf(-1)}
	updateBest := func() bool {
		improved := false
		for _, s := range pop {
			if s.fitness > best.fitness {
				best = scored{genes: append([]int(nil), s.genes...), fitness: s.fitness}
				improved = true
			}
		}
		return improved
	}
	updateBest()

	stagnant := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]scored, 0, cfg.PopulationSize)

		// Elitism: carry the current top chromosomes unchanged (their
		// fitness is known; they are not re-evaluated).
		elite := topK(pop, cfg.Elitism)
		for _, e := range elite {
			next = append(next, scored{genes: append([]int(nil), e.genes...), fitness: e.fitness})
		}

		// Breed the full offspring batch serially on the rng —
		// selection only reads the previous generation's scores, so
		// no offspring fitness is needed mid-generation — then fan
		// the batch out to the worker pool.
		offspring := make([][]int, 0, cfg.PopulationSize-len(next))
		for len(next)+len(offspring) < cfg.PopulationSize {
			p1 := selectParent(cfg, pop, rng)
			p2 := selectParent(cfg, pop, rng)
			c1 := append([]int(nil), p1.genes...)
			c2 := append([]int(nil), p2.genes...)
			if rng.Float64() < cfg.CrossoverRate {
				crossover(cfg, c1, c2, rng)
			}
			mutate(cfg, c1, rng)
			mutate(cfg, c2, rng)
			offspring = append(offspring, c1)
			if len(next)+len(offspring) < cfg.PopulationSize {
				offspring = append(offspring, c2)
			}
		}
		for i, fit := range evaluateAll(offspring) {
			next = append(next, scored{genes: offspring[i], fitness: fit})
		}
		pop = next
		res.Generations = gen + 1

		if updateBest() {
			stagnant = 0
		} else {
			stagnant++
		}
		res.History = append(res.History, best.fitness)
		if cfg.Stagnation > 0 && stagnant >= cfg.Stagnation {
			break
		}
	}

	res.Best = best.genes
	res.BestFitness = best.fitness
	return res, nil
}

// evalBatch scores genes[i] into out[i] over the shared by-index
// worker pool (internal/pool): each result is written to its own
// slot, so the output (and therefore the whole run) is independent of
// scheduling and pool width.
func evalBatch(genes [][]int, fitness Fitness, workers int) []float64 {
	out := make([]float64, len(genes))
	if len(genes) == 0 {
		return out
	}
	if workers > len(genes) {
		workers = len(genes)
	}
	if workers <= 1 {
		evalWorkers.Set(1)
		for i, g := range genes {
			out[i] = fitness(g)
		}
		return out
	}
	evalWorkers.Set(int64(workers))
	evalQueueDepth.Set(int64(len(genes)))
	pool.Run(workers, len(genes), func(i int) {
		out[i] = fitness(genes[i])
		evalQueueDepth.Dec()
	})
	return out
}

// topK returns the k fittest population members (k small; simple
// selection sort on a copy).
func topK(pop []scored, k int) []scored {
	out := make([]scored, 0, k)
	used := make([]bool, len(pop))
	for len(out) < k {
		bestIdx := -1
		for i, s := range pop {
			if used[i] {
				continue
			}
			if bestIdx < 0 || s.fitness > pop[bestIdx].fitness {
				bestIdx = i
			}
		}
		used[bestIdx] = true
		out = append(out, pop[bestIdx])
	}
	return out
}

func selectParent(cfg Config, pop []scored, rng *rand.Rand) scored {
	switch cfg.Selection {
	case Roulette:
		// Shift fitness to positive mass; degenerate (all-equal)
		// populations fall back to uniform choice.
		minFit := math.Inf(1)
		for _, s := range pop {
			if s.fitness < minFit {
				minFit = s.fitness
			}
		}
		var total float64
		for _, s := range pop {
			total += s.fitness - minFit
		}
		if total <= 0 {
			return pop[rng.Intn(len(pop))]
		}
		r := rng.Float64() * total
		for _, s := range pop {
			r -= s.fitness - minFit
			if r <= 0 {
				return s
			}
		}
		return pop[len(pop)-1]
	default: // Tournament
		best := pop[rng.Intn(len(pop))]
		for i := 1; i < cfg.TournamentSize; i++ {
			if c := pop[rng.Intn(len(pop))]; c.fitness > best.fitness {
				best = c
			}
		}
		return best
	}
}

func crossover(cfg Config, a, b []int, rng *rand.Rand) {
	switch cfg.CrossoverOp {
	case Uniform:
		for i := range a {
			if rng.Float64() < 0.5 {
				a[i], b[i] = b[i], a[i]
			}
		}
	default: // OnePoint
		if len(a) < 2 {
			return
		}
		cut := 1 + rng.Intn(len(a)-1)
		for i := cut; i < len(a); i++ {
			a[i], b[i] = b[i], a[i]
		}
	}
}

func mutate(cfg Config, genes []int, rng *rand.Rand) {
	for i := range genes {
		if rng.Float64() < cfg.MutationRate {
			genes[i] = rng.Intn(cfg.Alphabet)
		}
	}
}

package ondemand

import (
	"math"
	"testing"

	"diversecast/internal/airsim"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func testDB(tb testing.TB, n int, phi float64, seed int64) *core.Database {
	tb.Helper()
	return workload.Config{N: n, Theta: 0.9, Phi: phi, Seed: seed}.MustGenerate()
}

func testTrace(tb testing.TB, db *core.Database, requests int, rate float64, seed int64) []workload.Request {
	tb.Helper()
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: requests, Rate: rate, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	return trace
}

func TestRunValidation(t *testing.T) {
	db := testDB(t, 10, 1, 1)
	trace := testTrace(t, db, 5, 10, 2)
	if _, err := Run(db, nil, FCFS{}, 10); err != ErrEmptyTrace {
		t.Errorf("empty trace: %v", err)
	}
	if _, err := Run(db, trace, FCFS{}, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
	unsorted := append([]workload.Request(nil), trace...)
	unsorted[0], unsorted[1] = unsorted[1], unsorted[0]
	if _, err := Run(db, unsorted, FCFS{}, 10); err == nil {
		t.Error("unsorted trace should fail")
	}
	bad := append([]workload.Request(nil), trace...)
	bad[0].Pos = 99
	if _, err := Run(db, bad, FCFS{}, 10); err == nil {
		t.Error("out-of-range position should fail")
	}
}

type badScheduler struct{}

func (badScheduler) Name() string                { return "bad" }
func (badScheduler) Pick(float64, []Pending) int { return -1 }

func TestRunRejectsBadScheduler(t *testing.T) {
	db := testDB(t, 10, 1, 1)
	trace := testTrace(t, db, 5, 10, 2)
	if _, err := Run(db, trace, badScheduler{}, 10); err == nil {
		t.Fatal("bad scheduler index should fail")
	}
}

// Every scheduler must serve every request exactly once.
func TestConservation(t *testing.T) {
	db := testDB(t, 30, 2, 3)
	trace := testTrace(t, db, 3000, 20, 4)
	for _, sched := range Schedulers() {
		t.Run(sched.Name(), func(t *testing.T) {
			res, err := Run(db, trace, sched, 10)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests != len(trace) {
				t.Fatalf("served %d of %d", res.Requests, len(trace))
			}
			if res.Wait.Min <= 0 {
				t.Fatalf("min wait %v must exceed zero (download takes time)", res.Wait.Min)
			}
			// A request can never finish before its own transmission
			// time: stretch ≥ 1.
			if res.Stretch.Min < 1-1e-9 {
				t.Fatalf("stretch %v below 1", res.Stretch.Min)
			}
			if res.Broadcasts < 1 || res.BatchMean < 1 {
				t.Fatalf("broadcasts %d, batch mean %v", res.Broadcasts, res.BatchMean)
			}
			if res.Makespan < trace[len(trace)-1].Time {
				t.Fatalf("makespan %v before last arrival", res.Makespan)
			}
		})
	}
}

// A lone request on an idle server is served immediately: wait equals
// the item's transmission time exactly (the low-load advantage over
// push, which always pays half a cycle of probe time).
func TestIdleServerServesImmediately(t *testing.T) {
	db := testDB(t, 10, 1, 5)
	trace := []workload.Request{{Time: 3.0, Pos: 4}}
	res, err := Run(db, trace, RxW{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Item(4).Size / 10
	if math.Abs(res.Wait.Mean-want) > 1e-9 {
		t.Fatalf("idle wait %v, want %v", res.Wait.Mean, want)
	}
	if math.Abs(res.Stretch.Mean-1) > 1e-9 {
		t.Fatalf("idle stretch %v, want 1", res.Stretch.Mean)
	}
}

// Simultaneous requests for one item are served by one transmission.
func TestBroadcastBatching(t *testing.T) {
	db := testDB(t, 10, 1, 6)
	trace := []workload.Request{
		{Time: 1.0, Pos: 2},
		{Time: 1.0, Pos: 2},
		{Time: 1.0, Pos: 2},
	}
	res, err := Run(db, trace, MRF{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Broadcasts != 1 {
		t.Fatalf("%d broadcasts for 3 identical requests, want 1", res.Broadcasts)
	}
	if res.BatchMean != 3 {
		t.Fatalf("batch mean %v, want 3", res.BatchMean)
	}
}

// A request arriving during its own item's transmission missed the
// beginning and must wait for a later airing.
func TestMidTransmissionRequestWaits(t *testing.T) {
	db := core.MustNewDatabase([]core.Item{
		{ID: 1, Freq: 0.5, Size: 10}, // 1s at b=10
		{ID: 2, Freq: 0.5, Size: 10},
	})
	trace := []workload.Request{
		{Time: 0.0, Pos: 0}, // airs [0,1)
		{Time: 0.5, Pos: 0}, // mid-air: must be re-broadcast
	}
	res, err := Run(db, trace, FCFS{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Broadcasts != 2 {
		t.Fatalf("%d broadcasts, want 2 (mid-air request re-served)", res.Broadcasts)
	}
	// Second request waits from 0.5 to the end of the second airing
	// at 2.0 → 1.5s.
	if math.Abs(res.Wait.Max-1.5) > 1e-9 {
		t.Fatalf("max wait %v, want 1.5", res.Wait.Max)
	}
}

// Under diverse sizes the size-aware RxW/S beats plain RxW on mean
// wait — the pull-side echo of the paper's main claim.
func TestSizeAwareSchedulingWinsOnDiverseSizes(t *testing.T) {
	db := testDB(t, 40, 2.5, 7)
	trace := testTrace(t, db, 6000, 30, 8)
	rxw, err := Run(db, trace, RxW{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rxws, err := Run(db, trace, RxWS{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rxws.Wait.Mean >= rxw.Wait.Mean {
		t.Fatalf("RxW/S (%v) did not beat RxW (%v) on diverse sizes", rxws.Wait.Mean, rxw.Wait.Mean)
	}
}

// RxW avoids the starvation FCFS-in-popular-storm / MRF exhibit: under
// a skewed overload, MRF's worst-case wait explodes relative to RxW.
func TestRxWBoundsStarvationVersusMRF(t *testing.T) {
	db := testDB(t, 30, 1.5, 9)
	// Heavy overload: arrivals much faster than the channel drains.
	trace := testTrace(t, db, 4000, 200, 10)
	mrf, err := Run(db, trace, MRF{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rxw, err := Run(db, trace, RxW{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rxw.Wait.Max >= mrf.Wait.Max {
		t.Fatalf("RxW worst wait (%v) not below MRF's (%v) under overload", rxw.Wait.Max, mrf.Wait.Max)
	}
}

// The push/pull trade in this model: at low request rates on-demand
// crushes the cyclic push program (an idle server airs your item
// immediately; push always pays ~half a cycle of probe). Under
// overload, broadcast *batching* keeps on-demand bounded — one airing
// serves every waiter — so its wait converges toward the
// full-rotation scale instead of diverging; push's remaining edge is
// needing no uplink at all (on-demand consumed one uplink message per
// request).
func TestPushPullTradeoff(t *testing.T) {
	db := testDB(t, 40, 2, 11)
	alloc, err := core.NewDRPCDS().Allocate(db, 1) // one channel each side
	if err != nil {
		t.Fatal(err)
	}
	prog, err := broadcast.Build(alloc, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	fullRotation := db.TotalSize() / 10 // airing every item once

	pullWait := func(rate float64) float64 {
		trace := testTrace(t, db, 2000, rate, 12)
		res, err := Run(db, trace, RxW{}, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wait.Mean
	}
	pushMeasured := func(rate float64) float64 {
		trace := testTrace(t, db, 2000, rate, 12)
		res, err := airsim.Measure(prog, trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wait.Mean
	}

	// Low load: one request every ~50s against a cycle of hundreds of
	// seconds — the on-demand server is usually idle.
	low, mid, high := 0.02, 2.0, 50.0
	if !(pullWait(low) < pushMeasured(low)/4) {
		t.Fatalf("low load: on-demand (%v) should crush push (%v)", pullWait(low), pushMeasured(low))
	}
	// Waits grow with load…
	if !(pullWait(low) < pullWait(mid) && pullWait(mid) < pullWait(high)) {
		t.Fatalf("on-demand wait not monotone in load: %v, %v, %v",
			pullWait(low), pullWait(mid), pullWait(high))
	}
	// …but batching bounds the overload regime by the full-rotation
	// scale (unit-service queueing would diverge here: the offered
	// load is ~100× the channel rate).
	if !(pullWait(high) < fullRotation) {
		t.Fatalf("overload: on-demand (%v) exceeded the full rotation bound (%v)",
			pullWait(high), fullRotation)
	}
}

func TestSchedulerNames(t *testing.T) {
	want := map[string]bool{"FCFS": true, "MRF": true, "RxW": true, "RxW/S": true}
	for _, s := range Schedulers() {
		if !want[s.Name()] {
			t.Errorf("unexpected scheduler %q", s.Name())
		}
		delete(want, s.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing schedulers: %v", want)
	}
}

func BenchmarkSchedulers(b *testing.B) {
	db := testDB(b, 60, 2, 13)
	trace := testTrace(b, db, 3000, 30, 14)
	for _, sched := range Schedulers() {
		b.Run(sched.Name(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := Run(db, trace, sched, 10)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Wait.Mean
			}
			b.ReportMetric(mean, "wait_s")
		})
	}
}

package ondemand_test

import (
	"fmt"
	"log"

	"diversecast/internal/core"
	"diversecast/internal/ondemand"
	"diversecast/internal/workload"
)

// Example runs a tiny on-demand channel: three requests, two for the
// same item batched into one transmission.
func Example() {
	db := core.MustNewDatabase([]core.Item{
		{ID: 1, Freq: 0.5, Size: 10},
		{ID: 2, Freq: 0.5, Size: 20},
	})
	trace := []workload.Request{
		{Time: 0.0, Pos: 0},
		{Time: 0.0, Pos: 0}, // same item, same instant: one broadcast
		{Time: 0.2, Pos: 1},
	}
	res, err := ondemand.Run(db, trace, ondemand.RxW{}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcasts: %d\n", res.Broadcasts)
	fmt.Printf("mean wait:  %.2f s\n", res.Wait.Mean)
	// Output:
	// broadcasts: 2
	// mean wait:  1.60 s
}

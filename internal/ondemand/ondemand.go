// Package ondemand implements pull-based (on-demand) broadcast
// scheduling, the alternative dissemination mode the reproduced paper
// contrasts itself against in its footnote 1: clients send explicit
// requests over an uplink and the server chooses, broadcast by
// broadcast, which pending item to air next. All pending requests for
// the chosen item are served by the single transmission.
//
// Schedulers follow Acharya and Muthukrishnan, "Scheduling on-demand
// broadcasts: new metrics and algorithms" (MobiCom 1998) — the
// paper's reference [2]: FCFS, MRF (most requests first), RxW
// (requests × wait), and a size-aware RxW/S variant that divides by
// item size — the on-demand analogue of the paper's benefit ratio
// f/z, and the winner in diverse-size environments.
//
// The simulator exposes the classic push/pull trade: at low request
// rates on-demand beats any cyclic program (no probe time when the
// channel is idle); past saturation its queues grow without bound
// while the push program's W_b is load-independent.
package ondemand

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"diversecast/internal/core"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Pending aggregates the outstanding requests for one item at a
// scheduling decision.
type Pending struct {
	// Pos is the item's database position; Size its size.
	Pos  int
	Size float64
	// Count is the number of outstanding requests eligible for the
	// next transmission.
	Count int
	// Oldest is the arrival time of the oldest eligible request.
	Oldest float64
}

// Scheduler picks which pending item to broadcast next. Pick receives
// the current time and the pending set (non-empty, in ascending Pos
// order) and returns the index into pending of the chosen entry.
type Scheduler interface {
	Name() string
	Pick(now float64, pending []Pending) int
}

// FCFS broadcasts the item with the oldest outstanding request.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Pick implements Scheduler.
func (FCFS) Pick(_ float64, pending []Pending) int {
	best := 0
	for i, p := range pending {
		if p.Oldest < pending[best].Oldest {
			best = i
		}
	}
	return best
}

// MRF broadcasts the item with the most outstanding requests (ties:
// oldest request first).
type MRF struct{}

// Name implements Scheduler.
func (MRF) Name() string { return "MRF" }

// Pick implements Scheduler.
func (MRF) Pick(_ float64, pending []Pending) int {
	best := 0
	for i, p := range pending {
		if p.Count > pending[best].Count ||
			(p.Count == pending[best].Count && p.Oldest < pending[best].Oldest) {
			best = i
		}
	}
	return best
}

// RxW broadcasts the item maximizing (request count) × (oldest wait),
// balancing popularity against starvation.
type RxW struct{}

// Name implements Scheduler.
func (RxW) Name() string { return "RxW" }

// Pick implements Scheduler.
func (RxW) Pick(now float64, pending []Pending) int {
	best, bestVal := 0, math.Inf(-1)
	for i, p := range pending {
		v := float64(p.Count) * (now - p.Oldest)
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// RxWS is the size-aware RxW: it maximizes R×W/Z, preferring items
// that serve much demand per unit of air time — the on-demand
// counterpart of the reproduced paper's benefit ratio f/z.
type RxWS struct{}

// Name implements Scheduler.
func (RxWS) Name() string { return "RxW/S" }

// Pick implements Scheduler.
func (RxWS) Pick(now float64, pending []Pending) int {
	best, bestVal := 0, math.Inf(-1)
	for i, p := range pending {
		v := float64(p.Count) * (now - p.Oldest) / p.Size
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// Schedulers returns one instance of every built-in scheduler.
func Schedulers() []Scheduler { return []Scheduler{FCFS{}, MRF{}, RxW{}, RxWS{}} }

// Result summarizes an on-demand simulation.
type Result struct {
	// Requests served (always the full trace; the simulator drains
	// the queue after the last arrival).
	Requests int
	// Wait is the request waiting time (arrival to end of the
	// serving transmission).
	Wait stats.Summary
	// Stretch is wait divided by the item's own transmission time —
	// the size-fair metric of the paper's reference [2].
	Stretch stats.Summary
	// Broadcasts is the number of transmissions aired; BatchMean the
	// mean requests served per transmission.
	Broadcasts int
	BatchMean  float64
	// Makespan is the time the last request completed.
	Makespan float64
}

// Simulation errors.
var (
	ErrEmptyTrace  = errors.New("ondemand: empty request trace")
	ErrBadSchedule = errors.New("ondemand: scheduler returned an out-of-range index")
)

// Run simulates a single on-demand broadcast channel of the given
// bandwidth serving the request trace under the scheduler. A request
// arriving while its own item is on air has missed the beginning and
// waits for a later transmission, matching the push model's
// assumption.
func Run(db *core.Database, trace []workload.Request, sched Scheduler, bandwidth float64) (*Result, error) {
	res, _, err := RunWaits(db, trace, sched, bandwidth)
	return res, err
}

// RunWaits is Run but additionally returns the waiting time of each
// request, aligned with the trace. The hybrid push/pull system uses it
// to merge pull-side waits exactly into its overall statistics.
func RunWaits(db *core.Database, trace []workload.Request, sched Scheduler, bandwidth float64) (*Result, []float64, error) {
	if len(trace) == 0 {
		return nil, nil, ErrEmptyTrace
	}
	if !(bandwidth > 0) || math.IsInf(bandwidth, 0) {
		return nil, nil, fmt.Errorf("ondemand: bandwidth %v", bandwidth)
	}
	if !workload.SortedByTime(trace) {
		return nil, nil, errors.New("ondemand: trace must be sorted by time")
	}
	for _, r := range trace {
		if r.Pos < 0 || r.Pos >= db.Len() {
			return nil, nil, fmt.Errorf("ondemand: request for position %d outside database", r.Pos)
		}
	}

	type req struct {
		index   int
		pos     int
		arrival float64
	}
	waits := make([]float64, len(trace))
	queue := make(map[int][]req) // pos -> outstanding requests
	var wait, stretch stats.Accumulator
	res := &Result{}

	next := 0 // next trace index to admit
	now := 0.0
	admitted := 0
	served := 0

	admitUpTo := func(t float64) {
		for next < len(trace) && trace[next].Time <= t {
			r := trace[next]
			queue[r.Pos] = append(queue[r.Pos], req{index: next, pos: r.Pos, arrival: r.Time})
			next++
			admitted++
		}
	}

	for served < len(trace) {
		// Idle until at least one request is pending.
		if admitted == served {
			now = trace[next].Time
		}
		admitUpTo(now)

		// Snapshot the pending set in deterministic order.
		pending := make([]Pending, 0, len(queue))
		positions := make([]int, 0, len(queue))
		for pos := range queue {
			positions = append(positions, pos)
		}
		sort.Ints(positions)
		for _, pos := range positions {
			rs := queue[pos]
			p := Pending{Pos: pos, Size: db.Item(pos).Size, Count: len(rs), Oldest: math.Inf(1)}
			for _, r := range rs {
				if r.arrival < p.Oldest {
					p.Oldest = r.arrival
				}
			}
			pending = append(pending, p)
		}

		choice := sched.Pick(now, pending)
		if choice < 0 || choice >= len(pending) {
			return nil, nil, fmt.Errorf("%w: %d of %d", ErrBadSchedule, choice, len(pending))
		}
		pos := pending[choice].Pos
		dur := db.Item(pos).Size / bandwidth
		start := now
		end := start + dur

		// Serve every request for pos that arrived at or before the
		// transmission start; later ones missed the beginning.
		kept := queue[pos][:0]
		for _, r := range queue[pos] {
			if r.arrival <= start {
				w := end - r.arrival
				waits[r.index] = w
				wait.Add(w)
				stretch.Add(w / dur)
				served++
			} else {
				kept = append(kept, r)
			}
		}
		res.BatchMean += float64(len(queue[pos]) - len(kept))
		if len(kept) == 0 {
			delete(queue, pos)
		} else {
			queue[pos] = kept
		}
		res.Broadcasts++

		// Arrivals during the transmission join the queue for the
		// next decision.
		now = end
		admitUpTo(now)
	}

	res.Requests = served
	res.Wait = wait.Summarize()
	res.Stretch = stretch.Summarize()
	res.Makespan = now
	if res.Broadcasts > 0 {
		res.BatchMean /= float64(res.Broadcasts)
	}
	return res, waits, nil
}

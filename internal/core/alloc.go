package core

import (
	"errors"
	"fmt"
	"sort"
)

// Allocation assigns every item of a database to one of K broadcast
// channels. It is the output of every allocator in this module and the
// input to CDS, to the broadcast-program builder, and to the analytic
// and simulated evaluations.
type Allocation struct {
	db      *Database
	k       int
	channel []int // channel[pos] = channel index in [0,K)
	// members[c] lists the database positions on channel c in
	// ascending order; maintained by move() so per-channel scans
	// (CDS move selection, aggregate reconciliation, channel waiting
	// time) avoid the O(N) membership filter per channel.
	members [][]int
}

// Errors returned by allocation constructors and validators.
var (
	ErrBadChannelCount = errors.New("core: channel count must satisfy 1 <= K <= N")
	ErrChannelRange    = errors.New("core: item assigned to channel outside [0,K)")
	ErrWrongLength     = errors.New("core: assignment length differs from database size")
)

// NewAllocation builds an allocation over db with k channels from an
// explicit assignment: channel[i] is the channel of the item at
// database position i. The slice is copied. Empty channels are legal
// (they contribute zero cost), matching the paper's CDS, which may
// drain a group entirely.
func NewAllocation(db *Database, k int, channel []int) (*Allocation, error) {
	if k < 1 || k > db.Len() {
		return nil, fmt.Errorf("%w: K=%d, N=%d", ErrBadChannelCount, k, db.Len())
	}
	if len(channel) != db.Len() {
		return nil, fmt.Errorf("%w: len=%d, N=%d", ErrWrongLength, len(channel), db.Len())
	}
	a := &Allocation{db: db, k: k, channel: make([]int, len(channel))}
	copy(a.channel, channel)
	for pos, c := range a.channel {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("%w: item at %d on channel %d, K=%d", ErrChannelRange, pos, c, k)
		}
	}
	a.buildMembers()
	return a, nil
}

// buildMembers (re)derives the per-channel position lists from the
// channel vector. Appending in ascending pos order keeps each list
// sorted.
//
//diverselint:coldpath O(N+K) reconstruction at allocation build time; per-move updates go through move
func (a *Allocation) buildMembers() {
	counts := make([]int, a.k)
	for _, c := range a.channel {
		counts[c]++
	}
	a.members = make([][]int, a.k)
	for c, n := range counts {
		a.members[c] = make([]int, 0, n)
	}
	for pos, c := range a.channel {
		a.members[c] = append(a.members[c], pos)
	}
}

// Database returns the database this allocation partitions.
func (a *Allocation) Database() *Database { return a.db }

// K reports the number of channels.
func (a *Allocation) K() int { return a.k }

// ChannelOf returns the channel of the item at database position pos.
func (a *Allocation) ChannelOf(pos int) int { return a.channel[pos] }

// Assignment returns a copy of the raw channel vector.
func (a *Allocation) Assignment() []int {
	out := make([]int, len(a.channel))
	copy(out, a.channel)
	return out
}

// Groups returns, per channel, the database positions assigned to it,
// in ascending position order. The returned lists are copies; see
// ChannelPositions for an allocation-free view.
//
//diverselint:coldpath copying accessor by contract; hot loops use ChannelPositions
func (a *Allocation) Groups() [][]int {
	groups := make([][]int, a.k)
	for c, m := range a.members {
		groups[c] = append([]int(nil), m...)
	}
	return groups
}

// ChannelPositions returns the database positions currently assigned
// to channel c, in ascending order, without copying. The returned
// slice is a read-only view into the allocation's internal index: it
// must not be modified and is only valid until the allocation is next
// mutated. Hot per-channel loops (CDS scans, adaptive replanning) use
// it to avoid both the O(N) membership filter and a per-call copy.
func (a *Allocation) ChannelPositions(c int) []int { return a.members[c] }

// GroupItems returns, per channel, the items assigned to it.
//
//diverselint:coldpath copying accessor for reports and tests, not per-move
func (a *Allocation) GroupItems() [][]Item {
	groups := a.Groups()
	out := make([][]Item, a.k)
	for c, g := range groups {
		out[c] = make([]Item, len(g))
		for i, pos := range g {
			out[c][i] = a.db.Item(pos)
		}
	}
	return out
}

// GroupAgg is the per-channel aggregate state used throughout the
// paper: F is the aggregate frequency Σf, Z the aggregate size Σz, and
// N the item count of the channel.
type GroupAgg struct {
	F float64
	Z float64
	N int
}

// Cost is the channel's contribution F·Z to the grouping cost.
func (g GroupAgg) Cost() float64 { return g.F * g.Z }

// Aggregates computes F_i, Z_i and N_i for every channel.
func (a *Allocation) Aggregates() []GroupAgg {
	agg := make([]GroupAgg, a.k)
	a.aggregatesInto(agg)
	return agg
}

// aggregatesInto recomputes the aggregates into an existing slice
// (len = K), sparing hot loops the allocation. The accumulation order
// is identical to Aggregates, so results are bit-for-bit equal.
func (a *Allocation) aggregatesInto(agg []GroupAgg) {
	for i := range agg {
		agg[i] = GroupAgg{}
	}
	for pos, c := range a.channel {
		it := a.db.Item(pos)
		agg[c].F += it.Freq
		agg[c].Z += it.Size
		agg[c].N++
	}
}

// Clone returns a deep copy that can be mutated independently (the
// database is shared; it is immutable).
//
//diverselint:coldpath deep copy for snapshots and refinement forks, O(N+K) by design
func (a *Allocation) Clone() *Allocation {
	channel := make([]int, len(a.channel))
	copy(channel, a.channel)
	members := make([][]int, len(a.members))
	for c, m := range a.members {
		members[c] = append(make([]int, 0, len(m)), m...)
	}
	return &Allocation{db: a.db, k: a.k, channel: channel, members: members}
}

// move reassigns the item at database position pos to channel dest,
// keeping the per-channel position lists sorted: O(log n) search plus
// an O(n) shift within the two touched lists (n = group size).
// It is unexported: external mutation goes through CDS or explicit
// reconstruction, keeping Allocation effectively immutable to callers.
func (a *Allocation) move(pos, dest int) {
	src := a.channel[pos]
	if src == dest {
		return
	}
	a.channel[pos] = dest
	m := a.members[src]
	i := sort.SearchInts(m, pos)
	a.members[src] = append(m[:i], m[i+1:]...)
	m = a.members[dest]
	j := sort.SearchInts(m, pos)
	m = append(m, 0)
	copy(m[j+1:], m[j:])
	m[j] = pos
	a.members[dest] = m
}

// Validate re-checks the structural invariants. It is cheap and used by
// property tests after every transformation.
func (a *Allocation) Validate() error {
	if a.k < 1 || a.k > a.db.Len() {
		return fmt.Errorf("%w: K=%d, N=%d", ErrBadChannelCount, a.k, a.db.Len())
	}
	if len(a.channel) != a.db.Len() {
		return fmt.Errorf("%w: len=%d, N=%d", ErrWrongLength, len(a.channel), a.db.Len())
	}
	for pos, c := range a.channel {
		if c < 0 || c >= a.k {
			return fmt.Errorf("%w: item at %d on channel %d, K=%d", ErrChannelRange, pos, c, a.k)
		}
	}
	// The position index must mirror the channel vector: every list
	// sorted, every entry on the right channel, N entries in total.
	total := 0
	for c, m := range a.members {
		for i, pos := range m {
			if i > 0 && m[i-1] >= pos {
				return fmt.Errorf("core: channel %d position list out of order at %d", c, i)
			}
			if pos < 0 || pos >= len(a.channel) {
				return fmt.Errorf("core: channel %d position list holds out-of-range position %d", c, pos)
			}
			if a.channel[pos] != c {
				return fmt.Errorf("core: position %d indexed on channel %d but assigned to %d", pos, c, a.channel[pos])
			}
		}
		total += len(m)
	}
	if total != len(a.channel) {
		return fmt.Errorf("core: position index covers %d of %d items", total, len(a.channel))
	}
	return nil
}

// Equal reports whether two allocations assign every item identically
// and share the same database and K.
func (a *Allocation) Equal(b *Allocation) bool {
	if a.db != b.db || a.k != b.k || len(a.channel) != len(b.channel) {
		return false
	}
	for i := range a.channel {
		if a.channel[i] != b.channel[i] {
			return false
		}
	}
	return true
}

package core

import (
	"errors"
	"fmt"
)

// Allocation assigns every item of a database to one of K broadcast
// channels. It is the output of every allocator in this module and the
// input to CDS, to the broadcast-program builder, and to the analytic
// and simulated evaluations.
type Allocation struct {
	db      *Database
	k       int
	channel []int // channel[pos] = channel index in [0,K)
}

// Errors returned by allocation constructors and validators.
var (
	ErrBadChannelCount = errors.New("core: channel count must satisfy 1 <= K <= N")
	ErrChannelRange    = errors.New("core: item assigned to channel outside [0,K)")
	ErrWrongLength     = errors.New("core: assignment length differs from database size")
)

// NewAllocation builds an allocation over db with k channels from an
// explicit assignment: channel[i] is the channel of the item at
// database position i. The slice is copied. Empty channels are legal
// (they contribute zero cost), matching the paper's CDS, which may
// drain a group entirely.
func NewAllocation(db *Database, k int, channel []int) (*Allocation, error) {
	if k < 1 || k > db.Len() {
		return nil, fmt.Errorf("%w: K=%d, N=%d", ErrBadChannelCount, k, db.Len())
	}
	if len(channel) != db.Len() {
		return nil, fmt.Errorf("%w: len=%d, N=%d", ErrWrongLength, len(channel), db.Len())
	}
	a := &Allocation{db: db, k: k, channel: make([]int, len(channel))}
	copy(a.channel, channel)
	for pos, c := range a.channel {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("%w: item at %d on channel %d, K=%d", ErrChannelRange, pos, c, k)
		}
	}
	return a, nil
}

// Database returns the database this allocation partitions.
func (a *Allocation) Database() *Database { return a.db }

// K reports the number of channels.
func (a *Allocation) K() int { return a.k }

// ChannelOf returns the channel of the item at database position pos.
func (a *Allocation) ChannelOf(pos int) int { return a.channel[pos] }

// Assignment returns a copy of the raw channel vector.
func (a *Allocation) Assignment() []int {
	out := make([]int, len(a.channel))
	copy(out, a.channel)
	return out
}

// Groups returns, per channel, the database positions assigned to it,
// in ascending position order.
func (a *Allocation) Groups() [][]int {
	groups := make([][]int, a.k)
	for pos, c := range a.channel {
		groups[c] = append(groups[c], pos)
	}
	return groups
}

// GroupItems returns, per channel, the items assigned to it.
func (a *Allocation) GroupItems() [][]Item {
	groups := a.Groups()
	out := make([][]Item, a.k)
	for c, g := range groups {
		out[c] = make([]Item, len(g))
		for i, pos := range g {
			out[c][i] = a.db.Item(pos)
		}
	}
	return out
}

// GroupAgg is the per-channel aggregate state used throughout the
// paper: F is the aggregate frequency Σf, Z the aggregate size Σz, and
// N the item count of the channel.
type GroupAgg struct {
	F float64
	Z float64
	N int
}

// Cost is the channel's contribution F·Z to the grouping cost.
func (g GroupAgg) Cost() float64 { return g.F * g.Z }

// Aggregates computes F_i, Z_i and N_i for every channel.
func (a *Allocation) Aggregates() []GroupAgg {
	agg := make([]GroupAgg, a.k)
	a.aggregatesInto(agg)
	return agg
}

// aggregatesInto recomputes the aggregates into an existing slice
// (len = K), sparing hot loops the allocation. The accumulation order
// is identical to Aggregates, so results are bit-for-bit equal.
func (a *Allocation) aggregatesInto(agg []GroupAgg) {
	for i := range agg {
		agg[i] = GroupAgg{}
	}
	for pos, c := range a.channel {
		it := a.db.Item(pos)
		agg[c].F += it.Freq
		agg[c].Z += it.Size
		agg[c].N++
	}
}

// Clone returns a deep copy that can be mutated independently (the
// database is shared; it is immutable).
func (a *Allocation) Clone() *Allocation {
	channel := make([]int, len(a.channel))
	copy(channel, a.channel)
	return &Allocation{db: a.db, k: a.k, channel: channel}
}

// move reassigns the item at database position pos to channel dest.
// It is unexported: external mutation goes through CDS or explicit
// reconstruction, keeping Allocation effectively immutable to callers.
func (a *Allocation) move(pos, dest int) { a.channel[pos] = dest }

// Validate re-checks the structural invariants. It is cheap and used by
// property tests after every transformation.
func (a *Allocation) Validate() error {
	if a.k < 1 || a.k > a.db.Len() {
		return fmt.Errorf("%w: K=%d, N=%d", ErrBadChannelCount, a.k, a.db.Len())
	}
	if len(a.channel) != a.db.Len() {
		return fmt.Errorf("%w: len=%d, N=%d", ErrWrongLength, len(a.channel), a.db.Len())
	}
	for pos, c := range a.channel {
		if c < 0 || c >= a.k {
			return fmt.Errorf("%w: item at %d on channel %d, K=%d", ErrChannelRange, pos, c, a.k)
		}
	}
	return nil
}

// Equal reports whether two allocations assign every item identically
// and share the same database and K.
func (a *Allocation) Equal(b *Allocation) bool {
	if a.db != b.db || a.k != b.k || len(a.channel) != len(b.channel) {
		return false
	}
	for i := range a.channel {
		if a.channel[i] != b.channel[i] {
			return false
		}
	}
	return true
}

package core

// PaperExampleItems returns the 15-item broadcast profile of the
// paper's Table 2 (Examples 1 and 2). IDs are the paper's subscripts:
// item d_i has ID i. The profile is used by the golden tests that
// reproduce Tables 3 and 4 and by examples/papertables.
func PaperExampleItems() []Item {
	return []Item{
		{ID: 1, Freq: 0.2374, Size: 21.18},
		{ID: 2, Freq: 0.1363, Size: 4.77},
		{ID: 3, Freq: 0.0986, Size: 3.59},
		{ID: 4, Freq: 0.0783, Size: 15.34},
		{ID: 5, Freq: 0.0655, Size: 2.91},
		{ID: 6, Freq: 0.0566, Size: 2.49},
		{ID: 7, Freq: 0.0500, Size: 17.51},
		{ID: 8, Freq: 0.0450, Size: 10.86},
		{ID: 9, Freq: 0.0409, Size: 1.02},
		{ID: 10, Freq: 0.0376, Size: 6.41},
		{ID: 11, Freq: 0.0349, Size: 30.62},
		{ID: 12, Freq: 0.0325, Size: 4.09},
		{ID: 13, Freq: 0.0305, Size: 5.33},
		{ID: 14, Freq: 0.0287, Size: 7.74},
		{ID: 15, Freq: 0.0272, Size: 1.74},
	}
}

// PaperExampleDatabase returns Table 2 as a Database.
func PaperExampleDatabase() *Database {
	return MustNewDatabase(PaperExampleItems())
}

// PaperExampleK is the channel count used by the paper's worked
// example (N=15, K=5).
const PaperExampleK = 5

package core

import (
	"math"
	"slices"

	"diversecast/internal/pool"
)

// batchedSelector is the batched mode of StrategyParallel: instead of
// repairing the candidate tables after every single move, it selects
// up to BatchSize non-conflicting moves per sweep — one per source
// group, pairwise disjoint {source, destination} group pairs — applies
// them back to back, and repairs the tables once.
//
// Why that is sound (the commutation argument, verified move-by-move
// by the batch-replay tests): Eq. 4's Δc for a move d_x: D_p → D_q
// depends only on the item constants and the aggregates (F_p, Z_p,
// F_q, Z_q). Earlier moves in the same batch touch only their own two
// groups, which are disjoint from {p, q}, so when the move is applied
// its Δc — and hence the exact cost drop — is bit-for-bit the value
// cached when the batch was assembled. Disjoint moves commute: any
// application order yields the same aggregates and the same total
// cost, because each group's aggregate is changed by at most one move
// in the batch.
//
// What is relaxed relative to strict steepest descent: the first move
// of every batch is the true global champion (the per-group champions
// are a partition of all candidate moves), but subsequent members are
// only their own group's champions. Every batched move still has
// Δc > eps at its application state, so termination and the
// monotone-descent guarantee are untouched; only the descent path may
// differ. The tables themselves stay exact: the post-batch repair
// rescans members of touched groups and merges every other item's
// fresh Δc toward the touched destinations into its cached table
// (see repairRange), so a batched refinement ends in a state the
// strict engines recognize as locally optimal.
type batchedSelector struct {
	incrementalSelector
	workers  int
	batchCap int
	// eps is refine's termination threshold: only moves with Δc > eps
	// are enqueued, so a mid-batch pop can never terminate the
	// refinement while other groups still hold eligible moves.
	eps      float64
	minItems int
	minGroup int

	// gchamp[g] is group g's champion move (its members' best cached
	// move, canonical tie-break), gfound[g] whether one with Δc > 0
	// exists. Batches are assembled from these.
	gchamp []Move
	gfound []bool
	// pending is the in-flight batch in application order; pendIdx
	// points at the next move to hand to refine.
	pending []Move
	pendIdx int

	// touched marks the groups whose aggregates the in-flight batch
	// changed (the disjoint pairs), consumed by repair.
	touched     []bool
	touchedList []int
	// dirty marks untouched groups that lost a member's cached table
	// during repair and need their champion rebuilt.
	dirty []bool
	// blocked is batch-assembly scratch for the greedy disjoint filter.
	blocked []bool
	// front is repair scratch: the Pareto-minimal touched groups under
	// (Z, F), the only ones repairRange's fast path must test exactly.
	front []int
	// Densely packed (Z, F) shadows of touchedList and front, refilled
	// per repair so the per-item fold and prune stream contiguously
	// instead of gathering through group indices. The packed values are
	// plain copies of the aggregate shadows — same bits.
	tlZ, tlF []float64
	frZ, frF []float64

	batchSeq     int
	batchedMoves int64
	parSweeps    int64

	// Per-shard reduction slots for the sharded repair sweep. The
	// rebuild fallback uses scanTop4Direct, which needs no scratch.
	sdirty  [][]bool
	srecomp []int64
}

//diverselint:coldpath selector construction once per refinement run; the per-move work reuses these tables
func newBatchedSelector(cur *Allocation, agg []GroupAgg, t *cdsTables, workers, batchCap int, eps float64, forceShard bool) *batchedSelector {
	s := &batchedSelector{
		workers:  workers,
		batchCap: batchCap,
		eps:      eps,
		minItems: cdsParallelMinItems,
		minGroup: cdsParallelMinGroup,
	}
	if forceShard {
		s.minItems, s.minGroup = 0, 0
	}
	s.cdsTables = t
	s.initTables(cur, agg)
	k := len(agg)
	s.gchamp = make([]Move, k)
	s.gfound = make([]bool, k)
	s.touched = make([]bool, k)
	s.touchedList = make([]int, 0, 2*batchCap)
	s.dirty = make([]bool, k)
	s.blocked = make([]bool, k)
	s.front = make([]int, 0, k)
	s.tlZ = make([]float64, 0, 2*batchCap)
	s.tlF = make([]float64, 0, 2*batchCap)
	s.frZ = make([]float64, 0, 2*batchCap)
	s.frF = make([]float64, 0, 2*batchCap)
	s.pending = make([]Move, 0, 3*k)
	for g := range agg {
		s.rebuildGroupChamp(g)
	}
	if workers > 1 {
		s.sdirty = make([][]bool, workers)
		s.srecomp = make([]int64, workers)
		for w := 0; w < workers; w++ {
			s.sdirty[w] = make([]bool, k)
		}
	}
	return s
}

// rebuildGroupChamp refolds group g's champion from its members'
// cached best entries. Positions ascend and only a strictly larger Δc
// wins, so ties keep the earliest position — the canonical order.
func (s *batchedSelector) rebuildGroupChamp(g int) {
	best := Move{}
	found := false
	for _, pos := range s.cur.ChannelPositions(g) {
		h := &s.hot[pos]
		if h.e0dc > best.Reduction {
			best = Move{Pos: pos, From: g, To: int(h.d0), Reduction: h.e0dc}
			found = true
		}
	}
	s.gchamp[g], s.gfound[g] = best, found
}

//diverselint:hotpath per-batch assembly and handoff
func (s *batchedSelector) next() (Move, bool) {
	if s.pendIdx < len(s.pending) {
		m := s.pending[s.pendIdx]
		s.pendIdx++
		return m, true
	}
	// Assemble a fresh batch from the per-group champions. One scan
	// per batch is the mode's whole point; the counter matches. Each
	// group contributes its champion item's full cached entry list —
	// up to three (destination, Δc) candidates, every value the exact
	// MoveReduction bits under the current aggregates — so that when
	// champions pile onto the same few attractive destinations (the
	// shape steepest descent produces), the greedy disjoint filter can
	// fall back to a blocked champion's runner-up destination instead
	// of shrinking the batch to the handful of contested groups.
	s.scans++
	cands := s.pending[:0]
	for g := range s.gchamp {
		if !s.gfound[g] {
			continue
		}
		pos := s.gchamp[g].Pos
		h := &s.hot[pos]
		if h.e0dc > s.eps {
			cands = append(cands, Move{Pos: pos, From: g, To: int(h.d0), Reduction: h.e0dc})
		}
		if h.d1 >= 0 && s.e1dc[pos] > s.eps {
			cands = append(cands, Move{Pos: pos, From: g, To: int(h.d1), Reduction: s.e1dc[pos]})
		}
		if h.d2 >= 0 && s.e2dc[pos] > s.eps {
			cands = append(cands, Move{Pos: pos, From: g, To: int(h.d2), Reduction: s.e2dc[pos]})
		}
	}
	if len(cands) == 0 {
		return Move{}, false
	}
	// Canonical batch order: Δc descending, source channel ascending,
	// destination ascending — a total order, since a group's three
	// candidates have distinct destinations. The head of the sorted
	// list is the true global champion: per-group champions partition
	// the candidate moves, and a champion item's d0 entry ≻ its
	// runner-ups by the table invariant.
	// slices.SortFunc instead of sort.Slice: the generic sort takes the
	// []Move directly, so nothing is boxed into an interface on this
	// path.
	//diverselint:ignore hotalloc comparator closure captures nothing and never escapes the generic sort; the AllocsPerRun gate holds the batch step to zero
	slices.SortFunc(cands, func(a, b Move) int {
		//diverselint:ignore floateq deliberate exact tie-break: equal Δc must resolve by source channel then destination exactly like the naive scan order
		if a.Reduction != b.Reduction {
			if a.Reduction > b.Reduction {
				return -1
			}
			return 1
		}
		if a.From != b.From {
			return a.From - b.From
		}
		return a.To - b.To
	})
	// Greedy disjoint filter in canonical order: a move joins the
	// batch only if neither of its groups is already touched by an
	// earlier (better) member. In-place compaction is safe — the
	// write index never passes the read index.
	for i := range s.blocked {
		s.blocked[i] = false
	}
	out := 0
	for _, m := range cands {
		if s.blocked[m.From] || s.blocked[m.To] {
			continue
		}
		s.blocked[m.From], s.blocked[m.To] = true, true
		cands[out] = m
		out++
		if out == s.batchCap {
			break
		}
	}
	cands = cands[:out]
	s.batchSeq++
	for i := range cands {
		cands[i].Batch = s.batchSeq
	}
	s.pending = cands
	s.pendIdx = 1
	return cands[0], true
}

//diverselint:hotpath per-move batch bookkeeping and end-of-batch repair
func (s *batchedSelector) applied(m Move) {
	from, to := m.From, m.To
	// refine reconciled agg before notifying us; refresh the shadows.
	s.aggZ[from], s.aggF[from] = s.agg[from].Z, s.agg[from].F
	s.aggZ[to], s.aggF[to] = s.agg[to].Z, s.agg[to].F
	s.chq[m.Pos] = int32(to)
	s.batchedMoves++
	if !s.touched[from] {
		s.touched[from] = true
		//diverselint:ignore hotalloc touchedList is constructed with capacity 2*batchCap and reset per batch; at most two groups join per move, so the append never grows it
		s.touchedList = append(s.touchedList, from)
	}
	if !s.touched[to] {
		s.touched[to] = true
		//diverselint:ignore hotalloc touchedList is constructed with capacity 2*batchCap and reset per batch; at most two groups join per move, so the append never grows it
		s.touchedList = append(s.touchedList, to)
	}
	if s.pendIdx >= len(s.pending) {
		// Last member of the batch: repair the tables once for the
		// whole batch. (If refine stops mid-batch — MaxMoves — the
		// selector is simply dropped before this point.)
		s.repair()
	}
}

// repair re-establishes every table invariant after a whole batch:
// members of touched groups rescan over all destinations (their
// source aggregates changed), and every untouched item either proves
// — via a sound pruning bound — that no touched destination can enter
// its cached table, or rebuilds the table exactly.
func (s *batchedSelector) repair() {
	W := s.workers
	// Ascending group order makes repairRange's fresh fold canonical:
	// its strict-comparison cascade keeps the earliest (smallest) group
	// on ties, exactly like a scan over all destinations would.
	slices.Sort(s.touchedList)
	// Touched groups: full member rescans, then refold their
	// champions. fillDeltas fills the selector-wide scratch serially;
	// the sharded scan reads it without writing.
	for _, g := range s.touchedList {
		s.fillDeltas(g)
		members := s.cur.ChannelPositions(g)
		if W <= 1 || len(members) < s.minGroup {
			for _, pos := range members {
				s.scanTop4Into(pos, s.dzs, s.dfs)
			}
		} else {
			s.parSweeps++
			//diverselint:ignore loopalloc,hotalloc one closure header per parallel member sweep is the dispatch cost of sharding; the sweep itself is allocation-free
			pool.RunRanges(W, W, len(members), func(_, lo, hi int) {
				for _, pos := range members[lo:hi] {
					s.scanTop4Into(pos, s.dzs, s.dfs)
				}
			})
		}
		s.recomputed += int64(len(members))
		s.rebuildGroupChamp(g)
	}
	// The fast path's exact prune set: the Pareto-minimal touched
	// groups under (Z, F). A touched group h with Z_h ≤ Z_g and
	// F_h ≤ F_g covers g in float bits — every step of the Δc
	// expression is monotone in −Z_q and −F_q and rounding is monotone,
	// so fl(Δc toward h) ≥ fl(Δc toward g) — which means testing the
	// front members exactly tests every touched destination soundly,
	// and the front is typically a handful of groups even for wide
	// batches. Built by the staircase sweep: Z ascending, keep strictly
	// decreasing F.
	s.front = s.front[:0]
	for _, g := range s.touchedList {
		//diverselint:ignore loopalloc,hotalloc s.front is reset to length 0 above and constructed with capacity K; distinct touched groups never exceed K
		s.front = append(s.front, g)
	}
	// slices.SortFunc instead of sort.Slice: no []int-into-any boxing,
	// and the group-ID tiebreak makes the order total even when two
	// groups share the exact (Z, F) bits.
	//diverselint:ignore hotalloc comparator closure captures the selector's shadow arrays and never escapes the generic sort; the AllocsPerRun gate holds the batch step to zero
	slices.SortFunc(s.front, func(a, b int) int {
		//diverselint:ignore floateq deterministic staircase: equal Z orders by F so the kept point dominates the dropped one
		if s.aggZ[a] != s.aggZ[b] {
			if s.aggZ[a] < s.aggZ[b] {
				return -1
			}
			return 1
		}
		//diverselint:ignore floateq deterministic staircase: equal Z orders by F so the kept point dominates the dropped one
		if s.aggF[a] != s.aggF[b] {
			if s.aggF[a] < s.aggF[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	nf := 0
	bestF := math.Inf(1)
	for _, g := range s.front {
		if s.aggF[g] < bestF {
			s.front[nf] = g
			nf++
			bestF = s.aggF[g]
		}
	}
	s.front = s.front[:nf]
	// Pack the (Z, F) shadows of both lists densely for the sweep.
	s.tlZ, s.tlF = s.tlZ[:0], s.tlF[:0]
	for _, g := range s.touchedList {
		//diverselint:ignore loopalloc,hotalloc tlZ/tlF are reset above and constructed with capacity 2*batchCap, the touched-list bound
		s.tlZ = append(s.tlZ, s.aggZ[g])
		//diverselint:ignore loopalloc,hotalloc tlZ/tlF are reset above and constructed with capacity 2*batchCap, the touched-list bound
		s.tlF = append(s.tlF, s.aggF[g])
	}
	s.frZ, s.frF = s.frZ[:0], s.frF[:0]
	for _, g := range s.front {
		//diverselint:ignore loopalloc,hotalloc frZ/frF are reset above and sized like tlZ/tlF; the front is a subset of the touched list
		s.frZ = append(s.frZ, s.aggZ[g])
		//diverselint:ignore loopalloc,hotalloc frZ/frF are reset above and sized like tlZ/tlF; the front is a subset of the touched list
		s.frF = append(s.frF, s.aggF[g])
	}
	// Untouched items: skip-test or exact rebuild.
	n := len(s.chq)
	if W <= 1 || n < s.minItems {
		s.recomputed += s.repairRange(0, n, s.dirty)
	} else {
		s.parSweeps++
		//diverselint:ignore hotalloc one closure header per sharded repair sweep is the dispatch cost of parallelism; repairRange itself is allocation-free
		pool.RunRanges(W, W, n, func(shard, lo, hi int) {
			s.srecomp[shard] = s.repairRange(lo, hi, s.sdirty[shard])
		})
		for w := 0; w < W; w++ {
			s.recomputed += s.srecomp[w]
			sd := s.sdirty[w]
			for g, d := range sd {
				if d {
					s.dirty[g] = true
					sd[g] = false
				}
			}
		}
	}
	// Refold champions of untouched groups that lost a cached table.
	for g, d := range s.dirty {
		if d {
			s.rebuildGroupChamp(g)
			s.dirty[g] = false
		}
	}
	for _, g := range s.touchedList {
		s.touched[g] = false
	}
	s.touchedList = s.touchedList[:0]
}

// repairRange runs the untouched-item sweep over positions [lo, hi),
// marking groups whose members' tables changed in dirty and returning
// the full-rebuild count.
//
// Per item the sweep is the incremental engine's merge generalized
// from a move's 2 touched groups to the batch's T: a cheap O(1)
// pruning bound, then an exact O(T) fold of the fresh Δc toward every
// touched destination, then a merge of those fresh candidates with the
// surviving cached entries. Only when the merge bottoms out below the
// old bound with no entries left does the item pay an O(K) rescan —
// so a repair costs O(N·T) with T ≤ 2·BatchSize, not O(N·K), and the
// per-move amortized cost stays comparable to the strict engines while
// the per-item fixed costs (record loads, loop overhead) are paid once
// per batch instead of once per move.
func (s *batchedSelector) repairRange(lo, hi int, dirty []bool) int64 {
	var recomp int64
	chq := s.chq
	fzts := s.fzt[:len(chq)]
	hots := s.hot[:len(chq)]
	e1dcs, e2dcs := s.e1dc[:len(chq)], s.e2dc[:len(chq)]
	aggZs, aggFs := s.aggZ, s.aggF
	touched := s.touched
	tl := s.touchedList // sorted ascending by repair
	tlZ := s.tlZ
	tlF := s.tlF[:len(tlZ)] // bounds-check elimination in the fold
	frZ := s.frZ
	frF := s.frF[:len(frZ)]
	negInf := math.Inf(-1)
	for pos := lo; pos < hi; pos++ {
		p32 := chq[pos]
		if touched[p32] {
			continue
		}
		it := fzts[pos]
		h := &hots[pos]
		// Fast path: if no cached entry names a touched destination and
		// the item's exact Δc toward every Pareto-minimal touched group
		// falls strictly below the bound, then every touched Δc does
		// (front members cover the dominated groups in float bits — see
		// repair), so the whole table — entries exact, bound dominating
		// every unlisted destination including the touched ones —
		// survives the batch unchanged. A front value exactly equal to
		// the bound conservatively falls through: it could still win
		// the destination tie-break against the bound slot.
		if !(h.d0 >= 0 && touched[h.d0]) &&
			!(h.d1 >= 0 && touched[h.d1]) &&
			!(h.d2 >= 0 && touched[h.d2]) {
			apZ, apF := aggZs[p32], aggFs[p32]
			below := true
			for j := range frZ {
				if it.f*(apZ-frZ[j])+it.z*(apF-frF[j])-it.tfz >= h.bdc {
					below = false
					break
				}
			}
			if below {
				continue
			}
		}
		// Exact fresh top-4 restricted to the touched destinations,
		// streaming the packed (Z, F) pairs: ascending list index — and
		// touchedList is sorted, so ascending group index — with strict
		// comparisons only, the same cascade as scanTop4Into, and the
		// same expression shape as MoveReduction with the 2·f·z term
		// precomputed — same bits. The cascade tracks list indices; they
		// are remapped to group ids after the fold. The 4th slot doubles
		// as the bound on every touched destination the fold does not
		// name.
		apZ, apF := aggZs[p32], aggFs[p32]
		fD := [4]int32{-1, -1, -1, -1}
		fV := [4]float64{negInf, negInf, negInf, negInf}
		for j := range tlZ {
			dc := it.f*(apZ-tlZ[j]) + it.z*(apF-tlF[j]) - it.tfz
			if dc > fV[3] {
				j32 := int32(j)
				if dc > fV[2] {
					if dc > fV[1] {
						if dc > fV[0] {
							fD[3], fV[3] = fD[2], fV[2]
							fD[2], fV[2] = fD[1], fV[1]
							fD[1], fV[1] = fD[0], fV[0]
							fD[0], fV[0] = j32, dc
						} else {
							fD[3], fV[3] = fD[2], fV[2]
							fD[2], fV[2] = fD[1], fV[1]
							fD[1], fV[1] = j32, dc
						}
					} else {
						fD[3], fV[3] = fD[2], fV[2]
						fD[2], fV[2] = j32, dc
					}
				} else {
					fD[3], fV[3] = j32, dc
				}
			}
		}
		for x := range fD {
			if fD[x] >= 0 {
				fD[x] = int32(tl[fD[x]])
			}
		}
		// Survivors: cached entries not naming a touched destination —
		// still the exact ≻-descending top of the unchanged
		// destinations, by the same filtering argument as the
		// incremental merge.
		var sd [3]int32
		var sv [3]float64
		sn, en := 0, 0
		if d := h.d0; d >= 0 {
			en++
			if !touched[d] {
				sd[sn], sv[sn] = d, h.e0dc
				sn++
			}
		}
		if d := h.d1; d >= 0 {
			en++
			if !touched[d] {
				sd[sn], sv[sn] = d, e1dcs[pos]
				sn++
			}
		}
		if d := h.d2; d >= 0 {
			en++
			if !touched[d] {
				sd[sn], sv[sn] = d, e2dcs[pos]
				sn++
			}
		}
		// Merge the two ≻-descending streams, placing exact entries
		// while they strictly beat the old bound (below it an unlisted
		// untouched destination could outrank them). A 4th merged value
		// becomes the new bound: it dominates every remaining survivor
		// and fresh value by merge order, the old bound's territory by
		// transitivity, and the touched destinations beyond the fresh
		// top-4 because the 4th fresh value is ⪯ it. On early stop the
		// old bound keeps covering all of those — survivors can never
		// remain at a stop, since every survivor is ≻ bound.
		bound := cdsCandidate{dest: int(h.bdest), dc: h.bdc}
		ei, fi, out := 0, 0, 0
		ne := [3]cdsCandidate{{-1, negInf}, {-1, negInf}, {-1, negInf}}
		newBound := bound
		for out < 4 {
			var c cdsCandidate
			haveF := fi < 4 && fD[fi] >= 0
			switch {
			case ei < sn && haveF:
				ec := cdsCandidate{dest: int(sd[ei]), dc: sv[ei]}
				fc := cdsCandidate{dest: int(fD[fi]), dc: fV[fi]}
				if better(ec, fc) {
					c = ec
					ei++
				} else {
					c = fc
					fi++
				}
			case ei < sn:
				c = cdsCandidate{dest: int(sd[ei]), dc: sv[ei]}
				ei++
			case haveF:
				c = cdsCandidate{dest: int(fD[fi]), dc: fV[fi]}
				fi++
			default:
				c = cdsCandidate{dest: -1, dc: negInf} // exhausted; fails the bound check
			}
			if !better(c, bound) {
				break
			}
			if out < 3 {
				ne[out] = c
			} else {
				newBound = c
			}
			out++
		}
		if fi == 0 && sn == en {
			// No fresh value entered and no entry was filtered: the
			// merge re-emitted the cached table bit-for-bit, champion
			// included — not dirty. This is the common case when the
			// cheap prune is too loose but the touched groups still lose
			// to the item's cached candidates.
			continue
		}
		if out == 0 {
			// Every listed entry was invalidated and the fresh values
			// fall at or below the bound: the new maximum may hide
			// behind any unlisted destination.
			s.scanTop4Direct(pos, int(p32))
			recomp++
		} else {
			*h = cdsHot{
				bdc: newBound.dc, e0dc: ne[0].dc,
				d0: int32(ne[0].dest), d1: int32(ne[1].dest), d2: int32(ne[2].dest),
				bdest: int32(newBound.dest),
			}
			e1dcs[pos], e2dcs[pos] = ne[1].dc, ne[2].dc
		}
		dirty[p32] = true
	}
	return recomp
}

func (s *batchedSelector) stats() selStats {
	return selStats{
		scans:          s.scans,
		recomputed:     s.recomputed,
		parallelSweeps: s.parSweeps,
		batchedMoves:   s.batchedMoves,
	}
}

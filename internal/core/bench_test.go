package core

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the paper's algorithms: Lemma 1 claims DRP is
// K·(O(K log K) + O(N)); CDS is O(K·N) move evaluations per applied
// move. The N and K sweeps below make both scalings visible.

func benchDB(b *testing.B, n int) *Database {
	b.Helper()
	return randomDatabase(b, 1, n)
}

func BenchmarkDRP(b *testing.B) {
	for _, n := range []int{60, 120, 240, 480, 960} {
		db := benchDB(b, n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewDRP().Allocate(db, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDRPOverK(b *testing.B) {
	db := benchDB(b, 240)
	for _, k := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewDRP().Allocate(db, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCDSRefine(b *testing.B) {
	for _, n := range []int{60, 120, 240} {
		db := benchDB(b, n)
		drp, err := NewDRP().Allocate(db, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("from-DRP/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewCDS().Refine(drp); err != nil {
					b.Fatal(err)
				}
			}
		})
		random := randomAllocation(b, db, 8, 2)
		b.Run(fmt.Sprintf("from-random/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewCDS().Refine(random); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCDSScale is the production-scale CDS grid (N up to 10k,
// K up to 64) comparing the naive full rescan against the incremental
// candidate table. Both strategies apply bit-identical moves (the
// differential trace tests prove it), so the ns/op ratio is pure
// selection-machinery cost. MaxMoves pins the number of applied moves
// so every (N, K) cell measures the same amount of optimization work
// regardless of where the local optimum lies; BENCH_*.json tracks the
// numbers across PRs. 200 moves is still far short of a full
// refinement at N=10k (which runs to a local optimum, typically
// thousands of moves), so the ratio here understates the end-to-end
// speedup: the incremental table's one-time build cost is amortized
// over fewer moves than in real use. -short skips the N=10k column.
func BenchmarkCDSScale(b *testing.B) {
	const maxMoves = 200
	for _, n := range []int{120, 1000, 10000} {
		if n == 10000 && testing.Short() {
			continue
		}
		db := benchDB(b, n)
		for _, k := range []int{6, 16, 64} {
			a := randomAllocation(b, db, k, 7)
			for _, strat := range []CDSStrategy{StrategyNaive, StrategyIncremental} {
				b.Run(fmt.Sprintf("N=%d/K=%d/%s", n, k, strat), func(b *testing.B) {
					cds := &CDS{Strategy: strat, MaxMoves: maxMoves}
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := cds.Refine(a); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkCDSParallel sweeps the parallel engine's worker count and
// batch size at a size where sharding engages (N above the serial
// fallback threshold). Workers=1 delegates to the serial incremental
// path, so the W=1 cell doubles as the apples-to-apples baseline; the
// batched cells measure the algorithmic (per-core-independent) win of
// repairing the tables once per batch. -short skips the family.
func BenchmarkCDSParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("parallel scaling cells need N above the shard threshold")
	}
	const maxMoves = 200
	n, k := 20000, 64
	db := benchDB(b, n)
	a := randomAllocation(b, db, k, 7)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("N=%d/K=%d/W=%d", n, k, workers), func(b *testing.B) {
			cds := &CDS{Strategy: StrategyParallel, Workers: workers, MaxMoves: maxMoves}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cds.Refine(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("N=%d/K=%d/W=8/B=%d", n, k, batch), func(b *testing.B) {
			cds := &CDS{Strategy: StrategyParallel, Workers: 8, BatchSize: batch, MaxMoves: maxMoves}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cds.Refine(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMoveReduction(b *testing.B) {
	db := benchDB(b, 100)
	a := randomAllocation(b, db, 8, 3)
	agg := a.Aggregates()
	it := db.Item(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MoveReduction(it, agg[0], agg[1])
	}
}

func BenchmarkCost(b *testing.B) {
	db := benchDB(b, 480)
	a := randomAllocation(b, db, 8, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Cost(a)
	}
}

func BenchmarkByBenefitRatio(b *testing.B) {
	db := benchDB(b, 960)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = db.ByBenefitRatio()
	}
}

package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"diversecast/internal/obs/trace"
)

// Trace span names emitted by CDS. Snake_case per the obsnames
// convention; constants so the analyzer can see them.
const (
	spanCDSRefine = "cds_refine"
	spanCDSMove   = "cds_move"
)

// CDS is the paper's Cost-Diminishing Selection mechanism (Section
// 3.2): a steepest-descent local search over single-item moves.
//
// Each iteration evaluates, for every item d_x currently in group D_p
// and every destination group D_q ≠ D_p, the closed-form cost reduction
// of Eq. (4),
//
//	Δc = f_x(Z_p − Z_q) + z_x(F_p − F_q) − 2 f_x z_x,
//
// applies the move with the maximum strictly positive Δc, and repeats
// until no move reduces the cost — the local optimum. The naive
// strategy pays O(K·N) move evaluations per applied move (within the
// paper's stated O(K²N) bound); the incremental strategy exploits
// that a move only changes two groups' aggregates to reselect in
// O(N + (|D_p|+|D_q|+R)·K), where R is the number of items whose
// cached best destination AND cached runner-up are both invalidated
// by the move (see DESIGN.md §2). Both strategies select bit-for-bit
// identical moves.
type CDS struct {
	// MaxMoves bounds the number of applied moves; 0 means no bound
	// beyond Epsilon-driven termination. Cost strictly decreases by
	// more than Epsilon per move and is bounded below by zero, so
	// termination is guaranteed either way.
	MaxMoves int
	// Epsilon is the minimum Δc for a move to be applied, guarding
	// against floating-point non-termination. Zero selects a default
	// scaled to the problem (1e-12 × initial cost, floored at 1e-300).
	Epsilon float64
	// Strategy picks the move-selection engine. The zero value is
	// StrategyIncremental: the differential trace tests pin every
	// engine to identical output, so the fast serial one is the
	// default.
	Strategy CDSStrategy
	// Workers bounds the sweep worker pool of StrategyParallel: 0 uses
	// GOMAXPROCS, 1 forces the serial path, larger values shard the
	// candidate sweeps across that many goroutines. The selected moves
	// are bit-for-bit identical at any width — sharding only changes
	// who evaluates which item, never the arithmetic or the canonical
	// reduction order. Negative is an error; ignored by the other
	// strategies.
	Workers int
	// BatchSize > 1 enables the batched mode of StrategyParallel: up
	// to BatchSize non-conflicting moves — pairwise disjoint
	// {source, destination} group pairs — are selected per sweep and
	// applied back to back before the candidate tables are repaired
	// once. Disjoint moves commute under the Eq. 4 delta algebra, so
	// each batched move's Δc is exactly the value Eq. 4 assigns at its
	// application state; the mode relaxes strict steepest descent only
	// in that moves after the first in a batch are per-group champions
	// rather than global ones. 0 or 1 keeps strict steepest descent.
	// Values > 1 with a strategy other than StrategyParallel are an
	// error.
	BatchSize int

	// Tracer receives one cds_refine span per call with a cds_move
	// child per applied move (item, src/dst groups, the Eq. 4 Δc,
	// strategy tag). nil selects the process-wide trace.Default(),
	// which starts disabled, so the zero value stays probe-free until
	// a daemon enables tracing.
	Tracer *trace.Tracer

	// forceShard (tests only) makes StrategyParallel shard every
	// sweep regardless of the size thresholds, so the small
	// differential workloads exercise the sharded paths that real
	// inputs only hit at scale.
	forceShard bool
}

// CDSStrategy selects how CDS finds the best move each iteration.
// All strategies produce move-for-move identical refinements (same
// tie-break order, same floating-point bits); they differ only in
// work per iteration. The one documented exception is the batched
// mode of StrategyParallel (CDS.BatchSize > 1), which relaxes strict
// steepest descent as described on CDS.BatchSize.
type CDSStrategy int

const (
	// StrategyIncremental (the default) maintains a per-item best-
	// destination candidate table and recomputes only the entries a
	// move can invalidate.
	StrategyIncremental CDSStrategy = iota
	// StrategyNaive rescans every (item, destination) pair per
	// iteration — the paper's literal algorithm, kept as the oracle
	// for differential tests and benchmarks.
	StrategyNaive
	// StrategyParallel is StrategyIncremental with the per-move
	// candidate sweeps sharded across a bounded by-index worker pool
	// (CDS.Workers wide) in a fixed reduction order, so the selected
	// move is bit-for-bit identical to the serial engines at any
	// worker count. CDS.BatchSize > 1 additionally applies batches of
	// non-conflicting moves per sweep.
	StrategyParallel
)

// String returns the strategy name ("incremental", "naive" or
// "parallel").
func (s CDSStrategy) String() string {
	switch s {
	case StrategyIncremental:
		return "incremental"
	case StrategyNaive:
		return "naive"
	case StrategyParallel:
		return "parallel"
	default:
		return fmt.Sprintf("CDSStrategy(%d)", int(s))
	}
}

// ParseCDSStrategy maps a strategy name back to its value — the exact
// inverse of String over the three engines — for flag and config
// plumbing.
func ParseCDSStrategy(name string) (CDSStrategy, error) {
	switch name {
	case "incremental":
		return StrategyIncremental, nil
	case "naive":
		return StrategyNaive, nil
	case "parallel":
		return StrategyParallel, nil
	default:
		return 0, fmt.Errorf("core: unknown CDS strategy %q (want incremental, naive or parallel)", name)
	}
}

var _ Refiner = (*CDS)(nil)

// NewCDS returns a CDS refiner with default settings.
func NewCDS() *CDS { return &CDS{} }

// Name implements Refiner.
func (*CDS) Name() string { return "CDS" }

// Move records one applied CDS move for tracing (the paper's Table 4).
type Move struct {
	Pos        int     // database position of the moved item
	From, To   int     // channel indices
	Reduction  float64 // the Δc of Eq. (4), exact at the application state
	CostBefore float64
	CostAfter  float64
	// Batch numbers the sweep batch this move was applied in by the
	// batched mode of StrategyParallel (1-based, in application
	// order); 0 for the strict steepest-descent engines, which apply
	// exactly one move per sweep. The batch-replay tests use it to
	// verify the disjointness and commutation contract.
	Batch int
}

// Refine implements Refiner. The input allocation is not mutated.
func (c *CDS) Refine(a *Allocation) (*Allocation, error) {
	out, _, err := c.refine(a, false)
	return out, err
}

// RefineWithTrace is Refine but also returns every applied move in
// order, used by the paper-table reproduction and by tests.
func (c *CDS) RefineWithTrace(a *Allocation) (*Allocation, []Move, error) {
	return c.refine(a, true)
}

// moveSelector finds the best single-item move for the current
// allocation state. next returns the move with the maximum Δc under
// the canonical scan order (groups by channel index, items by
// database position within the group, destinations by channel index;
// strictly-larger-wins tie-break) and whether any strictly positive
// candidate exists. applied notifies the selector after a move has
// been applied and the aggregates reconciled.
type moveSelector interface {
	next() (Move, bool)
	applied(Move)
	// stats reports the selector's work counters, flushed to obs
	// counters once per refinement.
	stats() selStats
}

// selStats aggregates the per-refinement selector counters.
type selStats struct {
	// scans counts selection sweeps (one per applied move for the
	// strict engines, one per assembled batch for the batched mode).
	scans int64
	// recomputed counts full per-item candidate recomputations.
	recomputed int64
	// parallelSweeps counts candidate sweeps that were actually
	// sharded across the worker pool (small sweeps fall back to the
	// serial path and are not counted).
	parallelSweeps int64
	// batchedMoves counts moves applied by the batched mode.
	batchedMoves int64
}

func (c *CDS) refine(a *Allocation, wantTrace bool) (*Allocation, []Move, error) {
	if err := a.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: CDS input: %w", err)
	}
	cur := a.Clone()
	agg := cur.Aggregates()

	eps := c.Epsilon
	if eps == 0 {
		if init := Cost(cur); init > 0 {
			eps = 1e-12 * init
		} else {
			eps = 1e-300
		}
	}

	if c.Workers < 0 {
		return nil, nil, fmt.Errorf("core: CDS: negative Workers %d", c.Workers)
	}
	if c.BatchSize > 1 && c.Strategy != StrategyParallel {
		return nil, nil, fmt.Errorf("core: CDS: BatchSize %d requires StrategyParallel, not %v", c.BatchSize, c.Strategy)
	}

	var sel moveSelector
	var tables *cdsTables
	switch c.Strategy {
	case StrategyNaive:
		sel = &naiveSelector{cur: cur, agg: agg}
	case StrategyIncremental:
		tables = acquireCDSTables(cur.db.Len(), len(agg))
		sel = newIncrementalSelector(cur, agg, tables)
	case StrategyParallel:
		workers := c.Workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		tables = acquireCDSTables(cur.db.Len(), len(agg))
		if c.BatchSize > 1 {
			sel = newBatchedSelector(cur, agg, tables, workers, c.BatchSize, eps, c.forceShard)
		} else {
			sel = newParallelSelector(cur, agg, tables, workers, c.forceShard)
		}
	default:
		return nil, nil, fmt.Errorf("core: CDS: unknown strategy %v", c.Strategy)
	}
	if tables != nil {
		defer releaseCDSTables(tables)
	}

	start := timeNow()
	var moves []Move
	applied := 0
	cost := Cost(cur)

	tr := c.Tracer
	if tr == nil {
		tr = trace.Default()
	}
	var span trace.Span
	var stratTag trace.Attr
	if tr.Enabled() {
		strat := c.Strategy.String()
		stratTag = trace.Str("strategy", strat)
		span = tr.Start(spanCDSRefine, stratTag,
			trace.Int("n", int64(cur.db.Len())), trace.Int("k", int64(cur.k)),
			trace.Float("cost", cost))
	}

	for {
		// Bound on applied moves, not trace length: Refine (no trace)
		// must honor MaxMoves too.
		if c.MaxMoves > 0 && applied >= c.MaxMoves {
			break
		}

		best, found := sel.next()
		if !found || best.Reduction <= eps {
			break
		}

		// The move span covers applying the move, reconciling the two
		// touched groups, and the selector's candidate maintenance —
		// the full per-iteration cost of the strategy in use.
		var mv trace.Span
		if span.Active() {
			if best.Batch > 0 {
				mv = span.Child(spanCDSMove,
					trace.Int("pos", int64(best.Pos)),
					trace.Int("src", int64(best.From)), trace.Int("dst", int64(best.To)),
					trace.Float("delta", best.Reduction),
					trace.Int("batch", int64(best.Batch)),
					stratTag)
			} else {
				mv = span.Child(spanCDSMove,
					trace.Int("pos", int64(best.Pos)),
					trace.Int("src", int64(best.From)), trace.Int("dst", int64(best.To)),
					trace.Float("delta", best.Reduction),
					stratTag)
			}
		}

		cur.move(best.Pos, best.To)
		// Reconcile instead of tracking incrementally: rebuild the two
		// touched groups from the allocation in the same accumulation
		// order Aggregates uses (ascending position within the group).
		// Untouched groups were exact before the move, so by induction
		// agg stays bit-for-bit equal to a fresh Aggregates() call, and
		// the trace's CostBefore/CostAfter stay exactly Cost(cur)
		// instead of drifting away from it (one subtraction at a time)
		// over long refinements. O(|D_p|+|D_q|) per applied move via
		// the per-channel position lists.
		reconcileGroup(cur, agg, best.From)
		reconcileGroup(cur, agg, best.To)
		var newCost float64
		for _, g := range agg {
			newCost += g.Cost()
		}
		sel.applied(best)
		if mv.Active() {
			mv.End(trace.Float("cost_after", newCost))
		}

		applied++
		if wantTrace {
			best.CostBefore = cost
			best.CostAfter = newCost
			//diverselint:ignore loopalloc move-history append runs only when the caller asked for a trace; the no-trace refinement path never reaches it
			moves = append(moves, best)
		}
		cost = newCost
	}
	cdsRefinements.Inc()
	cdsMoves.Add(int64(applied))
	st := sel.stats()
	cdsScans.Add(st.scans)
	cdsCandidatesRecomputed.Add(st.recomputed)
	cdsParallelSweeps.Add(st.parallelSweeps)
	cdsBatchedMoves.Add(st.batchedMoves)
	cdsSeconds.Observe(timeNow().Sub(start).Seconds())
	if span.Active() {
		span.End(trace.Int("moves", int64(applied)), trace.Float("cost_after", cost))
	}
	return cur, moves, nil
}

// reconcileGroup rebuilds agg[g] from the allocation. Accumulating
// over the group's position list in ascending order is the same
// per-group order Aggregates uses, so the result is bit-for-bit what
// a full recomputation would produce.
//
//diverselint:hotpath per-applied-move aggregate reconciliation
func reconcileGroup(cur *Allocation, agg []GroupAgg, g int) {
	db := cur.Database()
	agg[g] = GroupAgg{}
	for _, pos := range cur.ChannelPositions(g) {
		it := db.Item(pos)
		agg[g].F += it.Freq
		agg[g].Z += it.Size
		agg[g].N++
	}
}

// naiveSelector is the paper's literal selection: every (item,
// destination) pair is re-evaluated each iteration. The per-channel
// position lists spare it the former O(K·N) membership filter, but
// the scan itself remains O(K·N) evaluations.
type naiveSelector struct {
	cur   *Allocation
	agg   []GroupAgg
	scans int64
}

func (s *naiveSelector) next() (Move, bool) {
	db := s.cur.Database()
	k := s.cur.K()
	s.scans++
	// Scan all (item, destination) pairs in the paper's order —
	// groups by channel index, items by database position within
	// the group, destinations by channel index — keeping only a
	// strictly larger Δc, so the selected move is deterministic.
	best := Move{Reduction: 0}
	found := false
	for p := 0; p < k; p++ {
		for _, pos := range s.cur.ChannelPositions(p) {
			it := db.Item(pos)
			for q := 0; q < k; q++ {
				if q == p {
					continue
				}
				dc := MoveReduction(it, s.agg[p], s.agg[q])
				if dc > best.Reduction {
					best = Move{Pos: pos, From: p, To: q, Reduction: dc}
					found = true
				}
			}
		}
	}
	return best, found
}

func (s *naiveSelector) applied(Move) {}

func (s *naiveSelector) stats() selStats { return selStats{scans: s.scans} }

// cdsCandidate is a (destination channel, Δc) pair under the current
// aggregates. dest is -1 (and dc −Inf) for the "no destination"
// sentinel (K == 1, or the runner-up slot when K == 2).
type cdsCandidate struct {
	dest int
	dc   float64
}

// better reports whether candidate a beats candidate b under the
// canonical CDS order: strictly larger Δc wins, and equal Δc is won
// by the smaller destination index (the naive scan visits
// destinations ascending and keeps only strictly larger values).
// This is the lexicographic strict order on (−dc, dest) — total on
// candidates with distinct destinations and transitive always — so
// the ≻-maximum of any candidate set is exactly the entry the naive
// ascending scan would keep, no matter in which sequence the set is
// merged.
func better(a, b cdsCandidate) bool {
	//diverselint:ignore floateq deliberate exact tie-break: equal Δc must resolve by destination index exactly like the naive ascending scan; an epsilon would select different moves
	if a.dc == b.dc {
		return a.dest < b.dest
	}
	return a.dc > b.dc
}

// The candidate table is one item's cached view of its move
// candidates: up to three exact (destination, Δc) entries in
// ≻-descending order plus a bound pair that dominates every
// destination the entry list does not name. The entries let most
// moves resolve an invalidated best in O(1); the bound is what keeps
// the resolution sound without rescanning. Slots hold (dest −1, Δc
// −Inf) when absent, so a slot never compares equal to a real channel
// index and the merge sweep needs no length field.
//
// Invariants, per item (see DESIGN.md §2):
//   - listed entries are exact: the very float bits MoveReduction
//     produces under the current aggregates, consecutive from the
//     ≻-maximum down;
//   - every destination not named by an entry is ⪯ bound under the
//     better order, and every listed entry is ≻ bound. After a full
//     recompute the bound is the exact 4th-best value.
//
// The layout is hybrid: cdsHot packs exactly the fields the per-move
// merge sweep reads — the bound Δc for the admission test, the best
// Δc for the champion fold, and all four destination ids for the
// staleness test — into one 32-byte record (two per cache line), while
// the runner-up Δc values, needed only on the rare repair paths, live
// in cold side arrays. The sweep is memory-bound at scale, so bytes
// per item per move is the figure of merit.
type cdsHot struct {
	bdc        float64 // bound Δc
	e0dc       float64 // best entry Δc
	d0, d1, d2 int32   // entry destinations, −1 when absent
	bdest      int32   // bound destination, −1 for the −Inf sentinel
}

// cdsDelta holds, for one source group p, the aggregate differences
// of Eq. (4) toward a move's two touched groups F and T:
// zf = Z_p−Z_F, ff = F_p−F_F, zt = Z_p−Z_T, ft = F_p−F_T.
type cdsDelta struct {
	zf, ff, zt, ft float64
}

// cdsItem caches the item constants of Eq. (4): frequency, size, and
// the term 2·fₓ·zₓ computed with exactly the expression MoveReduction
// uses (left-associated 2*f*z), so substituting it reproduces
// MoveReduction's float bits while sparing two multiplies per
// evaluated destination.
type cdsItem struct {
	f, z, tfz float64
}

// cdsTables is the SoA working set shared by the table-driven CDS
// engines (incremental, parallel, batched): the hot per-item records
// and the flat per-group shadows, split by access pattern so the
// per-move sweeps stream exactly the bytes they read. The slices are
// sized once per refinement and the whole struct is recycled through
// a sync.Pool — repeated Allocate/Refine calls at production scale
// stop paying the per-call slice allocations (~56 bytes/item +
// ~64 bytes/group) entirely. Every element is overwritten by the
// selector's initial build before it is read, so recycling cannot
// leak state between refinements.
type cdsTables struct {
	fzt []cdsItem
	// aggZ and aggF shadow agg[q].Z and agg[q].F in flat slices so the
	// hot loops stream 16 bytes per destination instead of the whole
	// GroupAgg; applied refreshes the two touched entries.
	aggZ, aggF []float64
	// chq shadows cur.channel as int32 (applied updates the moved
	// item's entry), halving the sweep's channel-stream bytes.
	chq []int32
	hot []cdsHot
	// e1dc and e2dc are the runner-up entries' Δc (cold).
	e1dc, e2dc []float64
	// delta is per-move scratch: for each group p, the aggregate
	// differences toward the move's two touched groups, hoisted out of
	// the sweep (they are per-(group, move) constants). Hoisting a
	// subexpression does not change its float bits.
	delta []cdsDelta
	// dzs/dfs are per-source-group scratch for scanTop4: the aggregate
	// differences Z_p−Z_q and F_p−F_q toward every destination, filled
	// once per source group and shared by every member's scan. The
	// sharded sweeps treat them as read-only and use per-shard scratch
	// for their own recomputes.
	dzs, dfs []float64
}

var cdsTablesPool = sync.Pool{New: func() any { return new(cdsTables) }}

// growSlice returns s resized to n, reusing capacity when possible.
// Contents are unspecified; callers fully overwrite before reading.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// acquireCDSTables returns a table set sized for n items and k groups,
// recycled from the pool when capacities allow.
func acquireCDSTables(n, k int) *cdsTables {
	t := cdsTablesPool.Get().(*cdsTables)
	t.fzt = growSlice(t.fzt, n)
	t.chq = growSlice(t.chq, n)
	t.hot = growSlice(t.hot, n)
	t.e1dc = growSlice(t.e1dc, n)
	t.e2dc = growSlice(t.e2dc, n)
	t.aggZ = growSlice(t.aggZ, k)
	t.aggF = growSlice(t.aggF, k)
	t.delta = growSlice(t.delta, k)
	t.dzs = growSlice(t.dzs, k)
	t.dfs = growSlice(t.dfs, k)
	return t
}

func releaseCDSTables(t *cdsTables) { cdsTablesPool.Put(t) }

// incrementalSelector maintains the candidate cache. A move D_p → D_q
// only changes agg[p] and agg[q], so after a move: items inside p or
// q recompute over all K destinations, and every other item folds
// just the two freshly evaluated Δc toward p and q into its cached
// entry list (see applied). The depth-3 list absorbs repeated
// invalidations of the same popular destination group — the pattern
// steepest descent produces — so full rescans stay rare.
//
// The selection sweep is folded into the same passes: applied visits
// every item exactly once (touched groups via recompute, the rest via
// the merge loop), so it tracks the global champion as it goes and
// next returns it in O(1).
type incrementalSelector struct {
	*cdsTables
	cur        *Allocation
	agg        []GroupAgg
	champ      Move
	champFound bool
	scans      int64
	recomputed int64
}

// initTables attaches the selector to its allocation and fills every
// table: item constants, aggregate shadows, channel shadow, and the
// per-item candidate records (one delta fill per group shared by its
// members). Shared by all three table-driven engines.
func (s *incrementalSelector) initTables(cur *Allocation, agg []GroupAgg) {
	s.cur, s.agg = cur, agg
	for i, it := range cur.db.items {
		s.fzt[i] = cdsItem{f: it.Freq, z: it.Size, tfz: 2 * it.Freq * it.Size}
	}
	for q, g := range agg {
		s.aggZ[q], s.aggF[q] = g.Z, g.F
	}
	for pos, p := range cur.channel {
		s.chq[pos] = int32(p)
	}
	for p := range agg {
		s.fillDeltas(p)
		for _, pos := range cur.ChannelPositions(p) {
			s.scanTop4(pos)
		}
	}
}

func newIncrementalSelector(cur *Allocation, agg []GroupAgg, t *cdsTables) *incrementalSelector {
	s := &incrementalSelector{cdsTables: t}
	s.initTables(cur, agg)
	// Initial champion sweep; applied keeps it current afterwards.
	champ := Move{Reduction: 0}
	found := false
	for pos, p32 := range s.chq {
		h := &s.hot[pos]
		cd := h.e0dc
		if cd > champ.Reduction {
			champ = Move{Pos: pos, From: int(p32), To: int(h.d0), Reduction: cd}
			found = true
			continue
		}
		//diverselint:ignore floateq deliberate exact tie-break: equal Δc across items must resolve by (channel, position) exactly like the naive scan order
		if found && cd == champ.Reduction && int(p32) < champ.From {
			// Positions ascend in this sweep, so only a strictly
			// smaller channel can steal the tie.
			champ = Move{Pos: pos, From: int(p32), To: int(h.d0), Reduction: cd}
		}
	}
	s.champ, s.champFound = champ, found
	return s
}

// fillDeltasInto loads scratch slices with the aggregate differences
// from source group p toward every destination q: dzs[q] = Z_p−Z_q,
// dfs[q] = F_p−F_q — the exact subexpressions of MoveReduction,
// hoisted so that every member of group p shares one fill. Slot p
// itself is poked to (−Inf, 0) so its Δc evaluates to −Inf (item
// frequencies are validated strictly positive and finite) and q == p
// is excluded branchlessly, exactly as a +Inf aggregate would exclude
// it.
func fillDeltasInto(p int, aggZs, aggFs, dzs, dfs []float64) {
	dfs = dfs[:len(dzs)] // bounds-check elimination
	apZ, apF := aggZs[p], aggFs[p]
	for q := range aggZs {
		dzs[q] = apZ - aggZs[q]
		dfs[q] = apF - aggFs[q]
	}
	dzs[p], dfs[p] = math.Inf(-1), 0
}

// fillDeltas is fillDeltasInto targeting the selector-wide scratch.
func (s *incrementalSelector) fillDeltas(p int) {
	fillDeltasInto(p, s.aggZ, s.aggF, s.dzs, s.dfs)
}

// recompute rebuilds the top-4 of the item at pos over all K−1
// destinations: three exact entries plus the 4th-best as the bound.
func (s *incrementalSelector) recompute(pos int) {
	s.scanTop4Direct(pos, int(s.chq[pos]))
	s.recomputed++
}

// scanTop4 rebuilds the top-4 of the item at pos from the deltas
// fillDeltas prepared for the item's current group, counting one
// recompute.
func (s *incrementalSelector) scanTop4(pos int) {
	s.scanTop4Into(pos, s.dzs, s.dfs)
	s.recomputed++
}

// scanTop4Into rebuilds the top-4 of the item at pos from the deltas
// a fillDeltasInto call prepared for the item's current group in
// dzs/dfs. The scan visits destinations ascending with strict
// comparisons only — an equal Δc never displaces an earlier (smaller)
// destination — which is exactly the ≻-top-4. It writes only the
// item's own table slots and reads the scratch, so the sharded sweeps
// may call it concurrently for distinct positions over shared
// read-only scratch (or per-shard scratch when they refill it).
func (s *incrementalSelector) scanTop4Into(pos int, dzs, dfs []float64) {
	it := s.fzt[pos]
	f, z, tfz := it.f, it.z, it.tfz
	dfs = dfs[:len(dzs)] // bounds-check elimination in the scan below
	negInf := math.Inf(-1)
	d0, d1, d2, d3 := int32(-1), int32(-1), int32(-1), int32(-1)
	v0, v1, v2, v3 := negInf, negInf, negInf, negInf
	for q := range dzs {
		// MoveReduction with the aggregate differences and the 2·f·z
		// term precomputed; same expression, same bits.
		dc := f*dzs[q] + z*dfs[q] - tfz
		if dc > v3 {
			q32 := int32(q)
			if dc > v2 {
				if dc > v1 {
					if dc > v0 {
						d3, v3 = d2, v2
						d2, v2 = d1, v1
						d1, v1 = d0, v0
						d0, v0 = q32, dc
					} else {
						d3, v3 = d2, v2
						d2, v2 = d1, v1
						d1, v1 = q32, dc
					}
				} else {
					d3, v3 = d2, v2
					d2, v2 = q32, dc
				}
			} else {
				d3, v3 = q32, dc
			}
		}
	}
	s.hot[pos] = cdsHot{bdc: v3, e0dc: v0, d0: d0, d1: d1, d2: d2, bdest: d3}
	s.e1dc[pos], s.e2dc[pos] = v1, v2
}

// scanTop4Direct is scanTop4Into with the delta fill fused into the
// scan: for a one-off rebuild of a single item there is no second
// member to share the scratch with, so staging K deltas through memory
// only costs bandwidth. Each destination's Δc is computed from the
// aggregate shadows inline — the same subtractions fillDeltasInto
// performs, feeding the same fused expression, so the bits match
// scanTop4Into exactly. The source group p is skipped by branch rather
// than by the (−Inf, 0) poke; a −Inf Δc never enters the strict-compare
// cascade, so the result is identical. Reads only the shadows and
// writes only the item's own slots: safe from sharded sweeps.
func (s *incrementalSelector) scanTop4Direct(pos, p int) {
	it := s.fzt[pos]
	f, z, tfz := it.f, it.z, it.tfz
	aggZs := s.aggZ
	aggFs := s.aggF[:len(aggZs)] // bounds-check elimination in the scan below
	apZ, apF := aggZs[p], aggFs[p]
	negInf := math.Inf(-1)
	d0, d1, d2, d3 := int32(-1), int32(-1), int32(-1), int32(-1)
	v0, v1, v2, v3 := negInf, negInf, negInf, negInf
	for q := range aggZs {
		if q == p {
			continue
		}
		// MoveReduction with the aggregate differences and the 2·f·z
		// term precomputed; same expression, same bits.
		dc := f*(apZ-aggZs[q]) + z*(apF-aggFs[q]) - tfz
		if dc > v3 {
			q32 := int32(q)
			if dc > v2 {
				if dc > v1 {
					if dc > v0 {
						d3, v3 = d2, v2
						d2, v2 = d1, v1
						d1, v1 = d0, v0
						d0, v0 = q32, dc
					} else {
						d3, v3 = d2, v2
						d2, v2 = d1, v1
						d1, v1 = q32, dc
					}
				} else {
					d3, v3 = d2, v2
					d2, v2 = q32, dc
				}
			} else {
				d3, v3 = q32, dc
			}
		}
	}
	s.hot[pos] = cdsHot{bdc: v3, e0dc: v0, d0: d0, d1: d1, d2: d2, bdest: d3}
	s.e1dc[pos], s.e2dc[pos] = v1, v2
}

//diverselint:hotpath per-selection champion handoff
func (s *incrementalSelector) next() (Move, bool) {
	// The champion is maintained by the constructor and by applied;
	// the per-selection sweep cost lives there. The counter still
	// tallies one logical scan per selection for comparability with
	// the naive strategy.
	s.scans++
	return s.champ, s.champFound
}

//diverselint:hotpath per-move incremental table update
func (s *incrementalSelector) applied(m Move) {
	from, to := m.From, m.To
	// refine reconciled agg before notifying us; refresh the shadows.
	s.aggZ[from], s.aggF[from] = s.agg[from].Z, s.agg[from].F
	s.aggZ[to], s.aggF[to] = s.agg[to].Z, s.agg[to].F
	s.chq[m.Pos] = int32(to)
	// The champion is rebuilt from scratch during this pass: every
	// item is visited exactly once (touched groups below, everything
	// else in the merge loop), and the fold uses the full canonical
	// comparator (Δc desc, channel asc, position asc) because the
	// three phases do not visit positions in one ascending sequence.
	champDc := 0.0
	champPos, champFrom, champTo := 0, 0, 0
	found := false
	// Items now in either touched group (including the moved item, now
	// in m.To): their own group's aggregates changed, so every cached
	// Δc of theirs is stale — full recompute.
	s.fillDeltas(from)
	for _, pos := range s.cur.ChannelPositions(from) {
		s.scanTop4(pos)
		h := &s.hot[pos]
		if cd := h.e0dc; cd > champDc {
			champDc, champFrom, champPos, champTo = cd, from, pos, int(h.d0)
			found = true
		}
		// No tie clause: within one group positions ascend, and the
		// second touched group is handled with the full comparator
		// below only if it could tie — see the tie folds below.
	}
	s.fillDeltas(to)
	for _, pos := range s.cur.ChannelPositions(to) {
		s.scanTop4(pos)
		h := &s.hot[pos]
		cd := h.e0dc
		if cd > champDc {
			champDc, champFrom, champPos, champTo = cd, to, pos, int(h.d0)
			found = true
			continue
		}
		if found && foldTie(cd, to, pos, champDc, champFrom, champPos) {
			champDc, champFrom, champPos, champTo = cd, to, pos, int(h.d0)
		}
	}
	// Every other item: only its Δc toward from and to changed.
	// Entries pointing at a touched group drop out of the item's list
	// (their old values retain no entry status); what remains is still
	// the exact ≻-descending top of the unchanged destinations,
	// because anything unlisted was already ⪯ bound. Merging the
	// remainder with the two fresh values in ≻ order yields exact
	// placements for as long as each merged value strictly beats the
	// bound — below that, an unlisted destination could outrank it.
	chq := s.chq
	// Equalized lengths let the compiler drop the per-item bounds
	// checks in the sweep.
	fzts := s.fzt[:len(chq)]
	hots := s.hot[:len(chq)]
	e1dcs, e2dcs := s.e1dc[:len(chq)], s.e2dc[:len(chq)]
	aggZs, aggFs := s.aggZ, s.aggF
	fZ, fF := aggZs[from], aggFs[from]
	tZ, tF := aggZs[to], aggFs[to]
	deltas := s.delta
	for p := range aggZs {
		deltas[p] = cdsDelta{
			zf: aggZs[p] - fZ, ff: aggFs[p] - fF,
			zt: aggZs[p] - tZ, ft: aggFs[p] - tF,
		}
	}
	f32, t32 := int32(from), int32(to)
	negInf := math.Inf(-1)
	for pos, p32 := range chq {
		if p32 == f32 || p32 == t32 {
			continue
		}
		d := deltas[p32]
		it := fzts[pos]
		// MoveReduction toward each touched group with the aggregate
		// differences and the 2·f·z term precomputed; same expression,
		// same bits.
		dcF := it.f*d.zf + it.z*d.ff - it.tfz
		dcT := it.f*d.zt + it.z*d.ft - it.tfz
		h := &hots[pos]
		if dcF < h.bdc && dcT < h.bdc {
			// Both fresh values fall strictly below the bound on Δc
			// alone, so neither can enter the list — no candidate
			// construction or destination tie-break needed. At most
			// the list loses entries that point at a touched group.
			// Absent slots hold dest −1 and never match a channel.
			a0, a1, a2 := h.d0, h.d1, h.d2
			if a0 != f32 && a0 != t32 && a1 != f32 && a1 != t32 && a2 != f32 && a2 != t32 {
				// Nothing changes for this item.
				if cd := h.e0dc; cd > champDc {
					champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(a0)
					found = true
				} else if found && foldTie(h.e0dc, int(p32), pos, champDc, champFrom, champPos) {
					champDc, champFrom, champPos, champTo = h.e0dc, int(p32), pos, int(a0)
				}
				continue
			}
			// Filter-only: drop the touched entries. The survivors
			// remain the exact consecutive ≻-top of all destinations —
			// the touched groups' fresh values fall below the bound and
			// hence below every survivor — and the old bound still
			// covers everything unlisted, including those fresh values.
			var sd [3]int32
			var sv [3]float64
			j := 0
			if a0 >= 0 && a0 != f32 && a0 != t32 {
				sd[j], sv[j] = a0, h.e0dc
				j++
			}
			if a1 >= 0 && a1 != f32 && a1 != t32 {
				sd[j], sv[j] = a1, e1dcs[pos]
				j++
			}
			if a2 >= 0 && a2 != f32 && a2 != t32 {
				sd[j], sv[j] = a2, e2dcs[pos]
				j++
			}
			if j == 0 {
				// Every listed entry was invalidated; the new maximum
				// may hide behind any unlisted destination.
				s.recompute(pos)
			} else {
				for ; j < 3; j++ {
					sd[j], sv[j] = -1, negInf
				}
				h.e0dc, h.d0, h.d1, h.d2 = sv[0], sd[0], sd[1], sd[2]
				e1dcs[pos], e2dcs[pos] = sv[1], sv[2]
			}
			if cd := h.e0dc; cd > champDc {
				champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(h.d0)
				found = true
			} else if found && foldTie(cd, int(p32), pos, champDc, champFrom, champPos) {
				champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(h.d0)
			}
			continue
		}
		hi := cdsCandidate{dest: from, dc: dcF}
		lo := cdsCandidate{dest: to, dc: dcT}
		if better(lo, hi) {
			hi, lo = lo, hi
		}
		eD := [3]int32{h.d0, h.d1, h.d2}
		eV := [3]float64{h.e0dc, e1dcs[pos], e2dcs[pos]}
		en := 1
		if eD[1] >= 0 {
			en = 2
			if eD[2] >= 0 {
				en = 3
			}
		}
		bound := cdsCandidate{dest: int(h.bdest), dc: h.bdc}
		if !better(hi, bound) {
			// Reached only when a fresh Δc ties the bound exactly but
			// loses the destination tie-break; if no listed entry is
			// touched either, nothing changes.
			if eD[0] != f32 && eD[0] != t32 && eD[1] != f32 && eD[1] != t32 &&
				eD[2] != f32 && eD[2] != t32 {
				if cd := eV[0]; cd > champDc {
					champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(eD[0])
					found = true
				} else if found && foldTie(cd, int(p32), pos, champDc, champFrom, champPos) {
					champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(eD[0])
				}
				continue
			}
		}
		// General fold: merge the untouched listed entries with
		// {hi, lo} in ≻ order, placing up to three exact entries
		// while they strictly beat the old bound. A fourth merged
		// value that still beats the bound becomes the new bound
		// (it dominates everything dropped); otherwise the old bound
		// keeps covering the remainder.
		ei, fi, out := 0, 0, 0
		ne := [3]cdsCandidate{{-1, negInf}, {-1, negInf}, {-1, negInf}}
		newBound := bound
		for out < 4 {
			for ei < en {
				d := eD[ei]
				if d == f32 || d == t32 {
					ei++
					continue
				}
				break
			}
			var c cdsCandidate
			switch {
			case ei < en && fi < 2:
				fc := hi
				if fi == 1 {
					fc = lo
				}
				c = cdsCandidate{dest: int(eD[ei]), dc: eV[ei]}
				if better(c, fc) {
					ei++
				} else {
					c = fc
					fi++
				}
			case ei < en:
				c = cdsCandidate{dest: int(eD[ei]), dc: eV[ei]}
				ei++
			case fi < 2:
				c = hi
				if fi == 1 {
					c = lo
				}
				fi++
			default:
				c = cdsCandidate{dest: -1, dc: negInf} // exhausted; fails the bound check
			}
			if !better(c, bound) {
				break
			}
			if out < 3 {
				ne[out] = c
			} else {
				newBound = c
			}
			out++
		}
		if out == 0 {
			// The old best was invalidated and the fresh values fall
			// at or below the bound: the new maximum may hide behind
			// any unlisted destination.
			s.recompute(pos)
		} else {
			*h = cdsHot{
				bdc: newBound.dc, e0dc: ne[0].dc,
				d0: int32(ne[0].dest), d1: int32(ne[1].dest), d2: int32(ne[2].dest),
				bdest: int32(newBound.dest),
			}
			e1dcs[pos], e2dcs[pos] = ne[1].dc, ne[2].dc
		}
		if cd := h.e0dc; cd > champDc {
			champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(h.d0)
			found = true
		} else if found && foldTie(cd, int(p32), pos, champDc, champFrom, champPos) {
			champDc, champFrom, champPos, champTo = cd, int(p32), pos, int(h.d0)
		}
	}
	s.champ = Move{Pos: champPos, From: champFrom, To: champTo, Reduction: champDc}
	s.champFound = found
}

// foldTie reports whether an item with best reduction dc in group p at
// position pos steals a champion tie: same Δc, canonically earlier
// (smaller channel, then smaller position) than the current champion.
func foldTie(dc float64, p, pos int, champDc float64, champFrom, champPos int) bool {
	//diverselint:ignore floateq deliberate exact tie-break: equal Δc across items must resolve by (channel, position) exactly like the naive scan order
	return dc == champDc && (p < champFrom || (p == champFrom && pos < champPos))
}

func (s *incrementalSelector) stats() selStats {
	return selStats{scans: s.scans, recomputed: s.recomputed}
}

package core

import "fmt"

// CDS is the paper's Cost-Diminishing Selection mechanism (Section
// 3.2): a steepest-descent local search over single-item moves.
//
// Each iteration evaluates, for every item d_x currently in group D_p
// and every destination group D_q ≠ D_p, the closed-form cost reduction
// of Eq. (4),
//
//	Δc = f_x(Z_p − Z_q) + z_x(F_p − F_q) − 2 f_x z_x,
//
// applies the move with the maximum strictly positive Δc, and repeats
// until no move reduces the cost — the local optimum. A single
// iteration is O(K·N) move evaluations (within the paper's stated
// O(K²N) bound).
type CDS struct {
	// MaxMoves bounds the number of applied moves; 0 means no bound
	// beyond Epsilon-driven termination. Cost strictly decreases by
	// more than Epsilon per move and is bounded below by zero, so
	// termination is guaranteed either way.
	MaxMoves int
	// Epsilon is the minimum Δc for a move to be applied, guarding
	// against floating-point non-termination. Zero selects a default
	// scaled to the problem (1e-12 × initial cost, floored at 1e-300).
	Epsilon float64
}

var _ Refiner = (*CDS)(nil)

// NewCDS returns a CDS refiner with default settings.
func NewCDS() *CDS { return &CDS{} }

// Name implements Refiner.
func (*CDS) Name() string { return "CDS" }

// Move records one applied CDS move for tracing (the paper's Table 4).
type Move struct {
	Pos        int     // database position of the moved item
	From, To   int     // channel indices
	Reduction  float64 // the Δc of Eq. (4)
	CostBefore float64
	CostAfter  float64
}

// Refine implements Refiner. The input allocation is not mutated.
func (c *CDS) Refine(a *Allocation) (*Allocation, error) {
	out, _, err := c.refine(a, false)
	return out, err
}

// RefineWithTrace is Refine but also returns every applied move in
// order, used by the paper-table reproduction and by tests.
func (c *CDS) RefineWithTrace(a *Allocation) (*Allocation, []Move, error) {
	return c.refine(a, true)
}

func (c *CDS) refine(a *Allocation, wantTrace bool) (*Allocation, []Move, error) {
	if err := a.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: CDS input: %w", err)
	}
	cur := a.Clone()
	db := cur.Database()
	k := cur.K()
	agg := cur.Aggregates()

	eps := c.Epsilon
	if eps == 0 {
		if init := Cost(cur); init > 0 {
			eps = 1e-12 * init
		} else {
			eps = 1e-300
		}
	}

	start := timeNow()
	var moves []Move
	applied := 0
	cost := Cost(cur)
	for {
		// Bound on applied moves, not trace length: Refine (no trace)
		// must honor MaxMoves too.
		if c.MaxMoves > 0 && applied >= c.MaxMoves {
			break
		}

		// Scan all (item, destination) pairs in the paper's order —
		// groups by channel index, items by database position within
		// the group, destinations by channel index — keeping only a
		// strictly larger Δc, so the selected move is deterministic.
		best := Move{Reduction: 0}
		found := false
		for p := 0; p < k; p++ {
			for pos := 0; pos < db.Len(); pos++ {
				if cur.ChannelOf(pos) != p {
					continue
				}
				it := db.Item(pos)
				for q := 0; q < k; q++ {
					if q == p {
						continue
					}
					dc := MoveReduction(it, agg[p], agg[q])
					if dc > best.Reduction {
						best = Move{Pos: pos, From: p, To: q, Reduction: dc}
						found = true
					}
				}
			}
		}
		if !found || best.Reduction <= eps {
			break
		}

		cur.move(best.Pos, best.To)
		// Reconcile instead of tracking incrementally: rebuild the two
		// touched groups from the allocation in the same accumulation
		// order Aggregates uses. Untouched groups were exact before the
		// move, so by induction agg stays bit-for-bit equal to a fresh
		// Aggregates() call, and the trace's CostBefore/CostAfter stay
		// exactly Cost(cur) instead of drifting away from it (one
		// subtraction at a time) over long refinements. O(N) per
		// applied move, dominated by the O(K·N) scan above.
		agg[best.From], agg[best.To] = GroupAgg{}, GroupAgg{}
		for pos := 0; pos < db.Len(); pos++ {
			c := cur.ChannelOf(pos)
			if c != best.From && c != best.To {
				continue
			}
			it := db.Item(pos)
			agg[c].F += it.Freq
			agg[c].Z += it.Size
			agg[c].N++
		}
		var newCost float64
		for _, g := range agg {
			newCost += g.Cost()
		}

		applied++
		if wantTrace {
			best.CostBefore = cost
			best.CostAfter = newCost
			moves = append(moves, best)
		}
		cost = newCost
	}
	cdsRefinements.Inc()
	cdsMoves.Add(int64(applied))
	cdsSeconds.Observe(timeNow().Sub(start).Seconds())
	return cur, moves, nil
}

package core

import (
	"math"
	"testing"

	"diversecast/internal/obs/trace"
)

// tracedPaperRun runs DRP (max-reduction) and CDS over the paper's
// worked example with an injected deterministic tracer and returns the
// snapshot alongside the algorithm-level traces.
func tracedPaperRun(t *testing.T) (trace.Snapshot, *Trace, []Move) {
	t.Helper()
	clk := &trace.ManualClock{}
	tr := trace.New(trace.Config{Capacity: 256, Clock: clk, RunID: "paper-example"})

	db := PaperExampleDatabase()
	d := &DRP{Policy: PolicyMaxReduction, Tracer: tr}
	a, hist, err := d.AllocateWithTrace(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	c := &CDS{Tracer: tr}
	_, moves, err := c.RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Snapshot(), hist, moves
}

// TestDRPTraceSpansPinTable3Sequence is the golden test for the
// tentpole: the span stream emitted under the max-reduction policy
// must replay the paper's Table 3 split sequence — same order, same
// ranges, same costs — and stay consistent with AllocateWithTrace.
func TestDRPTraceSpansPinTable3Sequence(t *testing.T) {
	snap, hist, _ := tracedPaperRun(t)

	splits := snap.Named("drp_split")
	if len(splits) != PaperExampleK-1 {
		t.Fatalf("captured %d drp_split spans, want %d", len(splits), PaperExampleK-1)
	}

	// Spans mirror the algorithm trace step for step.
	for i, rec := range splits {
		step := hist.Steps[i]
		lo, _ := rec.Attr("lo")
		hi, _ := rec.Attr("hi")
		cut, _ := rec.Attr("cut")
		if int(lo.Int) != step.Popped.Lo || int(hi.Int) != step.Popped.Hi || int(cut.Int) != step.Left.Hi {
			t.Errorf("split %d span range [%d,%d) cut %d, trace says [%d,%d) cut %d",
				i, lo.Int, hi.Int, cut.Int, step.Popped.Lo, step.Popped.Hi, step.Left.Hi)
		}
		cost, _ := rec.Attr("cost")
		if cost.Float != step.Popped.Cost {
			t.Errorf("split %d span cost %v, trace cost %v", i, cost.Float, step.Popped.Cost)
		}
		left, _ := rec.Attr("left_cost")
		right, _ := rec.Attr("right_cost")
		delta, _ := rec.Attr("delta")
		if left.Float != step.Left.Cost || right.Float != step.Right.Cost {
			t.Errorf("split %d halves (%v, %v), trace (%v, %v)",
				i, left.Float, right.Float, step.Left.Cost, step.Right.Cost)
		}
		if want := step.Popped.Cost - (step.Left.Cost + step.Right.Cost); delta.Float != want {
			t.Errorf("split %d delta %v, want %v", i, delta.Float, want)
		}
	}

	// Table 3 literals, independent of the algorithm trace: the first
	// split cuts cost 135.60 into 29.04 + 28.62, the second pops the
	// 29.04 group into 7.02 + 6.82.
	wantRows := []struct{ cost, left, right float64 }{
		{135.60, 29.04, 28.62},
		{29.04, 7.02, 6.82},
	}
	for i, want := range wantRows {
		cost, _ := splits[i].Attr("cost")
		left, _ := splits[i].Attr("left_cost")
		right, _ := splits[i].Attr("right_cost")
		if math.Abs(cost.Float-want.cost) > paperTol ||
			math.Abs(left.Float-want.left) > paperTol ||
			math.Abs(right.Float-want.right) > paperTol {
			t.Errorf("Table 3 row %d: span says %.4f → %.4f + %.4f, want %.2f → %.2f + %.2f",
				i, cost.Float, left.Float, right.Float, want.cost, want.left, want.right)
		}
	}

	// Every split parents to the one drp_allocate root span.
	roots := snap.Named("drp_allocate")
	if len(roots) != 1 {
		t.Fatalf("captured %d drp_allocate spans, want 1", len(roots))
	}
	for i, rec := range splits {
		if rec.Parent != roots[0].Span {
			t.Errorf("split %d parent %d, want root span %d", i, rec.Parent, roots[0].Span)
		}
	}
	if pol, _ := roots[0].Attr("policy"); pol.Str != "max-reduction" {
		t.Errorf("root policy attr = %+v", pol)
	}
	if cost, _ := roots[0].Attr("cost"); math.Abs(cost.Float-24.09) > paperTol {
		t.Errorf("root final cost %v, want 24.09 (Table 4(a))", cost.Float)
	}
}

// TestCDSTraceSpansMirrorMoves checks the cds_move spans: one per
// applied move, Eq. 4 delta and src/dst groups as attrs, tagged with
// the strategy, parented to a single cds_refine root, all in the same
// run as the DRP spans.
func TestCDSTraceSpansMirrorMoves(t *testing.T) {
	snap, _, moves := tracedPaperRun(t)

	if snap.RunID != "paper-example" {
		t.Fatalf("snapshot run ID = %q", snap.RunID)
	}
	recs := snap.Named("cds_move")
	if len(recs) != len(moves) {
		t.Fatalf("captured %d cds_move spans, want %d applied moves", len(recs), len(moves))
	}
	roots := snap.Named("cds_refine")
	if len(roots) != 1 {
		t.Fatalf("captured %d cds_refine spans, want 1", len(roots))
	}
	for i, rec := range recs {
		m := moves[i]
		pos, _ := rec.Attr("pos")
		src, _ := rec.Attr("src")
		dst, _ := rec.Attr("dst")
		delta, _ := rec.Attr("delta")
		after, _ := rec.Attr("cost_after")
		if int(pos.Int) != m.Pos || int(src.Int) != m.From || int(dst.Int) != m.To {
			t.Errorf("move %d span d?@%d ch%d→ch%d, trace %d ch%d→ch%d",
				i, pos.Int, src.Int, dst.Int, m.Pos, m.From, m.To)
		}
		if delta.Float != m.Reduction || after.Float != m.CostAfter {
			t.Errorf("move %d span Δc=%v after=%v, trace Δc=%v after=%v",
				i, delta.Float, after.Float, m.Reduction, m.CostAfter)
		}
		if strat, _ := rec.Attr("strategy"); strat.Str != "incremental" {
			t.Errorf("move %d strategy tag = %+v", i, strat)
		}
		if rec.Parent != roots[0].Span {
			t.Errorf("move %d parent %d, want refine span %d", i, rec.Parent, roots[0].Span)
		}
	}
	if mvs, _ := roots[0].Attr("moves"); int(mvs.Int) != len(moves) {
		t.Errorf("refine moves attr = %d, want %d", mvs.Int, len(moves))
	}
}

// TestAllocatorsQuietWithoutTracer: with no tracer injected and the
// process-wide default disabled, instrumented runs record nothing.
func TestAllocatorsQuietWithoutTracer(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewDRP().Allocate(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCDS().Refine(a); err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Default().Snapshot().Records); n != 0 {
		t.Fatalf("default tracer captured %d records while disabled", n)
	}
}

package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDRPChannelCountValidation(t *testing.T) {
	db := PaperExampleDatabase()
	for _, k := range []int{0, -1, db.Len() + 1} {
		if _, err := NewDRP().Allocate(db, k); !errors.Is(err, ErrBadChannelCount) {
			t.Errorf("K=%d: error = %v, want ErrBadChannelCount", k, err)
		}
	}
}

func TestDRPKEqualsOne(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewDRP().Allocate(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < db.Len(); pos++ {
		if a.ChannelOf(pos) != 0 {
			t.Fatalf("K=1 allocation put item %d on channel %d", pos, a.ChannelOf(pos))
		}
	}
	if got := Cost(a); math.Abs(got-db.TotalFreq()*db.TotalSize()) > 1e-9 {
		t.Fatalf("K=1 cost = %v, want F·Z = %v", got, db.TotalFreq()*db.TotalSize())
	}
}

func TestDRPKEqualsN(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewDRP().Allocate(db, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for pos := 0; pos < db.Len(); pos++ {
		c := a.ChannelOf(pos)
		if seen[c] {
			t.Fatalf("K=N allocation put two items on channel %d", c)
		}
		seen[c] = true
	}
	// With every item alone, cost = Σ f_j z_j = downloadMass.
	if got := Cost(a); math.Abs(got-db.DownloadMass()) > 1e-9 {
		t.Fatalf("K=N cost = %v, want downloadMass = %v", got, db.DownloadMass())
	}
}

func TestDRPDeterministic(t *testing.T) {
	db := randomDatabase(t, 123, 60)
	for _, d := range []*DRP{NewDRP(), NewDRPExampleConsistent()} {
		a, err := d.Allocate(db, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Allocate(db, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("policy %v: repeated runs differ", d.Policy)
		}
	}
}

// Property: DRP groups are contiguous runs of the br-sorted order —
// the defining structural property of dimension reduction.
func TestDRPGroupsAreContiguousInBenefitOrder(t *testing.T) {
	check := func(seed uint16, rawN uint8, rawK uint8, exampleConsistent bool) bool {
		n := int(rawN)%40 + 1
		k := int(rawK)%n + 1
		db := randomDatabase(t, int(seed), n)
		d := NewDRP()
		if exampleConsistent {
			d = NewDRPExampleConsistent()
		}
		a, err := d.Allocate(db, k)
		if err != nil || a.Validate() != nil {
			return false
		}
		order := db.ByBenefitRatio()
		// Walking the sorted order, the channel id may change but must
		// never revisit an earlier channel.
		visited := make(map[int]bool)
		prev := -1
		for _, pos := range order {
			c := a.ChannelOf(pos)
			if c != prev {
				if visited[c] {
					return false
				}
				visited[c] = true
				prev = c
			}
		}
		return len(visited) == k
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: every DRP split is locally optimal — recombining any two
// adjacent result groups and re-splitting at the recorded cut never
// beats the cut DRP chose within that popped group.
func TestDRPSplitIsOptimalCut(t *testing.T) {
	db := randomDatabase(t, 7, 50)
	_, tr, err := NewDRP().AllocateWithTrace(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute prefix sums independently.
	n := db.Len()
	pf := make([]float64, n+1)
	pz := make([]float64, n+1)
	for i, pos := range tr.Order {
		it := db.Item(pos)
		pf[i+1] = pf[i] + it.Freq
		pz[i+1] = pz[i] + it.Size
	}
	cost := func(lo, hi int) float64 { return (pf[hi] - pf[lo]) * (pz[hi] - pz[lo]) }

	for i, s := range tr.Steps {
		chosen := s.Left.Cost + s.Right.Cost
		for p := s.Popped.Lo + 1; p < s.Popped.Hi; p++ {
			if alt := cost(s.Popped.Lo, p) + cost(p, s.Popped.Hi); alt < chosen-1e-9 {
				t.Fatalf("step %d: cut at %d gives %v, beats chosen %v", i, p, alt, chosen)
			}
		}
		if math.Abs(s.Popped.Cost-cost(s.Popped.Lo, s.Popped.Hi)) > 1e-9 {
			t.Fatalf("step %d: recorded popped cost mismatch", i)
		}
	}
}

// Property: DRP with the max-cost policy always pops the current
// maximum-cost group (checked via the trace).
func TestDRPMaxCostPolicyPopsMaximum(t *testing.T) {
	db := randomDatabase(t, 99, 40)
	_, tr, err := NewDRP().AllocateWithTrace(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the queue contents alongside the trace.
	live := map[GroupRange]bool{tr.Init: true}
	for i, s := range tr.Steps {
		for g := range live {
			splittable := g.Hi-g.Lo >= 2
			if splittable && g.Cost > s.Popped.Cost+1e-9 {
				t.Fatalf("step %d popped cost %v while %v was queued", i, s.Popped.Cost, g.Cost)
			}
		}
		delete(live, s.Popped)
		live[s.Left] = true
		live[s.Right] = true
	}
}

// Property: each split strictly reduces (or preserves) total cost, so
// DRP's final cost is monotone non-increasing in K.
func TestDRPCostMonotoneInK(t *testing.T) {
	db := randomDatabase(t, 5, 80)
	prev := math.Inf(1)
	for k := 1; k <= 16; k++ {
		a, err := NewDRP().Allocate(db, k)
		if err != nil {
			t.Fatal(err)
		}
		c := Cost(a)
		if c > prev+1e-9 {
			t.Fatalf("K=%d cost %v exceeds K=%d cost %v", k, c, k-1, prev)
		}
		prev = c
	}
}

func TestDRPHandlesUniformItems(t *testing.T) {
	// All items identical (Φ=0 with flat frequencies): DRP must still
	// produce K valid groups.
	items := make([]Item, 12)
	for i := range items {
		items[i] = Item{ID: i, Freq: 1.0 / 12, Size: 1}
	}
	db := MustNewDatabase(items)
	for k := 1; k <= 12; k++ {
		a, err := NewDRP().Allocate(db, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		groups := a.Groups()
		nonEmpty := 0
		for _, g := range groups {
			if len(g) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty != k {
			t.Fatalf("K=%d: %d non-empty groups", k, nonEmpty)
		}
	}
}

func TestSplitPolicyString(t *testing.T) {
	if PolicyMaxCost.String() != "max-cost" || PolicyMaxReduction.String() != "max-reduction" {
		t.Error("SplitPolicy.String mismatch")
	}
	if SplitPolicy(99).String() != "unknown" {
		t.Error("unknown policy should stringify as unknown")
	}
}

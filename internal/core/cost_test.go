package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostMatchesBruteForce(t *testing.T) {
	check := func(seed uint16, rawN uint8, rawK uint8) bool {
		n := int(rawN)%30 + 2
		k := int(rawK)%n + 1
		db := randomDatabase(t, int(seed), n)
		a := randomAllocation(t, db, k, int(seed)+1)
		return math.Abs(Cost(a)-bruteForceCost(a)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitingTimeDecomposition(t *testing.T) {
	// W_b must equal cost/(2b) + downloadMass/b for any allocation.
	db := PaperExampleDatabase()
	a := randomAllocation(t, db, 5, 3)
	const b = 10.0
	want := Cost(a)/(2*b) + db.DownloadMass()/b
	if got := WaitingTime(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WaitingTime = %v, want %v", got, want)
	}
}

func TestWaitingTimeIsChannelAverage(t *testing.T) {
	// Eq. (2) is the frequency-weighted mean of the per-channel
	// Eq. (1) averages: W_b = Σ_i F_i · W^(i).
	db := PaperExampleDatabase()
	const b = 10.0
	for seed := 0; seed < 5; seed++ {
		a := randomAllocation(t, db, 4, seed)
		agg := a.Aggregates()
		var weighted float64
		for c := 0; c < a.K(); c++ {
			weighted += agg[c].F * ChannelWaitingTime(a, c, b)
		}
		if got := WaitingTime(a, b); math.Abs(got-weighted) > 1e-9 {
			t.Fatalf("seed %d: W_b = %v, Σ F_i W^(i) = %v", seed, got, weighted)
		}
	}
}

func TestItemWaitingTimeMatchesEq1(t *testing.T) {
	// Eq. (1): item wait = Z_channel/(2b) + z_item/b. The channel
	// average must also be the frequency-weighted mean of item waits.
	db := PaperExampleDatabase()
	const b = 10.0
	a := randomAllocation(t, db, 3, 11)
	agg := a.Aggregates()
	for pos := 0; pos < db.Len(); pos++ {
		c := a.ChannelOf(pos)
		want := agg[c].Z/(2*b) + db.Item(pos).Size/b
		if got := ItemWaitingTime(a, pos, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("item %d wait = %v, want %v", pos, got, want)
		}
	}
	for c := 0; c < a.K(); c++ {
		var num, den float64
		for pos := 0; pos < db.Len(); pos++ {
			if a.ChannelOf(pos) == c {
				num += db.Item(pos).Freq * ItemWaitingTime(a, pos, b)
				den += db.Item(pos).Freq
			}
		}
		if den == 0 {
			continue
		}
		if got := ChannelWaitingTime(a, c, b); math.Abs(got-num/den) > 1e-9 {
			t.Fatalf("channel %d wait = %v, want weighted mean %v", c, got, num/den)
		}
	}
}

func TestEmptyChannelWaitingTimeIsZero(t *testing.T) {
	db := MustNewDatabase([]Item{{ID: 1, Freq: 1, Size: 5}, {ID: 2, Freq: 1, Size: 5}})
	a, err := NewAllocation(db, 2, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := ChannelWaitingTime(a, 1, 10); got != 0 {
		t.Fatalf("empty channel waiting time = %v, want 0", got)
	}
}

func TestCycleLength(t *testing.T) {
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 0.5, Size: 30},
		{ID: 2, Freq: 0.5, Size: 20},
	})
	a, err := NewAllocation(db, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := CycleLength(a, 0, 10); got != 3 {
		t.Fatalf("cycle 0 = %v, want 3", got)
	}
	if got := CycleLength(a, 1, 10); got != 2 {
		t.Fatalf("cycle 1 = %v, want 2", got)
	}
}

// Property: the closed-form Δc of Eq. (4) equals the recomputed cost
// difference for every possible move, on random instances.
func TestMoveReductionMatchesRecomputation(t *testing.T) {
	check := func(seed uint16, rawN uint8, rawK uint8) bool {
		n := int(rawN)%20 + 2
		k := int(rawK)%n + 1
		if k < 2 {
			k = 2
		}
		if k > n {
			k = n
		}
		db := randomDatabase(t, int(seed), n)
		a := randomAllocation(t, db, k, int(seed)+42)
		agg := a.Aggregates()
		before := Cost(a)
		for pos := 0; pos < n; pos++ {
			p := a.ChannelOf(pos)
			for q := 0; q < k; q++ {
				if q == p {
					continue
				}
				predicted := MoveReduction(db.Item(pos), agg[p], agg[q])
				moved := a.Clone()
				moved.move(pos, q)
				actual := before - Cost(moved)
				if math.Abs(predicted-actual) > 1e-9*(1+math.Abs(before)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two groups never decreases cost below the split
// version's total minus cross terms — concretely, cost is always
// nonnegative and bounded by totalF × totalZ (the single-group cost is
// the worst case of any refinement chain).
func TestCostBounds(t *testing.T) {
	check := func(seed uint16, rawN uint8, rawK uint8) bool {
		n := int(rawN)%30 + 1
		k := int(rawK)%n + 1
		db := randomDatabase(t, int(seed), n)
		a := randomAllocation(t, db, k, int(seed)+5)
		c := Cost(a)
		return c >= 0 && c <= db.TotalFreq()*db.TotalSize()+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is a single broadcast data item. Freq is the item's access
// probability mass (the paper's f) and Size its length in size units
// (the paper's z). ID identifies the item within its Database and is
// preserved by every transformation in this module.
type Item struct {
	ID   int     `json:"id"`
	Freq float64 `json:"freq"`
	Size float64 `json:"size"`
}

// BenefitRatio returns the paper's br value f/z: access probability per
// size unit. Items with a high benefit ratio belong on short-cycle
// channels.
func (it Item) BenefitRatio() float64 { return it.Freq / it.Size }

// Database is an immutable collection of broadcast items. Construct one
// with NewDatabase; the zero value is an empty database.
type Database struct {
	items []Item

	totalFreq    float64
	totalSize    float64
	downloadMass float64 // Σ f_j · z_j, the allocation-independent term
}

// Validation errors returned by NewDatabase.
var (
	ErrEmptyDatabase = errors.New("core: database has no items")
	ErrBadFreq       = errors.New("core: item frequency must be positive and finite")
	ErrBadSize       = errors.New("core: item size must be positive and finite")
	ErrDuplicateID   = errors.New("core: duplicate item id")
)

// NewDatabase builds a database from items. It copies the slice, so the
// caller may reuse it. Frequencies and sizes must be positive and
// finite and IDs unique; frequencies need not sum to one (see
// Normalized).
//
//diverselint:coldpath one-time validated construction; the database is immutable afterwards
func NewDatabase(items []Item) (*Database, error) {
	if len(items) == 0 {
		return nil, ErrEmptyDatabase
	}
	db := &Database{items: make([]Item, len(items))}
	copy(db.items, items)
	seen := make(map[int]struct{}, len(items))
	for _, it := range db.items {
		if _, dup := seen[it.ID]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateID, it.ID)
		}
		seen[it.ID] = struct{}{}
		if !(it.Freq > 0) || math.IsInf(it.Freq, 0) {
			return nil, fmt.Errorf("%w: item %d has freq %v", ErrBadFreq, it.ID, it.Freq)
		}
		if !(it.Size > 0) || math.IsInf(it.Size, 0) {
			return nil, fmt.Errorf("%w: item %d has size %v", ErrBadSize, it.ID, it.Size)
		}
		db.totalFreq += it.Freq
		db.totalSize += it.Size
		db.downloadMass += it.Freq * it.Size
	}
	return db, nil
}

// MustNewDatabase is NewDatabase but panics on error. It is intended
// for tests and package examples with hard-coded inputs.
func MustNewDatabase(items []Item) *Database {
	db, err := NewDatabase(items)
	if err != nil {
		panic(err)
	}
	return db
}

// Len reports the number of items N.
func (db *Database) Len() int { return len(db.items) }

// Item returns the item at position i (0 ≤ i < Len).
func (db *Database) Item(i int) Item { return db.items[i] }

// Items returns a copy of all items in database order.
func (db *Database) Items() []Item {
	out := make([]Item, len(db.items))
	copy(out, db.items)
	return out
}

// TotalFreq is the sum of all access frequencies. For a well-formed
// broadcast profile it is 1.
func (db *Database) TotalFreq() float64 { return db.totalFreq }

// TotalSize is the aggregate size of the database Σ z_j.
func (db *Database) TotalSize() float64 { return db.totalSize }

// DownloadMass is Σ f_j·z_j, the allocation-independent component of
// the waiting time (the expected download length of one request).
func (db *Database) DownloadMass() float64 { return db.downloadMass }

// Normalized returns a database with the same items whose frequencies
// are rescaled to sum to one. If they already do, the receiver is
// returned unchanged.
func (db *Database) Normalized() *Database {
	if math.Abs(db.totalFreq-1) < 1e-12 {
		return db
	}
	items := db.Items()
	for i := range items {
		items[i].Freq /= db.totalFreq
	}
	out, err := NewDatabase(items)
	if err != nil {
		// Unreachable: scaling positive finite values by a positive
		// constant preserves validity.
		panic(err)
	}
	return out
}

// ByBenefitRatio returns the item positions sorted by benefit ratio in
// descending order, the order DRP consumes. Ties break by ascending
// position so the order is deterministic.
func (db *Database) ByBenefitRatio() []int {
	idx := make([]int, len(db.items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return db.items[idx[a]].BenefitRatio() > db.items[idx[b]].BenefitRatio()
	})
	return idx
}

// ByFreq returns the item positions sorted by access frequency in
// descending order, the order conventional (equal-size) allocators such
// as VF^K consume. Ties break by ascending position.
func (db *Database) ByFreq() []int {
	idx := make([]int, len(db.items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return db.items[idx[a]].Freq > db.items[idx[b]].Freq
	})
	return idx
}

// MeanSize is the average item size.
func (db *Database) MeanSize() float64 {
	return db.totalSize / float64(len(db.items))
}

// Frequencies returns every item's access frequency in database
// order — the profile an allocation over this database was solved
// for, in the shape estimators and drift scorers consume.
func (db *Database) Frequencies() []float64 {
	f := make([]float64, len(db.items))
	for i, it := range db.items {
		f[i] = it.Freq
	}
	return f
}

// IndexByID returns a map from item ID to database position.
//
//diverselint:coldpath O(N) lookup-table build for clients and tests, not per-access
func (db *Database) IndexByID() map[int]int {
	m := make(map[int]int, len(db.items))
	for i, it := range db.items {
		m[it.ID] = i
	}
	return m
}

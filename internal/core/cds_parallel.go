package core

import (
	"math"

	"diversecast/internal/pool"
)

// Size thresholds below which StrategyParallel's sweeps stay serial:
// goroutine handoff costs ~1µs, so sharding only pays once a sweep
// has thousands of items. The decision depends only on sizes — never
// on scheduling — so the engine stays deterministic. CDS.forceShard
// (tests only) overrides both to zero.
const (
	// cdsParallelMinItems is the smallest whole-database merge sweep
	// worth sharding.
	cdsParallelMinItems = 4096
	// cdsParallelMinGroup is the smallest touched-group rescan worth
	// sharding.
	cdsParallelMinGroup = 1024
)

// cdsShardChamp is one shard's champion under the canonical CDS move
// order (Δc descending, then source channel ascending, then position
// ascending). That order is total — (channel, position) is unique per
// item — so folding per-shard champions in fixed shard order yields
// exactly the champion a serial sweep over the same items finds,
// regardless of worker count.
type cdsShardChamp struct {
	dc    float64
	from  int
	pos   int
	to    int
	found bool
}

// foldChamp folds one candidate into c under the canonical order.
// Only strictly positive Δc can become champion (matching the naive
// scan, which starts from a zero-reduction sentinel).
func foldChamp(c *cdsShardChamp, dc float64, from, pos, to int) {
	if dc > c.dc {
		*c = cdsShardChamp{dc: dc, from: from, pos: pos, to: to, found: true}
		return
	}
	//diverselint:ignore floateq deliberate exact tie-break: equal Δc across items must resolve by (channel, position) exactly like the naive scan order
	if c.found && dc == c.dc && (from < c.from || (from == c.from && pos < c.pos)) {
		*c = cdsShardChamp{dc: dc, from: from, pos: pos, to: to, found: true}
	}
}

// reduceChamp folds a shard champion into the running champion. Shard
// champions carry dc > 0 whenever found, so foldChamp's zero sentinel
// never collides with a real candidate.
func reduceChamp(dst *cdsShardChamp, src cdsShardChamp) {
	if !src.found {
		return
	}
	foldChamp(dst, src.dc, src.from, src.pos, src.to)
}

// parallelSelector is the incremental selector with its three per-move
// sweeps — the two touched-group rescans and the whole-database merge
// sweep — sharded across a bounded by-index worker pool. Each shard
// owns a contiguous position range, writes only its own items' table
// slots plus its own champion/counter slot, and the shard champions
// are reduced in shard order, so the selected move is bit-for-bit the
// serial engine's at any worker count. Sweeps below the size
// thresholds delegate to the embedded serial path.
type parallelSelector struct {
	incrementalSelector
	workers  int
	minItems int
	minGroup int
	// Per-shard reduction slots, sized workers once per refinement.
	// The rare in-sweep full recomputes use scanTop4Direct, which needs
	// no scratch, so shards share nothing writable but their own slots.
	champs    []cdsShardChamp
	recomp    []int64
	parSweeps int64
}

func newParallelSelector(cur *Allocation, agg []GroupAgg, t *cdsTables, workers int, forceShard bool) *parallelSelector {
	s := &parallelSelector{
		incrementalSelector: *newIncrementalSelector(cur, agg, t),
		workers:             workers,
		minItems:            cdsParallelMinItems,
		minGroup:            cdsParallelMinGroup,
	}
	if forceShard {
		s.minItems, s.minGroup = 0, 0
	}
	if s.workers > 1 {
		s.champs = make([]cdsShardChamp, s.workers)
		s.recomp = make([]int64, s.workers)
	}
	return s
}

//diverselint:hotpath per-move sharded sweep dispatch
func (s *parallelSelector) applied(m Move) {
	if s.workers <= 1 || len(s.chq) < s.minItems {
		s.incrementalSelector.applied(m)
		return
	}
	s.parSweeps++
	from, to := m.From, m.To
	// refine reconciled agg before notifying us; refresh the shadows.
	s.aggZ[from], s.aggF[from] = s.agg[from].Z, s.agg[from].F
	s.aggZ[to], s.aggF[to] = s.agg[to].Z, s.agg[to].F
	s.chq[m.Pos] = int32(to)

	W := s.workers
	best := cdsShardChamp{}

	// Phases 1–2: the two touched groups. Their members' source
	// aggregates changed, so every cached Δc of theirs is stale —
	// full recompute over all K destinations. fillDeltas runs serially
	// per group; the workers then read the selector-wide scratch
	// without writing it.
	for _, g := range [2]int{from, to} {
		s.fillDeltas(g)
		members := s.cur.ChannelPositions(g)
		if len(members) < s.minGroup {
			for _, pos := range members {
				s.scanTop4Into(pos, s.dzs, s.dfs)
				h := &s.hot[pos]
				foldChamp(&best, h.e0dc, g, pos, int(h.d0))
			}
			s.recomputed += int64(len(members))
			continue
		}
		//diverselint:ignore loopalloc,hotalloc one closure header per parallel member sweep is the dispatch cost of sharding; the sweep itself is allocation-free
		pool.RunRanges(W, W, len(members), func(shard, lo, hi int) {
			c := cdsShardChamp{}
			for _, pos := range members[lo:hi] {
				s.scanTop4Into(pos, s.dzs, s.dfs)
				h := &s.hot[pos]
				foldChamp(&c, h.e0dc, g, pos, int(h.d0))
			}
			s.champs[shard] = c
		})
		for i := 0; i < W; i++ {
			reduceChamp(&best, s.champs[i])
		}
		s.recomputed += int64(len(members))
	}

	// Phase 3: the merge sweep over every other item. The per-(group,
	// move) aggregate differences are hoisted serially, then each
	// shard runs the same merge loop the serial engine uses over its
	// own position range with its own scratch and champion slot.
	aggZs, aggFs := s.aggZ, s.aggF
	fZ, fF := aggZs[from], aggFs[from]
	tZ, tF := aggZs[to], aggFs[to]
	deltas := s.delta
	for p := range aggZs {
		deltas[p] = cdsDelta{
			zf: aggZs[p] - fZ, ff: aggFs[p] - fF,
			zt: aggZs[p] - tZ, ft: aggFs[p] - tF,
		}
	}
	n := len(s.chq)
	//diverselint:ignore hotalloc one closure header per sharded merge sweep is the dispatch cost of parallelism; mergeRange itself is allocation-free
	pool.RunRanges(W, W, n, func(shard, lo, hi int) {
		s.champs[shard], s.recomp[shard] = s.mergeRange(lo, hi, from, to)
	})
	for i := 0; i < W; i++ {
		reduceChamp(&best, s.champs[i])
		s.recomputed += s.recomp[i]
	}

	s.champ = Move{Pos: best.pos, From: best.from, To: best.to, Reduction: best.dc}
	s.champFound = best.found
}

// mergeRange is the merge loop of incrementalSelector.applied over
// the position range [lo, hi), with the champion folded into a local
// slot and full recomputes fused through scanTop4Direct (no scratch).
// The candidate algebra is kept in lockstep with the serial loop —
// same expressions, same bits; the differential and fuzz tests pin
// the two together. It returns the range's champion and the number of
// full recomputes.
func (s *parallelSelector) mergeRange(lo, hi, from, to int) (cdsShardChamp, int64) {
	var champ cdsShardChamp
	var recomp int64
	chq := s.chq
	fzts := s.fzt[:len(chq)]
	hots := s.hot[:len(chq)]
	e1dcs, e2dcs := s.e1dc[:len(chq)], s.e2dc[:len(chq)]
	deltas := s.delta
	f32, t32 := int32(from), int32(to)
	negInf := math.Inf(-1)
	for pos := lo; pos < hi; pos++ {
		p32 := chq[pos]
		if p32 == f32 || p32 == t32 {
			continue
		}
		d := deltas[p32]
		it := fzts[pos]
		// MoveReduction toward each touched group with the aggregate
		// differences and the 2·f·z term precomputed; same expression,
		// same bits.
		dcF := it.f*d.zf + it.z*d.ff - it.tfz
		dcT := it.f*d.zt + it.z*d.ft - it.tfz
		h := &hots[pos]
		if dcF < h.bdc && dcT < h.bdc {
			// Both fresh values fall strictly below the bound: at most
			// the list loses entries that point at a touched group.
			a0, a1, a2 := h.d0, h.d1, h.d2
			if a0 != f32 && a0 != t32 && a1 != f32 && a1 != t32 && a2 != f32 && a2 != t32 {
				foldChamp(&champ, h.e0dc, int(p32), pos, int(a0))
				continue
			}
			var sd [3]int32
			var sv [3]float64
			j := 0
			if a0 >= 0 && a0 != f32 && a0 != t32 {
				sd[j], sv[j] = a0, h.e0dc
				j++
			}
			if a1 >= 0 && a1 != f32 && a1 != t32 {
				sd[j], sv[j] = a1, e1dcs[pos]
				j++
			}
			if a2 >= 0 && a2 != f32 && a2 != t32 {
				sd[j], sv[j] = a2, e2dcs[pos]
				j++
			}
			if j == 0 {
				// Every listed entry was invalidated; rescan over all
				// destinations.
				s.scanTop4Direct(pos, int(p32))
				recomp++
			} else {
				for ; j < 3; j++ {
					sd[j], sv[j] = -1, negInf
				}
				h.e0dc, h.d0, h.d1, h.d2 = sv[0], sd[0], sd[1], sd[2]
				e1dcs[pos], e2dcs[pos] = sv[1], sv[2]
			}
			foldChamp(&champ, h.e0dc, int(p32), pos, int(h.d0))
			continue
		}
		hi2 := cdsCandidate{dest: from, dc: dcF}
		lo2 := cdsCandidate{dest: to, dc: dcT}
		if better(lo2, hi2) {
			hi2, lo2 = lo2, hi2
		}
		eD := [3]int32{h.d0, h.d1, h.d2}
		eV := [3]float64{h.e0dc, e1dcs[pos], e2dcs[pos]}
		en := 1
		if eD[1] >= 0 {
			en = 2
			if eD[2] >= 0 {
				en = 3
			}
		}
		bound := cdsCandidate{dest: int(h.bdest), dc: h.bdc}
		if !better(hi2, bound) {
			// A fresh Δc ties the bound exactly but loses the
			// destination tie-break; if no listed entry is touched
			// either, nothing changes.
			if eD[0] != f32 && eD[0] != t32 && eD[1] != f32 && eD[1] != t32 &&
				eD[2] != f32 && eD[2] != t32 {
				foldChamp(&champ, eV[0], int(p32), pos, int(eD[0]))
				continue
			}
		}
		// General fold: merge the untouched listed entries with
		// {hi2, lo2} in ≻ order — see incrementalSelector.applied.
		ei, fi, out := 0, 0, 0
		ne := [3]cdsCandidate{{-1, negInf}, {-1, negInf}, {-1, negInf}}
		newBound := bound
		for out < 4 {
			for ei < en {
				d := eD[ei]
				if d == f32 || d == t32 {
					ei++
					continue
				}
				break
			}
			var c cdsCandidate
			switch {
			case ei < en && fi < 2:
				fc := hi2
				if fi == 1 {
					fc = lo2
				}
				c = cdsCandidate{dest: int(eD[ei]), dc: eV[ei]}
				if better(c, fc) {
					ei++
				} else {
					c = fc
					fi++
				}
			case ei < en:
				c = cdsCandidate{dest: int(eD[ei]), dc: eV[ei]}
				ei++
			case fi < 2:
				c = hi2
				if fi == 1 {
					c = lo2
				}
				fi++
			default:
				c = cdsCandidate{dest: -1, dc: negInf} // exhausted; fails the bound check
			}
			if !better(c, bound) {
				break
			}
			if out < 3 {
				ne[out] = c
			} else {
				newBound = c
			}
			out++
		}
		if out == 0 {
			s.scanTop4Direct(pos, int(p32))
			recomp++
		} else {
			*h = cdsHot{
				bdc: newBound.dc, e0dc: ne[0].dc,
				d0: int32(ne[0].dest), d1: int32(ne[1].dest), d2: int32(ne[2].dest),
				bdest: int32(newBound.dest),
			}
			e1dcs[pos], e2dcs[pos] = ne[1].dc, ne[2].dc
		}
		foldChamp(&champ, h.e0dc, int(p32), pos, int(h.d0))
	}
	return champ, recomp
}

func (s *parallelSelector) stats() selStats {
	st := s.incrementalSelector.stats()
	st.parallelSweeps = s.parSweeps
	return st
}

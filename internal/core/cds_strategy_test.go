package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// This file pins the CDS move-selection engines to each other: the
// incremental candidate table and the parallel sharded sweeps (at
// several worker counts) must produce a move-for-move identical
// refinement — same positions, same channels, and the same
// floating-point BITS for every Δc and cost — as the naive full
// rescan, across workload shapes (N, K, skewness θ, diversity Φ) far
// wider than the paper's defaults. Exact float comparisons are
// deliberate: the table engines' whole contract is bit-level
// equality, so any tolerance would mask a divergence. The batched
// mode, which deliberately relaxes strict steepest descent, is pinned
// by a move-by-move replay oracle instead (assertBatchedContract).

// diverseDatabase generates an N-item database with Zipf-like
// frequencies of skewness theta and log-uniform sizes spanning phi
// decades — the same shape internal/workload produces, rebuilt here
// because core cannot import workload (it would cycle).
func diverseDatabase(tb testing.TB, seed int, n int, theta, phi float64) *Database {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	items := make([]Item, n)
	var totalFreq float64
	for i := range items {
		f := math.Pow(1/float64(i+1), theta)
		z := math.Pow(10, rng.Float64()*phi)
		items[i] = Item{ID: i + 1, Freq: f, Size: z}
		totalFreq += f
	}
	for i := range items {
		items[i].Freq /= totalFreq
	}
	return MustNewDatabase(items)
}

// strictEngines returns the strict steepest-descent engines pinned
// bit-for-bit against the naive oracle: the incremental default plus
// the parallel engine at worker counts 1, 2 and 8. Multi-worker
// engines force-shard so these small workloads exercise the sharded
// sweep, reduction and in-sweep recompute paths that real inputs only
// hit at scale; Workers=1 exercises the serial delegation.
func strictEngines(maxMoves int) []*CDS {
	return []*CDS{
		{Strategy: StrategyIncremental, MaxMoves: maxMoves},
		{Strategy: StrategyParallel, Workers: 1, MaxMoves: maxMoves},
		{Strategy: StrategyParallel, Workers: 2, MaxMoves: maxMoves, forceShard: true},
		{Strategy: StrategyParallel, Workers: 8, MaxMoves: maxMoves, forceShard: true},
	}
}

// assertIdenticalTraces refines a with every strict engine and fails
// the test on the first bit-level difference from the naive oracle.
func assertIdenticalTraces(t *testing.T, a *Allocation, maxMoves int) {
	t.Helper()
	naive := &CDS{Strategy: StrategyNaive, MaxMoves: maxMoves}
	refN, movesN, err := naive.RefineWithTrace(a)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	for _, eng := range strictEngines(maxMoves) {
		label := eng.Strategy.String()
		if eng.Strategy == StrategyParallel {
			label = fmt.Sprintf("parallel-w%d", eng.Workers)
		}
		refE, movesE, err := eng.RefineWithTrace(a)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(movesN) != len(movesE) {
			t.Fatalf("move counts differ: naive %d, %s %d", len(movesN), label, len(movesE))
		}
		for i := range movesN {
			n, e := movesN[i], movesE[i]
			if n.Pos != e.Pos || n.From != e.From || n.To != e.To {
				t.Fatalf("move %d differs: naive %+v, %s %+v", i, n, label, e)
			}
			// Bit-exact: Δc and both costs must be the very same float64s.
			if n.Reduction != e.Reduction {
				t.Fatalf("move %d Reduction bits differ: naive %b, %s %b", i, n.Reduction, label, e.Reduction)
			}
			if n.CostBefore != e.CostBefore || n.CostAfter != e.CostAfter {
				t.Fatalf("move %d cost bits differ: naive %+v, %s %+v", i, n, label, e)
			}
			if e.Batch != 0 {
				t.Fatalf("move %d: strict engine %s stamped batch ordinal %d", i, label, e.Batch)
			}
		}
		if !refN.Equal(refE) {
			t.Fatalf("%s: refined allocations differ despite identical traces", label)
		}
	}
}

// assertBatchedContract refines a with the batched mode and verifies
// its whole contract by replaying the recorded trace move-by-move
// against the naive Eq. 4 oracle:
//
//   - batch ordinals are contiguous from 1 and each batch's moves
//     touch pairwise disjoint {source, destination} group pairs in
//     canonical order (Δc descending, source channel ascending);
//   - the head of every batch is the strict steepest-descent champion
//     of its application state — bit-identical to what the naive scan
//     selects there;
//   - every move's recorded Δc and cost chain are bit-exact at its
//     application state (the commutation guarantee: earlier batch
//     members cannot shift a later member's Δc by even one bit);
//   - replaying each batch in REVERSE order reaches the same
//     allocation with the same per-move Δc bits — disjoint moves
//     commute;
//   - with no move bound, the final state is a local optimum the
//     naive scan certifies (no remaining move above eps).
func assertBatchedContract(t *testing.T, a *Allocation, maxMoves, batch, workers int) {
	t.Helper()
	eng := &CDS{Strategy: StrategyParallel, Workers: workers, BatchSize: batch, MaxMoves: maxMoves, forceShard: true}
	ref, moves, err := eng.RefineWithTrace(a)
	if err != nil {
		t.Fatalf("batched(w=%d,b=%d): %v", workers, batch, err)
	}
	if maxMoves > 0 && len(moves) > maxMoves {
		t.Fatalf("batched applied %d moves, bound %d", len(moves), maxMoves)
	}
	// Replicate refine's default epsilon.
	eps := 1e-300
	if init := Cost(a); init > 0 {
		eps = 1e-12 * init
	}

	cur := a.Clone()
	cost := Cost(cur)
	lastBatch, batchStart := 0, 0
	for i, m := range moves {
		if m.Batch != lastBatch && m.Batch != lastBatch+1 {
			t.Fatalf("move %d: batch ordinal %d after %d", i, m.Batch, lastBatch)
		}
		agg := cur.Aggregates()
		if m.Batch == lastBatch+1 {
			lastBatch, batchStart = m.Batch, i
			// The head of a batch is the strict global champion.
			nv := &naiveSelector{cur: cur, agg: agg}
			want, found := nv.next()
			if !found {
				t.Fatalf("batch %d opens but the naive scan finds no positive move", m.Batch)
			}
			if want.Pos != m.Pos || want.From != m.From || want.To != m.To || want.Reduction != m.Reduction {
				t.Fatalf("batch %d head %+v is not the strict champion %+v", m.Batch, m, want)
			}
		} else {
			prev := moves[i-1]
			if m.Reduction > prev.Reduction ||
				(m.Reduction == prev.Reduction && m.From <= prev.From) {
				t.Fatalf("batch %d: moves %d→%d violate canonical order: %+v then %+v",
					m.Batch, i-1, i, prev, m)
			}
			for j := batchStart; j < i; j++ {
				p := moves[j]
				if p.From == m.From || p.From == m.To || p.To == m.From || p.To == m.To {
					t.Fatalf("batch %d: moves %d and %d share a group: %+v, %+v", m.Batch, j, i, p, m)
				}
			}
		}
		if !(m.Reduction > eps) {
			t.Fatalf("move %d: Δc %g not above eps %g", i, m.Reduction, eps)
		}
		if got := cur.ChannelOf(m.Pos); got != m.From {
			t.Fatalf("move %d: item at pos %d is in channel %d, move says %d", i, m.Pos, got, m.From)
		}
		if dc := MoveReduction(cur.Database().Item(m.Pos), agg[m.From], agg[m.To]); dc != m.Reduction {
			t.Fatalf("move %d: replayed Δc bits %b, recorded %b", i, dc, m.Reduction)
		}
		if m.CostBefore != cost {
			t.Fatalf("move %d: CostBefore bits %b, replay %b", i, m.CostBefore, cost)
		}
		cur.move(m.Pos, m.To)
		cost = Cost(cur)
		if m.CostAfter != cost {
			t.Fatalf("move %d: CostAfter bits %b, replay %b", i, m.CostAfter, cost)
		}
	}
	if !ref.Equal(cur) {
		t.Fatal("refined allocation differs from the move-by-move replay")
	}
	// Commutation: replay every batch in reverse order. Each move's
	// Δc must hold bit-for-bit in the permuted state too, and the
	// batch must land on the same allocation.
	cur = a.Clone()
	for i := 0; i < len(moves); {
		j := i
		for j < len(moves) && moves[j].Batch == moves[i].Batch {
			j++
		}
		for r := j - 1; r >= i; r-- {
			m := moves[r]
			agg := cur.Aggregates()
			if dc := MoveReduction(cur.Database().Item(m.Pos), agg[m.From], agg[m.To]); dc != m.Reduction {
				t.Fatalf("batch %d: reverse-order replay shifts move %d's Δc bits: %b vs %b",
					m.Batch, r, dc, m.Reduction)
			}
			cur.move(m.Pos, m.To)
		}
		i = j
	}
	if !ref.Equal(cur) {
		t.Fatal("reverse-order batch replay reached a different allocation")
	}
	// Termination: without a move bound the result is a local optimum
	// the strict engines certify.
	if maxMoves == 0 {
		agg := ref.Aggregates()
		nv := &naiveSelector{cur: ref, agg: agg}
		if m, found := nv.next(); found && m.Reduction > eps {
			t.Fatalf("batched refinement terminated with improving move %+v above eps %g", m, eps)
		}
	}
}

// TestCDSStrategiesIdenticalTraces is the differential gate for the
// incremental default: 24 randomized workloads spanning N ∈ [12, 300],
// K ∈ [2, 24], θ ∈ [0.4, 1.6], Φ ∈ [0.5, 3], from both random and
// DRP starting points.
func TestCDSStrategiesIdenticalTraces(t *testing.T) {
	cases := []struct {
		n     int
		k     int
		theta float64
		phi   float64
	}{
		{12, 2, 0.8, 2.0},
		{20, 3, 0.4, 0.5},
		{20, 7, 1.6, 3.0},
		{40, 2, 1.0, 1.0},
		{40, 5, 0.8, 2.0},
		{40, 13, 0.6, 2.5},
		{60, 4, 1.2, 0.5},
		{60, 10, 0.8, 2.0},
		{80, 6, 0.4, 3.0},
		{80, 16, 1.4, 1.5},
		{120, 6, 0.8, 2.0}, // the paper's base point
		{120, 24, 1.0, 2.0},
		{200, 8, 0.6, 1.0},
		{300, 12, 1.2, 2.0},
	}
	for _, tc := range cases {
		for _, seed := range []int{1, 2} {
			db := diverseDatabase(t, seed*31+tc.n, tc.n, tc.theta, tc.phi)
			start := randomAllocation(t, db, tc.k, seed*17+tc.k)
			assertIdenticalTraces(t, start, 0)

			drp, err := NewDRP().Allocate(db, tc.k)
			if err != nil {
				t.Fatalf("DRP N=%d K=%d: %v", tc.n, tc.k, err)
			}
			assertIdenticalTraces(t, drp, 0)
		}
	}
}

// TestCDSStrategiesIdenticalUnderMaxMoves checks the bound interacts
// identically with both strategies (the truncated prefix is the same).
func TestCDSStrategiesIdenticalUnderMaxMoves(t *testing.T) {
	db := diverseDatabase(t, 5, 90, 0.8, 2)
	a := randomAllocation(t, db, 8, 3)
	for _, maxMoves := range []int{1, 2, 5, 17} {
		assertIdenticalTraces(t, a, maxMoves)
	}
}

// TestCDSStrategiesIdenticalOnPaperExample ties the differential gate
// to the worked example reproduced by the golden tests.
func TestCDSStrategiesIdenticalOnPaperExample(t *testing.T) {
	db := PaperExampleDatabase()
	drp, err := NewDRPExampleConsistent().Allocate(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalTraces(t, drp, 0)
	for seed := 0; seed < 6; seed++ {
		assertIdenticalTraces(t, randomAllocation(t, db, PaperExampleK, seed), 0)
	}
}

// TestCDSIncrementalSelectorInvariant cross-checks the candidate
// cache against a fresh full scan after every applied move on one
// long refinement: the cached entry list must be a bit-exact prefix
// of the fresh ≻-descending ranking under the canonical tie-break,
// and every destination the list does not name must fall at or below
// the cached bound.
func TestCDSIncrementalSelectorInvariant(t *testing.T) {
	db := diverseDatabase(t, 9, 70, 0.8, 2)
	a := randomAllocation(t, db, 6, 4)

	cur := a.Clone()
	agg := cur.Aggregates()
	sel := newIncrementalSelector(cur, agg, acquireCDSTables(db.Len(), cur.K()))
	check := func(step int) {
		for pos := 0; pos < db.Len(); pos++ {
			p := cur.ChannelOf(pos)
			it := db.Item(pos)
			// Fresh exact ranking of all destinations under ≻.
			var fresh []cdsCandidate
			for q := 0; q < cur.K(); q++ {
				if q == p {
					continue
				}
				fresh = append(fresh, cdsCandidate{dest: q, dc: MoveReduction(it, agg[p], agg[q])})
			}
			sort.SliceStable(fresh, func(i, j int) bool { return better(fresh[i], fresh[j]) })
			h := sel.hot[pos]
			cached := []cdsCandidate{
				{dest: int(h.d0), dc: h.e0dc},
				{dest: int(h.d1), dc: sel.e1dc[pos]},
				{dest: int(h.d2), dc: sel.e2dc[pos]},
			}
			n := 0
			for n < len(cached) && cached[n].dest >= 0 {
				n++
			}
			for _, e := range cached[n:] {
				if e.dest != -1 || !math.IsInf(e.dc, -1) {
					t.Fatalf("step %d pos %d: absent slot holds %+v", step, pos, e)
				}
			}
			if n < 1 || n > len(fresh) {
				t.Fatalf("step %d pos %d: entry count %d outside [1,%d]", step, pos, n, len(fresh))
			}
			for i := 0; i < n; i++ {
				if cached[i].dest != fresh[i].dest || cached[i].dc != fresh[i].dc {
					t.Fatalf("step %d pos %d: entry %d cached %+v, fresh %+v",
						step, pos, i, cached[i], fresh[i])
				}
			}
			bound := cdsCandidate{dest: int(h.bdest), dc: h.bdc}
			for _, e := range fresh[n:] {
				if better(e, bound) {
					t.Fatalf("step %d pos %d: unlisted entry %+v beats bound %+v",
						step, pos, e, bound)
				}
			}
		}
	}
	check(-1)
	for step := 0; ; step++ {
		m, found := sel.next()
		if !found || m.Reduction <= 0 {
			break
		}
		cur.move(m.Pos, m.To)
		reconcileGroup(cur, agg, m.From)
		reconcileGroup(cur, agg, m.To)
		sel.applied(m)
		check(step)
	}
}

// TestCDSBatchedContract runs the batch-replay oracle across the same
// workload table as the differential gate, at several batch sizes and
// worker counts, from both random and DRP starting points.
func TestCDSBatchedContract(t *testing.T) {
	cases := []struct {
		n     int
		k     int
		theta float64
		phi   float64
	}{
		{20, 3, 0.4, 0.5},
		{40, 5, 0.8, 2.0},
		{60, 10, 0.8, 2.0},
		{80, 16, 1.4, 1.5},
		{120, 6, 0.8, 2.0}, // the paper's base point
		{120, 24, 1.0, 2.0},
		{300, 12, 1.2, 2.0},
	}
	for _, tc := range cases {
		for _, seed := range []int{1, 2} {
			db := diverseDatabase(t, seed*31+tc.n, tc.n, tc.theta, tc.phi)
			start := randomAllocation(t, db, tc.k, seed*17+tc.k)
			for _, batch := range []int{2, 4, tc.k} {
				assertBatchedContract(t, start, 0, batch, 1)
				assertBatchedContract(t, start, 0, batch, 8)
			}
			drp, err := NewDRP().Allocate(db, tc.k)
			if err != nil {
				t.Fatalf("DRP N=%d K=%d: %v", tc.n, tc.k, err)
			}
			assertBatchedContract(t, drp, 0, 4, 8)
		}
	}
}

// TestCDSBatchedUnderMaxMoves checks the move bound can truncate a
// refinement mid-batch without violating the replay contract.
func TestCDSBatchedUnderMaxMoves(t *testing.T) {
	db := diverseDatabase(t, 5, 90, 0.8, 2)
	a := randomAllocation(t, db, 8, 3)
	for _, maxMoves := range []int{1, 2, 3, 5, 17} {
		assertBatchedContract(t, a, maxMoves, 3, 2)
	}
}

// TestCDSStrategyRoundTrip pins String/ParseCDSStrategy as exact
// inverses over the three engines and the error path for unknown
// names and values.
func TestCDSStrategyRoundTrip(t *testing.T) {
	for _, s := range []CDSStrategy{StrategyIncremental, StrategyNaive, StrategyParallel} {
		got, err := ParseCDSStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseCDSStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v → %q → %v", s, s.String(), got)
		}
	}
	if _, err := ParseCDSStrategy("exhaustive"); err == nil {
		t.Fatal("ParseCDSStrategy accepted an unknown name")
	}
	if got := CDSStrategy(42).String(); got != "CDSStrategy(42)" {
		t.Fatalf("unknown strategy String() = %q", got)
	}
}

// TestCDSConfigErrors covers refine's validation of the three-engine
// table: unknown strategies, negative worker counts, and batch sizes
// on engines that cannot honor them.
func TestCDSConfigErrors(t *testing.T) {
	db := PaperExampleDatabase()
	a := randomAllocation(t, db, PaperExampleK, 1)
	cases := []struct {
		name string
		cds  *CDS
		want string
	}{
		{"unknown strategy", &CDS{Strategy: CDSStrategy(42)}, "unknown strategy"},
		{"negative workers", &CDS{Strategy: StrategyParallel, Workers: -1}, "negative Workers"},
		{"batch on incremental", &CDS{Strategy: StrategyIncremental, BatchSize: 4}, "requires StrategyParallel"},
		{"batch on naive", &CDS{Strategy: StrategyNaive, BatchSize: 2}, "requires StrategyParallel"},
	}
	for _, tc := range cases {
		if _, err := tc.cds.Refine(a); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// The valid corners of the same table still refine.
	for _, cds := range []*CDS{
		{Strategy: StrategyParallel, Workers: 0, BatchSize: 1},
		{Strategy: StrategyParallel, Workers: 3, BatchSize: 0},
	} {
		if _, err := cds.Refine(a); err != nil {
			t.Fatalf("valid config %+v rejected: %v", cds, err)
		}
	}
}

// FuzzCDSStrategies fuzzes the differential property across all
// strict engines plus the batched replay contract. The corpus seeds
// from the paper-example database (usePaper=true inputs); the fuzzer
// then explores synthetic databases, channel counts and arbitrary
// starting assignments. Any divergence between the engines — even a
// single bit of one Δc — is a crash.
func FuzzCDSStrategies(f *testing.F) {
	paperStart := []byte{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	f.Add(true, int64(0), uint8(10), uint8(PaperExampleK), paperStart)
	f.Add(true, int64(0), uint8(10), uint8(2), []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(true, int64(0), uint8(10), uint8(10), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(false, int64(7), uint8(48), uint8(6), []byte{0, 3, 1, 4, 2, 5})
	f.Add(false, int64(42), uint8(130), uint8(16), []byte{})

	f.Fuzz(func(t *testing.T, usePaper bool, seed int64, rawN, rawK uint8, assign []byte) {
		var db *Database
		if usePaper {
			db = PaperExampleDatabase()
		} else {
			n := int(rawN)%64 + 2
			db = diverseDatabase(t, int(seed), n, 0.4+float64(uint64(seed)%13)/10, 0.5+float64(uint64(seed)%5)/2)
		}
		n := db.Len()
		k := int(rawK)%n + 1
		channel := make([]int, n)
		for i := range channel {
			if len(assign) > 0 {
				channel[i] = int(assign[i%len(assign)]) % k
			}
		}
		a, err := NewAllocation(db, k, channel)
		if err != nil {
			t.Fatalf("constructed allocation invalid: %v", err)
		}
		assertIdenticalTraces(t, a, 0)
		batch := int(rawN)%k + 2
		assertBatchedContract(t, a, 0, batch, 2)
	})
}

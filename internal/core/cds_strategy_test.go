package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the two CDS move-selection strategies to each other:
// the incremental candidate table must produce a move-for-move
// identical refinement — same positions, same channels, and the same
// floating-point BITS for every Δc and cost — as the naive full
// rescan, across workload shapes (N, K, skewness θ, diversity Φ) far
// wider than the paper's defaults. Exact float comparisons are
// deliberate: the incremental strategy's whole contract is bit-level
// equality, so any tolerance would mask a divergence.

// diverseDatabase generates an N-item database with Zipf-like
// frequencies of skewness theta and log-uniform sizes spanning phi
// decades — the same shape internal/workload produces, rebuilt here
// because core cannot import workload (it would cycle).
func diverseDatabase(tb testing.TB, seed int, n int, theta, phi float64) *Database {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	items := make([]Item, n)
	var totalFreq float64
	for i := range items {
		f := math.Pow(1/float64(i+1), theta)
		z := math.Pow(10, rng.Float64()*phi)
		items[i] = Item{ID: i + 1, Freq: f, Size: z}
		totalFreq += f
	}
	for i := range items {
		items[i].Freq /= totalFreq
	}
	return MustNewDatabase(items)
}

// assertIdenticalTraces refines a with both strategies and fails the
// test on the first bit-level difference.
func assertIdenticalTraces(t *testing.T, a *Allocation, maxMoves int) {
	t.Helper()
	naive := &CDS{Strategy: StrategyNaive, MaxMoves: maxMoves}
	incr := &CDS{Strategy: StrategyIncremental, MaxMoves: maxMoves}

	refN, movesN, err := naive.RefineWithTrace(a)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	refI, movesI, err := incr.RefineWithTrace(a)
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}

	if len(movesN) != len(movesI) {
		t.Fatalf("move counts differ: naive %d, incremental %d", len(movesN), len(movesI))
	}
	for i := range movesN {
		n, in := movesN[i], movesI[i]
		if n.Pos != in.Pos || n.From != in.From || n.To != in.To {
			t.Fatalf("move %d differs: naive %+v, incremental %+v", i, n, in)
		}
		// Bit-exact: Δc and both costs must be the very same float64s.
		if n.Reduction != in.Reduction {
			t.Fatalf("move %d Reduction bits differ: naive %b, incremental %b", i, n.Reduction, in.Reduction)
		}
		if n.CostBefore != in.CostBefore || n.CostAfter != in.CostAfter {
			t.Fatalf("move %d cost bits differ: naive %+v, incremental %+v", i, n, in)
		}
	}
	if !refN.Equal(refI) {
		t.Fatal("refined allocations differ despite identical traces")
	}
}

// TestCDSStrategiesIdenticalTraces is the differential gate for the
// incremental default: 24 randomized workloads spanning N ∈ [12, 300],
// K ∈ [2, 24], θ ∈ [0.4, 1.6], Φ ∈ [0.5, 3], from both random and
// DRP starting points.
func TestCDSStrategiesIdenticalTraces(t *testing.T) {
	cases := []struct {
		n     int
		k     int
		theta float64
		phi   float64
	}{
		{12, 2, 0.8, 2.0},
		{20, 3, 0.4, 0.5},
		{20, 7, 1.6, 3.0},
		{40, 2, 1.0, 1.0},
		{40, 5, 0.8, 2.0},
		{40, 13, 0.6, 2.5},
		{60, 4, 1.2, 0.5},
		{60, 10, 0.8, 2.0},
		{80, 6, 0.4, 3.0},
		{80, 16, 1.4, 1.5},
		{120, 6, 0.8, 2.0}, // the paper's base point
		{120, 24, 1.0, 2.0},
		{200, 8, 0.6, 1.0},
		{300, 12, 1.2, 2.0},
	}
	for _, tc := range cases {
		for _, seed := range []int{1, 2} {
			db := diverseDatabase(t, seed*31+tc.n, tc.n, tc.theta, tc.phi)
			start := randomAllocation(t, db, tc.k, seed*17+tc.k)
			assertIdenticalTraces(t, start, 0)

			drp, err := NewDRP().Allocate(db, tc.k)
			if err != nil {
				t.Fatalf("DRP N=%d K=%d: %v", tc.n, tc.k, err)
			}
			assertIdenticalTraces(t, drp, 0)
		}
	}
}

// TestCDSStrategiesIdenticalUnderMaxMoves checks the bound interacts
// identically with both strategies (the truncated prefix is the same).
func TestCDSStrategiesIdenticalUnderMaxMoves(t *testing.T) {
	db := diverseDatabase(t, 5, 90, 0.8, 2)
	a := randomAllocation(t, db, 8, 3)
	for _, maxMoves := range []int{1, 2, 5, 17} {
		assertIdenticalTraces(t, a, maxMoves)
	}
}

// TestCDSStrategiesIdenticalOnPaperExample ties the differential gate
// to the worked example reproduced by the golden tests.
func TestCDSStrategiesIdenticalOnPaperExample(t *testing.T) {
	db := PaperExampleDatabase()
	drp, err := NewDRPExampleConsistent().Allocate(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalTraces(t, drp, 0)
	for seed := 0; seed < 6; seed++ {
		assertIdenticalTraces(t, randomAllocation(t, db, PaperExampleK, seed), 0)
	}
}

// TestCDSIncrementalSelectorInvariant cross-checks the candidate
// cache against a fresh full scan after every applied move on one
// long refinement: the cached entry list must be a bit-exact prefix
// of the fresh ≻-descending ranking under the canonical tie-break,
// and every destination the list does not name must fall at or below
// the cached bound.
func TestCDSIncrementalSelectorInvariant(t *testing.T) {
	db := diverseDatabase(t, 9, 70, 0.8, 2)
	a := randomAllocation(t, db, 6, 4)

	cur := a.Clone()
	agg := cur.Aggregates()
	sel := newIncrementalSelector(cur, agg)
	check := func(step int) {
		for pos := 0; pos < db.Len(); pos++ {
			p := cur.ChannelOf(pos)
			it := db.Item(pos)
			// Fresh exact ranking of all destinations under ≻.
			var fresh []cdsCandidate
			for q := 0; q < cur.K(); q++ {
				if q == p {
					continue
				}
				fresh = append(fresh, cdsCandidate{dest: q, dc: MoveReduction(it, agg[p], agg[q])})
			}
			sort.SliceStable(fresh, func(i, j int) bool { return better(fresh[i], fresh[j]) })
			h := sel.hot[pos]
			cached := []cdsCandidate{
				{dest: int(h.d0), dc: h.e0dc},
				{dest: int(h.d1), dc: sel.e1dc[pos]},
				{dest: int(h.d2), dc: sel.e2dc[pos]},
			}
			n := 0
			for n < len(cached) && cached[n].dest >= 0 {
				n++
			}
			for _, e := range cached[n:] {
				if e.dest != -1 || !math.IsInf(e.dc, -1) {
					t.Fatalf("step %d pos %d: absent slot holds %+v", step, pos, e)
				}
			}
			if n < 1 || n > len(fresh) {
				t.Fatalf("step %d pos %d: entry count %d outside [1,%d]", step, pos, n, len(fresh))
			}
			for i := 0; i < n; i++ {
				if cached[i].dest != fresh[i].dest || cached[i].dc != fresh[i].dc {
					t.Fatalf("step %d pos %d: entry %d cached %+v, fresh %+v",
						step, pos, i, cached[i], fresh[i])
				}
			}
			bound := cdsCandidate{dest: int(h.bdest), dc: h.bdc}
			for _, e := range fresh[n:] {
				if better(e, bound) {
					t.Fatalf("step %d pos %d: unlisted entry %+v beats bound %+v",
						step, pos, e, bound)
				}
			}
		}
	}
	check(-1)
	for step := 0; ; step++ {
		m, found := sel.next()
		if !found || m.Reduction <= 0 {
			break
		}
		cur.move(m.Pos, m.To)
		reconcileGroup(cur, agg, m.From)
		reconcileGroup(cur, agg, m.To)
		sel.applied(m)
		check(step)
	}
}

// FuzzCDSStrategies fuzzes the differential property. The corpus
// seeds from the paper-example database (usePaper=true inputs); the
// fuzzer then explores synthetic databases, channel counts and
// arbitrary starting assignments. Any divergence between the two
// strategies — even a single bit of one Δc — is a crash.
func FuzzCDSStrategies(f *testing.F) {
	paperStart := []byte{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	f.Add(true, int64(0), uint8(10), uint8(PaperExampleK), paperStart)
	f.Add(true, int64(0), uint8(10), uint8(2), []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(true, int64(0), uint8(10), uint8(10), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(false, int64(7), uint8(48), uint8(6), []byte{0, 3, 1, 4, 2, 5})
	f.Add(false, int64(42), uint8(130), uint8(16), []byte{})

	f.Fuzz(func(t *testing.T, usePaper bool, seed int64, rawN, rawK uint8, assign []byte) {
		var db *Database
		if usePaper {
			db = PaperExampleDatabase()
		} else {
			n := int(rawN)%64 + 2
			db = diverseDatabase(t, int(seed), n, 0.4+float64(uint64(seed)%13)/10, 0.5+float64(uint64(seed)%5)/2)
		}
		n := db.Len()
		k := int(rawK)%n + 1
		channel := make([]int, n)
		for i := range channel {
			if len(assign) > 0 {
				channel[i] = int(assign[i%len(assign)]) % k
			}
		}
		a, err := NewAllocation(db, k, channel)
		if err != nil {
			t.Fatalf("constructed allocation invalid: %v", err)
		}
		assertIdenticalTraces(t, a, 0)
	})
}

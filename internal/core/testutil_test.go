package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomDatabase builds a deterministic pseudo-random database of n
// items with Zipf-ish frequencies and log-uniform sizes, the same shape
// the paper's simulation uses.
func randomDatabase(tb testing.TB, seed, n int) *Database {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	items := make([]Item, n)
	var totalFreq float64
	for i := range items {
		f := math.Pow(1/float64(i+1), 0.8)
		z := math.Pow(10, rng.Float64()*2) // sizes in [1, 100)
		items[i] = Item{ID: i + 1, Freq: f, Size: z}
		totalFreq += f
	}
	for i := range items {
		items[i].Freq /= totalFreq
	}
	return MustNewDatabase(items)
}

// randomAllocation assigns each item of db to a uniformly random
// channel among k.
func randomAllocation(tb testing.TB, db *Database, k, seed int) *Allocation {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	channel := make([]int, db.Len())
	for i := range channel {
		channel[i] = rng.Intn(k)
	}
	a, err := NewAllocation(db, k, channel)
	if err != nil {
		tb.Fatalf("randomAllocation: %v", err)
	}
	return a
}

// bruteForceCost recomputes the grouping cost from first principles
// (per-channel sums done independently of Aggregates) for
// cross-checking the incremental paths.
func bruteForceCost(a *Allocation) float64 {
	db := a.Database()
	f := make([]float64, a.K())
	z := make([]float64, a.K())
	for pos := 0; pos < db.Len(); pos++ {
		c := a.ChannelOf(pos)
		f[c] += db.Item(pos).Freq
		z[c] += db.Item(pos).Size
	}
	var total float64
	for c := 0; c < a.K(); c++ {
		total += f[c] * z[c]
	}
	return total
}

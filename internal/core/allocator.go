package core

// Allocator produces a channel allocation for a database. All
// allocators in this module (DRP, DRP-CDS, and the baselines in
// internal/baseline and internal/gopt) implement it, so experiment
// harnesses can treat them uniformly.
type Allocator interface {
	// Name identifies the algorithm in experiment output (for
	// example "DRP-CDS", "VFK", "GOPT").
	Name() string
	// Allocate partitions db across k channels. Implementations must
	// not mutate db and must return an allocation that passes
	// (*Allocation).Validate.
	Allocate(db *Database, k int) (*Allocation, error)
}

// Refiner improves an existing allocation in place of producing one
// from scratch. CDS is the canonical implementation.
type Refiner interface {
	Name() string
	// Refine returns an allocation whose cost is no greater than
	// the input's. The input is not mutated.
	Refine(a *Allocation) (*Allocation, error)
}

// Refined composes an Allocator with a Refiner, e.g. DRP-CDS. It
// implements Allocator.
type Refined struct {
	Base    Allocator
	Refiner Refiner
}

var _ Allocator = (*Refined)(nil)

// Name combines the component names, e.g. "DRP-CDS".
func (r *Refined) Name() string { return r.Base.Name() + "-" + r.Refiner.Name() }

// Allocate runs the base allocator and refines its result.
func (r *Refined) Allocate(db *Database, k int) (*Allocation, error) {
	a, err := r.Base.Allocate(db, k)
	if err != nil {
		return nil, err
	}
	return r.Refiner.Refine(a)
}

// NewDRPCDS returns the paper's complete two-step scheme: DRP rough
// allocation refined by CDS to a local optimum.
func NewDRPCDS() Allocator {
	return &Refined{Base: NewDRP(), Refiner: NewCDS()}
}

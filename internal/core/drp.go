package core

import (
	"fmt"

	"diversecast/internal/obs/trace"
	"diversecast/internal/pqueue"
)

// Trace span and event names emitted by DRP. Snake_case per the
// obsnames convention; constants so the analyzer can see them.
const (
	spanDRPAllocate   = "drp_allocate"
	spanDRPSplit      = "drp_split"
	eventDRPSingleton = "drp_singleton"
)

// DRP is the paper's Dimension Reduction Partitioning allocator
// (Section 3.1): a top-down group-splitting heuristic.
//
// Items are sorted by benefit ratio br = f/z in descending order, which
// reduces the two-dimensional (frequency, size) grouping problem to a
// one-dimensional partitioning problem: every group DRP produces is a
// contiguous run of the br-sorted sequence. Starting from the single
// group D, a max priority queue keyed by group cost repeatedly pops the
// costliest group and splits it at the contiguous cut point that
// minimizes the summed cost of the two halves, until K groups remain.
//
// Complexity: K·(O(K log K) + O(N)) as shown in the paper's Lemma 1
// (each of the K−1 iterations pays a heap operation plus a linear scan
// for the best cut).
//
// The zero value is ready to use and follows the paper's published
// pseudocode (PolicyMaxCost).
type DRP struct {
	// Policy selects which group each iteration splits. The paper's
	// pseudocode pops the group with the maximum cost
	// (PolicyMaxCost, the default). The paper's worked example
	// (Table 3) is, however, inconsistent with that rule: its fourth
	// iteration splits the cost-7.02 group while a cost-7.26 group
	// is queued. The example is instead consistent with popping the
	// group whose best split yields the largest cost reduction
	// (PolicyMaxReduction), which the golden tests and
	// examples/papertables therefore use. The two policies differ
	// only in split order; both produce K contiguous br-order groups.
	Policy SplitPolicy

	// Tracer receives one drp_allocate span per call with a drp_split
	// child per iteration (popped range, chosen cut, cost reduction).
	// nil selects the process-wide trace.Default(), which starts
	// disabled, so the zero value stays probe-free until a daemon
	// enables tracing.
	Tracer *trace.Tracer
}

// SplitPolicy selects the group-popping rule of DRP; see DRP.Policy.
type SplitPolicy int

const (
	// PolicyMaxCost pops the group with the largest cost F·Z, as in
	// the paper's published pseudocode (Definition 2, ReturnMax).
	PolicyMaxCost SplitPolicy = iota
	// PolicyMaxReduction pops the group whose optimal split reduces
	// the total cost the most, matching the paper's worked example.
	PolicyMaxReduction
)

// String returns the policy name.
func (p SplitPolicy) String() string {
	switch p {
	case PolicyMaxCost:
		return "max-cost"
	case PolicyMaxReduction:
		return "max-reduction"
	default:
		return "unknown"
	}
}

var _ Allocator = (*DRP)(nil)

// NewDRP returns a DRP allocator with the published max-cost policy.
func NewDRP() *DRP { return &DRP{} }

// NewDRPExampleConsistent returns a DRP allocator using the
// max-reduction policy that reproduces the paper's worked example.
func NewDRPExampleConsistent() *DRP { return &DRP{Policy: PolicyMaxReduction} }

// Name implements Allocator.
func (*DRP) Name() string { return "DRP" }

// Allocate implements Allocator.
func (d *DRP) Allocate(db *Database, k int) (*Allocation, error) {
	a, _, err := d.allocate(db, k, false)
	return a, err
}

// splitEntry is a heap element: a range plus its precomputed optimal
// cut (cut < 0 when the range is a singleton and cannot be split).
type splitEntry struct {
	GroupRange
	cut      int
	splitSum float64 // cost(left)+cost(right) at the optimal cut
}

// reduction is the total-cost decrease the optimal split achieves.
func (e splitEntry) reduction() float64 { return e.Cost - e.splitSum }

// SplitStep records one DRP iteration for tracing (the paper's Table
// 3): the popped group and the two halves it was split into, all as
// ranges of the br-sorted order with their costs.
type SplitStep struct {
	Popped      GroupRange
	Left, Right GroupRange
}

// GroupRange is a contiguous run [Lo, Hi) of the br-sorted item order
// together with its group cost F·Z.
type GroupRange struct {
	Lo, Hi int
	Cost   float64
}

// Trace holds the full DRP execution history alongside the result. The
// Order field gives the br-descending permutation of database
// positions that all ranges index into.
type Trace struct {
	Order []int
	Init  GroupRange
	Steps []SplitStep
	Final []GroupRange
}

// AllocateWithTrace is Allocate but also returns the iteration history,
// used by the paper-table reproduction and by tests.
func (d *DRP) AllocateWithTrace(db *Database, k int) (*Allocation, *Trace, error) {
	return d.allocate(db, k, true)
}

//diverselint:coldpath one-shot O(N log N + K log K) channel planning, not per-broadcast-cycle
func (d *DRP) allocate(db *Database, k int, wantTrace bool) (*Allocation, *Trace, error) {
	n := db.Len()
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("%w: K=%d, N=%d", ErrBadChannelCount, k, n)
	}
	start := timeNow()
	defer func() { drpSeconds.Observe(timeNow().Sub(start).Seconds()) }()

	tr := d.Tracer
	if tr == nil {
		tr = trace.Default()
	}
	var span trace.Span
	if tr.Enabled() {
		span = tr.Start(spanDRPAllocate,
			trace.Str("policy", d.Policy.String()),
			trace.Int("n", int64(n)), trace.Int("k", int64(k)))
	}

	order := db.ByBenefitRatio()

	// Prefix sums over the sorted order: pf[i] = Σ freq of the first i
	// sorted items, pz likewise for size. Range aggregates and
	// therefore range costs are O(1).
	pf := make([]float64, n+1)
	pz := make([]float64, n+1)
	for i, pos := range order {
		it := db.Item(pos)
		pf[i+1] = pf[i] + it.Freq
		pz[i+1] = pz[i] + it.Size
	}
	rangeCost := func(lo, hi int) float64 {
		return (pf[hi] - pf[lo]) * (pz[hi] - pz[lo])
	}

	// makeEntry runs Procedure Partition(D_x) eagerly: it finds the
	// cut p minimizing cost(left)+cost(right) (smallest p wins ties),
	// so popping is O(1) regardless of policy.
	makeEntry := func(lo, hi int) splitEntry {
		e := splitEntry{GroupRange: GroupRange{Lo: lo, Hi: hi, Cost: rangeCost(lo, hi)}, cut: -1}
		for p := lo + 1; p < hi; p++ {
			c := rangeCost(lo, p) + rangeCost(p, hi)
			if e.cut < 0 || c < e.splitSum {
				e.cut, e.splitSum = p, c
			}
		}
		return e
	}

	// Max priority queue keyed per the configured policy; ties break
	// on the lower start index for determinism.
	key := func(e splitEntry) float64 {
		if d.Policy == PolicyMaxReduction {
			if e.cut < 0 {
				return -1 // singletons reduce nothing; never preferred
			}
			return e.reduction()
		}
		return e.Cost
	}
	pq := pqueue.New(func(a, b splitEntry) bool {
		ka, kb := key(a), key(b)
		//diverselint:ignore floateq deliberate exact tie-break: comparator needs a strict weak order, an epsilon would break transitivity
		if ka != kb {
			return ka > kb
		}
		return a.Lo < b.Lo
	})
	whole := makeEntry(0, n)
	pq.Push(whole)

	var hist *Trace
	if wantTrace {
		hist = &Trace{Order: order, Init: whole.GroupRange}
	}

	// Singleton ranges cannot be split further; they leave the queue
	// and count toward the K groups directly.
	var done []splitEntry

	for pq.Len()+len(done) < k {
		g, ok := pq.Pop()
		if !ok {
			// Unreachable when K ≤ N: N items always admit N
			// singleton groups.
			return nil, nil, fmt.Errorf("core: DRP exhausted splittable groups at %d of %d", len(done), k)
		}
		if g.cut < 0 {
			if span.Active() {
				span.Event(eventDRPSingleton,
					trace.Int("lo", int64(g.Lo)), trace.Int("hi", int64(g.Hi)),
					trace.Float("cost", g.Cost))
			}
			done = append(done, g)
			continue
		}

		// The split span covers the two Partition(D_x) scans that the
		// split pays for its halves; its attrs are the Table 3 row —
		// popped range, chosen cut, costs before/after, reduction.
		var sp trace.Span
		if span.Active() {
			sp = span.Child(spanDRPSplit,
				trace.Int("lo", int64(g.Lo)), trace.Int("hi", int64(g.Hi)),
				trace.Int("cut", int64(g.cut)),
				trace.Float("cost", g.Cost))
		}
		left := makeEntry(g.Lo, g.cut)
		right := makeEntry(g.cut, g.Hi)
		pq.Push(left)
		pq.Push(right)
		if sp.Active() {
			sp.End(
				trace.Float("left_cost", left.Cost),
				trace.Float("right_cost", right.Cost),
				trace.Float("delta", g.reduction()))
		}
		if wantTrace {
			hist.Steps = append(hist.Steps, SplitStep{Popped: g.GroupRange, Left: left.GroupRange, Right: right.GroupRange})
		}
	}

	final := make([]GroupRange, 0, k)
	for _, e := range append(done, pq.Drain()...) {
		final = append(final, e.GroupRange)
	}
	// Channels are numbered by position in the br order so that channel
	// 0 carries the highest-benefit-ratio items; this is stable across
	// runs and matches the paper's presentation.
	sortRangesByLo(final)

	channel := make([]int, n)
	for c, g := range final {
		for i := g.Lo; i < g.Hi; i++ {
			channel[order[i]] = c
		}
	}
	if wantTrace {
		hist.Final = final
	}
	a, err := NewAllocation(db, k, channel)
	if err != nil {
		return nil, nil, err
	}
	if span.Active() {
		var total float64
		for _, g := range final {
			total += g.Cost
		}
		span.End(trace.Int("groups", int64(len(final))), trace.Float("cost", total))
	}
	return a, hist, nil
}

func sortRangesByLo(rs []GroupRange) {
	// Insertion sort: K is small (single digits in the paper) and this
	// avoids pulling in sort for a 3-line need.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

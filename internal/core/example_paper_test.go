package core

import (
	"math"
	"testing"
)

// These golden tests reproduce the paper's worked example (Tables 2-4)
// to the two decimal places the paper reports.

const paperTol = 0.015 // paper values are rounded to 2 decimals (and Table 2 itself is rounded)

// ids maps a group of database positions to paper item IDs.
func ids(t *testing.T, db *Database, positions []int) []int {
	t.Helper()
	out := make([]int, len(positions))
	for i, pos := range positions {
		out[i] = db.Item(pos).ID
	}
	return out
}

func sameIDSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]int, len(a))
	for _, v := range a {
		seen[v]++
	}
	for _, v := range b {
		seen[v]--
		if seen[v] < 0 {
			return false
		}
	}
	return true
}

func TestPaperTable3SortOrder(t *testing.T) {
	db := PaperExampleDatabase()
	order := db.ByBenefitRatio()
	want := []int{9, 2, 3, 6, 5, 15, 1, 12, 10, 13, 4, 8, 14, 7, 11}
	for i, pos := range order {
		if got := db.Item(pos).ID; got != want[i] {
			t.Fatalf("br-sorted position %d: got d%d, want d%d", i, got, want[i])
		}
	}
}

func TestPaperTable3InitialCost(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewAllocation(db, 1, make([]int, db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if got := Cost(a); math.Abs(got-135.60) > paperTol {
		t.Fatalf("cost(D) = %.4f, want 135.60", got)
	}
}

func TestPaperTable3DRPTrace(t *testing.T) {
	db := PaperExampleDatabase()
	_, tr, err := NewDRPExampleConsistent().AllocateWithTrace(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != PaperExampleK-1 {
		t.Fatalf("DRP performed %d splits, want %d", len(tr.Steps), PaperExampleK-1)
	}

	// Table 3(b): the first split cuts D into costs 29.04 and 28.62,
	// with the boundary between d12 and d10.
	first := tr.Steps[0]
	if math.Abs(first.Popped.Cost-135.60) > paperTol {
		t.Errorf("first popped cost %.4f, want 135.60", first.Popped.Cost)
	}
	if math.Abs(first.Left.Cost-29.04) > paperTol || math.Abs(first.Right.Cost-28.62) > paperTol {
		t.Errorf("first split costs (%.4f, %.4f), want (29.04, 28.62)", first.Left.Cost, first.Right.Cost)
	}
	if gotLeft := ids(t, db, positionsOf(tr.Order, first.Left)); !sameIDSet(gotLeft, []int{9, 2, 3, 6, 5, 15, 1, 12}) {
		t.Errorf("first split left group = d%v, want Table 3(b) group 1", gotLeft)
	}

	// Table 3(c): the second split pops the 29.04 group and yields
	// costs 7.02 and 6.82.
	second := tr.Steps[1]
	if math.Abs(second.Popped.Cost-29.04) > paperTol {
		t.Errorf("second popped cost %.4f, want 29.04", second.Popped.Cost)
	}
	if math.Abs(second.Left.Cost-7.02) > paperTol || math.Abs(second.Right.Cost-6.82) > paperTol {
		t.Errorf("second split costs (%.4f, %.4f), want (7.02, 6.82)", second.Left.Cost, second.Right.Cost)
	}
}

func positionsOf(order []int, g GroupRange) []int {
	out := make([]int, 0, g.Hi-g.Lo)
	for i := g.Lo; i < g.Hi; i++ {
		out = append(out, order[i])
	}
	return out
}

func TestPaperTable3DFinalGrouping(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewDRPExampleConsistent().Allocate(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}

	wantGroups := [][]int{
		{9, 2, 3},
		{6, 5, 15},
		{1, 12},
		{10, 13, 4, 8},
		{14, 7, 11},
	}
	wantCosts := []float64{2.59, 1.07, 6.82, 7.26, 6.35}

	groups := a.Groups()
	costs := GroupCosts(a)
	for c := range wantGroups {
		if got := ids(t, db, groups[c]); !sameIDSet(got, wantGroups[c]) {
			t.Errorf("group %d = d%v, want d%v", c+1, got, wantGroups[c])
		}
		if math.Abs(costs[c]-wantCosts[c]) > paperTol {
			t.Errorf("group %d cost %.4f, want %.2f", c+1, costs[c], wantCosts[c])
		}
	}
	if got := Cost(a); math.Abs(got-24.09) > paperTol {
		t.Errorf("DRP total cost %.4f, want 24.09 (Table 4(a))", got)
	}
}

func TestPaperTable4CDSTrace(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewDRPExampleConsistent().Allocate(db, PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	refined, moves, err := NewCDS().RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) < 2 {
		t.Fatalf("CDS applied %d moves, want at least the two shown in Table 4", len(moves))
	}

	byID := db.IndexByID()

	// Table 4(b): first move is d10 from group 4 to group 2 with
	// Δc_max = 0.95 (24.09 → 23.13).
	m1 := moves[0]
	if m1.Pos != byID[10] || m1.From != 3 || m1.To != 1 {
		t.Errorf("move 1 = d%d ch%d→ch%d, want d10 ch4→ch2", db.Item(m1.Pos).ID, m1.From+1, m1.To+1)
	}
	if math.Abs(m1.Reduction-0.95) > paperTol {
		t.Errorf("move 1 Δc = %.4f, want 0.95", m1.Reduction)
	}
	if math.Abs(m1.CostBefore-24.09) > paperTol || math.Abs(m1.CostAfter-23.13) > paperTol {
		t.Errorf("move 1 cost %.4f→%.4f, want 24.09→23.13", m1.CostBefore, m1.CostAfter)
	}

	// Table 4(c): second move is d12 from group 3 to group 2 with
	// Δc_max = 0.45 (23.13 → 22.68).
	m2 := moves[1]
	if m2.Pos != byID[12] || m2.From != 2 || m2.To != 1 {
		t.Errorf("move 2 = d%d ch%d→ch%d, want d12 ch3→ch2", db.Item(m2.Pos).ID, m2.From+1, m2.To+1)
	}
	if math.Abs(m2.Reduction-0.45) > paperTol {
		t.Errorf("move 2 Δc = %.4f, want 0.45", m2.Reduction)
	}
	if math.Abs(m2.CostAfter-22.68) > paperTol {
		t.Errorf("move 2 cost after = %.4f, want 22.68", m2.CostAfter)
	}

	// Table 4(d): the local optimum has cost 22.29 and the grouping
	// {d9 d2 d3 d6}, {d5 d15 d10 d12 d14}, {d1}, {d13 d4 d8}, {d7 d11}.
	if got := Cost(refined); math.Abs(got-22.29) > paperTol {
		t.Errorf("local-optimal cost %.4f, want 22.29", got)
	}
	wantGroups := [][]int{
		{9, 2, 3, 6},
		{5, 15, 10, 12, 14},
		{1},
		{13, 4, 8},
		{7, 11},
	}
	groups := refined.Groups()
	for c := range wantGroups {
		if got := ids(t, db, groups[c]); !sameIDSet(got, wantGroups[c]) {
			t.Errorf("final group %d = d%v, want d%v", c+1, got, wantGroups[c])
		}
	}
}

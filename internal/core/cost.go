package core

// This file implements the analytical model of Section 2 of the paper:
// the grouping cost (Eq. 3) and the average waiting time (Eq. 2).

// Cost evaluates the grouping cost of Eq. (3):
//
//	cost = Σ_i F_i · Z_i
//
// the allocation-dependent component of the waiting time. Lower is
// better; this is the quantity every allocator in this module
// minimizes.
func Cost(a *Allocation) float64 {
	var total float64
	for _, g := range a.Aggregates() {
		total += g.Cost()
	}
	return total
}

// GroupCosts returns each channel's F_i·Z_i contribution.
func GroupCosts(a *Allocation) []float64 {
	agg := a.Aggregates()
	out := make([]float64, len(agg))
	for i, g := range agg {
		out[i] = g.Cost()
	}
	return out
}

// WaitingTime evaluates Eq. (2): the expected waiting time of the
// broadcast program under channel bandwidth b (size units per second),
//
//	W_b = cost/(2b) + downloadMass/b.
//
// The first term is the frequency-weighted mean probe time (half the
// broadcast cycle of the item's channel); the second the mean download
// time. b must be positive.
func WaitingTime(a *Allocation, b float64) float64 {
	return Cost(a)/(2*b) + a.db.DownloadMass()/b
}

// ChannelWaitingTime evaluates Eq. (1) averaged within channel c: the
// mean waiting time W^(i) experienced by requests for items on that
// channel. An empty channel has waiting time 0 (it serves no
// requests).
func ChannelWaitingTime(a *Allocation, c int, b float64) float64 {
	agg := a.Aggregates()[c]
	if agg.N == 0 || agg.F == 0 {
		return 0
	}
	var download float64 // Σ f_j z_j over the channel
	for _, pos := range a.ChannelPositions(c) {
		it := a.db.Item(pos)
		download += it.Freq * it.Size
	}
	return agg.Z/(2*b) + download/(b*agg.F)
}

// ItemWaitingTime evaluates Eq. (1) for the single item at database
// position pos: half its channel's cycle plus its own download time.
func ItemWaitingTime(a *Allocation, pos int, b float64) float64 {
	agg := a.Aggregates()[a.channel[pos]]
	return agg.Z/(2*b) + a.db.Item(pos).Size/b
}

// CycleLength returns the broadcast-cycle duration of channel c in
// seconds under bandwidth b: Z_i / b.
func CycleLength(a *Allocation, c int, b float64) float64 {
	return a.Aggregates()[c].Z / b
}

// MoveReduction evaluates Eq. (4): the cost reduction Δc obtained by
// moving the item (f, z) from a group with aggregates from to a group
// with aggregates to, without performing the move:
//
//	Δc = f·(Z_p − Z_q) + z·(F_p − F_q) − 2·f·z
//
// A positive value means the move lowers the total cost.
//
// Because Δc depends only on the item's constants and the two touched
// groups' aggregates, moves whose {source, destination} group pairs
// are pairwise disjoint commute: applying one cannot change another's
// Δc — not even its float bits — and any application order reaches
// the same aggregates. The batched CDS mode (CDS.BatchSize) rests on
// exactly this property; the batch-replay tests verify it move by
// move.
func MoveReduction(it Item, from, to GroupAgg) float64 {
	return it.Freq*(from.Z-to.Z) + it.Size*(from.F-to.F) - 2*it.Freq*it.Size
}

package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewDatabaseValidation(t *testing.T) {
	tests := []struct {
		name    string
		items   []Item
		wantErr error
	}{
		{"empty", nil, ErrEmptyDatabase},
		{"zero freq", []Item{{ID: 1, Freq: 0, Size: 1}}, ErrBadFreq},
		{"negative freq", []Item{{ID: 1, Freq: -0.1, Size: 1}}, ErrBadFreq},
		{"NaN freq", []Item{{ID: 1, Freq: math.NaN(), Size: 1}}, ErrBadFreq},
		{"inf freq", []Item{{ID: 1, Freq: math.Inf(1), Size: 1}}, ErrBadFreq},
		{"zero size", []Item{{ID: 1, Freq: 0.5, Size: 0}}, ErrBadSize},
		{"negative size", []Item{{ID: 1, Freq: 0.5, Size: -3}}, ErrBadSize},
		{"inf size", []Item{{ID: 1, Freq: 0.5, Size: math.Inf(1)}}, ErrBadSize},
		{"duplicate id", []Item{{ID: 7, Freq: 0.5, Size: 1}, {ID: 7, Freq: 0.5, Size: 2}}, ErrDuplicateID},
		{"valid", []Item{{ID: 1, Freq: 0.5, Size: 1}, {ID: 2, Freq: 0.5, Size: 2}}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewDatabase(tt.items)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("NewDatabase error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDatabaseCopiesInput(t *testing.T) {
	items := []Item{{ID: 1, Freq: 0.5, Size: 1}, {ID: 2, Freq: 0.5, Size: 2}}
	db := MustNewDatabase(items)
	items[0].Freq = 99 // mutate the caller's slice
	if got := db.Item(0).Freq; got != 0.5 {
		t.Fatalf("database aliased caller slice: item 0 freq = %v", got)
	}
	out := db.Items()
	out[1].Size = -1 // mutate the returned copy
	if got := db.Item(1).Size; got != 2 {
		t.Fatalf("Items() aliased internal slice: item 1 size = %v", got)
	}
}

func TestDatabaseAggregates(t *testing.T) {
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 0.25, Size: 4},
		{ID: 2, Freq: 0.75, Size: 8},
	})
	if got := db.TotalFreq(); math.Abs(got-1) > 1e-12 {
		t.Errorf("TotalFreq = %v, want 1", got)
	}
	if got := db.TotalSize(); got != 12 {
		t.Errorf("TotalSize = %v, want 12", got)
	}
	if got := db.DownloadMass(); math.Abs(got-(0.25*4+0.75*8)) > 1e-12 {
		t.Errorf("DownloadMass = %v, want 7", got)
	}
	if got := db.MeanSize(); got != 6 {
		t.Errorf("MeanSize = %v, want 6", got)
	}
}

func TestNormalized(t *testing.T) {
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 2, Size: 4},
		{ID: 2, Freq: 6, Size: 8},
	})
	norm := db.Normalized()
	if math.Abs(norm.TotalFreq()-1) > 1e-12 {
		t.Fatalf("normalized TotalFreq = %v, want 1", norm.TotalFreq())
	}
	if got, want := norm.Item(0).Freq, 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("item 0 freq = %v, want %v", got, want)
	}
	if db.Item(0).Freq != 2 {
		t.Error("Normalized mutated the receiver")
	}
	// Already-normalized databases are returned as-is.
	if again := norm.Normalized(); again != norm {
		t.Error("Normalized of a normalized database allocated a copy")
	}
}

func TestByBenefitRatioOrder(t *testing.T) {
	db := PaperExampleDatabase()
	order := db.ByBenefitRatio()
	if len(order) != db.Len() {
		t.Fatalf("order length %d, want %d", len(order), db.Len())
	}
	for i := 1; i < len(order); i++ {
		prev := db.Item(order[i-1]).BenefitRatio()
		cur := db.Item(order[i]).BenefitRatio()
		if prev < cur {
			t.Fatalf("order not descending at %d: %v < %v", i, prev, cur)
		}
	}
}

func TestByFreqOrder(t *testing.T) {
	db := PaperExampleDatabase()
	order := db.ByFreq()
	for i := 1; i < len(order); i++ {
		if db.Item(order[i-1]).Freq < db.Item(order[i]).Freq {
			t.Fatalf("freq order not descending at %d", i)
		}
	}
	// The most popular paper item is d1.
	if got := db.Item(order[0]).ID; got != 1 {
		t.Fatalf("most frequent item = d%d, want d1", got)
	}
}

func TestIndexByID(t *testing.T) {
	db := PaperExampleDatabase()
	byID := db.IndexByID()
	if len(byID) != db.Len() {
		t.Fatalf("IndexByID size %d, want %d", len(byID), db.Len())
	}
	for pos := 0; pos < db.Len(); pos++ {
		if got := byID[db.Item(pos).ID]; got != pos {
			t.Fatalf("IndexByID[%d] = %d, want %d", db.Item(pos).ID, got, pos)
		}
	}
}

// Property: sorting permutations are true permutations of 0..N-1.
func TestSortOrdersArePermutations(t *testing.T) {
	check := func(seed uint16, n uint8) bool {
		db := randomDatabase(t, int(seed), int(n)%40+1)
		for _, order := range [][]int{db.ByBenefitRatio(), db.ByFreq()} {
			seen := make([]bool, db.Len())
			for _, pos := range order {
				if pos < 0 || pos >= db.Len() || seen[pos] {
					return false
				}
				seen[pos] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package core implements the diverse-data-broadcasting channel
// allocation model and the paper's primary contribution: algorithm DRP
// (Dimension Reduction Partitioning) and mechanism CDS
// (Cost-Diminishing Selection).
//
// The model follows Hung and Chen, "On Exploring Channel Allocation in
// the Diverse Data Broadcasting Environment", ICDCS 2005. A database of
// N items, each with an access frequency f and a size z, must be
// partitioned across K broadcast channels of bandwidth b. Every channel
// cyclically broadcasts its item set, so the expected waiting time of a
// client is
//
//	W_b = cost/(2b) + downloadMass/b
//
// where cost = Σ_i F_i·Z_i sums, per channel, the product of the
// channel's aggregate frequency F_i and aggregate size Z_i, and
// downloadMass = Σ f_j·z_j is allocation-independent. Minimizing W_b is
// therefore the grouping problem of minimizing cost, which this package
// solves heuristically (DRP), refines to a local optimum (CDS), and
// evaluates exactly (Cost, WaitingTime).
package core

package core

import (
	"time"

	"diversecast/internal/obs"
)

// Allocator instrumentation on the process-wide registry: how long
// DRP and CDS take and how much work CDS does. One observation per
// Allocate/Refine call, so the per-item hot loops stay untouched.
var (
	drpSeconds = obs.Default().Histogram("core_drp_seconds",
		"DRP allocation duration in seconds", 0, 0.05, 100)
	cdsSeconds = obs.Default().Histogram("core_cds_seconds",
		"CDS refinement duration in seconds", 0, 0.05, 100)
	cdsRefinements = obs.Default().Counter("core_cds_refinements_total",
		"CDS refinement runs")
	cdsMoves = obs.Default().Counter("core_cds_moves_total",
		"single-item moves applied across all CDS refinements")
	cdsScans = obs.Default().Counter("core_cds_scans_total",
		"CDS move-selection sweeps (one per iteration, both strategies)")
	cdsCandidatesRecomputed = obs.Default().Counter("core_cds_candidates_recomputed_total",
		"full per-item candidate recomputations by the incremental CDS strategy")
	cdsParallelSweeps = obs.Default().Counter("core_cds_parallel_sweeps_total",
		"candidate sweeps sharded across the parallel CDS worker pool")
	cdsBatchedMoves = obs.Default().Counter("core_cds_batched_moves_total",
		"moves applied by the batched CDS mode (non-conflicting moves per sweep)")
)

// timeNow is stubbed in tests.
var timeNow = time.Now

package core

import (
	"testing"

	"diversecast/internal/alloctest"
)

// The gate tests below bind every //diverselint:hotpath root in this
// package to testing.AllocsPerRun: the static passes prove no
// allocation site is reachable from these roots, and these tests
// prove the compiled code agrees.
//
// The selectors are driven with a synthetic ping-pong: one item moves
// to the next group round-robin, the two touched groups' aggregates
// are reconciled exactly as refine does, and the selector is
// notified. The moves are not cost-reducing — allocation behavior is
// what is measured — but the invariant the selectors rely on (agg
// bit-exact with the allocation at applied time) holds at every step.

// pingPong returns a closure performing one synthetic refine
// iteration against sel.
func pingPong(cur *Allocation, agg []GroupAgg, sel moveSelector) func() {
	g := cur.ChannelOf(0)
	k := len(agg)
	return func() {
		h := (g + 1) % k
		cur.move(0, h)
		reconcileGroup(cur, agg, g)
		reconcileGroup(cur, agg, h)
		sel.applied(Move{Pos: 0, From: g, To: h})
		g = h
	}
}

func TestHotPathContractsAllocFree(t *testing.T) {
	db := randomDatabase(t, 11, 96)
	base := randomAllocation(t, db, 6, 7)

	t.Run("reconcileGroup", func(t *testing.T) {
		cur := base.Clone()
		agg := cur.Aggregates()
		alloctest.MustZeroAllocs(t, "reconcileGroup", 2, func() {
			reconcileGroup(cur, agg, 0)
			reconcileGroup(cur, agg, 1)
		})
	})

	t.Run("incrementalSelector", func(t *testing.T) {
		cur := base.Clone()
		agg := cur.Aggregates()
		tables := acquireCDSTables(cur.db.Len(), len(agg))
		defer releaseCDSTables(tables)
		sel := newIncrementalSelector(cur, agg, tables)
		alloctest.MustZeroAllocs(t, "incrementalSelector.next", 2, func() {
			sel.next()
		})
		alloctest.MustZeroAllocs(t, "incrementalSelector.applied", 2, pingPong(cur, agg, sel))
	})

	t.Run("batchedSelector.next", func(t *testing.T) {
		cur := base.Clone()
		agg := cur.Aggregates()
		tables := acquireCDSTables(cur.db.Len(), len(agg))
		defer releaseCDSTables(tables)
		sel := newBatchedSelector(cur, agg, tables, 1, 4, 1e-12, false)
		// Repeated next() calls alternate between draining the pending
		// batch and assembling a fresh one from the per-group
		// champions, so both shapes — the pop and the sort-and-filter
		// assembly — are inside the measurement window.
		alloctest.MustZeroAllocs(t, "batchedSelector.next", 8, func() {
			sel.next()
		})
	})

	t.Run("batchedSelector.applied", func(t *testing.T) {
		cur := base.Clone()
		agg := cur.Aggregates()
		tables := acquireCDSTables(cur.db.Len(), len(agg))
		defer releaseCDSTables(tables)
		sel := newBatchedSelector(cur, agg, tables, 1, 4, 1e-12, false)
		// With no pending batch in flight, every applied call runs the
		// full end-of-batch repair — the most allocation-prone path
		// the batched engine has.
		alloctest.MustZeroAllocs(t, "batchedSelector.applied+repair", 2, pingPong(cur, agg, sel))
	})

	t.Run("parallelSelector", func(t *testing.T) {
		cur := base.Clone()
		agg := cur.Aggregates()
		tables := acquireCDSTables(cur.db.Len(), len(agg))
		defer releaseCDSTables(tables)
		// workers=1 pins the serial delegation path: the zero-alloc
		// contract covers it, while the sharded path's W spawns and
		// closure headers are the audited suppressions in
		// cds_parallel.go.
		sel := newParallelSelector(cur, agg, tables, 1, false)
		alloctest.MustZeroAllocs(t, "parallelSelector.applied", 2, pingPong(cur, agg, sel))
	})
}

package core

import (
	"errors"
	"testing"
)

func TestNewAllocationValidation(t *testing.T) {
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 0.3, Size: 1},
		{ID: 2, Freq: 0.3, Size: 2},
		{ID: 3, Freq: 0.4, Size: 3},
	})
	tests := []struct {
		name    string
		k       int
		channel []int
		wantErr error
	}{
		{"k too small", 0, []int{0, 0, 0}, ErrBadChannelCount},
		{"k exceeds n", 4, []int{0, 1, 2}, ErrBadChannelCount},
		{"short assignment", 2, []int{0, 1}, ErrWrongLength},
		{"long assignment", 2, []int{0, 1, 0, 1}, ErrWrongLength},
		{"channel too high", 2, []int{0, 1, 2}, ErrChannelRange},
		{"channel negative", 2, []int{0, -1, 1}, ErrChannelRange},
		{"valid", 2, []int{0, 1, 0}, nil},
		{"valid with empty channel", 3, []int{0, 0, 2}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := NewAllocation(db, tt.k, tt.channel)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("error = %v, want %v", err, tt.wantErr)
			}
			if err == nil {
				if verr := a.Validate(); verr != nil {
					t.Fatalf("Validate after NewAllocation: %v", verr)
				}
			}
		})
	}
}

func TestAllocationCopiesAssignment(t *testing.T) {
	db := MustNewDatabase([]Item{{ID: 1, Freq: 0.5, Size: 1}, {ID: 2, Freq: 0.5, Size: 2}})
	channel := []int{0, 1}
	a, err := NewAllocation(db, 2, channel)
	if err != nil {
		t.Fatal(err)
	}
	channel[0] = 1
	if a.ChannelOf(0) != 0 {
		t.Fatal("NewAllocation aliased caller slice")
	}
	out := a.Assignment()
	out[1] = 0
	if a.ChannelOf(1) != 1 {
		t.Fatal("Assignment aliased internal slice")
	}
}

func TestGroupsAndAggregates(t *testing.T) {
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 0.1, Size: 10},
		{ID: 2, Freq: 0.2, Size: 20},
		{ID: 3, Freq: 0.3, Size: 30},
		{ID: 4, Freq: 0.4, Size: 40},
	})
	a, err := NewAllocation(db, 2, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}

	groups := a.Groups()
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("group 0 = %v, want [0 2]", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 1 || groups[1][1] != 3 {
		t.Errorf("group 1 = %v, want [1 3]", groups[1])
	}

	agg := a.Aggregates()
	if agg[0].F != 0.4 || agg[0].Z != 40 || agg[0].N != 2 {
		t.Errorf("agg[0] = %+v, want {F:0.4 Z:40 N:2}", agg[0])
	}
	if agg[1].N != 2 || agg[1].Z != 60 {
		t.Errorf("agg[1] = %+v, want Z=60 N=2", agg[1])
	}
	if got, want := agg[0].Cost(), 0.4*40.0; got != want {
		t.Errorf("agg[0].Cost = %v, want %v", got, want)
	}

	gi := a.GroupItems()
	if gi[0][1].ID != 3 {
		t.Errorf("GroupItems[0][1].ID = %d, want 3", gi[0][1].ID)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	db := PaperExampleDatabase()
	a := randomAllocation(t, db, 4, 1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not Equal to original")
	}
	b.move(0, (a.ChannelOf(0)+1)%4)
	if a.Equal(b) {
		t.Fatal("mutating clone affected original (or Equal is broken)")
	}
	if a.ChannelOf(0) == b.ChannelOf(0) {
		t.Fatal("clone shares channel slice with original")
	}
}

func TestEqual(t *testing.T) {
	db := PaperExampleDatabase()
	other := PaperExampleDatabase()
	a := randomAllocation(t, db, 3, 7)
	b := randomAllocation(t, db, 3, 7)
	if !a.Equal(b) {
		t.Error("identically-seeded allocations differ")
	}
	// Same assignment over a different Database value is not Equal:
	// allocations are tied to their database identity.
	c, err := NewAllocation(other, 3, a.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("allocations over distinct databases compare Equal")
	}
}

func TestEmptyChannelsAreLegal(t *testing.T) {
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 0.5, Size: 1},
		{ID: 2, Freq: 0.5, Size: 2},
	})
	a, err := NewAllocation(db, 2, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	agg := a.Aggregates()
	if agg[1].N != 0 || agg[1].Cost() != 0 {
		t.Fatalf("empty channel agg = %+v, want zero", agg[1])
	}
	if got := Cost(a); got != 1.0*3.0 {
		t.Fatalf("cost = %v, want 3", got)
	}
}

package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDSNeverIncreasesCost(t *testing.T) {
	check := func(seed uint16, rawN uint8, rawK uint8) bool {
		n := int(rawN)%30 + 2
		k := int(rawK)%n + 1
		db := randomDatabase(t, int(seed), n)
		a := randomAllocation(t, db, k, int(seed)+1)
		refined, err := NewCDS().Refine(a)
		if err != nil || refined.Validate() != nil {
			return false
		}
		return Cost(refined) <= Cost(a)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCDSDoesNotMutateInput(t *testing.T) {
	db := PaperExampleDatabase()
	a := randomAllocation(t, db, 4, 9)
	before := a.Assignment()
	if _, err := NewCDS().Refine(a); err != nil {
		t.Fatal(err)
	}
	after := a.Assignment()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("CDS mutated its input allocation")
		}
	}
}

// The defining postcondition: at a CDS fixed point no single-item move
// reduces the cost (local optimality).
func TestCDSReachesLocalOptimum(t *testing.T) {
	check := func(seed uint16, rawN uint8, rawK uint8) bool {
		n := int(rawN)%25 + 2
		k := int(rawK)%n + 1
		if k < 2 {
			k = 2
		}
		if k > n {
			k = n
		}
		db := randomDatabase(t, int(seed), n)
		a := randomAllocation(t, db, k, int(seed)+17)
		refined, err := NewCDS().Refine(a)
		if err != nil {
			return false
		}
		agg := refined.Aggregates()
		eps := 1e-9 * (1 + Cost(refined))
		for pos := 0; pos < n; pos++ {
			p := refined.ChannelOf(pos)
			for q := 0; q < k; q++ {
				if q == p {
					continue
				}
				if MoveReduction(db.Item(pos), agg[p], agg[q]) > eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCDSIdempotentAtFixedPoint(t *testing.T) {
	db := randomDatabase(t, 4, 30)
	a := randomAllocation(t, db, 5, 8)
	cds := NewCDS()
	once, err := cds.Refine(a)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := cds.Refine(once)
	if err != nil {
		t.Fatal(err)
	}
	if !once.Equal(twice) {
		t.Fatal("refining a local optimum changed the allocation")
	}
}

func TestCDSTraceIsConsistent(t *testing.T) {
	db := randomDatabase(t, 21, 40)
	a := randomAllocation(t, db, 6, 3)
	refined, moves, err := NewCDS().RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the trace from the input must land on the output, and
	// each recorded Δc must match the recomputed cost delta.
	replay := a.Clone()
	for i, m := range moves {
		if replay.ChannelOf(m.Pos) != m.From {
			t.Fatalf("move %d: item at %d is on %d, trace says %d", i, m.Pos, replay.ChannelOf(m.Pos), m.From)
		}
		before := Cost(replay)
		if math.Abs(before-m.CostBefore) > 1e-9*(1+before) {
			t.Fatalf("move %d: CostBefore %v, recomputed %v", i, m.CostBefore, before)
		}
		replay.move(m.Pos, m.To)
		after := Cost(replay)
		if math.Abs((before-after)-m.Reduction) > 1e-9*(1+before) {
			t.Fatalf("move %d: Δc %v, recomputed %v", i, m.Reduction, before-after)
		}
		if math.Abs(after-m.CostAfter) > 1e-9*(1+before) {
			t.Fatalf("move %d: CostAfter %v, recomputed %v", i, m.CostAfter, after)
		}
		if m.Reduction <= 0 {
			t.Fatalf("move %d: non-positive Δc %v applied", i, m.Reduction)
		}
	}
	if !replay.Equal(refined) {
		t.Fatal("replaying the trace does not reproduce the refined allocation")
	}
}

func TestCDSMovesAreStrictlyDecreasing(t *testing.T) {
	db := randomDatabase(t, 33, 50)
	a := randomAllocation(t, db, 7, 2)
	_, moves, err := NewCDS().RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(moves); i++ {
		if moves[i].CostBefore >= moves[i-1].CostBefore {
			continue // costs must strictly decrease across moves
		}
	}
	for i, m := range moves {
		if m.CostAfter >= m.CostBefore {
			t.Fatalf("move %d did not decrease cost: %v → %v", i, m.CostBefore, m.CostAfter)
		}
	}
}

// TestCDSTraceCostMatchesRecomputationExactly is the drift
// regression: the trace used to carry an incrementally tracked cost
// (cost -= Δc per move), which floats away from the true Cost over
// long refinements. After reconciliation, CostAfter is computed from
// the allocation itself, so it must equal Cost bit-for-bit — no
// tolerance — on every move of a long run, and the final CostAfter
// must equal Cost(refined) exactly.
func TestCDSTraceCostMatchesRecomputationExactly(t *testing.T) {
	for _, seed := range []int{1, 7, 99} {
		db := randomDatabase(t, seed, 120)
		a := randomAllocation(t, db, 8, seed+5)
		refined, moves, err := NewCDS().RefineWithTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) == 0 {
			t.Fatalf("seed %d: random allocation already optimal?", seed)
		}
		replay := a.Clone()
		for i, m := range moves {
			replay.move(m.Pos, m.To)
			if got, want := m.CostAfter, Cost(replay); got != want {
				t.Fatalf("seed %d, move %d/%d: CostAfter %v, Cost %v (drift %g)",
					seed, i, len(moves), got, want, got-want)
			}
			if i+1 < len(moves) && moves[i+1].CostBefore != m.CostAfter {
				t.Fatalf("seed %d, move %d: CostBefore chain broken", seed, i)
			}
		}
		if got, want := moves[len(moves)-1].CostAfter, Cost(refined); got != want {
			t.Fatalf("seed %d: final CostAfter %v, Cost(refined) %v", seed, got, want)
		}
	}
}

// MaxMoves must bound the untraced Refine path too, not just
// RefineWithTrace (it used to count trace entries, which the plain
// Refine never appends).
func TestCDSMaxMovesBoundsUntracedRefine(t *testing.T) {
	db := randomDatabase(t, 2, 60)
	a := randomAllocation(t, db, 6, 1)
	_, unbounded, err := NewCDS().RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(unbounded) < 3 {
		t.Skipf("instance converged in %d moves; need ≥3 for this test", len(unbounded))
	}
	limited := &CDS{MaxMoves: 2}
	bounded, err := limited.Refine(a)
	if err != nil {
		t.Fatal(err)
	}
	// Refine with MaxMoves=2 must land on the same allocation as the
	// first two traced moves — not on the unbounded fixed point.
	replay := a.Clone()
	replay.move(unbounded[0].Pos, unbounded[0].To)
	replay.move(unbounded[1].Pos, unbounded[1].To)
	if !bounded.Equal(replay) {
		t.Fatal("Refine ignored MaxMoves")
	}
}

func TestCDSMaxMoves(t *testing.T) {
	db := randomDatabase(t, 2, 60)
	a := randomAllocation(t, db, 6, 1)
	_, unbounded, err := NewCDS().RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(unbounded) < 3 {
		t.Skipf("instance converged in %d moves; need ≥3 for this test", len(unbounded))
	}
	limited := &CDS{MaxMoves: 2}
	_, moves, err := limited.RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("MaxMoves=2 applied %d moves", len(moves))
	}
}

func TestCDSOnSingleChannelIsNoOp(t *testing.T) {
	db := PaperExampleDatabase()
	a, err := NewAllocation(db, 1, make([]int, db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	refined, moves, err := NewCDS().RefineWithTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 || !refined.Equal(a) {
		t.Fatal("CDS on K=1 should be a no-op")
	}
}

func TestCDSCanEmptyAGroup(t *testing.T) {
	// Two heavy items on channel 0 and a lone feather on channel 1;
	// constructed so the optimum leaves a channel empty — CDS must be
	// willing to drain groups (the paper's example empties group 3).
	db := MustNewDatabase([]Item{
		{ID: 1, Freq: 0.98, Size: 1},
		{ID: 2, Freq: 0.01, Size: 100},
		{ID: 3, Freq: 0.01, Size: 100},
	})
	a, err := NewAllocation(db, 2, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := NewCDS().Refine(a)
	if err != nil {
		t.Fatal(err)
	}
	if Cost(refined) > Cost(a) {
		t.Fatal("refinement increased cost")
	}
	// The known optimum for this instance: item 1 alone, items 2+3
	// together — verify CDS found it from this start.
	agg := refined.Aggregates()
	if agg[refined.ChannelOf(0)].N != 1 {
		t.Errorf("hot item should end up alone, got aggregates %+v", agg)
	}
}

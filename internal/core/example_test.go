package core_test

import (
	"fmt"
	"log"

	"diversecast/internal/core"
)

// ExampleDRP reproduces the paper's Example 1 (Tables 2–3): the
// 15-item profile split across five channels by the worked example's
// split order.
func ExampleDRP() {
	db := core.PaperExampleDatabase()
	alloc, err := core.NewDRPExampleConsistent().Allocate(db, core.PaperExampleK)
	if err != nil {
		log.Fatal(err)
	}
	for c, cost := range core.GroupCosts(alloc) {
		fmt.Printf("group %d cost %.2f\n", c+1, cost)
	}
	fmt.Printf("total %.2f\n", core.Cost(alloc))
	// Output:
	// group 1 cost 2.59
	// group 2 cost 1.07
	// group 3 cost 6.82
	// group 4 cost 7.26
	// group 5 cost 6.35
	// total 24.08
}

// ExampleCDS reproduces the paper's Example 2 (Table 4): refining the
// DRP result to the local optimum at cost 22.29.
func ExampleCDS() {
	db := core.PaperExampleDatabase()
	rough, err := core.NewDRPExampleConsistent().Allocate(db, core.PaperExampleK)
	if err != nil {
		log.Fatal(err)
	}
	refined, moves, err := core.NewCDS().RefineWithTrace(rough)
	if err != nil {
		log.Fatal(err)
	}
	m := moves[0]
	fmt.Printf("first move: d%d from group %d to group %d (Δc %.2f)\n",
		db.Item(m.Pos).ID, m.From+1, m.To+1, m.Reduction)
	fmt.Printf("local optimum %.2f\n", core.Cost(refined))
	// Output:
	// first move: d10 from group 4 to group 2 (Δc 0.95)
	// local optimum 22.29
}

// ExampleMoveReduction evaluates Eq. (4) without performing the move.
func ExampleMoveReduction() {
	item := core.Item{ID: 1, Freq: 0.1, Size: 5}
	from := core.GroupAgg{F: 0.5, Z: 40, N: 4}
	to := core.GroupAgg{F: 0.2, Z: 10, N: 2}
	fmt.Printf("Δc = %.2f\n", core.MoveReduction(item, from, to))
	// Output:
	// Δc = 3.50
}

package gopt

import (
	"math"
	"testing"

	"diversecast/internal/baseline"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func TestRejectsBadK(t *testing.T) {
	db := workload.Config{N: 10, Theta: 0.8, Phi: 1, Seed: 1}.MustGenerate()
	for _, k := range []int{0, -1, 11} {
		if _, err := New(1).Allocate(db, k); err == nil {
			t.Errorf("K=%d should fail", k)
		}
	}
}

func TestProducesValidAllocation(t *testing.T) {
	db := workload.Config{N: 30, Theta: 0.8, Phi: 2, Seed: 2}.MustGenerate()
	g := &GOPT{PopulationSize: 30, Generations: 40, Seed: 3}
	a, err := g.Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.K() != 4 {
		t.Fatalf("K = %d, want 4", a.K())
	}
}

func TestDeterministicForSeed(t *testing.T) {
	db := workload.Config{N: 25, Theta: 1.0, Phi: 1.5, Seed: 4}.MustGenerate()
	g := &GOPT{PopulationSize: 20, Generations: 30, Seed: 5}
	a, err := g.Allocate(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Allocate(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("identically-seeded GOPT runs differ")
	}
}

func TestFindsOptimumOnTinyInstance(t *testing.T) {
	// On a tiny instance the exact optimum is known; the reference
	// configuration must land on it.
	db := workload.Config{N: 9, Theta: 0.9, Phi: 2, Seed: 6}.MustGenerate()
	opt, err := baseline.NewExhaustive().Allocate(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := NewReference(7).AllocateWithStats(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := core.Cost(a), core.Cost(opt); math.Abs(got-want) > 1e-9 {
		t.Fatalf("GOPT cost %v, exhaustive optimum %v", got, want)
	}
}

func TestPolishNeverHurts(t *testing.T) {
	db := workload.Config{N: 40, Theta: 0.8, Phi: 2, Seed: 8}.MustGenerate()
	raw := &GOPT{PopulationSize: 30, Generations: 50, Seed: 9}
	polished := &GOPT{PopulationSize: 30, Generations: 50, Seed: 9, Polish: true}
	_, rawStats, err := raw.AllocateWithStats(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, polStats, err := polished.AllocateWithStats(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if polStats.RawCost != rawStats.Cost {
		t.Fatalf("identical seeds should share the raw GA result: %v vs %v", polStats.RawCost, rawStats.Cost)
	}
	if polStats.Cost > polStats.RawCost+1e-9 {
		t.Fatalf("polish increased cost: %v → %v", polStats.RawCost, polStats.Cost)
	}
}

func TestSeedWithDRPLowerBound(t *testing.T) {
	// Seeding with DRP guarantees GOPT is at least as good as DRP
	// (elitism preserves the seed).
	db := workload.Config{N: 50, Theta: 0.8, Phi: 2, Seed: 10}.MustGenerate()
	drp, err := core.NewDRP().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	g := &GOPT{PopulationSize: 20, Generations: 10, SeedWithDRP: true, Seed: 11}
	a, err := g.Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	if core.Cost(a) > core.Cost(drp)+1e-9 {
		t.Fatalf("DRP-seeded GOPT (%v) worse than DRP (%v)", core.Cost(a), core.Cost(drp))
	}
}

func TestStatsPopulated(t *testing.T) {
	db := workload.Config{N: 20, Theta: 0.8, Phi: 1, Seed: 12}.MustGenerate()
	g := &GOPT{PopulationSize: 10, Generations: 8, Stagnation: 8, Seed: 13}
	a, stats, err := g.AllocateWithStats(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generations < 1 || stats.Generations > 8 {
		t.Errorf("generations = %d", stats.Generations)
	}
	if stats.Evaluations < 10 {
		t.Errorf("evaluations = %d, want at least the initial population", stats.Evaluations)
	}
	if math.Abs(stats.Cost-core.Cost(a)) > 1e-9 {
		t.Errorf("stats.Cost %v disagrees with allocation cost %v", stats.Cost, core.Cost(a))
	}
	if stats.RawCost < stats.Cost-1e-9 {
		t.Errorf("raw cost %v below final cost %v without polish", stats.RawCost, stats.Cost)
	}
}

func TestReferenceBeatsVFKOnDiverseData(t *testing.T) {
	// The headline qualitative result, in miniature: on a diverse
	// database the optimum reference clearly beats the
	// conventional-environment allocator.
	db := workload.Config{N: 40, Theta: 0.8, Phi: 2.5, Seed: 14}.MustGenerate()
	vfk, err := baseline.NewVFK().Allocate(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReference(15).Allocate(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if core.Cost(ref) >= core.Cost(vfk) {
		t.Fatalf("GOPT (%v) did not beat VFK (%v) on diverse data", core.Cost(ref), core.Cost(vfk))
	}
}

// Package gopt implements GOPT, the paper's genetic-algorithm
// comparator that serves as the (sub)global-optimum reference in every
// figure of the evaluation. A chromosome is the length-N channel
// assignment vector with gene alphabet {0..K-1}; fitness is the
// negated grouping cost.
//
// The paper omits GOPT's construction "for interest of space" and
// notes that, being GA-based, its result "is still viewed as a
// suboptimum". To let GOPT play its optimum-reference role reliably at
// laptop budgets, this implementation supports a memetic polish step
// (CDS applied to the final best chromosome) — enabled by the
// experiment harness and documented in EXPERIMENTS.md — plus optional
// heuristic seeding of the initial population.
package gopt

import (
	"fmt"

	"diversecast/internal/core"
	"diversecast/internal/genetic"
)

// GOPT is the genetic channel allocator. The zero value uses the
// defaults below; it implements core.Allocator.
type GOPT struct {
	// PopulationSize, Generations, Stagnation, CrossoverRate and
	// MutationRate mirror genetic.Config; zero values take that
	// package's defaults (population 100, 300 generations, crossover
	// 0.9, mutation 1/N) with Stagnation defaulting to 60 here.
	PopulationSize int
	Generations    int
	Stagnation     int
	CrossoverRate  float64
	MutationRate   float64
	// Polish applies CDS to the best chromosome found, making GOPT a
	// memetic algorithm. The experiment harness enables it so GOPT
	// tracks the global optimum closely at bounded budgets.
	Polish bool
	// SeedWithDRP injects the DRP allocation into the initial
	// population.
	SeedWithDRP bool
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the fitness-evaluation worker pool (see
	// genetic.Config.Workers): 0 uses GOMAXPROCS, 1 evaluates
	// serially. The allocation found is identical either way; the
	// execution-time experiments (Figures 6–7) pin 1 so their
	// single-thread timing curves stay meaningful.
	Workers int
}

var _ core.Allocator = (*GOPT)(nil)

// New returns a GOPT allocator with the package defaults (pure GA, no
// polish, no heuristic seeding), matching the paper's description most
// literally.
func New(seed int64) *GOPT { return &GOPT{Seed: seed} }

// NewReference returns the configuration the experiment harness uses
// as the optimum reference: a generously budgeted GA with CDS polish.
func NewReference(seed int64) *GOPT {
	return &GOPT{
		PopulationSize: 120,
		Generations:    600,
		Stagnation:     80,
		Polish:         true,
		Seed:           seed,
	}
}

// Name implements core.Allocator.
func (*GOPT) Name() string { return "GOPT" }

// Allocate implements core.Allocator.
func (g *GOPT) Allocate(db *core.Database, k int) (*core.Allocation, error) {
	a, _, err := g.AllocateWithStats(db, k)
	return a, err
}

// Stats reports search effort, used by the complexity experiments
// (Figures 6 and 7).
type Stats struct {
	Generations int
	Evaluations int
	// RawCost is the best cost before polish; Cost after.
	RawCost float64
	Cost    float64
}

// AllocateWithStats is Allocate plus search statistics.
func (g *GOPT) AllocateWithStats(db *core.Database, k int) (*core.Allocation, *Stats, error) {
	n := db.Len()
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("gopt: %w: K=%d, N=%d", core.ErrBadChannelCount, k, n)
	}

	stagnation := g.Stagnation
	if stagnation == 0 {
		stagnation = 60
	}
	cfg := genetic.Config{
		Length:         n,
		Alphabet:       k,
		PopulationSize: g.PopulationSize,
		Generations:    g.Generations,
		CrossoverRate:  g.CrossoverRate,
		MutationRate:   g.MutationRate,
		Stagnation:     stagnation,
		Seed:           g.Seed,
		Workers:        g.Workers,
	}
	if g.SeedWithDRP {
		drp, err := core.NewDRP().Allocate(db, k)
		if err != nil {
			return nil, nil, fmt.Errorf("gopt: seeding with DRP: %w", err)
		}
		cfg.Seeds = [][]int{drp.Assignment()}
	}

	// Fitness: negated grouping cost, computed incrementally from the
	// chromosome in O(N).
	fitness := func(genes []int) float64 {
		f := make([]float64, k)
		z := make([]float64, k)
		for pos, c := range genes {
			it := db.Item(pos)
			f[c] += it.Freq
			z[c] += it.Size
		}
		var cost float64
		for c := 0; c < k; c++ {
			cost += f[c] * z[c]
		}
		return -cost
	}

	res, err := genetic.Run(cfg, fitness)
	if err != nil {
		return nil, nil, fmt.Errorf("gopt: %w", err)
	}
	a, err := core.NewAllocation(db, k, res.Best)
	if err != nil {
		return nil, nil, fmt.Errorf("gopt: best chromosome invalid: %w", err)
	}

	stats := &Stats{
		Generations: res.Generations,
		Evaluations: res.Evaluations,
		RawCost:     -res.BestFitness,
	}
	if g.Polish {
		a, err = core.NewCDS().Refine(a)
		if err != nil {
			return nil, nil, fmt.Errorf("gopt: polishing: %w", err)
		}
	}
	stats.Cost = core.Cost(a)
	return a, stats, nil
}

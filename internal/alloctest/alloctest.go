// Package alloctest binds diverselint's static hot-path contracts to
// runtime truth. The hotalloc/boxparam/loopalloc passes prove that no
// allocation site is *reachable* from a //diverselint:hotpath root;
// the gate tests built on this package prove the compiler agreed — no
// missed escape, no interface boxing the type checker saw but the
// summary didn't, no stdlib call that allocates behind a clean
// signature. Every annotated root is expected to have exactly one
// MustZeroAllocs gate somewhere in its package's tests.
package alloctest

import (
	"runtime/debug"
	"sync"
	"testing"
)

// RaceEnabled reports whether this binary was built with the race
// detector. Detection reads the build settings baked into the binary,
// so the gate tests need no build tags and `go test` and
// `go test -race` compile the same files.
func RaceEnabled() bool { return raceEnabled() }

var raceEnabled = sync.OnceValue(func() bool {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return false
	}
	for _, s := range bi.Settings {
		if s.Key == "-race" {
			return s.Value == "true"
		}
	}
	return false
})

// MustZeroAllocs fails t unless f performs zero heap allocations per
// call. warmup extra calls run first so one-time lazy state (pooled
// tables, a lazily constructed timer, map growth to steady state)
// settles outside the measurement window. Under the race detector the
// measurement is skipped, not weakened: race instrumentation inserts
// allocations the production build does not have, so a nonzero count
// there proves nothing about the contract.
func MustZeroAllocs(t *testing.T, name string, warmup int, f func()) {
	t.Helper()
	if RaceEnabled() {
		t.Skipf("%s: AllocsPerRun is not meaningful under -race", name)
	}
	for i := 0; i < warmup; i++ {
		f()
	}
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocation(s) per run, want 0", name, n)
	}
}

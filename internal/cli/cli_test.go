package cli

import (
	"flag"
	"io"
	"strings"
	"testing"

	"diversecast/internal/core"
)

func parse(t *testing.T, args ...string) *DBFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var f DBFlags
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestLoadSynthetic(t *testing.T) {
	f := parse(t, "-n", "30", "-theta", "1.2", "-phi", "1", "-seed", "9")
	db, titles, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 30 {
		t.Fatalf("N = %d", db.Len())
	}
	if titles != nil {
		t.Fatal("synthetic workloads have no titles")
	}
}

func TestLoadCatalog(t *testing.T) {
	f := parse(t, "-catalog", "news-ticker")
	db, titles, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 || len(titles) != db.Len() {
		t.Fatalf("catalog load: %d items, %d titles", db.Len(), len(titles))
	}
}

func TestLoadCatalogUnknown(t *testing.T) {
	f := parse(t, "-catalog", "bogus")
	if _, _, err := f.Load(); err == nil {
		t.Fatal("unknown catalog should fail")
	}
}

func TestLoadPaperOverridesEverything(t *testing.T) {
	f := parse(t, "-paper", "-n", "999", "-catalog", "news-ticker")
	db, _, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 15 {
		t.Fatalf("paper database has %d items", db.Len())
	}
}

func TestLoadInvalidSynthetic(t *testing.T) {
	f := parse(t, "-n", "0")
	if _, _, err := f.Load(); err == nil {
		t.Fatal("N=0 should fail")
	}
}

func TestNewAllocatorAllNames(t *testing.T) {
	for _, name := range AlgorithmNames() {
		alg, err := NewAllocator(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty Name()", name)
		}
	}
	// Case-insensitive.
	if _, err := NewAllocator("DRP-CDS", 1); err != nil {
		t.Fatal(err)
	}
}

func TestNewAllocatorUnknown(t *testing.T) {
	_, err := NewAllocator("simulated-annealing", 1)
	if err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if !strings.Contains(err.Error(), "drp-cds") {
		t.Fatalf("error %q should list available algorithms", err)
	}
}

func parseCDS(t *testing.T, args ...string) *CDSFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var f CDSFlags
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestCDSFlagsRoundTrip(t *testing.T) {
	// Every strategy name round-trips through the flag into a refiner
	// with the matching engine.
	for _, s := range []core.CDSStrategy{core.StrategyIncremental, core.StrategyNaive, core.StrategyParallel} {
		f := parseCDS(t, "-cds-strategy", s.String())
		cds, err := f.Refiner()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if cds.Strategy != s {
			t.Fatalf("strategy %q resolved to %v", s.String(), cds.Strategy)
		}
	}
	// Defaults: incremental, auto workers, strict (unbatched) mode.
	cds, err := parseCDS(t).Refiner()
	if err != nil {
		t.Fatal(err)
	}
	if cds.Strategy != core.StrategyIncremental || cds.Workers != 0 || cds.BatchSize != 0 {
		t.Fatalf("defaults resolved to %+v", cds)
	}
	// Full parallel configuration.
	cds, err = parseCDS(t, "-cds-strategy", "parallel", "-cds-workers", "8", "-cds-batch", "16").Refiner()
	if err != nil {
		t.Fatal(err)
	}
	if cds.Strategy != core.StrategyParallel || cds.Workers != 8 || cds.BatchSize != 16 {
		t.Fatalf("parallel flags resolved to %+v", cds)
	}
}

func TestCDSFlagsErrors(t *testing.T) {
	cases := [][]string{
		{"-cds-strategy", "exhaustive"},
		{"-cds-workers", "-1"},
		{"-cds-batch", "4"}, // batch without the parallel strategy
		{"-cds-strategy", "naive", "-cds-batch", "2"},
	}
	for _, args := range cases {
		if _, err := parseCDS(t, args...).Refiner(); err == nil {
			t.Fatalf("args %v: want error", args)
		}
	}
}

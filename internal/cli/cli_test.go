package cli

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func parse(t *testing.T, args ...string) *DBFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var f DBFlags
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestLoadSynthetic(t *testing.T) {
	f := parse(t, "-n", "30", "-theta", "1.2", "-phi", "1", "-seed", "9")
	db, titles, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 30 {
		t.Fatalf("N = %d", db.Len())
	}
	if titles != nil {
		t.Fatal("synthetic workloads have no titles")
	}
}

func TestLoadCatalog(t *testing.T) {
	f := parse(t, "-catalog", "news-ticker")
	db, titles, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 || len(titles) != db.Len() {
		t.Fatalf("catalog load: %d items, %d titles", db.Len(), len(titles))
	}
}

func TestLoadCatalogUnknown(t *testing.T) {
	f := parse(t, "-catalog", "bogus")
	if _, _, err := f.Load(); err == nil {
		t.Fatal("unknown catalog should fail")
	}
}

func TestLoadPaperOverridesEverything(t *testing.T) {
	f := parse(t, "-paper", "-n", "999", "-catalog", "news-ticker")
	db, _, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 15 {
		t.Fatalf("paper database has %d items", db.Len())
	}
}

func TestLoadInvalidSynthetic(t *testing.T) {
	f := parse(t, "-n", "0")
	if _, _, err := f.Load(); err == nil {
		t.Fatal("N=0 should fail")
	}
}

func TestNewAllocatorAllNames(t *testing.T) {
	for _, name := range AlgorithmNames() {
		alg, err := NewAllocator(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty Name()", name)
		}
	}
	// Case-insensitive.
	if _, err := NewAllocator("DRP-CDS", 1); err != nil {
		t.Fatal(err)
	}
}

func TestNewAllocatorUnknown(t *testing.T) {
	_, err := NewAllocator("simulated-annealing", 1)
	if err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if !strings.Contains(err.Error(), "drp-cds") {
		t.Fatalf("error %q should list available algorithms", err)
	}
}

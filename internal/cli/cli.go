// Package cli holds the flag plumbing shared by the cmd/ tools:
// selecting or generating a broadcast database, and choosing an
// allocation algorithm by name.
package cli

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"diversecast/internal/baseline"
	"diversecast/internal/core"
	"diversecast/internal/gopt"
	"diversecast/internal/workload"
)

// DBFlags selects the broadcast database: either a named catalog or a
// synthetic workload.
type DBFlags struct {
	Catalog string
	Profile string
	N       int
	Theta   float64
	Phi     float64
	Seed    int64
	Paper   bool
}

// Register installs the database flags on fs.
func (f *DBFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Catalog, "catalog", "", "named catalog ("+strings.Join(workload.Catalogs(), ", ")+"); overrides the synthetic flags")
	fs.StringVar(&f.Profile, "profile", "", "path to a JSON profile file (see workload.Profile); overrides catalog and synthetic flags")
	fs.BoolVar(&f.Paper, "paper", false, "use the paper's 15-item Table 2 database; overrides everything else")
	fs.IntVar(&f.N, "n", 120, "number of broadcast items")
	fs.Float64Var(&f.Theta, "theta", 0.8, "Zipf skewness parameter")
	fs.Float64Var(&f.Phi, "phi", 2.0, "diversity parameter (sizes are 10^U[0,phi])")
	fs.Int64Var(&f.Seed, "seed", 1, "workload random seed")
}

// Load resolves the flags into a database and (possibly nil) item
// titles.
func (f *DBFlags) Load() (*core.Database, map[int]string, error) {
	if f.Paper {
		return core.PaperExampleDatabase(), nil, nil
	}
	if f.Profile != "" {
		return workload.LoadProfileFile(f.Profile)
	}
	if f.Catalog != "" {
		cat, err := workload.CatalogByName(f.Catalog, f.Seed)
		if err != nil {
			return nil, nil, err
		}
		return cat.DB, cat.Titles, nil
	}
	db, err := workload.Config{N: f.N, Theta: f.Theta, Phi: f.Phi, Seed: f.Seed}.Generate()
	return db, nil, err
}

// CDSFlags selects the CDS move-selection engine for the drp-cds/cds
// algorithms: strategy name, worker-pool width, and batch size (see
// core.CDS for the semantics of each).
type CDSFlags struct {
	Strategy string
	Workers  int
	Batch    int
}

// Register installs the CDS engine flags on fs.
func (f *CDSFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Strategy, "cds-strategy", core.StrategyIncremental.String(),
		"CDS move-selection engine: incremental, naive or parallel")
	fs.IntVar(&f.Workers, "cds-workers", 0,
		"parallel CDS sweep workers (0 = GOMAXPROCS, 1 = serial; parallel strategy only)")
	fs.IntVar(&f.Batch, "cds-batch", 0,
		"apply up to this many non-conflicting moves per sweep (parallel strategy only; <2 keeps strict steepest descent)")
}

// Refiner resolves the flags into a CDS refiner, rejecting unknown
// strategy names and flag combinations core would refuse at Refine
// time (so the error surfaces before any work is done).
func (f *CDSFlags) Refiner() (*core.CDS, error) {
	strat, err := core.ParseCDSStrategy(f.Strategy)
	if err != nil {
		return nil, err
	}
	if f.Workers < 0 {
		return nil, fmt.Errorf("-cds-workers must be >= 0, got %d", f.Workers)
	}
	if f.Batch > 1 && strat != core.StrategyParallel {
		return nil, fmt.Errorf("-cds-batch %d requires -cds-strategy parallel, got %q", f.Batch, f.Strategy)
	}
	return &core.CDS{Strategy: strat, Workers: f.Workers, BatchSize: f.Batch}, nil
}

// AlgorithmNames lists the allocators NewAllocator accepts.
func AlgorithmNames() []string {
	names := []string{"drp", "drp-cds", "cds", "vfk", "gopt", "flat", "greedy", "contig-dp", "exhaustive"}
	sort.Strings(names)
	return names
}

// NewAllocator constructs an allocator by name with the default CDS
// engine. GOPT uses the reference budget with the given seed.
func NewAllocator(name string, seed int64) (core.Allocator, error) {
	return NewAllocatorCDS(name, seed, core.NewCDS())
}

// NewAllocatorCDS is NewAllocator with an explicit CDS refiner for
// the algorithms that end in a CDS pass.
func NewAllocatorCDS(name string, seed int64, cds *core.CDS) (core.Allocator, error) {
	switch strings.ToLower(name) {
	case "drp":
		return core.NewDRP(), nil
	case "drp-cds", "cds":
		return &core.Refined{Base: core.NewDRP(), Refiner: cds}, nil
	case "vfk":
		return baseline.NewVFK(), nil
	case "gopt":
		return gopt.NewReference(seed), nil
	case "flat":
		return baseline.NewFlat(), nil
	case "greedy":
		return baseline.NewGreedy(), nil
	case "contig-dp":
		return baseline.NewContigDP(), nil
	case "exhaustive":
		return baseline.NewExhaustive(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (have %s)", name, strings.Join(AlgorithmNames(), ", "))
	}
}

// Package cli holds the flag plumbing shared by the cmd/ tools:
// selecting or generating a broadcast database, and choosing an
// allocation algorithm by name.
package cli

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"diversecast/internal/baseline"
	"diversecast/internal/core"
	"diversecast/internal/gopt"
	"diversecast/internal/workload"
)

// DBFlags selects the broadcast database: either a named catalog or a
// synthetic workload.
type DBFlags struct {
	Catalog string
	Profile string
	N       int
	Theta   float64
	Phi     float64
	Seed    int64
	Paper   bool
}

// Register installs the database flags on fs.
func (f *DBFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Catalog, "catalog", "", "named catalog ("+strings.Join(workload.Catalogs(), ", ")+"); overrides the synthetic flags")
	fs.StringVar(&f.Profile, "profile", "", "path to a JSON profile file (see workload.Profile); overrides catalog and synthetic flags")
	fs.BoolVar(&f.Paper, "paper", false, "use the paper's 15-item Table 2 database; overrides everything else")
	fs.IntVar(&f.N, "n", 120, "number of broadcast items")
	fs.Float64Var(&f.Theta, "theta", 0.8, "Zipf skewness parameter")
	fs.Float64Var(&f.Phi, "phi", 2.0, "diversity parameter (sizes are 10^U[0,phi])")
	fs.Int64Var(&f.Seed, "seed", 1, "workload random seed")
}

// Load resolves the flags into a database and (possibly nil) item
// titles.
func (f *DBFlags) Load() (*core.Database, map[int]string, error) {
	if f.Paper {
		return core.PaperExampleDatabase(), nil, nil
	}
	if f.Profile != "" {
		return workload.LoadProfileFile(f.Profile)
	}
	if f.Catalog != "" {
		cat, err := workload.CatalogByName(f.Catalog, f.Seed)
		if err != nil {
			return nil, nil, err
		}
		return cat.DB, cat.Titles, nil
	}
	db, err := workload.Config{N: f.N, Theta: f.Theta, Phi: f.Phi, Seed: f.Seed}.Generate()
	return db, nil, err
}

// AlgorithmNames lists the allocators NewAllocator accepts.
func AlgorithmNames() []string {
	names := []string{"drp", "drp-cds", "cds", "vfk", "gopt", "flat", "greedy", "contig-dp", "exhaustive"}
	sort.Strings(names)
	return names
}

// NewAllocator constructs an allocator by name. GOPT uses the
// reference budget with the given seed.
func NewAllocator(name string, seed int64) (core.Allocator, error) {
	switch strings.ToLower(name) {
	case "drp":
		return core.NewDRP(), nil
	case "drp-cds", "cds":
		return core.NewDRPCDS(), nil
	case "vfk":
		return baseline.NewVFK(), nil
	case "gopt":
		return gopt.NewReference(seed), nil
	case "flat":
		return baseline.NewFlat(), nil
	case "greedy":
		return baseline.NewGreedy(), nil
	case "contig-dp":
		return baseline.NewContigDP(), nil
	case "exhaustive":
		return baseline.NewExhaustive(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (have %s)", name, strings.Join(AlgorithmNames(), ", "))
	}
}

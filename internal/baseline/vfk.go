// Package baseline implements the comparison allocators of the paper's
// evaluation (VF^K, and GOPT's exact counterpart for tiny instances)
// plus additional reference allocators (FLAT, GREEDY, CONTIG-DP) used
// by this repository's ablation benchmarks.
package baseline

import (
	"fmt"

	"diversecast/internal/core"
)

// VFK reproduces the conventional-environment allocator of Peng and
// Chen ("Efficient channel allocation tree generation for data
// broadcasting in a mobile computing environment", Wireless Networks
// 9(2), 2003) as characterized by the reproduced paper: it considers
// only access frequencies, assuming every item has the same size.
//
// Construction: the variant-fanout channel-allocation tree is the
// hierarchical greedy split of the frequency-sorted item sequence that
// minimizes the equal-size cost Σ_i F_i·N_i·z̄. That is exactly DRP run
// on a shadow database in which every item's size is replaced by the
// mean size z̄ (the benefit ratio then orders by frequency, and the
// partition objective degenerates to the conventional one), so the
// implementation delegates to core.DRP on the shadow and transplants
// the assignment onto the real database. In a diverse environment the
// resulting program is evaluated under the true sizes — the mismatch
// the paper's Figure 4 exposes.
type VFK struct{}

var _ core.Allocator = (*VFK)(nil)

// NewVFK returns a VF^K allocator.
func NewVFK() *VFK { return &VFK{} }

// Name implements core.Allocator.
func (*VFK) Name() string { return "VFK" }

// Allocate implements core.Allocator.
func (*VFK) Allocate(db *core.Database, k int) (*core.Allocation, error) {
	meanZ := db.MeanSize()
	shadow := make([]core.Item, db.Len())
	for i := range shadow {
		it := db.Item(i)
		shadow[i] = core.Item{ID: it.ID, Freq: it.Freq, Size: meanZ}
	}
	sdb, err := core.NewDatabase(shadow)
	if err != nil {
		return nil, fmt.Errorf("baseline: VFK shadow database: %w", err)
	}
	sa, err := core.NewDRP().Allocate(sdb, k)
	if err != nil {
		return nil, fmt.Errorf("baseline: VFK split: %w", err)
	}
	// Shadow positions coincide with real positions (order preserved).
	return core.NewAllocation(db, k, sa.Assignment())
}

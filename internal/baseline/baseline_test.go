package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func allAllocators() []core.Allocator {
	return []core.Allocator{NewVFK(), NewFlat(), NewGreedy(), NewContigDP()}
}

func smallDB(tb testing.TB, seed int64, n int) *core.Database {
	tb.Helper()
	return workload.Config{N: n, Theta: 0.8, Phi: 2, Seed: seed}.MustGenerate()
}

func TestAllocatorsProduceValidPartitions(t *testing.T) {
	db := smallDB(t, 1, 40)
	for _, alg := range allAllocators() {
		t.Run(alg.Name(), func(t *testing.T) {
			for _, k := range []int{1, 2, 5, 13, 40} {
				a, err := alg.Allocate(db, k)
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if err := a.Validate(); err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if a.K() != k {
					t.Fatalf("K=%d: allocation reports K=%d", k, a.K())
				}
			}
		})
	}
}

func TestAllocatorsRejectBadK(t *testing.T) {
	db := smallDB(t, 2, 10)
	for _, alg := range append(allAllocators(), NewExhaustive()) {
		for _, k := range []int{0, -3, 11} {
			if _, err := alg.Allocate(db, k); err == nil {
				t.Errorf("%s: K=%d should fail", alg.Name(), k)
			}
		}
	}
}

func TestFlatBalancesCardinality(t *testing.T) {
	db := smallDB(t, 3, 20)
	a, err := NewFlat().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	for c, g := range a.Groups() {
		if len(g) < 3 || len(g) > 4 {
			t.Fatalf("channel %d has %d items, want 3 or 4", c, len(g))
		}
	}
}

func TestVFKIgnoresSizes(t *testing.T) {
	// Two databases identical in frequencies but with very different
	// sizes must receive the same VF^K assignment.
	itemsA := []core.Item{
		{ID: 1, Freq: 0.4, Size: 1}, {ID: 2, Freq: 0.3, Size: 1},
		{ID: 3, Freq: 0.2, Size: 1}, {ID: 4, Freq: 0.1, Size: 1},
	}
	itemsB := []core.Item{
		{ID: 1, Freq: 0.4, Size: 900}, {ID: 2, Freq: 0.3, Size: 2},
		{ID: 3, Freq: 0.2, Size: 55}, {ID: 4, Freq: 0.1, Size: 0.5},
	}
	dbA := core.MustNewDatabase(itemsA)
	dbB := core.MustNewDatabase(itemsB)
	aA, err := NewVFK().Allocate(dbA, 2)
	if err != nil {
		t.Fatal(err)
	}
	aB, err := NewVFK().Allocate(dbB, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 4; pos++ {
		if aA.ChannelOf(pos) != aB.ChannelOf(pos) {
			t.Fatalf("VFK assignment depends on sizes: pos %d differs", pos)
		}
	}
}

func TestVFKSegmentsFrequencyOrder(t *testing.T) {
	// VFK groups must be contiguous in frequency order (the
	// channel-allocation tree splits the sorted sequence).
	db := smallDB(t, 5, 50)
	a, err := NewVFK().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	order := db.ByFreq()
	visited := make(map[int]bool)
	prev := -1
	for _, pos := range order {
		c := a.ChannelOf(pos)
		if c != prev {
			if visited[c] {
				t.Fatal("VFK group not contiguous in frequency order")
			}
			visited[c] = true
			prev = c
		}
	}
}

func TestContigDPBeatsOrMatchesDRP(t *testing.T) {
	// CONTIG-DP is exact over DRP's own search space, so it can never
	// lose to DRP.
	check := func(seed uint16, rawN, rawK uint8) bool {
		n := int(rawN)%60 + 2
		k := int(rawK)%n + 1
		db := smallDB(t, int64(seed), n)
		dp, err := NewContigDP().Allocate(db, k)
		if err != nil {
			return false
		}
		drp, err := core.NewDRP().Allocate(db, k)
		if err != nil {
			return false
		}
		return core.Cost(dp) <= core.Cost(drp)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestContigDPUsesExactlyKGroups(t *testing.T) {
	db := smallDB(t, 8, 25)
	for _, k := range []int{1, 3, 7, 25} {
		a, err := NewContigDP().Allocate(db, k)
		if err != nil {
			t.Fatal(err)
		}
		nonEmpty := 0
		for _, g := range a.Groups() {
			if len(g) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty != k {
			t.Fatalf("K=%d: %d non-empty groups", k, nonEmpty)
		}
	}
}

func TestExhaustiveRejectsLargeN(t *testing.T) {
	db := smallDB(t, 9, ExhaustiveMaxN+1)
	if _, err := NewExhaustive().Allocate(db, 3); err == nil {
		t.Fatal("exhaustive should reject N > ExhaustiveMaxN")
	}
}

func TestExhaustiveMatchesBruteForceTinyCase(t *testing.T) {
	// N=4, K=2: 7 set partitions into exactly 2 groups; verify by
	// direct enumeration of all 2^4 labelings.
	db := core.MustNewDatabase([]core.Item{
		{ID: 1, Freq: 0.4, Size: 3},
		{ID: 2, Freq: 0.3, Size: 10},
		{ID: 3, Freq: 0.2, Size: 1},
		{ID: 4, Freq: 0.1, Size: 7},
	})
	want := math.Inf(1)
	for mask := 0; mask < 1<<4; mask++ {
		channel := make([]int, 4)
		ones := 0
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				channel[i] = 1
				ones++
			}
		}
		if ones == 0 || ones == 4 {
			continue // needs both groups non-empty
		}
		a, err := core.NewAllocation(db, 2, channel)
		if err != nil {
			t.Fatal(err)
		}
		if c := core.Cost(a); c < want {
			want = c
		}
	}
	a, err := NewExhaustive().Allocate(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Cost(a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("exhaustive cost %v, want %v", got, want)
	}
}

// The calibration property underpinning the whole evaluation: the
// exact optimum lower-bounds every heuristic, and DRP-CDS lands within
// a few percent of it.
func TestHeuristicsAgainstExhaustiveOptimum(t *testing.T) {
	algs := append(allAllocators(), core.NewDRP(), core.NewDRPCDS())
	for seed := int64(0); seed < 6; seed++ {
		db := smallDB(t, seed+100, 11)
		for _, k := range []int{2, 3, 4} {
			opt, err := NewExhaustive().Allocate(db, k)
			if err != nil {
				t.Fatal(err)
			}
			optCost := core.Cost(opt)
			for _, alg := range algs {
				a, err := alg.Allocate(db, k)
				if err != nil {
					t.Fatalf("%s: %v", alg.Name(), err)
				}
				if c := core.Cost(a); c < optCost-1e-9 {
					t.Fatalf("%s beat the exhaustive optimum: %v < %v (seed %d, K=%d)",
						alg.Name(), c, optCost, seed, k)
				}
			}
			// DRP-CDS specifically should be near-optimal (the paper
			// reports ~3%; allow slack for tiny adversarial instances).
			dc, err := core.NewDRPCDS().Allocate(db, k)
			if err != nil {
				t.Fatal(err)
			}
			if got := core.Cost(dc); got > optCost*1.15+1e-9 {
				t.Errorf("DRP-CDS %.4f vs optimum %.4f: gap %.1f%% (seed %d, K=%d)",
					got, optCost, 100*(got/optCost-1), seed, k)
			}
		}
	}
}

func TestExhaustiveOnPaperExample(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive on N=15 is slow in -short mode")
	}
	db := core.PaperExampleDatabase()
	opt, err := NewExhaustive().Allocate(db, core.PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	optCost := core.Cost(opt)
	// The paper's local optimum is 22.29; the global optimum can be no
	// larger, and DRP-CDS should be within a few percent of it.
	if optCost > 22.29+0.015 {
		t.Fatalf("global optimum %v exceeds the paper's local optimum", optCost)
	}
	dc, err := core.NewDRPCDS().Allocate(db, core.PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	gap := core.Cost(dc)/optCost - 1
	if gap > 0.10 {
		t.Errorf("DRP-CDS gap to optimum %.1f%% on paper example", 100*gap)
	}
	t.Logf("paper example: optimum %.4f, DRP-CDS %.4f (gap %.2f%%)", optCost, core.Cost(dc), 100*gap)
}

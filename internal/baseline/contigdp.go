package baseline

import (
	"fmt"

	"diversecast/internal/core"
)

// ContigDP computes the optimal contiguous partition of the
// benefit-ratio-sorted item sequence into K groups by dynamic
// programming in O(N²·K). DRP explores the same solution space
// (contiguous br-order groups) greedily, so ContigDP is the exact
// upper bound on what DRP's dimension reduction can achieve — the
// ablation benchmarks report how much of the remaining gap to the
// global optimum is due to greediness (DRP vs ContigDP) versus due to
// contiguity itself (ContigDP vs GOPT/exhaustive).
type ContigDP struct{}

var _ core.Allocator = (*ContigDP)(nil)

// NewContigDP returns the contiguous-optimal allocator.
func NewContigDP() *ContigDP { return &ContigDP{} }

// Name implements core.Allocator.
func (*ContigDP) Name() string { return "CONTIG-DP" }

// Allocate implements core.Allocator.
func (*ContigDP) Allocate(db *core.Database, k int) (*core.Allocation, error) {
	n := db.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: %w: K=%d, N=%d", core.ErrBadChannelCount, k, n)
	}
	order := db.ByBenefitRatio()
	pf := make([]float64, n+1)
	pz := make([]float64, n+1)
	for i, pos := range order {
		it := db.Item(pos)
		pf[i+1] = pf[i] + it.Freq
		pz[i+1] = pz[i] + it.Size
	}
	cost := func(lo, hi int) float64 { return (pf[hi] - pf[lo]) * (pz[hi] - pz[lo]) }

	// dp[g][i]: minimal cost of covering the first i sorted items with
	// exactly g non-empty groups. cut[g][i]: the start of the last
	// group in an optimal solution.
	const inf = 1e300
	dp := make([][]float64, k+1)
	cut := make([][]int, k+1)
	for g := range dp {
		dp[g] = make([]float64, n+1)
		cut[g] = make([]int, n+1)
		for i := range dp[g] {
			dp[g][i] = inf
		}
	}
	dp[0][0] = 0
	for g := 1; g <= k; g++ {
		for i := g; i <= n-(k-g); i++ { // leave room for remaining groups
			for j := g - 1; j < i; j++ {
				if dp[g-1][j] >= inf {
					continue
				}
				if c := dp[g-1][j] + cost(j, i); c < dp[g][i] {
					dp[g][i] = c
					cut[g][i] = j
				}
			}
		}
	}
	if dp[k][n] >= inf {
		return nil, fmt.Errorf("baseline: CONTIG-DP found no feasible partition (K=%d, N=%d)", k, n)
	}

	channel := make([]int, n)
	hi := n
	for g := k; g >= 1; g-- {
		lo := cut[g][hi]
		for i := lo; i < hi; i++ {
			channel[order[i]] = g - 1
		}
		hi = lo
	}
	return core.NewAllocation(db, k, channel)
}

package baseline

import (
	"fmt"

	"diversecast/internal/core"
)

// Flat is the strawman of the paper's introduction: a flat broadcast
// program that ignores both frequency and size, dealing items to
// channels round-robin in database order so every channel carries an
// (almost) equal number of items.
type Flat struct{}

var _ core.Allocator = (*Flat)(nil)

// NewFlat returns a flat allocator.
func NewFlat() *Flat { return &Flat{} }

// Name implements core.Allocator.
func (*Flat) Name() string { return "FLAT" }

// Allocate implements core.Allocator.
func (*Flat) Allocate(db *core.Database, k int) (*core.Allocation, error) {
	if k < 1 || k > db.Len() {
		return nil, fmt.Errorf("baseline: %w: K=%d, N=%d", core.ErrBadChannelCount, k, db.Len())
	}
	channel := make([]int, db.Len())
	for i := range channel {
		channel[i] = i % k
	}
	return core.NewAllocation(db, k, channel)
}

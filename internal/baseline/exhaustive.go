package baseline

import (
	"fmt"
	"math"

	"diversecast/internal/core"
)

// ExhaustiveMaxN bounds the instance size Exhaustive accepts: set
// partitions grow as Bell numbers, and beyond this the search is no
// longer a test-time tool.
const ExhaustiveMaxN = 16

// Exhaustive finds the true global optimum by enumerating set
// partitions of the items into at most K non-empty groups using
// restricted-growth strings (so permutations of channel labels are not
// revisited). It exists to calibrate every heuristic in the module:
// the paper compares against GOPT, "viewed as a suboptimum" of a
// genetic algorithm; on small instances Exhaustive certifies how close
// GOPT and DRP-CDS actually get.
type Exhaustive struct{}

var _ core.Allocator = (*Exhaustive)(nil)

// NewExhaustive returns the exact allocator.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Name implements core.Allocator.
func (*Exhaustive) Name() string { return "EXHAUSTIVE" }

// Allocate implements core.Allocator.
func (*Exhaustive) Allocate(db *core.Database, k int) (*core.Allocation, error) {
	n := db.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: %w: K=%d, N=%d", core.ErrBadChannelCount, k, n)
	}
	if n > ExhaustiveMaxN {
		return nil, fmt.Errorf("baseline: exhaustive search limited to N <= %d, got N=%d", ExhaustiveMaxN, n)
	}

	assign := make([]int, n)
	best := make([]int, n)
	bestCost := math.Inf(1)
	agg := make([]core.GroupAgg, k)

	// Depth-first over restricted-growth strings: item i may join any
	// group already used or open exactly the next unused one. Branch
	// and bound on the partial cost (costs only grow as items are
	// added, since every term F·Z is non-decreasing in both factors).
	var rec func(i, used int, partial float64)
	rec = func(i, used int, partial float64) {
		if partial >= bestCost {
			return
		}
		if i == n {
			if used <= k && partial < bestCost {
				bestCost = partial
				copy(best, assign)
			}
			return
		}
		// Not enough remaining items to open the groups still needed.
		if used+(n-i) < k {
			return
		}
		it := db.Item(i)
		limit := used
		if used < k {
			limit = used + 1
		}
		for c := 0; c < limit; c++ {
			before := agg[c]
			delta := (before.F+it.Freq)*(before.Z+it.Size) - before.Cost()
			agg[c].F += it.Freq
			agg[c].Z += it.Size
			agg[c].N++
			assign[i] = c
			nextUsed := used
			if c == used {
				nextUsed++
			}
			rec(i+1, nextUsed, partial+delta)
			agg[c] = before
		}
	}
	rec(0, 0, 0)

	return core.NewAllocation(db, k, best)
}

package baseline

import (
	"fmt"
	"sort"

	"diversecast/internal/core"
)

// Greedy is a longest-processing-time-style list allocator: items are
// considered in descending f·z mass and each goes to the channel whose
// cost grows the least. It is not in the paper; it serves as an
// additional non-contiguous baseline for the ablation benchmarks
// (unlike DRP it can interleave the benefit-ratio order, but unlike
// CDS it never revisits a placement).
type Greedy struct{}

var _ core.Allocator = (*Greedy)(nil)

// NewGreedy returns a greedy allocator.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements core.Allocator.
func (*Greedy) Name() string { return "GREEDY" }

// Allocate implements core.Allocator.
func (*Greedy) Allocate(db *core.Database, k int) (*core.Allocation, error) {
	if k < 1 || k > db.Len() {
		return nil, fmt.Errorf("baseline: %w: K=%d, N=%d", core.ErrBadChannelCount, k, db.Len())
	}
	order := make([]int, db.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := db.Item(order[a]), db.Item(order[b])
		return ia.Freq*ia.Size > ib.Freq*ib.Size
	})

	channel := make([]int, db.Len())
	agg := make([]core.GroupAgg, k)
	for _, pos := range order {
		it := db.Item(pos)
		best, bestDelta := 0, 0.0
		for c := 0; c < k; c++ {
			delta := (agg[c].F+it.Freq)*(agg[c].Z+it.Size) - agg[c].Cost()
			if c == 0 || delta < bestDelta {
				best, bestDelta = c, delta
			}
		}
		channel[pos] = best
		agg[best].F += it.Freq
		agg[best].Z += it.Size
		agg[best].N++
	}
	return core.NewAllocation(db, k, channel)
}

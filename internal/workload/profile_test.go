package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"diversecast/internal/core"
)

func TestProfileRoundTrip(t *testing.T) {
	cat, err := MediaPortal(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, cat.Name, cat.DB, cat.Titles); err != nil {
		t.Fatal(err)
	}
	db, titles, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != cat.DB.Len() {
		t.Fatalf("round trip lost items: %d vs %d", db.Len(), cat.DB.Len())
	}
	for i := 0; i < db.Len(); i++ {
		a, b := db.Item(i), cat.DB.Item(i)
		if a.ID != b.ID || math.Abs(a.Freq-b.Freq) > 1e-12 || a.Size != b.Size {
			t.Fatalf("item %d differs: %+v vs %+v", i, a, b)
		}
		if titles[a.ID] != cat.Titles[a.ID] {
			t.Fatalf("title for %d differs", a.ID)
		}
	}
}

func TestProfileNormalizesRawCounts(t *testing.T) {
	// Profiles may carry request counts instead of probabilities.
	in := `{"items":[
		{"id":1,"freq":300,"size":2},
		{"id":2,"freq":100,"size":4}
	]}`
	db, _, err := ReadProfile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(db.TotalFreq()-1) > 1e-12 {
		t.Fatalf("frequencies not normalized: %v", db.TotalFreq())
	}
	if math.Abs(db.Item(0).Freq-0.75) > 1e-12 {
		t.Fatalf("item 1 freq %v, want 0.75", db.Item(0).Freq)
	}
}

func TestProfileRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":      "{nope",
		"empty items":   `{"items":[]}`,
		"zero size":     `{"items":[{"id":1,"freq":1,"size":0}]}`,
		"negative freq": `{"items":[{"id":1,"freq":-1,"size":1}]}`,
		"duplicate ids": `{"items":[{"id":1,"freq":1,"size":1},{"id":1,"freq":1,"size":2}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadProfile(strings.NewReader(in)); err == nil {
				t.Fatal("should fail")
			}
		})
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	db := core.PaperExampleDatabase()
	path := filepath.Join(t.TempDir(), "paper.json")
	if err := SaveProfileFile(path, "paper", db, nil); err != nil {
		t.Fatal(err)
	}
	loaded, titles, err := LoadProfileFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() || len(titles) != 0 {
		t.Fatalf("loaded %d items, %d titles", loaded.Len(), len(titles))
	}
	if _, _, err := LoadProfileFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}

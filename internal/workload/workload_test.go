package workload

import (
	"math"
	"testing"
	"testing/quick"

	"diversecast/internal/core"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{N: 60, Theta: 0.8, Phi: 2}, true},
		{"zero n", Config{N: 0, Theta: 0.8, Phi: 2}, false},
		{"negative theta", Config{N: 60, Theta: -1, Phi: 2}, false},
		{"negative phi", Config{N: 60, Theta: 0.8, Phi: -0.1}, false},
		{"flat uniform", Config{N: 10}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			_, gerr := tt.cfg.Generate()
			if (gerr == nil) != tt.ok {
				t.Fatalf("Generate() error = %v, want ok=%v", gerr, tt.ok)
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{N: 120, Theta: 0.8, Phi: 2, Seed: 42}
	db := cfg.MustGenerate()
	if db.Len() != 120 {
		t.Fatalf("N = %d, want 120", db.Len())
	}
	if math.Abs(db.TotalFreq()-1) > 1e-9 {
		t.Fatalf("frequencies sum to %v, want 1", db.TotalFreq())
	}
	maxSize := math.Pow(10, cfg.Phi)
	for i := 0; i < db.Len(); i++ {
		it := db.Item(i)
		if it.ID != i+1 {
			t.Fatalf("item %d has ID %d", i, it.ID)
		}
		if it.Size < 1 || it.Size >= maxSize*(1+1e-12) {
			t.Fatalf("item %d size %v outside [1, 10^Φ)", i, it.Size)
		}
	}
	// Zipf ordering: earlier items are at least as popular.
	for i := 1; i < db.Len(); i++ {
		if db.Item(i).Freq > db.Item(i-1).Freq {
			t.Fatalf("frequency not decreasing at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := PaperDefaults(7)
	a := cfg.MustGenerate()
	b := cfg.MustGenerate()
	for i := 0; i < a.Len(); i++ {
		if a.Item(i) != b.Item(i) {
			t.Fatalf("item %d differs between identically-seeded runs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := cfg2.MustGenerate()
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Item(i).Size != c.Item(i).Size {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sizes")
	}
}

func TestGenerateEqualSizeEnvironment(t *testing.T) {
	db := Config{N: 50, Theta: 1.2, Phi: 0, Seed: 1}.MustGenerate()
	for i := 0; i < db.Len(); i++ {
		if db.Item(i).Size != 1 {
			t.Fatalf("Φ=0: item %d size %v, want 1", i, db.Item(i).Size)
		}
	}
}

// Property: any valid config yields a database that passes core
// validation and has N items.
func TestGenerateAlwaysValid(t *testing.T) {
	check := func(rawN uint8, rawTheta, rawPhi uint8, seed int64) bool {
		cfg := Config{
			N:     int(rawN)%200 + 1,
			Theta: float64(rawTheta) / 64,  // 0 .. ~4
			Phi:   float64(rawPhi%4) + 0.5, // 0.5 .. 3.5
			Seed:  seed,
		}
		db, err := cfg.Generate()
		return err == nil && db.Len() == cfg.N && math.Abs(db.TotalFreq()-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTrace(t *testing.T) {
	db := PaperDefaults(1).MustGenerate()
	trace, err := GenerateTrace(db, TraceConfig{Requests: 50000, Rate: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 50000 {
		t.Fatalf("trace length %d", len(trace))
	}
	if !SortedByTime(trace) {
		t.Fatal("trace not sorted by time")
	}
	// Empirical request frequencies should track the profile.
	emp := EmpiricalFrequencies(db, trace)
	for i := 0; i < 10; i++ { // the popular head has enough mass to check
		want := db.Item(i).Freq
		if math.Abs(emp[i]-want) > 0.015+0.25*want {
			t.Errorf("item %d empirical freq %v, want ≈ %v", i, emp[i], want)
		}
	}
	// Mean arrival rate ≈ Rate.
	duration := trace[len(trace)-1].Time
	rate := float64(len(trace)) / duration
	if math.Abs(rate-100) > 3 {
		t.Errorf("empirical rate %v, want ≈ 100", rate)
	}
}

func TestGenerateTraceEdgeCases(t *testing.T) {
	db := PaperDefaults(1).MustGenerate()
	if _, err := GenerateTrace(db, TraceConfig{Requests: -1, Rate: 10}); err == nil {
		t.Error("negative request count should fail")
	}
	if _, err := GenerateTrace(db, TraceConfig{Requests: 5, Rate: 0}); err == nil {
		t.Error("zero rate should fail")
	}
	trace, err := GenerateTrace(db, TraceConfig{Requests: 0, Rate: 10})
	if err != nil || len(trace) != 0 {
		t.Errorf("empty trace: %v, len %d", err, len(trace))
	}
	if got := EmpiricalFrequencies(db, nil); len(got) != db.Len() {
		t.Error("EmpiricalFrequencies on empty trace should return zero vector")
	}
}

func TestCatalogs(t *testing.T) {
	for _, name := range Catalogs() {
		t.Run(name, func(t *testing.T) {
			cat, err := CatalogByName(name, 3)
			if err != nil {
				t.Fatal(err)
			}
			if cat.Name != name {
				t.Errorf("catalog name %q, want %q", cat.Name, name)
			}
			if cat.DB.Len() == 0 {
				t.Fatal("empty catalog database")
			}
			if math.Abs(cat.DB.TotalFreq()-1) > 1e-9 {
				t.Errorf("catalog frequencies sum to %v", cat.DB.TotalFreq())
			}
			for i := 0; i < cat.DB.Len(); i++ {
				if _, ok := cat.Titles[cat.DB.Item(i).ID]; !ok {
					t.Fatalf("item %d has no title", cat.DB.Item(i).ID)
				}
			}
			// Catalogs are allocatable end to end.
			a, err := core.NewDRPCDS().Allocate(cat.DB, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCatalogByNameUnknown(t *testing.T) {
	if _, err := CatalogByName("no-such-catalog", 1); err == nil {
		t.Fatal("unknown catalog should fail")
	}
}

func TestMediaPortalIsDiverse(t *testing.T) {
	cat, err := MediaPortal(5)
	if err != nil {
		t.Fatal(err)
	}
	var minSize, maxSize = math.Inf(1), 0.0
	for i := 0; i < cat.DB.Len(); i++ {
		z := cat.DB.Item(i).Size
		if z < minSize {
			minSize = z
		}
		if z > maxSize {
			maxSize = z
		}
	}
	if maxSize/minSize < 100 {
		t.Fatalf("media portal size spread %v, want >= 100x", maxSize/minSize)
	}
}

func TestNewsTickerIsUniform(t *testing.T) {
	cat, err := NewsTicker(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cat.DB.Len(); i++ {
		if cat.DB.Item(i).Size != 1 {
			t.Fatal("news ticker sizes must all be 1")
		}
	}
}

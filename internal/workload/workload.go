// Package workload generates the broadcast databases and client
// request traces the paper's evaluation runs on: Zipf access
// frequencies with skewness θ, log-uniform sizes with diversity Φ
// (Table 5), plus named catalog scenarios used by the examples.
package workload

import (
	"fmt"
	"math/rand"

	"diversecast/internal/core"
	"diversecast/internal/dist"
)

// Config describes a synthetic broadcast database per the paper's
// simulation environment (Section 4.1, Table 5).
type Config struct {
	// N is the number of broadcast items (paper range 60–180).
	N int
	// Theta is the Zipf skewness parameter θ (paper range 0.4–1.6).
	Theta float64
	// Phi is the diversity parameter Φ: item sizes are 10^φ with
	// φ ~ U[0, Φ] (paper range 0–3; 0 is the conventional
	// equal-size environment).
	Phi float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration without generating anything.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("workload: N must be >= 1, got %d", c.N)
	}
	if c.Theta < 0 {
		return fmt.Errorf("workload: Theta must be >= 0, got %v", c.Theta)
	}
	if c.Phi < 0 {
		return fmt.Errorf("workload: Phi must be >= 0, got %v", c.Phi)
	}
	return nil
}

// Generate builds the database: item i (1-based ID) receives the i-th
// Zipf frequency and an independently drawn log-uniform size. The
// association between popularity rank and size is random (sizes do not
// correlate with frequency), matching the paper's independent draws.
func (c Config) Generate() (*core.Database, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	freqs, err := dist.Zipf(c.N, c.Theta)
	if err != nil {
		return nil, err
	}
	sizes, err := dist.LogUniformSizes(rng, c.N, c.Phi)
	if err != nil {
		return nil, err
	}
	items := make([]core.Item, c.N)
	for i := range items {
		items[i] = core.Item{ID: i + 1, Freq: freqs[i], Size: sizes[i]}
	}
	return core.NewDatabase(items)
}

// MustGenerate is Generate but panics on error; for hard-coded
// experiment configurations.
func (c Config) MustGenerate() *core.Database {
	db, err := c.Generate()
	if err != nil {
		panic(err)
	}
	return db
}

// PaperDefaults returns the mid-point configuration of the paper's
// Table 5 used when a figure fixes all but one parameter:
// N=120, θ=0.8, Φ=2.
func PaperDefaults(seed int64) Config {
	return Config{N: 120, Theta: 0.8, Phi: 2, Seed: seed}
}

// PaperBandwidth is the channel bandwidth of Table 5 in size units per
// second.
const PaperBandwidth = 10.0

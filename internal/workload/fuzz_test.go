package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadProfile throws arbitrary bytes at the profile parser: it
// must never panic, and any profile it accepts must round-trip through
// WriteProfile/ReadProfile preserving the database.
func FuzzReadProfile(f *testing.F) {
	f.Add(`{"name":"x","items":[{"id":1,"freq":0.5,"size":2},{"id":2,"freq":0.5,"size":3,"title":"t"}]}`)
	f.Add(`{"items":[]}`)
	f.Add(`{"items":[{"id":1,"freq":-1,"size":0}]}`)
	f.Add(`not json at all`)
	f.Add(`{"items":[{"id":1,"freq":1e308,"size":1e308}]}`)

	f.Fuzz(func(t *testing.T, in string) {
		db, titles, err := ReadProfile(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted profiles are valid, normalized databases.
		if db.Len() == 0 {
			t.Fatal("accepted an empty database")
		}
		if tf := db.TotalFreq(); tf < 1-1e-6 || tf > 1+1e-6 {
			t.Fatalf("accepted profile with total frequency %v", tf)
		}
		var buf bytes.Buffer
		if err := WriteProfile(&buf, "fuzz", db, titles); err != nil {
			t.Fatalf("accepted profile does not re-encode: %v", err)
		}
		db2, _, err := ReadProfile(&buf)
		if err != nil {
			t.Fatalf("re-encoded profile does not re-parse: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed item count %d → %d", db.Len(), db2.Len())
		}
	})
}

package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"diversecast/internal/core"
	"diversecast/internal/dist"
)

// Catalog is a named broadcast database: a realistic scenario with
// human-readable item titles, used by the examples and the CLI tools.
type Catalog struct {
	Name        string
	Description string
	DB          *core.Database
	// Titles maps item ID to a display title.
	Titles map[int]string
}

// contentClass describes one media class of the MediaPortal catalog.
type contentClass struct {
	label   string
	count   int
	minSize float64
	maxSize float64
}

// MediaPortal models the paper's motivating "modern information
// system": a portal broadcasting text, still images, audio clips and
// video trailers — item sizes spanning three orders of magnitude while
// popularity follows a Zipf law across the whole catalog.
func MediaPortal(seed int64) (*Catalog, error) {
	classes := []contentClass{
		{label: "headline", count: 40, minSize: 1, maxSize: 5},
		{label: "image", count: 30, minSize: 10, maxSize: 50},
		{label: "audio", count: 20, minSize: 80, maxSize: 300},
		{label: "video", count: 10, minSize: 500, maxSize: 2000},
	}
	return classCatalog("media-portal",
		"mixed text/image/audio/video portal with Zipf popularity", seed, 0.9, classes)
}

// NewsTicker models the conventional broadcasting environment the
// prior work assumed: text bulletins of identical size. VF^K and
// DRP-CDS should perform near-identically on it (the paper's Φ=0
// case in Figure 4).
func NewsTicker(seed int64) (*Catalog, error) {
	n := 80
	freqs, err := dist.Zipf(n, 1.0)
	if err != nil {
		return nil, err
	}
	items := make([]core.Item, n)
	titles := make(map[int]string, n)
	for i := range items {
		items[i] = core.Item{ID: i + 1, Freq: freqs[i], Size: 1}
		titles[i+1] = fmt.Sprintf("bulletin-%03d", i+1)
	}
	db, err := core.NewDatabase(items)
	if err != nil {
		return nil, err
	}
	return &Catalog{
		Name:        "news-ticker",
		Description: "conventional equal-size text bulletins (Φ=0)",
		DB:          db,
		Titles:      titles,
	}, nil
}

// TrafficInfo models a roadside telematics broadcast: many small
// incident notices, a band of medium route maps, and a few large
// sensor bundles, with popularity skewed toward incidents.
func TrafficInfo(seed int64) (*Catalog, error) {
	classes := []contentClass{
		{label: "incident", count: 60, minSize: 1, maxSize: 3},
		{label: "routemap", count: 25, minSize: 20, maxSize: 60},
		{label: "sensorbundle", count: 15, minSize: 150, maxSize: 400},
	}
	return classCatalog("traffic-info",
		"telematics broadcast: incidents, route maps, sensor bundles", seed, 1.2, classes)
}

// classCatalog builds a catalog from content classes: sizes are drawn
// per class, the Zipf popularity ranking is assigned across the whole
// catalog in a seeded random interleaving (so popularity and size are
// independent, as in the paper's model).
func classCatalog(name, description string, seed int64, theta float64, classes []contentClass) (*Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	var total int
	for _, c := range classes {
		if c.count < 1 {
			return nil, fmt.Errorf("workload: class %q has count %d", c.label, c.count)
		}
		total += c.count
	}
	freqs, err := dist.Zipf(total, theta)
	if err != nil {
		return nil, err
	}

	// Draw sizes and labels per class.
	type draft struct {
		label string
		size  float64
	}
	drafts := make([]draft, 0, total)
	for _, c := range classes {
		sizes, err := dist.UniformSizes(rng, c.count, c.minSize, c.maxSize)
		if err != nil {
			return nil, fmt.Errorf("workload: class %q: %w", c.label, err)
		}
		for i, z := range sizes {
			drafts = append(drafts, draft{label: fmt.Sprintf("%s-%03d", c.label, i+1), size: z})
		}
	}
	// Shuffle so popularity rank is independent of class.
	rng.Shuffle(len(drafts), func(i, j int) { drafts[i], drafts[j] = drafts[j], drafts[i] })

	items := make([]core.Item, total)
	titles := make(map[int]string, total)
	for i, d := range drafts {
		items[i] = core.Item{ID: i + 1, Freq: freqs[i], Size: d.size}
		titles[i+1] = d.label
	}
	db, err := core.NewDatabase(items)
	if err != nil {
		return nil, err
	}
	return &Catalog{Name: name, Description: description, DB: db, Titles: titles}, nil
}

// Catalogs lists the built-in scenario constructors by name, for the
// CLI tools.
func Catalogs() []string { return []string{"media-portal", "news-ticker", "traffic-info"} }

// CatalogByName constructs the named built-in catalog.
func CatalogByName(name string, seed int64) (*Catalog, error) {
	switch name {
	case "media-portal":
		return MediaPortal(seed)
	case "news-ticker":
		return NewsTicker(seed)
	case "traffic-info":
		return TrafficInfo(seed)
	default:
		sorted := append([]string(nil), Catalogs()...)
		sort.Strings(sorted)
		return nil, fmt.Errorf("workload: unknown catalog %q (have %v)", name, sorted)
	}
}

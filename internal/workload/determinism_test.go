package workload

import "testing"

// TestGenerateSeedDeterminism demands that two Generate runs with the
// same Config produce bit-identical databases: same IDs, frequencies,
// and sizes in the same order. This is the workload-level guarantee
// the paper-table reproductions rely on — every figure cites only a
// seed, so the seed must pin the whole environment.
func TestGenerateSeedDeterminism(t *testing.T) {
	cfg := PaperDefaults(42)
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		x, y := a.Item(i), b.Item(i)
		if x.ID != y.ID || x.Freq != y.Freq || x.Size != y.Size {
			t.Fatalf("item %d differs between same-seed runs: %+v vs %+v", i, x, y)
		}
	}

	// A different seed must actually change the drawn sizes (guards
	// against the seed being silently ignored).
	other := cfg
	other.Seed = 43
	c, err := other.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Item(i).Size != c.Item(i).Size {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 generated identical size draws: Seed is not reaching the generator")
	}
}

// TestGenerateTraceSeedDeterminism is the same guarantee for request
// traces: identical TraceConfig ⇒ identical (Time, Pos) sequences.
func TestGenerateTraceSeedDeterminism(t *testing.T) {
	db := PaperDefaults(7).MustGenerate()
	cfg := TraceConfig{Requests: 1000, Rate: 5, Seed: 99}
	a, err := GenerateTrace(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between same-seed runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

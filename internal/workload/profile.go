package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"diversecast/internal/core"
)

// Profile is the on-disk representation of a broadcast database, as
// consumed and produced by the cmd/ tools: a named list of items with
// optional display titles.
type Profile struct {
	Name  string        `json:"name,omitempty"`
	Items []ProfileItem `json:"items"`
}

// ProfileItem is one serialized broadcast item.
type ProfileItem struct {
	ID    int     `json:"id"`
	Freq  float64 `json:"freq"`
	Size  float64 `json:"size"`
	Title string  `json:"title,omitempty"`
}

// WriteProfile serializes a database (with optional titles) as
// indented JSON.
func WriteProfile(w io.Writer, name string, db *core.Database, titles map[int]string) error {
	p := Profile{Name: name, Items: make([]ProfileItem, db.Len())}
	for i := 0; i < db.Len(); i++ {
		it := db.Item(i)
		p.Items[i] = ProfileItem{ID: it.ID, Freq: it.Freq, Size: it.Size, Title: titles[it.ID]}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("workload: encoding profile: %w", err)
	}
	return nil
}

// ReadProfile deserializes a profile and validates it as a database.
// Frequencies are normalized to sum to one, so hand-written profiles
// may use raw request counts.
func ReadProfile(r io.Reader) (*core.Database, map[int]string, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, nil, fmt.Errorf("workload: decoding profile: %w", err)
	}
	items := make([]core.Item, len(p.Items))
	titles := make(map[int]string)
	for i, pi := range p.Items {
		items[i] = core.Item{ID: pi.ID, Freq: pi.Freq, Size: pi.Size}
		if pi.Title != "" {
			titles[pi.ID] = pi.Title
		}
	}
	db, err := core.NewDatabase(items)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: profile invalid: %w", err)
	}
	return db.Normalized(), titles, nil
}

// LoadProfileFile reads a profile from disk.
func LoadProfileFile(path string) (*core.Database, map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: opening profile: %w", err)
	}
	defer f.Close()
	return ReadProfile(f)
}

// SaveProfileFile writes a profile to disk.
func SaveProfileFile(path, name string, db *core.Database, titles map[int]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: creating profile: %w", err)
	}
	if err := WriteProfile(f, name, db, titles); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("workload: closing profile: %w", err)
	}
	return nil
}

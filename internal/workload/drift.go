package workload

import (
	"fmt"
	"math"
	"math/rand"

	"diversecast/internal/core"
)

// This file models access-pattern drift: the paper's server (Figure 1)
// regenerates broadcast programs as collected access statistics
// change. Drift and SwapHotspots produce the "next epoch" database
// against which internal/adapt's incremental re-allocation is
// evaluated.

// Drift returns a database with the same items whose access
// frequencies are multiplicatively perturbed: each frequency is scaled
// by exp(sigma·G) with G standard normal, then renormalized. sigma=0
// returns an identical profile; sigma≈0.3 models gradual popularity
// drift between reallocation epochs.
func Drift(db *core.Database, sigma float64, seed int64) (*core.Database, error) {
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("workload: drift sigma must be finite and non-negative, got %v", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	items := db.Items()
	var total float64
	for i := range items {
		items[i].Freq *= math.Exp(sigma * rng.NormFloat64())
		total += items[i].Freq
	}
	for i := range items {
		items[i].Freq /= total
	}
	return core.NewDatabase(items)
}

// SwapHotspots returns a database in which the access frequencies of
// pairs random item pairs are exchanged — a flash-crowd model where
// previously cold items become hot while sizes stay put.
func SwapHotspots(db *core.Database, pairs int, seed int64) (*core.Database, error) {
	if pairs < 0 {
		return nil, fmt.Errorf("workload: negative pair count %d", pairs)
	}
	rng := rand.New(rand.NewSource(seed))
	items := db.Items()
	n := len(items)
	for p := 0; p < pairs; p++ {
		i, j := rng.Intn(n), rng.Intn(n)
		items[i].Freq, items[j].Freq = items[j].Freq, items[i].Freq
	}
	return core.NewDatabase(items)
}

package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"diversecast/internal/core"
	"diversecast/internal/dist"
)

// Request is one client data request: at Time (seconds since
// simulation start) a client starts waiting for the item at database
// position Pos.
type Request struct {
	Time float64
	Pos  int
}

// TraceConfig describes a synthetic client request trace.
type TraceConfig struct {
	// Requests is the number of requests to generate.
	Requests int
	// Rate is the aggregate request arrival rate (requests/second)
	// of the Poisson arrival process.
	Rate float64
	// Seed makes the trace deterministic.
	Seed int64
}

// GenerateTrace draws Requests item choices from the database's access
// frequencies (alias method) with Poisson arrivals. The returned
// slice is sorted by time.
func GenerateTrace(db *core.Database, cfg TraceConfig) ([]Request, error) {
	if cfg.Requests < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", cfg.Requests)
	}
	weights := make([]float64, db.Len())
	for i := range weights {
		weights[i] = db.Item(i).Freq
	}
	alias, err := dist.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("workload: building request sampler: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gaps, err := dist.ExponentialInterarrivals(rng, cfg.Requests, cfg.Rate)
	if err != nil {
		return nil, err
	}
	trace := make([]Request, cfg.Requests)
	var now float64
	for i := range trace {
		now += gaps[i]
		trace[i] = Request{Time: now, Pos: alias.Sample(rng)}
	}
	return trace, nil
}

// EmpiricalFrequencies estimates per-item request probabilities from a
// trace; tests use it to confirm traces follow the database profile.
func EmpiricalFrequencies(db *core.Database, trace []Request) []float64 {
	counts := make([]float64, db.Len())
	for _, r := range trace {
		counts[r.Pos]++
	}
	if len(trace) > 0 {
		for i := range counts {
			counts[i] /= float64(len(trace))
		}
	}
	return counts
}

// SortedByTime reports whether the trace is in non-decreasing time
// order, an invariant the simulators rely on.
func SortedByTime(trace []Request) bool {
	return sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].Time < trace[j].Time })
}

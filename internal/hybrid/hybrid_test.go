package hybrid

import (
	"math"
	"testing"

	"diversecast/internal/airsim"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func testDB(tb testing.TB, n int, seed int64) *core.Database {
	tb.Helper()
	return workload.Config{N: n, Theta: 1.0, Phi: 2, Seed: seed}.MustGenerate()
}

func testTrace(tb testing.TB, db *core.Database, requests int, rate float64, seed int64) []workload.Request {
	tb.Helper()
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: requests, Rate: rate, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	return trace
}

func TestBuildValidation(t *testing.T) {
	db := testDB(t, 20, 1)
	cfg := Config{PushChannels: 3, Bandwidth: 10}
	if _, err := Build(db, cfg, 0); err == nil {
		t.Error("pushCount=0 should fail")
	}
	if _, err := Build(db, cfg, 20); err == nil {
		t.Error("pushCount=N should fail (nothing left to pull)")
	}
	if _, err := Build(db, cfg, 2); err == nil {
		t.Error("fewer pushed items than channels should fail")
	}
	if _, err := Build(db, Config{PushChannels: 0, Bandwidth: 10}, 5); err == nil {
		t.Error("no push channels should fail")
	}
	if _, err := Build(db, Config{PushChannels: 2, Bandwidth: 0}, 5); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestBuildPartitionsByPopularity(t *testing.T) {
	db := testDB(t, 30, 2)
	plan, err := Build(db, Config{PushChannels: 3, Bandwidth: 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PushPositions)+len(plan.PullPositions) != db.Len() {
		t.Fatal("push and pull sets do not partition the database")
	}
	seen := make(map[int]bool)
	for _, pos := range append(append([]int(nil), plan.PushPositions...), plan.PullPositions...) {
		if seen[pos] {
			t.Fatalf("position %d in both sets", pos)
		}
		seen[pos] = true
	}
	// Every pushed item is at least as popular as every pulled item.
	minPush := math.Inf(1)
	for _, pos := range plan.PushPositions {
		if f := db.Item(pos).Freq; f < minPush {
			minPush = f
		}
	}
	for _, pos := range plan.PullPositions {
		if db.Item(pos).Freq > minPush+1e-12 {
			t.Fatalf("pulled item at %d more popular than a pushed one", pos)
		}
	}
	// With Zipf(1.0), the top 10 of 30 items hold most of the mass.
	if plan.PushMass < 0.5 {
		t.Fatalf("push mass %v implausibly low", plan.PushMass)
	}
	if err := plan.Program.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateAccountsForEveryRequest(t *testing.T) {
	db := testDB(t, 30, 3)
	plan, err := Build(db, Config{PushChannels: 3, Bandwidth: 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	trace := testTrace(t, db, 5000, 10, 4)
	res, err := plan.Evaluate(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(trace) {
		t.Fatalf("requests %d, want %d", res.Requests, len(trace))
	}
	if res.Push.N+res.Pull.N != len(trace) {
		t.Fatalf("push %d + pull %d != %d", res.Push.N, res.Pull.N, len(trace))
	}
	if res.Wait.N != len(trace) {
		t.Fatalf("overall summary covers %d of %d", res.Wait.N, len(trace))
	}
	if res.UplinkMessages != res.Pull.N {
		t.Fatalf("uplink %d != pull requests %d", res.UplinkMessages, res.Pull.N)
	}
	// Exact mean merge: overall mean is the weighted mean of modes.
	want := (res.Push.Mean*float64(res.Push.N) + res.Pull.Mean*float64(res.Pull.N)) / float64(len(trace))
	if math.Abs(res.Wait.Mean-want) > 1e-9 {
		t.Fatalf("overall mean %v, want weighted %v", res.Wait.Mean, want)
	}
}

func TestHybridBeatsPurePushOnColdTail(t *testing.T) {
	// With a strongly skewed profile and a long cold tail of big
	// items, the hybrid (same total channel count!) beats pure push:
	// the cold tail stops bloating the cyclic programs.
	db := testDB(t, 60, 5)
	const totalChannels = 4
	trace := testTrace(t, db, 8000, 5, 6)

	// Pure push: all items over all channels.
	alloc, err := core.NewDRPCDS().Allocate(db, totalChannels)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := broadcast.Build(alloc, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := airsim.Measure(prog, trace)
	if err != nil {
		t.Fatal(err)
	}

	// Hybrid: same number of channels — (total−1) push + 1 pull.
	plan, err := Build(db, Config{PushChannels: totalChannels - 1, Bandwidth: 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := plan.Evaluate(trace)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Wait.Mean >= pure.Wait.Mean {
		t.Fatalf("hybrid (%v) did not beat pure push (%v) on this workload",
			hyb.Wait.Mean, pure.Wait.Mean)
	}
}

func TestSweepCut(t *testing.T) {
	db := testDB(t, 40, 7)
	trace := testTrace(t, db, 4000, 8, 8)
	cfg := Config{PushChannels: 2, Bandwidth: 10}
	cuts := []int{4, 8, 16, 32}
	points, best, err := SweepCut(db, cfg, trace, cuts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cuts) {
		t.Fatalf("%d points for %d cuts", len(points), len(cuts))
	}
	for i, pt := range points {
		if pt.PushCount != cuts[i] {
			t.Fatalf("point %d: cut %d, want %d", i, pt.PushCount, cuts[i])
		}
		if pt.MeanWait <= 0 {
			t.Fatalf("cut %d: wait %v", pt.PushCount, pt.MeanWait)
		}
		if pt.MeanWait < points[best].MeanWait {
			t.Fatalf("best index %d is not minimal", best)
		}
	}
	// Uplink load strictly falls as more items are pushed.
	for i := 1; i < len(points); i++ {
		if points[i].Uplink > points[i-1].Uplink {
			t.Fatalf("uplink grew with push count: %v", points)
		}
	}
	if _, _, err := SweepCut(db, cfg, trace, nil); err == nil {
		t.Fatal("empty cut list should fail")
	}
}

func TestEvaluateEmptyTrace(t *testing.T) {
	db := testDB(t, 20, 9)
	plan, err := Build(db, Config{PushChannels: 2, Bandwidth: 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Evaluate(nil); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func BenchmarkHybridEvaluate(b *testing.B) {
	db := testDB(b, 60, 10)
	plan, err := Build(db, Config{PushChannels: 3, Bandwidth: 10}, 20)
	if err != nil {
		b.Fatal(err)
	}
	trace := testTrace(b, db, 3000, 10, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Evaluate(trace); err != nil {
			b.Fatal(err)
		}
	}
}

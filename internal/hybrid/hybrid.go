// Package hybrid combines the two dissemination modes of the
// reproduced paper's world: the hottest items are pushed on cyclic
// broadcast channels (allocated with DRP-CDS) while the cold tail is
// served on demand over a dedicated pull channel. This is the classic
// hybrid architecture (Acharya, Franklin, Zdonik): push soaks up the
// mass demand with zero uplink cost, pull keeps rarely wanted items
// from bloating every cycle.
package hybrid

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/ondemand"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Config parameterizes a hybrid system.
type Config struct {
	// PushChannels is the number of cyclic broadcast channels.
	PushChannels int
	// Bandwidth is the per-channel bandwidth (the pull channel has
	// the same).
	Bandwidth float64
	// Allocator allocates the push set across the push channels
	// (default DRP-CDS).
	Allocator core.Allocator
	// Scheduler drives the pull channel (default RxW/S).
	Scheduler ondemand.Scheduler
}

func (c Config) withDefaults() (Config, error) {
	if c.PushChannels < 1 {
		return c, fmt.Errorf("hybrid: need at least one push channel, got %d", c.PushChannels)
	}
	if !(c.Bandwidth > 0) || math.IsInf(c.Bandwidth, 0) {
		return c, fmt.Errorf("hybrid: bandwidth %v", c.Bandwidth)
	}
	if c.Allocator == nil {
		c.Allocator = core.NewDRPCDS()
	}
	if c.Scheduler == nil {
		c.Scheduler = ondemand.RxWS{}
	}
	return c, nil
}

// Plan is a compiled hybrid system: which items are pushed, the push
// program, and the pull-side database.
type Plan struct {
	cfg Config

	// PushPositions and PullPositions partition the original
	// database positions; the hottest pushCount items (by access
	// frequency) are pushed.
	PushPositions []int
	PullPositions []int

	// PushMass is the total access frequency served by push.
	PushMass float64

	// Program is the cyclic program over the push subset.
	Program *broadcast.Program

	// pushIndex maps original position → position in the push
	// database; pullIndex likewise for the pull database.
	pushIndex map[int]int
	pullIndex map[int]int
	pullDB    *core.Database
}

// Build errors.
var (
	ErrBadCut = errors.New("hybrid: push count must satisfy 1 <= pushCount < N")
)

// Build compiles a hybrid plan that pushes the pushCount most
// requested items and serves the rest on demand.
func Build(db *core.Database, cfg Config, pushCount int) (*Plan, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if pushCount < 1 || pushCount >= db.Len() {
		return nil, fmt.Errorf("%w: pushCount=%d, N=%d", ErrBadCut, pushCount, db.Len())
	}
	if cfg.PushChannels > pushCount {
		return nil, fmt.Errorf("hybrid: %d push channels for %d pushed items", cfg.PushChannels, pushCount)
	}

	byFreq := db.ByFreq()
	plan := &Plan{
		cfg:           cfg,
		PushPositions: append([]int(nil), byFreq[:pushCount]...),
		PullPositions: append([]int(nil), byFreq[pushCount:]...),
		pushIndex:     make(map[int]int, pushCount),
		pullIndex:     make(map[int]int, db.Len()-pushCount),
	}
	sort.Ints(plan.PushPositions)
	sort.Ints(plan.PullPositions)

	// The push database re-normalizes the pushed items' frequencies:
	// the broadcast program only ever serves requests for them, so
	// their conditional access distribution is what matters.
	pushItems := make([]core.Item, pushCount)
	for i, pos := range plan.PushPositions {
		pushItems[i] = db.Item(pos)
		plan.PushMass += db.Item(pos).Freq
		plan.pushIndex[pos] = i
	}
	pushDB, err := core.NewDatabase(pushItems)
	if err != nil {
		return nil, fmt.Errorf("hybrid: push database: %w", err)
	}
	pushDB = pushDB.Normalized()

	pullItems := make([]core.Item, len(plan.PullPositions))
	for i, pos := range plan.PullPositions {
		pullItems[i] = db.Item(pos)
		plan.pullIndex[pos] = i
	}
	plan.pullDB, err = core.NewDatabase(pullItems)
	if err != nil {
		return nil, fmt.Errorf("hybrid: pull database: %w", err)
	}
	plan.pullDB = plan.pullDB.Normalized()

	alloc, err := cfg.Allocator.Allocate(pushDB, cfg.PushChannels)
	if err != nil {
		return nil, fmt.Errorf("hybrid: allocating push set: %w", err)
	}
	plan.Program, err = broadcast.Build(alloc, cfg.Bandwidth, broadcast.ByPosition)
	if err != nil {
		return nil, fmt.Errorf("hybrid: compiling program: %w", err)
	}
	return plan, nil
}

// Result summarizes a hybrid simulation.
type Result struct {
	Requests int
	// Wait is the overall request waiting time across both modes.
	Wait stats.Summary
	// Push and Pull are the per-mode waiting times.
	Push stats.Summary
	Pull stats.Summary
	// UplinkMessages counts requests that needed the uplink (the
	// pull ones); push requests are served silently.
	UplinkMessages int
}

// Evaluate replays a request trace against the plan: requests for
// pushed items wait on the cyclic program; the rest queue on the pull
// channel.
func (p *Plan) Evaluate(trace []workload.Request) (*Result, error) {
	if len(trace) == 0 {
		return nil, errors.New("hybrid: empty request trace")
	}
	var pullTrace []workload.Request
	var all, push stats.Accumulator
	for _, r := range trace {
		if _, ok := p.pushIndex[r.Pos]; ok {
			continue
		}
		if _, ok := p.pullIndex[r.Pos]; !ok {
			return nil, fmt.Errorf("hybrid: request for unknown position %d", r.Pos)
		}
		pullTrace = append(pullTrace, workload.Request{Time: r.Time, Pos: p.pullIndex[r.Pos]})
	}

	// Push side: closed-form waits on the cyclic schedule.
	for _, r := range trace {
		pi, ok := p.pushIndex[r.Pos]
		if !ok {
			continue
		}
		w, err := p.Program.WaitFor(pi, r.Time)
		if err != nil {
			return nil, fmt.Errorf("hybrid: push wait: %w", err)
		}
		push.Add(w)
		all.Add(w)
	}

	res := &Result{Requests: len(trace), UplinkMessages: len(pullTrace)}

	// Pull side: on-demand simulation over the pull sub-trace, with
	// per-request waits folded exactly into the overall summary.
	if len(pullTrace) > 0 {
		pullRes, waits, err := ondemand.RunWaits(p.pullDB, pullTrace, p.cfg.Scheduler, p.cfg.Bandwidth)
		if err != nil {
			return nil, fmt.Errorf("hybrid: pull side: %w", err)
		}
		res.Pull = pullRes.Wait
		for _, w := range waits {
			all.Add(w)
		}
	}
	res.Push = push.Summarize()
	res.Wait = all.Summarize()
	return res, nil
}

// MeanWait returns the overall expected waiting time of the hybrid
// plan for a trace, the objective SweepCut minimizes.
func (p *Plan) MeanWait(trace []workload.Request) (float64, error) {
	res, err := p.Evaluate(trace)
	if err != nil {
		return 0, err
	}
	return res.Wait.Mean, nil
}

// CutPoint is one evaluated push-set size.
type CutPoint struct {
	PushCount int
	MeanWait  float64
	Uplink    int
}

// SweepCut evaluates a set of push-set sizes and returns the results
// together with the index of the best cut. It exposes the classic
// hybrid U-shape: push too little and the pull channel saturates,
// push everything and cold items bloat every cycle.
func SweepCut(db *core.Database, cfg Config, trace []workload.Request, cuts []int) ([]CutPoint, int, error) {
	if len(cuts) == 0 {
		return nil, 0, errors.New("hybrid: no cuts to sweep")
	}
	out := make([]CutPoint, 0, len(cuts))
	best := 0
	for _, cut := range cuts {
		plan, err := Build(db, cfg, cut)
		if err != nil {
			return nil, 0, err
		}
		res, err := plan.Evaluate(trace)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, CutPoint{PushCount: cut, MeanWait: res.Wait.Mean, Uplink: res.UplinkMessages})
		if res.Wait.Mean < out[best].MeanWait {
			best = len(out) - 1
		}
	}
	return out, best, nil
}

package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeGauges holds the process-health gauges one sampler updates.
type runtimeGauges struct {
	goroutines  *Gauge
	heapAlloc   *Gauge
	heapObjects *Gauge
	gcPauseNS   *Gauge
	gcCycles    *Gauge
}

func newRuntimeGauges(r *Registry) runtimeGauges {
	return runtimeGauges{
		goroutines: r.Gauge("runtime_goroutines",
			"goroutines currently live in the process"),
		heapAlloc: r.Gauge("runtime_heap_alloc_bytes",
			"bytes of allocated heap objects"),
		heapObjects: r.Gauge("runtime_heap_objects",
			"number of allocated heap objects"),
		gcPauseNS: r.Gauge("runtime_gc_pause_total_ns",
			"cumulative stop-the-world GC pause, nanoseconds"),
		gcCycles: r.Gauge("runtime_gc_cycles",
			"completed GC cycles"),
	}
}

// sample reads the runtime state into the gauges. ReadMemStats is a
// stop-the-world operation (microseconds); keep the interval coarse.
func (g runtimeGauges) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g.goroutines.Set(int64(runtime.NumGoroutine()))
	g.heapAlloc.Set(int64(ms.HeapAlloc))
	g.heapObjects.Set(int64(ms.HeapObjects))
	g.gcPauseNS.Set(int64(ms.PauseTotalNs))
	g.gcCycles.Set(int64(ms.NumGC))
}

// SampleRuntime takes one immediate runtime-health sample into r's
// gauges (the same set StartRuntimeSampler maintains). Batch tools
// (bcastsim, bcastexp) call it right before dumping a registry so the
// final report reflects end-of-run memory pressure rather than the
// last ticker sample.
func SampleRuntime(r *Registry) {
	newRuntimeGauges(r).sample()
}

// StartRuntimeSampler samples Go runtime health — goroutine count,
// heap size and object count, cumulative GC pause and cycle count —
// into gauges on r every interval (minimum 1s, default 5s when
// interval <= 0). One immediate sample is taken before the first
// tick so the gauges are never zero while the process is up. The
// returned stop function halts the sampler and is idempotent.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < time.Second {
		interval = time.Second
	}
	g := newRuntimeGauges(r)
	g.sample()
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				g.sample()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

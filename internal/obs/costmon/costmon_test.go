package costmon

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/obs"
	"diversecast/internal/obs/trace"
)

// testProgram builds a 2-channel program over 4 unit-frequency items
// with sizes {1,1,2,2}: channel 0 carries items 0,1 (cycle 2s at
// bandwidth 1), channel 1 carries items 2,3 (cycle 4s).
func testProgram(t *testing.T) (*broadcast.Program, *core.Database) {
	t.Helper()
	items := []core.Item{
		{ID: 10, Freq: 0.25, Size: 1},
		{ID: 11, Freq: 0.25, Size: 1},
		{ID: 12, Freq: 0.25, Size: 2},
		{ID: 13, Freq: 0.25, Size: 2},
	}
	db, err := core.NewDatabase(items)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAllocation(db, 2, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 1, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	return p, db
}

func newTestMonitor(t *testing.T, cfg Config) (*Monitor, *obs.Registry, *trace.ManualClock, *trace.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	clk := &trace.ManualClock{}
	tr := trace.New(trace.Config{Capacity: 1 << 10, Clock: clk})
	cfg.Registry = reg
	cfg.Tracer = tr
	cfg.Clock = clk
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, reg, clk, tr
}

func TestMonitorPredictedAndRegret(t *testing.T) {
	p, db := testProgram(t)
	m, reg, clk, _ := newTestMonitor(t, Config{Items: db.Len(), Wait: WaitRequest, MinObservations: 1})
	if err := m.SetProgram(p, db.Frequencies()); err != nil {
		t.Fatal(err)
	}

	// Predicted per channel must equal the broadcast helper.
	rep := m.Report()
	for i, ch := range p.Channels {
		want := ch.ExpectedWait(db.Frequencies())
		// db frequencies are already normalized (sum 1), so the
		// monitor's internal normalization is the identity.
		if got := rep.Channels[i].PredictedS; math.Abs(got-want) > 1e-12 {
			t.Fatalf("channel %d predicted %v, want %v", i, got, want)
		}
	}

	// Record waits 1s above prediction on channel 0: regret gauge
	// lands at +1s (in µs).
	pred := rep.Channels[0].PredictedS
	for i := 0; i < 10; i++ {
		m.ObserveTuneIn(0, i%2)
		m.RecordWait(0, pred+1)
	}
	clk.Set(5e9)
	m.Sample()
	snap := reg.Snapshot()
	if got := snap.Gauge(`costmon_cost_regret_us{channel="0"}`); got < 999_900 || got > 1_000_100 {
		t.Fatalf("regret gauge = %dµs, want ~1s", got)
	}
	if got := snap.Counter(`costmon_tune_ins_total{channel="0"}`); got != 10 {
		t.Fatalf("tune-in counter = %d, want 10", got)
	}

	rep = m.Report()
	if got := rep.Channels[0].RegretS; math.Abs(got-1) > 1e-9 {
		t.Fatalf("report regret %v, want 1", got)
	}
	if rep.Channels[0].Waits != 10 {
		t.Fatalf("report waits %d, want 10", rep.Channels[0].Waits)
	}
	if rep.WaitKind != "request" {
		t.Fatalf("wait kind %q", rep.WaitKind)
	}
}

func TestMonitorDriftEdgeTrigger(t *testing.T) {
	p, db := testProgram(t)
	m, reg, clk, tr := newTestMonitor(t, Config{
		Items: db.Len(), Wait: WaitFirstDelivery,
		MinObservations: 8, DriftThreshold: 0.3,
	})
	if err := m.SetProgram(p, db.Frequencies()); err != nil {
		t.Fatal(err)
	}

	// Hammer item 0: the estimate concentrates there (solved-for is
	// uniform 0.25), pushing TV distance toward 0.75.
	for i := 0; i < 100; i++ {
		m.ObserveTuneIn(0, 0)
	}
	clk.Set(1e9)
	m.Sample()
	snap := reg.Snapshot()
	if got := snap.Gauge("costmon_drift_exceeded"); got != 1 {
		t.Fatalf("drift_exceeded = %d, want 1", got)
	}
	if got := snap.Gauge("costmon_drift_score_milli"); got < 500 {
		t.Fatalf("drift_score_milli = %d, want > 500", got)
	}
	score, ok := m.DriftScore()
	if !ok || score < 0.5 {
		t.Fatalf("DriftScore = %v, %v", score, ok)
	}

	// Edge trigger: repeated sampling in the exceeded state emits
	// exactly one costmon_drift event.
	clk.Set(2e9)
	m.Sample()
	clk.Set(3e9)
	m.Sample()
	var drifts, snapshots int
	for _, r := range tr.Snapshot().Records {
		switch r.Name {
		case "costmon_drift":
			drifts++
			if a, ok := r.Attr("exceeded"); !ok || a.Int != 1 {
				t.Fatalf("drift event lacks exceeded=true: %+v", r)
			}
		case "costmon_snapshot":
			snapshots++
		}
	}
	if drifts != 1 {
		t.Fatalf("%d costmon_drift events, want exactly 1 (edge-triggered)", drifts)
	}
	if snapshots != 3 {
		t.Fatalf("%d costmon_snapshot events, want 3", snapshots)
	}

	rep := m.Report()
	if !rep.DriftExceeded || !rep.DriftScored {
		t.Fatalf("report drift flags: %+v", rep)
	}
	if len(rep.TopDrift) == 0 || rep.TopDrift[0].Pos != 0 {
		t.Fatalf("top drift should lead with item 0: %+v", rep.TopDrift)
	}
}

func TestMonitorBeforeProgramAndBadInput(t *testing.T) {
	m, _, _, _ := newTestMonitor(t, Config{Items: 4})
	// Hot paths must be safe before SetProgram.
	m.ObserveTuneIn(0, 1)
	m.RecordWait(0, 1)
	m.Sample()
	if pos := m.PosOfItem(10); pos != -1 {
		t.Fatalf("PosOfItem before program = %d, want -1", pos)
	}
	rep := m.Report()
	if len(rep.Channels) != 0 {
		t.Fatalf("pre-program report has channels: %+v", rep.Channels)
	}

	p, db := testProgram(t)
	if err := m.SetProgram(nil, db.Frequencies()); err == nil {
		t.Fatal("nil program accepted")
	}
	if err := m.SetProgram(p, []float64{1}); err == nil {
		t.Fatal("short profile accepted")
	}
	if err := m.SetProgram(p, []float64{0, 0, 0, 0}); err == nil {
		t.Fatal("zero-mass profile accepted")
	}
	if err := m.SetProgram(p, db.Frequencies()); err != nil {
		t.Fatal(err)
	}
	if pos := m.PosOfItem(12); pos != 2 {
		t.Fatalf("PosOfItem(12) = %d, want 2", pos)
	}
	if pos := m.PosOfItem(99); pos != -1 {
		t.Fatalf("PosOfItem(99) = %d, want -1", pos)
	}

	if _, err := New(Config{Items: 0}); err == nil {
		t.Fatal("Items=0 accepted")
	}
	if _, err := New(Config{Items: 1, HalfLife: -1}); err == nil {
		t.Fatal("negative half-life accepted")
	}
}

func TestMonitorHandlerJSON(t *testing.T) {
	p, db := testProgram(t)
	m, _, clk, _ := newTestMonitor(t, Config{Items: db.Len(), MinObservations: 1})
	if err := m.SetProgram(p, db.Frequencies()); err != nil {
		t.Fatal(err)
	}
	m.ObserveTuneIn(1, 2)
	m.RecordWait(1, 3.5)
	clk.Set(2e9)

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/cost", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rr.Body.String())
	}
	if rep.Items != 4 || len(rep.Channels) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.Channels[1].Waits != 1 || math.Abs(rep.Channels[1].RealizedMeanS-3.5) > 1e-9 {
		t.Fatalf("channel 1 report: %+v", rep.Channels[1])
	}
	if rep.GeneratedAtNS != 2e9 {
		t.Fatalf("generated_at %d", rep.GeneratedAtNS)
	}
}

// TestMonitorReplanContinuity: SetProgram a second time (a replan)
// keeps the same metric series — counters do not reset — and updates
// predictions.
func TestMonitorReplanContinuity(t *testing.T) {
	p, db := testProgram(t)
	m, reg, _, _ := newTestMonitor(t, Config{Items: db.Len()})
	if err := m.SetProgram(p, db.Frequencies()); err != nil {
		t.Fatal(err)
	}
	m.ObserveTuneIn(0, 0)

	// Re-solve with skewed frequencies: prediction changes, counter
	// survives.
	skew := []float64{0.7, 0.1, 0.1, 0.1}
	if err := m.SetProgram(p, skew); err != nil {
		t.Fatal(err)
	}
	m.ObserveTuneIn(0, 0)
	snap := reg.Snapshot()
	if got := snap.Counter(`costmon_tune_ins_total{channel="0"}`); got != 2 {
		t.Fatalf("counter reset across SetProgram: %d", got)
	}
	want := p.Channels[0].ExpectedWait(skew)
	if got := snap.Gauge(`costmon_predicted_wait_us{channel="0"}`); got != int64(want*1e6) {
		t.Fatalf("predicted gauge %d, want %d", got, int64(want*1e6))
	}
}

package costmon

import (
	"math"
	"math/rand"
	"testing"

	"diversecast/internal/adapt"
)

// TestEstimatorDecayHalfLife pins the decay semantics: one halflife
// after an observation was folded, its weight is exactly half.
func TestEstimatorDecayHalfLife(t *testing.T) {
	const h = 10.0
	e := NewEstimator(2, h, 1)

	// Item 0 observed and folded at t=0; item 1 observed and folded at
	// t=h. At t=h item 0 carries weight 0.5 and item 1 weight 1, so
	// before flooring the ratio is exactly 1:2.
	e.Observe(0)
	e.Tick(0)
	e.Observe(1)
	f := e.Frequencies(h)

	if got := f[0] + f[1]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("frequencies sum to %v, want 1", got)
	}
	// The floor adds total/n·1e-6 to each side; undo its effect by
	// checking the ratio with a loose tolerance instead.
	if ratio := f[0] / f[1]; math.Abs(ratio-0.5) > 1e-4 {
		t.Fatalf("weight ratio after one half-life = %v, want 0.5", ratio)
	}
}

// TestEstimatorShardInvariance pins the determinism contract: the
// same observation/tick sequence produces bit-identical frequencies
// regardless of the shard count, because shards are contiguous and
// per-item arithmetic depends only on tick times.
func TestEstimatorShardInvariance(t *testing.T) {
	const n, h = 257, 30.0 // prime n: uneven last shard
	counts := []int{1, 2, 3, 8, 64, 257}
	ests := make([]*Estimator, len(counts))
	for i, s := range counts {
		ests[i] = NewEstimator(n, h, s)
	}

	rng := rand.New(rand.NewSource(42))
	now := 0.0
	for step := 0; step < 2000; step++ {
		pos := rng.Intn(n)
		for _, e := range ests {
			e.Observe(pos)
		}
		if step%97 == 0 {
			now += rng.Float64() * 5
			for _, e := range ests {
				e.Tick(now)
			}
		}
	}
	now += 3
	base := ests[0].Frequencies(now)
	for i, e := range ests[1:] {
		got := e.Frequencies(now)
		for j := range base {
			if got[j] != base[j] {
				t.Fatalf("shards=%d: frequency[%d] = %v, differs bit-for-bit from shards=1's %v",
					counts[i+1], j, got[j], base[j])
			}
		}
	}
}

// TestEstimatorMatchesTracker bridges to adapt.Tracker: when the
// estimator is ticked at every observation instant, its tick-granular
// decay coincides with the tracker's per-observation decay, so the
// two frequency estimates agree to floating-point accuracy. This is
// the "building on adapt.Tracker" contract — same estimate, hot path
// restructured.
func TestEstimatorMatchesTracker(t *testing.T) {
	const n, h = 40, 12.0
	e := NewEstimator(n, h, 4)
	tr, err := adapt.NewTracker(n, h)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	now := 0.0
	for i := 0; i < 5000; i++ {
		now += rng.Float64() / 10
		pos := rng.Intn(n)
		e.Observe(pos)
		e.Tick(now)
		if err := tr.Observe(pos, now); err != nil {
			t.Fatal(err)
		}
	}
	now += 1
	got, want := e.Frequencies(now), tr.Frequencies(now)
	for i := range want {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-12 {
			t.Fatalf("frequency[%d]: estimator %v vs tracker %v (diff %v)", i, got[i], want[i], diff)
		}
	}
}

// TestEstimatorColdAndOutOfRange: a cold estimator degrades to
// uniform (Tracker's total==0 floor), and out-of-range positions —
// including the -1 "no item declared" sentinel — are dropped without
// effect.
func TestEstimatorColdAndOutOfRange(t *testing.T) {
	e := NewEstimator(5, 10, 2)
	e.Observe(-1)
	e.Observe(5)
	e.Observe(1 << 30)
	if got := e.Observations(); got != 0 {
		t.Fatalf("out-of-range observations counted: %d", got)
	}
	f := e.Frequencies(100)
	for i, v := range f {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("cold frequency[%d] = %v, want uniform 0.2", i, v)
		}
	}
}

// TestEstimatorBackwardsClock: a tick that moves backwards folds
// pending mass without applying (inverse) decay, so weights never
// inflate.
func TestEstimatorBackwardsClock(t *testing.T) {
	e := NewEstimator(2, 10, 1)
	e.Observe(0)
	e.Tick(100)
	e.Observe(1)
	f := e.Frequencies(50) // clock stepped back
	if ratio := f[0] / f[1]; math.Abs(ratio-1) > 1e-4 {
		t.Fatalf("backwards tick changed weights: ratio %v, want 1", ratio)
	}
}

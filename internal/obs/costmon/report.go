package costmon

import (
	"encoding/json"
	"net/http"
	"sort"
)

// Report is the /debug/cost document: one JSON object answering "what
// are users actually waiting, what did the model promise, and has the
// workload drifted from what we solved for?".
type Report struct {
	// GeneratedAtNS is the monitor clock at report time.
	GeneratedAtNS int64 `json:"generated_at_ns"`
	// WaitKind is "request" (airsim access time) or "first_delivery"
	// (netcast tune-in → first complete transmission).
	WaitKind string `json:"wait_kind"`
	// Items, Shards, HalfLifeS describe the estimator.
	Items     int     `json:"items"`
	Shards    int     `json:"shards"`
	HalfLifeS float64 `json:"half_life_s"`
	// Observations is the estimator's lifetime tune-in count.
	Observations int64 `json:"observations"`
	// DriftScore is the total-variation distance ½Σ|f̂−f| between the
	// live estimate and the solved-for profile; DriftScored is false
	// while under MinObservations (DriftScore is then zero, not
	// meaningful).
	DriftScore     float64 `json:"drift_score"`
	DriftThreshold float64 `json:"drift_threshold"`
	DriftScored    bool    `json:"drift_scored"`
	DriftExceeded  bool    `json:"drift_exceeded"`
	// TopDrift lists the items contributing the most drift mass,
	// largest first (at most 10).
	TopDrift []ItemDrift `json:"top_drift,omitempty"`
	// Channels is the per-channel realized-vs-predicted breakdown.
	Channels []ChannelReport `json:"channels"`
}

// ItemDrift is one item's contribution to the drift score.
type ItemDrift struct {
	Pos int `json:"pos"`
	// Solved is the frequency the program was solved for, Live the
	// current estimate; both normalized.
	Solved float64 `json:"solved"`
	Live   float64 `json:"live"`
}

// ChannelReport is the realized-vs-predicted wait picture for one
// channel, in virtual seconds.
type ChannelReport struct {
	Channel int `json:"channel"`
	// TuneIns is the attributed subscribe count; Waits the number of
	// realized-wait samples.
	TuneIns int64 `json:"tune_ins"`
	Waits   int64 `json:"waits"`
	// RealizedMeanS is exact (Sum/Count, no binning error); the
	// quantiles interpolate within histogram bins.
	RealizedMeanS float64 `json:"realized_mean_s"`
	RealizedP50S  float64 `json:"realized_p50_s"`
	RealizedP95S  float64 `json:"realized_p95_s"`
	// PredictedS is the analytic expectation for the live program;
	// RegretS = realized mean − predicted (positive: users wait
	// longer than the model promises), RegretPct the same relative to
	// the prediction.
	PredictedS float64 `json:"predicted_s"`
	RegretS    float64 `json:"regret_s"`
	RegretPct  float64 `json:"regret_pct"`
	// GroupCost is the channel's F·Z term of the Eq. (4) objective;
	// CycleS its cycle length.
	GroupCost float64 `json:"group_cost"`
	CycleS    float64 `json:"cycle_s"`
}

// Report assembles the current cost-attribution picture. Pre-program
// it reports only the estimator section.
func (m *Monitor) Report() Report {
	nowNS := m.clock.Now()
	rep := Report{
		GeneratedAtNS:  nowNS,
		WaitKind:       m.kind.String(),
		Items:          m.est.Len(),
		Shards:         len(m.est.shards),
		HalfLifeS:      m.est.HalfLife(),
		Observations:   m.est.Observations(),
		DriftThreshold: m.threshold,
		Channels:       []ChannelReport{},
	}
	st := m.state.Load()
	if st == nil {
		return rep
	}
	live := m.est.Frequencies(float64(nowNS) / 1e9)
	if rep.Observations >= m.minObs {
		rep.DriftScored = true
		rep.DriftScore = tvDistance(live, st.solved)
		rep.DriftExceeded = rep.DriftScore >= m.threshold
		rep.TopDrift = topDrift(live, st.solved, 10)
	}
	rep.Channels = make([]ChannelReport, 0, len(st.chans))
	for i, cm := range st.chans {
		cr := ChannelReport{
			Channel:    i,
			TuneIns:    cm.tuneIns.Value(),
			PredictedS: cm.predicted,
			GroupCost:  cm.groupCost,
			CycleS:     cm.cycle,
		}
		hs := cm.waits.Snapshot()
		cr.Waits = hs.Count
		if hs.Count > 0 {
			cr.RealizedMeanS = hs.Sum / float64(hs.Count)
			cr.RealizedP50S = cm.waits.Quantile(0.5)
			cr.RealizedP95S = cm.waits.Quantile(0.95)
			cr.RegretS = cr.RealizedMeanS - cr.PredictedS
			if cr.PredictedS > 0 {
				cr.RegretPct = cr.RegretS / cr.PredictedS * 100
			}
		}
		//diverselint:ignore loopalloc rep.Channels is constructed above with capacity len(st.chans), the loop's exact trip count; Report serves /debug/cost and the sampler, not a hot loop
		rep.Channels = append(rep.Channels, cr)
	}
	return rep
}

// topDrift returns the k items with the largest |live−solved| gap,
// largest first, ties broken by position for determinism.
func topDrift(live, solved []float64, k int) []ItemDrift {
	idx := make([]int, len(live))
	for i := range idx {
		idx[i] = i
	}
	gap := func(i int) float64 {
		d := live[i] - solved[i]
		if d < 0 {
			d = -d
		}
		return d
	}
	sort.Slice(idx, func(a, b int) bool {
		ga, gb := gap(idx[a]), gap(idx[b])
		if ga > gb {
			return true
		}
		if gb > ga {
			return false
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]ItemDrift, 0, k)
	for _, i := range idx[:k] {
		out = append(out, ItemDrift{Pos: i, Solved: solved[i], Live: live[i]})
	}
	return out
}

// Handler serves Report as indented JSON — the /debug/cost endpoint.
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Report())
	})
}

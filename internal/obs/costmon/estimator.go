// Package costmon is the cost-attribution telemetry layer: it senses
// what the broadcast program's objective function — expected access
// time, the grouping cost F·Z of Eq. (4) — actually looks like at
// runtime, and how far the live workload has drifted from the access
// profile the program was solved for.
//
// Three sensors, one Monitor:
//
//   - an online per-item tune-in frequency estimator f̂ (Estimator),
//     exponentially decayed with the same halflife semantics as
//     adapt.Tracker but restructured for 10⁶-item scale: the per-event
//     update is a single lock-free atomic add, and decay is folded in
//     shard-sized batches on the sampling path;
//   - per-channel realized-wait histograms (tune-in → first complete
//     delivery in netcast wall time, request → download-end in airsim
//     virtual time) recorded next to the analytic expectation computed
//     from the live allocation, with the difference exposed as a
//     cost-regret gauge;
//   - a drift score (total-variation distance between f̂ and the
//     solved-for frequencies) with an edge-triggered trace event and
//     gauge when a configurable threshold is crossed.
//
// Everything registers on an obs.Registry and emits through an
// obs/trace Tracer, so the report rides the existing /metrics and
// trace surfaces; /debug/cost serves the same data as one JSON
// document (Report).
package costmon

import (
	"math"
	"sync"
	"sync/atomic"
)

// Estimator tracks exponentially-decayed per-item tune-in counts at
// large item counts. It splits adapt.Tracker's per-observation decay
// into two halves so the hot half stays lock-free:
//
//   - Observe(pos), the hot path, is one atomic increment into a flat
//     pending array — no locks, no floating point, no allocation;
//   - Tick(now), the cold path, folds the pending increments into the
//     decayed accumulators shard by shard, applying the decay factor
//     2^(-Δt/halflife) for the time since the shard's last fold.
//
// The fold is tick-granular: an observation receives full weight as
// of the tick that folds it, not the instant it occurred. With ticks
// at the sampling cadence (seconds) and halflives of minutes, the
// error is a sub-percent weight bias — the price of a hot path that
// is a single uncontended atomic at 10⁶ items.
//
// Sharding bounds the fold's lock hold: each shard covers a
// contiguous item range with its own mutex, so folding a million
// items never stalls a concurrent Frequencies call behind one global
// critical section. Because shards are contiguous and the per-item
// arithmetic depends only on tick times (identical across shards),
// the estimate is bit-for-bit independent of the shard count.
type Estimator struct {
	halfLife float64
	pending  []atomic.Int64
	observed atomic.Int64
	shards   []estShard
}

// estShard owns the decayed accumulators for items [lo, hi).
type estShard struct {
	mu       sync.Mutex
	lo, hi   int
	decayed  []float64
	lastTick float64
}

// NewEstimator returns an estimator over n items with the given decay
// halflife in seconds (how long an observation takes to lose half its
// weight) split across the given number of shards. Non-positive
// halflife or shard counts fall back to defaults; shards is clamped
// to n.
//
//diverselint:coldpath one-time construction: the per-shard arrays are allocated once and live for the estimator's lifetime
func NewEstimator(n int, halfLife float64, shards int) *Estimator {
	if n < 1 {
		n = 1
	}
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	if shards < 1 {
		shards = DefaultShards
	}
	if shards > n {
		shards = n
	}
	e := &Estimator{
		halfLife: halfLife,
		pending:  make([]atomic.Int64, n),
		shards:   make([]estShard, shards),
	}
	per := (n + shards - 1) / shards
	for s := range e.shards {
		lo := s * per
		if lo > n {
			lo = n // trailing shards can be empty when n is not a multiple of per
		}
		hi := lo + per
		if hi > n {
			hi = n
		}
		e.shards[s] = estShard{lo: lo, hi: hi, decayed: make([]float64, hi-lo)}
	}
	return e
}

// Len returns the number of items tracked.
func (e *Estimator) Len() int { return len(e.pending) }

// HalfLife returns the decay halflife in seconds.
func (e *Estimator) HalfLife() float64 { return e.halfLife }

// Observe records one tune-in for the item at database position pos.
// Out-of-range positions (including the netcast "no item declared"
// sentinel -1) are ignored. Safe for any number of concurrent
// callers.
//
//diverselint:hotpath per-tune-in estimator update: bounds check plus two uncontended atomic adds, no locks or floats
func (e *Estimator) Observe(pos int) {
	if pos < 0 || pos >= len(e.pending) {
		return
	}
	e.pending[pos].Add(1)
	e.observed.Add(1)
}

// Observations returns the total number of in-range observations ever
// recorded, decay-free. It is the "enough signal to trust the
// estimate" gate for drift scoring.
func (e *Estimator) Observations() int64 {
	return e.observed.Load()
}

// Tick folds pending observations into the decayed accumulators as of
// the given time (seconds, same clock as Frequencies). Ticks with
// non-increasing time fold pending mass without applying decay, so a
// wall-clock step backwards never inflates weights.
func (e *Estimator) Tick(now float64) {
	for s := range e.shards {
		e.shards[s].fold(e.pending, e.halfLife, now)
	}
}

func (sh *estShard) fold(pending []atomic.Int64, halfLife, now float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	factor := 1.0
	if now > sh.lastTick {
		factor = exp2(-(now - sh.lastTick) / halfLife)
		sh.lastTick = now
	}
	for i := sh.lo; i < sh.hi; i++ {
		d := pending[i].Swap(0)
		sh.decayed[i-sh.lo] = sh.decayed[i-sh.lo]*factor + float64(d)
	}
}

// Frequencies folds pending observations as of now and returns the
// normalized frequency estimate f̂, one entry per item, summing to 1.
// The floor semantics mirror adapt.Tracker.Frequencies exactly: every
// item gains a tiny positive floor (one millionth of the mean weight)
// so never-observed items stay representable in a Database, and a
// fully cold estimator degrades to uniform.
func (e *Estimator) Frequencies(now float64) []float64 {
	out := make([]float64, len(e.pending))
	for s := range e.shards {
		sh := &e.shards[s]
		sh.mu.Lock()
		factor := 1.0
		if now > sh.lastTick {
			factor = exp2(-(now - sh.lastTick) / e.halfLife)
			sh.lastTick = now
		}
		for i := sh.lo; i < sh.hi; i++ {
			d := e.pending[i].Swap(0)
			sh.decayed[i-sh.lo] = sh.decayed[i-sh.lo]*factor + float64(d)
			out[i] = sh.decayed[i-sh.lo]
		}
		sh.mu.Unlock()
	}
	// Floor and normalize with adapt.Tracker.Frequencies' exact
	// semantics (floor added to every item, one decayed pseudo-count
	// split across a fully cold estimator). Contiguous shards make the
	// summation order plain index order, so the result is bit-identical
	// across shard counts.
	total := 0.0
	for _, w := range out {
		total += w
	}
	floor := total / float64(len(out)) * 1e-6
	if total == 0 {
		floor = 1
	}
	total = 0
	for i := range out {
		out[i] += floor
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

func exp2(x float64) float64 { return math.Exp2(x) }

package costmon_test

import (
	"testing"

	"diversecast/internal/alloctest"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/obs"
	"diversecast/internal/obs/costmon"
	"diversecast/internal/obs/trace"
)

// TestCostmonObservationsAllocFree gates the //diverselint:hotpath
// contracts on the observation paths: once the monitor exists,
// Estimator.Observe, Monitor.ObserveTuneIn and Monitor.RecordWait are
// atomics only — no locks, no allocation — at any item count.
func TestCostmonObservationsAllocFree(t *testing.T) {
	const items = 1 << 20 // the 10⁶-item scale the estimator is built for
	m, err := costmon.New(costmon.Config{
		Items:    items,
		Registry: obs.NewRegistry(),
		Tracer:   trace.New(trace.Config{Capacity: 64}),
		Clock:    &trace.ManualClock{},
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.NewDatabase([]core.Item{
		{ID: 1, Freq: 0.5, Size: 1},
		{ID: 2, Freq: 0.5, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAllocation(db, 1, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 1, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	// The solved-for profile must cover the monitor's item count.
	solved := make([]float64, items)
	for i := range solved {
		solved[i] = 1
	}
	if err := m.SetProgram(p, solved); err != nil {
		t.Fatal(err)
	}

	est := m.Estimator()
	pos := 0
	alloctest.MustZeroAllocs(t, "Estimator.Observe Monitor.ObserveTuneIn Monitor.RecordWait", 2, func() {
		est.Observe(pos)
		est.Observe(items - 1 - pos)
		est.Observe(-1) // netcast "no item declared" sentinel
		m.ObserveTuneIn(0, pos)
		m.ObserveTuneIn(0, -1)
		m.RecordWait(0, 0.25)
		m.RecordWait(99, 1) // out-of-range channel drop
		pos = (pos + 7919) % items
	})
}

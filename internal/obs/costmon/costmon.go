package costmon

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diversecast/internal/broadcast"
	"diversecast/internal/obs"
	"diversecast/internal/obs/trace"
)

// Defaults for Config zero values.
const (
	// DefaultHalfLife is the estimator decay halflife in seconds of
	// the monitor's clock (virtual seconds under a ManualClock).
	DefaultHalfLife = 60.0
	// DefaultShards splits the estimator fold into this many
	// contiguous ranges.
	DefaultShards = 8
	// DefaultDriftThreshold is the total-variation distance between
	// the live estimate and the solved-for profile at which the drift
	// alarm trips. TV distance lives in [0,1]: 0.15 means 15% of the
	// access-probability mass has moved.
	DefaultDriftThreshold = 0.15
	// DefaultMinObservations gates drift scoring until the estimator
	// has seen enough tune-ins to mean anything.
	DefaultMinObservations = 64
	// DefaultWaitBins is the per-channel realized-wait histogram
	// resolution.
	DefaultWaitBins = 32
)

// Trace event names emitted by the monitor.
const (
	eventSnapshot = "costmon_snapshot"
	eventDrift    = "costmon_drift"
)

// WaitKind names which wait the monitor's realized histograms hold;
// it selects the matching analytic prediction. Mixing kinds in one
// monitor would make the regret gauges meaningless, so a monitor has
// exactly one.
type WaitKind int

const (
	// WaitRequest is per-request access time: request issued →
	// wanted item fully downloaded (airsim's measure; the paper's
	// Eq. (1) expectation). Predicted by Channel.ExpectedWait under
	// the solved-for frequencies.
	WaitRequest WaitKind = iota
	// WaitFirstDelivery is per-subscriber time from tune-in to the
	// end of the first complete item transmission (what the netcast
	// server can observe without knowing which item a subscriber
	// wants). Predicted by Channel.ExpectedFirstDelivery.
	WaitFirstDelivery
)

// String returns the wire name used in reports and metrics help text.
func (k WaitKind) String() string {
	switch k {
	case WaitFirstDelivery:
		return "first_delivery"
	default:
		return "request"
	}
}

// Config parameterizes a Monitor. The zero value of every field is
// usable: defaults above, the process-default registry and tracer,
// and a wall clock rooted at monitor construction.
type Config struct {
	// Items is the database length the estimator covers. Required.
	Items int
	// HalfLife is the estimator decay halflife in clock seconds.
	HalfLife float64
	// Shards is the estimator shard count.
	Shards int
	// DriftThreshold is the total-variation distance that trips the
	// drift alarm.
	DriftThreshold float64
	// MinObservations gates drift scoring until the estimator has
	// seen this many tune-ins.
	MinObservations int64
	// Wait selects which realized wait the monitor records.
	Wait WaitKind
	// WaitBins is the realized-wait histogram bin count per channel.
	WaitBins int
	// Registry receives the monitor's metrics (obs.Default() when
	// nil).
	Registry *obs.Registry
	// Tracer receives snapshot and drift events (trace.Default()
	// when nil; events are dropped while it is disabled).
	Tracer *trace.Tracer
	// Clock supplies nanosecond timestamps for decay and trace
	// events. Nil means wall time measured from New. airsim passes
	// its virtual clock so decay runs in simulated seconds.
	Clock trace.Clock
}

// Monitor is the cost-attribution sensor: it aggregates tune-in
// frequencies, realized waits, and drift against the profile the
// current broadcast program was solved for. The observation paths
// (ObserveTuneIn, RecordWait) are lock-free and allocation-free; the
// aggregation paths (Sample, Report, DriftScore) take per-shard and
// snapshot locks and are meant for a sampling cadence of seconds.
type Monitor struct {
	est      *Estimator
	reg      *obs.Registry
	tracer   *trace.Tracer
	clock    trace.Clock
	kind     WaitKind
	waitBins int
	minObs   int64

	// threshold in TV distance; fixed at construction.
	threshold float64

	// state is the current program view, swapped atomically by
	// SetProgram so the hot paths never lock.
	state atomic.Pointer[programState]

	// setMu serializes SetProgram and owns instruments, the
	// per-channel metric cache (get-or-create keyed by channel index
	// so replans keep series continuity and histogram bounds come
	// from the first program that introduced the channel).
	setMu       sync.Mutex
	instruments map[int]*chanInstruments

	// sampleMu serializes Sample and owns exceeded, the drift alarm's
	// edge-trigger latch.
	sampleMu sync.Mutex
	exceeded bool

	driftScore     *obs.Gauge
	driftThreshold *obs.Gauge
	driftExceeded  *obs.Gauge
	observations   *obs.Gauge
}

// programState is the immutable per-program view the hot paths load.
type programState struct {
	chans    []*channelMon
	idToPos  map[int]int
	solved   []float64 // normalized solved-for frequencies
	cycleSum float64
}

// channelMon pairs a channel's analytic expectation with its realized
// instruments.
type channelMon struct {
	predicted float64 // expected wait of the monitor's kind, seconds
	groupCost float64 // F·Z term the allocator minimized (Eq. 4)
	cycle     float64
	*chanInstruments
}

type chanInstruments struct {
	tuneIns     *obs.Counter
	waits       *obs.Histogram
	predictedUS *obs.Gauge
	regretUS    *obs.Gauge
}

// epochClock is the default wall clock: nanoseconds since New, so
// decay timestamps start near zero like a ManualClock's.
type epochClock struct{ start time.Time }

func (c epochClock) Now() int64 { return int64(time.Since(c.start)) }

// New builds a Monitor. The estimator exists immediately; predictions
// and per-channel instruments appear at the first SetProgram.
func New(cfg Config) (*Monitor, error) {
	if cfg.Items < 1 {
		return nil, fmt.Errorf("costmon: need Items >= 1, got %d", cfg.Items)
	}
	if cfg.HalfLife == 0 {
		cfg.HalfLife = DefaultHalfLife
	}
	if cfg.HalfLife <= 0 {
		return nil, fmt.Errorf("costmon: half-life must be positive, got %v", cfg.HalfLife)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	if cfg.MinObservations == 0 {
		cfg.MinObservations = DefaultMinObservations
	}
	if cfg.WaitBins <= 0 {
		cfg.WaitBins = DefaultWaitBins
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Default()
	}
	if cfg.Clock == nil {
		cfg.Clock = epochClock{start: time.Now()}
	}
	m := &Monitor{
		est:         NewEstimator(cfg.Items, cfg.HalfLife, cfg.Shards),
		reg:         cfg.Registry,
		tracer:      cfg.Tracer,
		clock:       cfg.Clock,
		kind:        cfg.Wait,
		waitBins:    cfg.WaitBins,
		minObs:      cfg.MinObservations,
		threshold:   cfg.DriftThreshold,
		instruments: make(map[int]*chanInstruments),
	}
	m.driftScore = m.reg.Gauge("costmon_drift_score_milli", "total-variation distance between live and solved-for frequencies, in thousandths")
	m.driftThreshold = m.reg.Gauge("costmon_drift_threshold_milli", "drift alarm threshold, in thousandths")
	m.driftExceeded = m.reg.Gauge("costmon_drift_exceeded", "1 while the drift score is at or above the threshold")
	m.observations = m.reg.Gauge("costmon_estimator_observations", "total tune-ins folded into the frequency estimator")
	m.driftThreshold.Set(int64(cfg.DriftThreshold * 1000))
	return m, nil
}

// Estimator exposes the underlying frequency estimator (for feeding
// adapt.ReplanFromFrequencies from its live estimate).
func (m *Monitor) Estimator() *Estimator { return m.est }

// Kind returns the wait semantics this monitor records.
func (m *Monitor) Kind() WaitKind { return m.kind }

// newChanInstruments registers the per-channel metric family; called
// once per channel index for the life of the monitor.
func newChanInstruments(r *obs.Registry, channel int, kind WaitKind, hi float64, bins int) *chanInstruments {
	ch := strconv.Itoa(channel)
	if hi <= 0 {
		hi = 1
	}
	return &chanInstruments{
		tuneIns:     r.Counter("costmon_tune_ins_total", "tune-ins attributed to the channel", "channel", ch),
		waits:       r.Histogram("costmon_wait_seconds", "realized wait ("+kind.String()+") in virtual seconds", 0, hi, bins, "channel", ch),
		predictedUS: r.Gauge("costmon_predicted_wait_us", "analytic expected wait for the live program, microseconds (virtual)", "channel", ch),
		regretUS:    r.Gauge("costmon_cost_regret_us", "realized mean wait minus predicted, microseconds (virtual); positive means users wait longer than the model promises", "channel", ch),
	}
}

// SetProgram points the monitor at the live broadcast program and the
// frequency profile it was solved for (database order; normalized
// internally). It recomputes every channel's analytic expectation and
// swaps the hot-path view atomically — observation paths never see a
// half-updated program. solvedFor must cover the monitor's item
// count.
//
//diverselint:coldpath program swap runs once per re-allocation; all map and per-channel state construction happens here, never on the observation paths
func (m *Monitor) SetProgram(p *broadcast.Program, solvedFor []float64) error {
	if p == nil {
		return fmt.Errorf("costmon: nil program")
	}
	if len(solvedFor) != m.est.Len() {
		return fmt.Errorf("costmon: solved-for profile covers %d items, monitor tracks %d", len(solvedFor), m.est.Len())
	}
	var mass float64
	for _, f := range solvedFor {
		if f < 0 {
			return fmt.Errorf("costmon: negative frequency %v in solved-for profile", f)
		}
		mass += f
	}
	if mass <= 0 {
		return fmt.Errorf("costmon: solved-for profile has no mass")
	}
	solved := make([]float64, len(solvedFor))
	for i, f := range solvedFor {
		solved[i] = f / mass
	}

	st := &programState{
		chans:   make([]*channelMon, len(p.Channels)),
		idToPos: make(map[int]int),
		solved:  solved,
	}
	m.setMu.Lock()
	defer m.setMu.Unlock()
	for i, ch := range p.Channels {
		var maxDur float64
		for _, s := range ch.Slots {
			if s.Duration > maxDur {
				maxDur = s.Duration
			}
			st.idToPos[s.ItemID] = s.Pos
		}
		ins, ok := m.instruments[i]
		if !ok {
			ins = newChanInstruments(m.reg, i, m.kind, ch.CycleLength+maxDur, m.waitBins)
			m.instruments[i] = ins
		}
		predicted := ch.ExpectedWait(solved)
		if m.kind == WaitFirstDelivery {
			predicted = ch.ExpectedFirstDelivery()
		}
		ins.predictedUS.Set(int64(predicted * 1e6))
		st.chans[i] = &channelMon{
			predicted:       predicted,
			groupCost:       ch.GroupCost,
			cycle:           ch.CycleLength,
			chanInstruments: ins,
		}
		st.cycleSum += ch.CycleLength
	}
	m.state.Store(st)
	return nil
}

// PosOfItem resolves an item ID to its database position under the
// current program, or -1 when unknown (no program yet, or an ID the
// program does not carry). Cold path — the netcast handshake calls it
// once per connection.
func (m *Monitor) PosOfItem(id int) int {
	st := m.state.Load()
	if st == nil {
		return -1
	}
	if pos, ok := st.idToPos[id]; ok {
		return pos
	}
	return -1
}

// ObserveTuneIn attributes one tune-in to a channel and, when the
// subscriber declared the item it wants (pos >= 0), feeds the
// frequency estimator. Safe for any number of concurrent callers.
//
//diverselint:hotpath per-subscribe attribution: one atomic state load, a counter bump and the estimator's atomic adds
func (m *Monitor) ObserveTuneIn(channel, pos int) {
	if st := m.state.Load(); st != nil && channel >= 0 && channel < len(st.chans) {
		st.chans[channel].tuneIns.Inc()
	}
	m.est.Observe(pos)
}

// RecordWait records one realized wait (seconds of the monitor's
// clock) on a channel. Out-of-range channels and pre-SetProgram calls
// are dropped. Safe for any number of concurrent callers.
//
//diverselint:hotpath per-delivery wait record: one atomic state load and a histogram observe
func (m *Monitor) RecordWait(channel int, seconds float64) {
	st := m.state.Load()
	if st == nil || channel < 0 || channel >= len(st.chans) {
		return
	}
	st.chans[channel].waits.Observe(seconds)
}

// now returns the monitor clock in seconds.
func (m *Monitor) now() float64 { return float64(m.clock.Now()) / 1e9 }

// DriftScore returns the total-variation distance between the live
// frequency estimate and the solved-for profile: ½·Σ|f̂_j − f_j|, the
// fraction of access-probability mass that has moved. ok is false
// until a program is set and the estimator has MinObservations of
// signal.
func (m *Monitor) DriftScore() (score float64, ok bool) {
	st := m.state.Load()
	if st == nil || m.est.Observations() < m.minObs {
		return 0, false
	}
	return tvDistance(m.est.Frequencies(m.now()), st.solved), true
}

func tvDistance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 2
}

// Sample runs one aggregation pass: folds the estimator, refreshes
// the regret and drift gauges, emits a costmon_snapshot trace event,
// and — on a threshold crossing in either direction — the
// edge-triggered costmon_drift event. bcastserver calls it on a
// ticker; tests call it directly under a ManualClock.
func (m *Monitor) Sample() {
	m.sampleMu.Lock()
	defer m.sampleMu.Unlock()
	st := m.state.Load()
	if st == nil {
		return
	}
	nowNS := m.clock.Now()
	now := float64(nowNS) / 1e9

	worst := 0.0
	worstCh := -1
	var waits int64
	for i, cm := range st.chans {
		hs := cm.waits.Snapshot()
		waits += hs.Count
		if hs.Count == 0 {
			continue
		}
		regret := hs.Sum/float64(hs.Count) - cm.predicted
		cm.regretUS.Set(int64(regret * 1e6))
		if regret > worst || worstCh < 0 {
			worst, worstCh = regret, i
		}
	}

	obsCount := m.est.Observations()
	m.observations.Set(obsCount)
	score, scored := 0.0, false
	if obsCount >= m.minObs {
		score = tvDistance(m.est.Frequencies(now), st.solved)
		scored = true
		m.driftScore.Set(int64(score * 1000))
		exceeded := score >= m.threshold
		if exceeded {
			m.driftExceeded.Set(1)
		} else {
			m.driftExceeded.Set(0)
		}
		if exceeded != m.exceeded && m.tracer.Enabled() {
			m.tracer.EventAt(eventDrift, nowNS,
				trace.Bool("exceeded", exceeded),
				trace.Float("score", score),
				trace.Float("threshold", m.threshold))
		}
		m.exceeded = exceeded
	}

	if m.tracer.Enabled() {
		attrs := []trace.Attr{
			trace.Int("observations", obsCount),
			trace.Int("waits", waits),
			trace.Bool("drift_scored", scored),
			trace.Float("drift_score", score),
		}
		if worstCh >= 0 {
			attrs = append(attrs,
				trace.Int("worst_regret_channel", int64(worstCh)),
				trace.Float("worst_regret_seconds", worst))
		}
		m.tracer.EventAt(eventSnapshot, nowNS, attrs...)
	}
}

// Start samples on the given wall-clock interval until the returned
// stop function is called (idempotent). Intervals under a second are
// clamped; non-positive means a 10s default. One sample runs
// immediately.
func (m *Monitor) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if interval < time.Second {
		interval = time.Second
	}
	m.Sample()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.Sample()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

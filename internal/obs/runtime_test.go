package obs

import (
	"testing"
	"time"
)

func TestRuntimeSamplerPopulatesGauges(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Hour) // only the immediate sample
	defer stop()

	snap := r.Snapshot()
	if g := snap.Gauge("runtime_goroutines"); g < 1 {
		t.Fatalf("runtime_goroutines = %d, want >= 1", g)
	}
	if g := snap.Gauge("runtime_heap_alloc_bytes"); g <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %d, want > 0", g)
	}
	if g := snap.Gauge("runtime_heap_objects"); g <= 0 {
		t.Fatalf("runtime_heap_objects = %d, want > 0", g)
	}
	// Pause total and cycle count may legitimately be zero early in a
	// process's life; just check the gauges exist.
	for _, name := range []string{"runtime_gc_pause_total_ns", "runtime_gc_cycles"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s not registered", name)
		}
	}

	// stop is idempotent and safe to call repeatedly.
	stop()
	stop()
}

func TestRuntimeSamplerTicks(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Second) // clamped minimum
	defer stop()
	// The sampler's loop selects on its stop channel (no leak); a
	// fast stop right after start must not race the first tick.
	stop()
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// exportFixture builds a small deterministic trace.
func exportFixture(t *testing.T) Snapshot {
	t.Helper()
	tr, clk := manualTracer(32)
	root := tr.Start("drp_allocate", Str("policy", "max-reduction"))
	clk.Advance(100 * time.Microsecond)
	split := root.Child("drp_split", Int("cut", 1), Float("delta", 12.5))
	clk.Advance(50 * time.Microsecond)
	split.End()
	root.Event("queue_peek", Int("len", 2))
	clk.Advance(25 * time.Microsecond)
	root.End(Float("cost", 23.51))
	return tr.Snapshot()
}

func TestWriteChromeLoadableJSON(t *testing.T) {
	snap := exportFixture(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Metadata["run_id"] != "test-run" {
		t.Fatalf("metadata = %v", doc.Metadata)
	}
	// Metadata event + 3 records.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("trace events = %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("first event is %v, want process_name metadata", doc.TraceEvents[0])
	}
	for _, ev := range doc.TraceEvents[1:] {
		// Every record event needs the fields the viewers key on.
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %v missing %q", ev, field)
			}
		}
		args, ok := ev["args"].(map[string]any)
		if !ok || args["run_id"] != "test-run" {
			t.Fatalf("event %v args lack the run ID", ev)
		}
	}
	// The split span: complete event with µs timestamps and its parent
	// link preserved.
	var split map[string]any
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "drp_split" {
			split = ev
		}
	}
	if split == nil {
		t.Fatal("no drp_split event")
	}
	if split["ph"] != "X" || split["ts"].(float64) != 100 || split["dur"].(float64) != 50 {
		t.Fatalf("split timing = %v", split)
	}
	args := split["args"].(map[string]any)
	if args["cut"].(float64) != 1 || args["delta"].(float64) != 12.5 {
		t.Fatalf("split args = %v", args)
	}
	if _, ok := args["parent_id"]; !ok {
		t.Fatalf("split lost its parent link: %v", args)
	}
	// The instant event carries the thread scope.
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "queue_peek" && (ev["ph"] != "i" || ev["s"] != "t") {
			t.Fatalf("instant event = %v", ev)
		}
	}
}

func TestWriteText(t *testing.T) {
	snap := exportFixture(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := []string{
		"run test-run (3 records, 0 dropped)",
		"drp_allocate",
		"policy=max-reduction",
		"cost=23.51",
		"drp_split",
		"cut=1",
		"delta=12.5",
		"event queue_peek",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("text export missing %q:\n%s", w, out)
		}
	}
	// Ordered by start time: the root span line precedes the split.
	if strings.Index(out, "drp_allocate") > strings.Index(out, "drp_split") {
		t.Fatalf("text export not ordered by start:\n%s", out)
	}
}

func TestWriteChromeEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON for empty snapshot: %s", buf.String())
	}
}

package trace

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerCapturesIntoRingWithSpanCorrelation(t *testing.T) {
	tr, clk := manualTracer(16)
	log := tr.Logger(nil)

	span := tr.Start("cds_refine", Str("strategy", "incremental"))
	ctx := ContextWithSpan(context.Background(), span)
	clk.Advance(1000)
	log.InfoContext(ctx, "move applied", slog.Int("pos", 7), slog.Float64("delta", 0.25))
	log.Warn("no span on this one")
	span.End()

	snap := tr.Snapshot()
	logs := snap.Named("move applied")
	if len(logs) != 1 {
		t.Fatalf("captured %d 'move applied' records", len(logs))
	}
	rec := logs[0]
	if rec.Kind != KindLog || rec.Span != span.ID() {
		t.Fatalf("log record = %+v, want span %d", rec, span.ID())
	}
	if a, _ := rec.Attr("level"); a.Str != "INFO" {
		t.Fatalf("level attr = %+v", a)
	}
	if a, _ := rec.Attr("pos"); a.Int != 7 {
		t.Fatalf("pos attr = %+v", a)
	}
	if a, _ := rec.Attr("delta"); a.Float != 0.25 {
		t.Fatalf("delta attr = %+v", a)
	}
	orphan := snap.Named("no span on this one")
	if len(orphan) != 1 || orphan[0].Span != 0 {
		t.Fatalf("orphan log = %+v", orphan)
	}
}

func TestLoggerDelegatesWithRunAndSpanIDs(t *testing.T) {
	tr, _ := manualTracer(16)
	var buf bytes.Buffer
	log := tr.Logger(slog.NewTextHandler(&buf, &slog.HandlerOptions{}))

	span := tr.Start("netcast_conn")
	log.InfoContext(ContextWithSpan(context.Background(), span), "subscribed", slog.Int("channel", 2))
	span.End()

	out := buf.String()
	for _, want := range []string{"run_id=test-run", "span=netcast_conn", "channel=2", "span_id="} {
		if !strings.Contains(out, want) {
			t.Fatalf("delegated record missing %q: %s", want, out)
		}
	}
}

func TestLoggerWithAttrsAndGroups(t *testing.T) {
	tr, _ := manualTracer(16)
	log := tr.Logger(nil).With(slog.String("component", "netcast"))
	log = log.WithGroup("conn")
	log.Info("closed", slog.Int("frames", 42))

	recs := tr.Snapshot().Named("closed")
	if len(recs) != 1 {
		t.Fatalf("captured %d records", len(recs))
	}
	if a, ok := recs[0].Attr("component"); !ok || a.Str != "netcast" {
		t.Fatalf("With attr lost: %+v", recs[0].Attrs)
	}
	if a, ok := recs[0].Attr("conn.frames"); !ok || a.Int != 42 {
		t.Fatalf("grouped attr = %+v", recs[0].Attrs)
	}
}

func TestLoggerDisabledTracerStillDelegates(t *testing.T) {
	tr := &Tracer{} // never enabled
	var buf bytes.Buffer
	log := tr.Logger(slog.NewTextHandler(&buf, &slog.HandlerOptions{}))
	log.Info("passes through")
	if !strings.Contains(buf.String(), "passes through") {
		t.Fatalf("disabled tracer swallowed the record: %q", buf.String())
	}
	if strings.Contains(buf.String(), "run_id") {
		t.Fatalf("never-enabled tracer stamped a run ID: %q", buf.String())
	}
	// Capture-only handler on a disabled tracer reports not enabled.
	if tr.Handler(nil).Enabled(context.Background(), slog.LevelInfo) {
		t.Fatal("capture-only handler enabled on a disabled tracer")
	}
}

package trace

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// RecordKind discriminates ring-buffer records.
type RecordKind int

const (
	// KindSpan is a completed span (Start + Dur are meaningful).
	KindSpan RecordKind = iota
	// KindEvent is an instant structured event.
	KindEvent
	// KindLog is a structured log record captured off an slog pipeline.
	KindLog
)

// String returns the kind name.
func (k RecordKind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindEvent:
		return "event"
	case KindLog:
		return "log"
	}
	return "unknown"
}

// Record is one entry in the ring buffer. For spans, Span is the
// span's own ID and Parent its parent span (0 = root); for events and
// logs, Span/Parent name the enclosing span (0 = none).
type Record struct {
	Kind   RecordKind
	Name   string
	Span   uint64
	Parent uint64
	Start  int64 // nanoseconds on the emitting clock
	Dur    int64 // nanoseconds; 0 for instants
	Attrs  []Attr
}

// Attr returns the record's attribute with the given key.
func (r Record) Attr(key string) (Attr, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// AttrKind discriminates attribute value types.
type AttrKind int

// Attribute value kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
	AttrBool
)

// Attr is one key/value span or event attribute.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: AttrString, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: AttrFloat, Float: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: AttrBool}
	if v {
		a.Int = 1
	}
	return a
}

// Value returns the attribute's value as an interface (bool, int64,
// float64, or string), the shape exporters marshal.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	case AttrBool:
		return a.Int != 0
	default:
		return a.Str
	}
}

// String renders the attribute as key=value.
func (a Attr) String() string {
	switch a.Kind {
	case AttrInt:
		return a.Key + "=" + strconv.FormatInt(a.Int, 10)
	case AttrFloat:
		return a.Key + "=" + strconv.FormatFloat(a.Float, 'g', -1, 64)
	case AttrBool:
		if a.Int != 0 {
			return a.Key + "=true"
		}
		return a.Key + "=false"
	default:
		return a.Key + "=" + a.Str
	}
}

// Snapshot is a point-in-time copy of a tracer's ring: the records in
// emission order (oldest surviving first), the run ID they share, and
// how many older records the ring dropped to stay fixed-size.
type Snapshot struct {
	RunID   string
	Records []Record
	Dropped uint64
}

// Named returns the snapshot's records with the given name, in
// emission order.
//diverselint:coldpath snapshot query helper for tests and post-run analysis
func (s Snapshot) Named(name string) []Record {
	var out []Record
	for _, r := range s.Records {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Sequence renders the record names in emission order — the compact
// shape lifecycle tests assert against.
func (s Snapshot) Sequence() []string {
	out := make([]string, len(s.Records))
	for i, r := range s.Records {
		out[i] = r.Name
	}
	return out
}

// String summarizes the snapshot (not the full contents).
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s: %d records, %d dropped", s.RunID, len(s.Records), s.Dropped)
	return b.String()
}

// ring is the fixed-size record buffer. Appends never block beyond a
// short mutex hold (index bump + struct copy): when the ring is full
// the oldest record is overwritten and counted as dropped, so the
// buffer always holds the newest Capacity records.
type ring struct {
	mu      sync.Mutex
	recs    []Record
	next    uint64 // total records ever appended
	dropped uint64
}

func newRing(capacity int) *ring {
	return &ring{recs: make([]Record, capacity)}
}

func (r *ring) append(rec Record) {
	r.mu.Lock()
	n := uint64(len(r.recs))
	if r.next >= n {
		r.dropped++
	}
	r.recs[r.next%n] = rec
	r.next++
	r.mu.Unlock()
}

// snapshot copies the live records oldest-first.
func (r *ring) snapshot() ([]Record, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.recs))
	live := r.next
	if live > n {
		live = n
	}
	out := make([]Record, 0, live)
	for i := r.next - live; i < r.next; i++ {
		out = append(out, r.recs[i%n])
	}
	return out, r.dropped
}

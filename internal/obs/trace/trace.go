// Package trace is a dependency-free, low-overhead tracing and
// structured-event subsystem: spans with monotonic start/duration,
// key/value attributes and parent links, instant events, and a
// run-correlation ID shared by everything one run emits. Records land
// in a fixed-size ring buffer that never blocks producers (overflow
// increments a drop counter) and can be exported as Chrome
// `trace_event` JSON (chrome://tracing, Perfetto) or human-readable
// text.
//
// The subsystem is built for always-present instrumentation on hot
// paths: a disabled tracer costs a nil check plus one atomic load per
// Start/Event call and allocates nothing (the overhead microbenchmarks
// in bench_test.go pin this), so core's DRP/CDS loops and netcast's
// frame path carry their probes unconditionally. Timestamps come from
// an injectable Clock — wall-clock monotonic by default, a ManualClock
// in tests, or a virtual simulation clock (internal/airsim stamps its
// spans with discrete-event time via the *At variants) — so traces are
// replayable and golden-testable.
//
// Instrumented packages default to the process-wide Default() tracer,
// which starts disabled; daemons enable it (`bcastsim -trace`,
// `bcastserver /debug/obstrace`) and tests inject their own Tracer
// where isolation matters. Span and event names follow the same
// convention as obs metric names — compile-time snake_case constants,
// enforced by the obsnames analyzer — so timelines and metric series
// key on the same vocabulary.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock supplies monotonic timestamps in nanoseconds. Implementations
// must be safe for concurrent use.
type Clock interface {
	Now() int64
}

// wallClock is the default clock: nanoseconds since the tracer was
// enabled, read off Go's monotonic clock (immune to wall adjustments).
type wallClock struct {
	epoch time.Time
}

func (c wallClock) Now() int64 { return int64(time.Since(c.epoch)) }

// ManualClock is a deterministic Clock for tests and replayable
// traces: it only moves when told to.
type ManualClock struct {
	ns atomic.Int64
}

// Now returns the current manual time in nanoseconds.
func (c *ManualClock) Now() int64 { return c.ns.Load() }

// Set jumps the clock to ns nanoseconds.
func (c *ManualClock) Set(ns int64) { c.ns.Store(ns) }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// Config parameterizes an enabled tracer. The zero value selects a
// wall clock, a generated run ID, and the default ring capacity.
type Config struct {
	// Capacity is the ring-buffer size in records. Default 8192.
	Capacity int
	// Clock supplies timestamps. Default: monotonic nanoseconds since
	// Enable.
	Clock Clock
	// RunID correlates every span, event, and log record of one run.
	// Default: a generated unique ID.
	RunID string
}

// state bundles the hot-path configuration an enabled tracer reads;
// swapped atomically by Enable so emitters never lock.
type state struct {
	clock Clock
	runID string
	ring  *ring
}

// Tracer emits spans and events. The zero value and the nil pointer
// are valid, permanently-disabled tracers; New returns an enabled one.
// All methods are safe for concurrent use.
type Tracer struct {
	enabled atomic.Bool
	st      atomic.Pointer[state]
	nextID  atomic.Uint64
}

// defaultTracer is the process-wide tracer instrumented packages fall
// back to. It starts disabled: until a daemon enables it, every probe
// in core/netcast/airsim is a nil check plus one atomic load.
var defaultTracer = &Tracer{}

// Default returns the process-wide tracer.
func Default() *Tracer { return defaultTracer }

// New returns a tracer enabled with cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{}
	t.Enable(cfg)
	return t
}

// runSeq disambiguates run IDs generated within one millisecond.
var runSeq atomic.Uint64

// newRunID generates a unique-enough run correlation ID.
func newRunID() string {
	return fmt.Sprintf("%x-%x", time.Now().UnixMilli(), runSeq.Add(1))
}

// Enable (re)configures the tracer and turns it on. Records emitted
// before Enable are lost; spans started before a re-Enable land in the
// new ring when they end.
func (t *Tracer) Enable(cfg Config) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock{epoch: time.Now()}
	}
	if cfg.RunID == "" {
		cfg.RunID = newRunID()
	}
	t.st.Store(&state{clock: cfg.Clock, runID: cfg.RunID, ring: newRing(cfg.Capacity)})
	t.enabled.Store(true)
}

// Disable turns the tracer off. The ring's contents stay readable via
// Snapshot until the next Enable.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer is currently recording.
//
//diverselint:hotpath probe check on every instrumented operation
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// RunID returns the current run-correlation ID ("" when the tracer
// has never been enabled).
func (t *Tracer) RunID() string {
	if t == nil {
		return ""
	}
	st := t.st.Load()
	if st == nil {
		return ""
	}
	return st.runID
}

// Snapshot copies the ring's current contents (oldest first) together
// with the run ID and drop count. A never-enabled tracer snapshots
// empty.
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	st := t.st.Load()
	if st == nil {
		return Snapshot{}
	}
	recs, dropped := st.ring.snapshot()
	return Snapshot{RunID: st.runID, Records: recs, Dropped: dropped}
}

// Start begins a root span. On a disabled tracer it returns the
// inactive zero Span, whose methods all no-op.
//
//diverselint:hotpath disabled-tracer path must be allocation-free
func (t *Tracer) Start(name string, attrs ...Attr) Span {
	if !t.Enabled() {
		return Span{}
	}
	st := t.st.Load()
	return Span{t: t, id: t.nextID.Add(1), name: name, start: st.clock.Now(), attrs: attrs}
}

// StartAt is Start with an explicit timestamp (nanoseconds on the
// caller's clock), for emitters that keep their own time base — the
// discrete-event simulator stamps spans with virtual time.
func (t *Tracer) StartAt(name string, ts int64, attrs ...Attr) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, id: t.nextID.Add(1), name: name, start: ts, attrs: attrs}
}

// Event records an instant event outside any span.
//
//diverselint:hotpath disabled-tracer path must be allocation-free
func (t *Tracer) Event(name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	st := t.st.Load()
	st.ring.append(Record{Kind: KindEvent, Name: name, Start: st.clock.Now(), Attrs: attrs})
}

// EventAt is Event with an explicit timestamp.
func (t *Tracer) EventAt(name string, ts int64, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.st.Load().ring.append(Record{Kind: KindEvent, Name: name, Start: ts, Attrs: attrs})
}

// Span is one traced operation: a name, a monotonic start and
// duration, attributes, and a link to its parent. Spans are small
// values; copying one is fine. The zero Span is inactive and all its
// methods no-op, so call sites need no nil checks.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  int64
	attrs  []Attr
}

// Active reports whether the span is recording; use it to skip
// expensive attribute computation when tracing is off.
//
//diverselint:hotpath probe check on every instrumented operation
func (s Span) Active() bool { return s.t != nil }

// ID returns the span's identifier (0 for an inactive span).
func (s Span) ID() uint64 { return s.id }

// Child begins a sub-span of s.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.t == nil || !s.t.Enabled() {
		return Span{}
	}
	st := s.t.st.Load()
	return Span{t: s.t, id: s.t.nextID.Add(1), parent: s.id, name: name, start: st.clock.Now(), attrs: attrs}
}

// ChildAt is Child with an explicit timestamp.
func (s Span) ChildAt(name string, ts int64, attrs ...Attr) Span {
	if s.t == nil || !s.t.Enabled() {
		return Span{}
	}
	return Span{t: s.t, id: s.t.nextID.Add(1), parent: s.id, name: name, start: ts, attrs: attrs}
}

// Event records an instant event inside s.
func (s Span) Event(name string, attrs ...Attr) {
	if s.t == nil || !s.t.Enabled() {
		return
	}
	st := s.t.st.Load()
	st.ring.append(Record{Kind: KindEvent, Name: name, Span: s.id, Parent: s.id, Start: st.clock.Now(), Attrs: attrs})
}

// EventAt is Event with an explicit timestamp.
func (s Span) EventAt(name string, ts int64, attrs ...Attr) {
	if s.t == nil || !s.t.Enabled() {
		return
	}
	s.t.st.Load().ring.append(Record{Kind: KindEvent, Name: name, Span: s.id, Parent: s.id, Start: ts, Attrs: attrs})
}

// End completes the span, appending it to the ring with its measured
// duration. extra attributes (results, counts, outcomes) are appended
// after the ones given at Start. Ending an inactive span is a no-op;
// ending twice records twice — don't.
//
//diverselint:hotpath inactive-span path must be allocation-free
func (s Span) End(extra ...Attr) {
	if s.t == nil || !s.t.Enabled() {
		return
	}
	st := s.t.st.Load()
	s.endAt(st, st.clock.Now(), extra)
}

// EndAt is End with an explicit timestamp.
func (s Span) EndAt(ts int64, extra ...Attr) {
	if s.t == nil || !s.t.Enabled() {
		return
	}
	s.endAt(s.t.st.Load(), ts, extra)
}

func (s Span) endAt(st *state, ts int64, extra []Attr) {
	attrs := s.attrs
	if len(extra) > 0 {
		attrs = make([]Attr, 0, len(s.attrs)+len(extra))
		attrs = append(attrs, s.attrs...)
		attrs = append(attrs, extra...)
	}
	dur := ts - s.start
	if dur < 0 {
		dur = 0
	}
	st.ring.append(Record{
		Kind: KindSpan, Name: s.name, Span: s.id, Parent: s.parent,
		Start: s.start, Dur: dur, Attrs: attrs,
	})
}

package trace

import (
	"context"
	"log/slog"
)

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the active span;
// slog records logged through a tracer Handler with that context are
// stamped with the span's ID and captured under it.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span carried by ctx (the
// inactive zero Span when there is none).
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}

// logHandler is an slog.Handler that stamps every record with the
// tracer's run ID and the active span (from the context), captures the
// record into the ring as a KindLog entry, and then delegates to the
// wrapped handler (if any).
type logHandler struct {
	t      *Tracer
	next   slog.Handler
	prefix string      // dotted group path from WithGroup
	attrs  []slog.Attr // accumulated WithAttrs, already prefixed
}

// Handler wraps next so records flowing through it carry run/span
// correlation and land in the trace ring. next may be nil to capture
// into the ring only.
func (t *Tracer) Handler(next slog.Handler) slog.Handler {
	return &logHandler{t: t, next: next}
}

// Logger returns an slog.Logger whose records carry the tracer's run
// ID and the context's active span ID, and are mirrored into the
// trace ring. next may be nil.
func (t *Tracer) Logger(next slog.Handler) *slog.Logger {
	return slog.New(t.Handler(next))
}

// Enabled implements slog.Handler: ring capture accepts every level,
// so delegate to the wrapped handler when there is one.
func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	if h.next != nil {
		return h.next.Enabled(ctx, level)
	}
	return h.t.Enabled()
}

// Handle implements slog.Handler.
func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	span := SpanFromContext(ctx)
	if h.t.Enabled() {
		st := h.t.st.Load()
		attrs := make([]Attr, 0, len(h.attrs)+rec.NumAttrs()+1)
		attrs = append(attrs, Str("level", rec.Level.String()))
		for _, a := range h.attrs {
			attrs = append(attrs, fromSlog("", a))
		}
		rec.Attrs(func(a slog.Attr) bool {
			attrs = append(attrs, fromSlog(h.prefix, a))
			return true
		})
		st.ring.append(Record{
			Kind: KindLog, Name: rec.Message,
			Span: span.id, Parent: span.id,
			Start: st.clock.Now(), Attrs: attrs,
		})
	}
	if h.next == nil {
		return nil
	}
	out := rec.Clone()
	if runID := h.t.RunID(); runID != "" {
		out.AddAttrs(slog.String("run_id", runID))
	}
	if span.Active() {
		out.AddAttrs(slog.Uint64("span_id", span.id), slog.String("span", span.name))
	}
	return h.next.Handle(ctx, out)
}

// WithAttrs implements slog.Handler.
//
//diverselint:coldpath handler construction at logger-setup time, not per log record
func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		a.Key = h.prefix + a.Key
		nh.attrs = append(nh.attrs, a)
	}
	if h.next != nil {
		nh.next = h.next.WithAttrs(attrs)
	}
	return &nh
}

// WithGroup implements slog.Handler. Ring capture flattens groups to
// dotted key prefixes; the wrapped handler keeps its own semantics.
func (h *logHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if name != "" {
		nh.prefix = h.prefix + name + "."
	}
	if h.next != nil {
		nh.next = h.next.WithGroup(name)
	}
	return &nh
}

// fromSlog converts one slog attribute (with group prefix) to a trace
// attribute.
func fromSlog(prefix string, a slog.Attr) Attr {
	key := prefix + a.Key
	v := a.Value.Resolve()
	switch v.Kind() {
	case slog.KindInt64:
		return Int(key, v.Int64())
	case slog.KindUint64:
		return Int(key, int64(v.Uint64()))
	case slog.KindFloat64:
		return Float(key, v.Float64())
	case slog.KindBool:
		return Bool(key, v.Bool())
	default:
		return Str(key, v.String())
	}
}

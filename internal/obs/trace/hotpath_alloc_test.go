package trace_test

import (
	"testing"

	"diversecast/internal/alloctest"
	"diversecast/internal/obs/trace"
)

// TestDisabledTracerAllocFree gates the //diverselint:hotpath
// contracts on the probe path: with tracing off, every instrumented
// operation in core/netcast costs a nil check plus one atomic load and
// zero heap. Attribute-carrying calls are deliberately absent here —
// building a variadic []Attr allocates at the call site, which is
// exactly why production probes gate attribute construction behind
// Enabled()/Active() (the escape passes enforce that shape statically).
func TestDisabledTracerAllocFree(t *testing.T) {
	disabled := &trace.Tracer{}
	var nilTracer *trace.Tracer
	alloctest.MustZeroAllocs(t, "disabled tracer probes", 2, func() {
		if disabled.Enabled() || nilTracer.Enabled() {
			t.Fatal("tracer unexpectedly enabled")
		}
		sp := disabled.Start("gate_span")
		if sp.Active() {
			t.Fatal("span from a disabled tracer must be inactive")
		}
		sp.End()
		disabled.Event("gate_event")
		var zero trace.Span
		if zero.Active() {
			t.Fatal("zero span must be inactive")
		}
		zero.End()
	})
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event object. Spans map to complete
// events (ph "X"), instants and logs to instant events (ph "i");
// timestamps and durations are microseconds as the format requires.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the format, which both
// chrome://tracing and Perfetto load.
type chromeDoc struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteChrome renders the snapshot as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Every event carries the
// run ID, its span ID, and its parent link in args, so one file from
// one run correlates DRP splits, CDS moves, broadcast cycles, and
// connection lifecycles on a single timeline.
//diverselint:coldpath post-run trace export, never on the traced path itself
func WriteChrome(w io.Writer, snap Snapshot) error {
	doc := chromeDoc{
		TraceEvents: make([]chromeEvent, 0, len(snap.Records)+1),
		Metadata: map[string]any{
			"run_id":          snap.RunID,
			"dropped_records": snap.Dropped,
		},
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "diversecast run " + snap.RunID},
	})
	for _, r := range snap.Records {
		ev := chromeEvent{
			Name:  r.Name,
			Cat:   r.Kind.String(),
			Phase: "X",
			TS:    float64(r.Start) / 1e3,
			PID:   1,
			TID:   1,
			Args:  make(map[string]any, len(r.Attrs)+3),
		}
		switch r.Kind {
		case KindSpan:
			dur := float64(r.Dur) / 1e3
			ev.Dur = &dur
		default:
			ev.Phase = "i"
			ev.Scope = "t"
		}
		for _, a := range r.Attrs {
			ev.Args[a.Key] = a.Value()
		}
		ev.Args["run_id"] = snap.RunID
		if r.Span != 0 {
			ev.Args["span_id"] = r.Span
		}
		if r.Parent != 0 && r.Parent != r.Span {
			ev.Args["parent_id"] = r.Parent
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteText renders the snapshot as a human-readable timeline: one
// line per record ordered by start time (emission order breaks ties),
// with millisecond offsets, span durations, and attributes.
//diverselint:coldpath post-run trace export, never on the traced path itself
func WriteText(w io.Writer, snap Snapshot) error {
	recs := make([]Record, len(snap.Records))
	copy(recs, snap.Records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	if _, err := fmt.Fprintf(w, "run %s (%d records, %d dropped)\n",
		snap.RunID, len(snap.Records), snap.Dropped); err != nil {
		return err
	}
	for _, r := range recs {
		var err error
		switch r.Kind {
		case KindSpan:
			_, err = fmt.Fprintf(w, "[%12.3fms +%.3fms] %s", ms(r.Start), ms(r.Dur), r.Name)
		default:
			_, err = fmt.Fprintf(w, "[%12.3fms] %s %s", ms(r.Start), r.Kind, r.Name)
		}
		if err != nil {
			return err
		}
		for _, a := range r.Attrs {
			if _, err := fmt.Fprintf(w, " %s", a); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

package trace

import "testing"

// The disabled-path benchmarks pin the tentpole claim: a disabled
// tracer costs a nil check plus one atomic load per probe and
// allocates nothing, so hot loops (CDS move selection, netcast frame
// fan-out) can carry their instrumentation unconditionally. CI runs
// these at -benchtime=1x as a smoke test; cmd/bcastbench records the
// end-to-end disabled overhead on the real CDS workload in
// BENCH_5.json and fails report generation above 2%.

func BenchmarkDisabledSpanStartEnd(b *testing.B) {
	tr := &Tracer{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("bench_span")
		s.End()
	}
}

func BenchmarkDisabledEvent(b *testing.B) {
	tr := &Tracer{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("bench_event")
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("bench_span")
		s.End()
	}
}

func BenchmarkEnabledSpanStartEnd(b *testing.B) {
	tr := New(Config{Capacity: 1024, RunID: "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("bench_span")
		s.End()
	}
}

func BenchmarkEnabledSpanWithAttrs(b *testing.B) {
	tr := New(Config{Capacity: 1024, RunID: "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start("bench_span", Int("pos", int64(i)), Float("delta", 0.5))
		s.End(Float("cost", 1.25))
	}
}

func BenchmarkEnabledEvent(b *testing.B) {
	tr := New(Config{Capacity: 1024, RunID: "bench"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("bench_event", Int("i", int64(i)))
	}
}

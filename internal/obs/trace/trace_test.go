package trace

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func manualTracer(capacity int) (*Tracer, *ManualClock) {
	clk := &ManualClock{}
	return New(Config{Capacity: capacity, Clock: clk, RunID: "test-run"}), clk
}

func TestSpanLifecycle(t *testing.T) {
	tr, clk := manualTracer(16)
	root := tr.Start("root_op", Str("alg", "drp"))
	if !root.Active() {
		t.Fatal("enabled tracer returned an inactive span")
	}
	clk.Advance(time.Millisecond)
	child := root.Child("child_op", Int("step", 1))
	clk.Advance(2 * time.Millisecond)
	child.Event("midpoint", Float("cost", 7.26))
	clk.Advance(time.Millisecond)
	child.End(Bool("ok", true))
	clk.Advance(time.Millisecond)
	root.End()

	snap := tr.Snapshot()
	if snap.RunID != "test-run" {
		t.Fatalf("run ID = %q", snap.RunID)
	}
	if got := snap.Sequence(); !reflect.DeepEqual(got, []string{"midpoint", "child_op", "root_op"}) {
		t.Fatalf("sequence = %v", got)
	}

	ev := snap.Records[0]
	if ev.Kind != KindEvent || ev.Span != child.ID() || ev.Start != int64(3*time.Millisecond) {
		t.Fatalf("event record = %+v", ev)
	}
	if a, ok := ev.Attr("cost"); !ok || a.Float != 7.26 {
		t.Fatalf("event cost attr = %+v ok=%v", a, ok)
	}

	ch := snap.Records[1]
	if ch.Kind != KindSpan || ch.Parent != root.ID() || ch.Span != child.ID() {
		t.Fatalf("child record = %+v", ch)
	}
	if ch.Start != int64(time.Millisecond) || ch.Dur != int64(3*time.Millisecond) {
		t.Fatalf("child timing = start %d dur %d", ch.Start, ch.Dur)
	}
	// End attrs append after Start attrs.
	if len(ch.Attrs) != 2 || ch.Attrs[0].Key != "step" || ch.Attrs[1].Key != "ok" {
		t.Fatalf("child attrs = %v", ch.Attrs)
	}

	rt := snap.Records[2]
	if rt.Parent != 0 || rt.Dur != int64(5*time.Millisecond) {
		t.Fatalf("root record = %+v", rt)
	}
}

func TestExplicitTimestamps(t *testing.T) {
	tr, _ := manualTracer(8)
	s := tr.StartAt("virtual_cycle", 1_000_000, Int("cycle", 3))
	s.EventAt("tune_in", 1_500_000)
	s.EndAt(4_000_000)
	tr.EventAt("standalone", 9_000_000)

	snap := tr.Snapshot()
	if len(snap.Records) != 3 {
		t.Fatalf("records = %d", len(snap.Records))
	}
	if sp := snap.Records[1]; sp.Start != 1_000_000 || sp.Dur != 3_000_000 {
		t.Fatalf("span timing = %+v", sp)
	}
	if ev := snap.Records[2]; ev.Start != 9_000_000 || ev.Span != 0 {
		t.Fatalf("standalone event = %+v", ev)
	}
}

func TestDisabledAndNilTracersNoOp(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	s := nilT.Start("anything_goes")
	if s.Active() {
		t.Fatal("nil tracer produced an active span")
	}
	s.Event("ev")
	s.End()
	nilT.Event("ev")
	if snap := nilT.Snapshot(); len(snap.Records) != 0 || snap.RunID != "" {
		t.Fatalf("nil tracer snapshot = %+v", snap)
	}

	tr := &Tracer{} // zero value: never enabled
	sp := tr.Start("zero_span")
	sp.Child("child").End()
	sp.End()
	if snap := tr.Snapshot(); len(snap.Records) != 0 {
		t.Fatalf("zero tracer captured %d records", len(snap.Records))
	}

	// Disable drops records emitted afterwards but keeps the ring.
	tr2, _ := manualTracer(8)
	tr2.Start("kept_span").End()
	tr2.Disable()
	tr2.Start("lost_span").End()
	tr2.Event("lost_event")
	snap := tr2.Snapshot()
	if got := snap.Sequence(); !reflect.DeepEqual(got, []string{"kept_span"}) {
		t.Fatalf("post-disable sequence = %v", got)
	}
}

// A span straddling Disable must not record; a span straddling Enable
// records into the new ring.
func TestSpanStraddlingDisable(t *testing.T) {
	tr, _ := manualTracer(8)
	s := tr.Start("straddler")
	tr.Disable()
	s.End()
	if n := len(tr.Snapshot().Records); n != 0 {
		t.Fatalf("straddling span recorded (%d records)", n)
	}
}

func TestRingOverflowDropsOldestNeverBlocks(t *testing.T) {
	tr, clk := manualTracer(4)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Microsecond)
		tr.Event("tick", Int("i", int64(i)))
	}
	snap := tr.Snapshot()
	if len(snap.Records) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(snap.Records))
	}
	if snap.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.Dropped)
	}
	// The newest records survive.
	for i, r := range snap.Records {
		if a, _ := r.Attr("i"); a.Int != int64(6+i) {
			t.Fatalf("record %d has i=%d, want %d", i, a.Int, 6+i)
		}
	}
}

func TestConcurrentProducers(t *testing.T) {
	tr := New(Config{Capacity: 128, RunID: "conc"})
	var wg sync.WaitGroup
	const goroutines, each = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s := tr.Start("worker_op", Int("g", int64(g)))
				s.Event("step")
				s.End()
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Records) != 128 {
		t.Fatalf("ring holds %d records", len(snap.Records))
	}
	total := uint64(len(snap.Records)) + snap.Dropped
	if want := uint64(goroutines * each * 2); total != want {
		t.Fatalf("total records = %d, want %d", total, want)
	}
}

func TestSpanIDsUniqueAndRunIDGenerated(t *testing.T) {
	tr := New(Config{Capacity: 8})
	if tr.RunID() == "" {
		t.Fatal("no run ID generated")
	}
	a, b := tr.Start("op_a"), tr.Start("op_b")
	if a.ID() == b.ID() || a.ID() == 0 {
		t.Fatalf("span IDs %d, %d", a.ID(), b.ID())
	}
	other := New(Config{Capacity: 8})
	if other.RunID() == tr.RunID() {
		t.Fatalf("two tracers share run ID %q", tr.RunID())
	}
}

func TestDefaultTracerStartsDisabled(t *testing.T) {
	if Default().Enabled() {
		t.Fatal("process-wide tracer is enabled before any daemon enabled it")
	}
	if s := Default().Start("should_not_record"); s.Active() {
		t.Fatal("disabled default tracer returned an active span")
	}
}

func TestAttrRendering(t *testing.T) {
	cases := []struct {
		a    Attr
		want string
		val  any
	}{
		{Str("alg", "drp"), "alg=drp", "drp"},
		{Int("k", 5), "k=5", int64(5)},
		{Float("cost", 22.29), "cost=22.29", 22.29},
		{Bool("ok", true), "ok=true", true},
		{Bool("ok", false), "ok=false", false},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		if got := c.a.Value(); got != c.val {
			t.Errorf("Value() = %v (%T), want %v", got, got, c.val)
		}
	}
	if got := fmt.Sprint(KindSpan, KindEvent, KindLog, RecordKind(9)); got != "span event log unknown" {
		t.Errorf("kind strings = %q", got)
	}
}

// Package obs is a small, dependency-free, concurrency-safe metrics
// layer: atomic counters and gauges, fixed-bin latency histograms
// (the same bin semantics as internal/stats.Histogram, but safe for
// concurrent writers), and a Registry that renders Prometheus-style
// text exposition and cheap point-in-time snapshots for tests.
//
// Hot paths hold a *Counter / *Gauge / *Histogram pointer obtained
// once at setup and pay a single atomic operation per event; the
// registry mutex is only taken at registration and exposition time.
// Instrumented packages default to the process-wide Default()
// registry, so cmd/bcastserver can expose every subsystem from one
// /metrics endpoint, but accept an explicit registry where isolation
// matters (tests, multiple servers in one process).
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//diverselint:hotpath per-sample counter bump
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
//
//diverselint:hotpath per-sample counter bump
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//diverselint:hotpath per-sample gauge store
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc and Dec adjust the value by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defaultRegistry is the process-wide registry used by instrumented
// packages unless an explicit one is injected.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

package obs_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"diversecast/internal/obs"
	"diversecast/internal/stats"
)

func TestCounterAndGauge(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("x_total", "x", "channel", "0")
	b := r.Counter("x_total", "x", "channel", "0")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "x", "channel", "1")
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("y_total", "y", "b", "2", "a", "1")
	b := r.Counter("y_total", "y", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
	a.Inc()
	snap := r.Snapshot()
	if snap.Counter(`y_total{a="1",b="2"}`) != 1 {
		t.Fatalf("snapshot keys = %v", snap.Counters)
	}
}

// The obs histogram must agree with stats.Histogram bin-for-bin and
// quantile-for-quantile: it is the concurrency-safe twin of the
// simulators' reporting shape.
func TestHistogramParityWithStats(t *testing.T) {
	r := obs.NewRegistry()
	oh := r.Histogram("wait_seconds", "waits", 0, 10, 25)
	sh, err := stats.NewHistogram(0, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		// Include out-of-range and exact-boundary mass.
		x := rng.Float64()*14 - 2
		if i%97 == 0 {
			x = float64(i%26) * 0.4 // exactly on bin boundaries
		}
		oh.Observe(x)
		sh.Add(x)
	}
	if int(oh.Count()) != sh.Total() {
		t.Fatalf("count %d vs %d", oh.Count(), sh.Total())
	}
	snap := oh.Snapshot()
	if int(snap.Under) != sh.Underflow() || int(snap.Over) != sh.Overflow() {
		t.Fatalf("under/over %d/%d vs %d/%d", snap.Under, snap.Over, sh.Underflow(), sh.Overflow())
	}
	for i := 0; i < sh.Bins(); i++ {
		if int(snap.Bins[i]) != sh.Bin(i) {
			t.Fatalf("bin %d: %d vs %d", i, snap.Bins[i], sh.Bin(i))
		}
	}
	for _, q := range []float64{-1, 0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.999, 1, 2} {
		if got, want := oh.Quantile(q), sh.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, stats says %v", q, got, want)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("s", "", 0, 1, 4)
	for _, x := range []float64{0.1, 0.2, 0.7} {
		h.Observe(x)
	}
	if got := h.Sum(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("sum = %v", got)
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 0, 1, 10)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
	snap := h.Snapshot()
	var binned int64 = snap.Under + snap.Over
	for _, b := range snap.Bins {
		binned += b
	}
	if binned != snap.Count {
		t.Fatalf("bins sum to %d, count %d", binned, snap.Count)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("frames_total", "frames sent", "channel", "0").Add(3)
	r.Gauge("subs", "live subscribers").Set(2)
	h := r.Histogram("wait_seconds", "waits", 0, 2, 2)
	h.Observe(-1) // underflow
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99) // overflow

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP frames_total frames sent",
		"# TYPE frames_total counter",
		`frames_total{channel="0"} 3`,
		"# TYPE subs gauge",
		"subs 2",
		"# TYPE wait_seconds histogram",
		`wait_seconds_bucket{le="1"} 2`, // underflow + first bin, cumulative
		`wait_seconds_bucket{le="2"} 3`,
		`wait_seconds_bucket{le="+Inf"} 4`,
		"wait_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	a := obs.Default().Counter("obs_test_shared_total", "")
	b := obs.Default().Counter("obs_test_shared_total", "")
	if a != b {
		t.Fatal("Default() must return one shared registry")
	}
}

// TestWriteTextGolden pins the complete exposition output byte for
// byte: family order follows registration order, histograms emit
// cumulative buckets then _sum and _count, and scrapers parsing the
// Prometheus text format get exactly this shape.
func TestWriteTextGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("netcast_frames_sent_total", "frames enqueued", "channel", "0").Add(7)
	r.Counter("netcast_frames_sent_total", "frames enqueued", "channel", "1").Add(2)
	r.Gauge("runtime_goroutines", "goroutines currently live").Set(11)
	h := r.Histogram("cds_refine_seconds", "refinement latency", 0, 1, 2)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(0.75)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP netcast_frames_sent_total frames enqueued
# TYPE netcast_frames_sent_total counter
netcast_frames_sent_total{channel="0"} 7
netcast_frames_sent_total{channel="1"} 2
# HELP runtime_goroutines goroutines currently live
# TYPE runtime_goroutines gauge
runtime_goroutines 11
# HELP cds_refine_seconds refinement latency
# TYPE cds_refine_seconds histogram
cds_refine_seconds_bucket{le="0.5"} 2
cds_refine_seconds_bucket{le="1"} 3
cds_refine_seconds_bucket{le="+Inf"} 3
cds_refine_seconds_sum 1.25
cds_refine_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

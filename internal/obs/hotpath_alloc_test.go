package obs_test

import (
	"testing"

	"diversecast/internal/alloctest"
	"diversecast/internal/obs"
)

// TestMetricUpdatesAllocFree gates the //diverselint:hotpath contracts
// on the per-sample metric updates: once an instrument exists
// (construction is the cold path), recording into it is atomics only.
func TestMetricUpdatesAllocFree(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("gate_events_total", "gate test counter")
	g := r.Gauge("gate_level", "gate test gauge")
	h := r.Histogram("gate_seconds", "gate test histogram", 0, 1, 16)
	alloctest.MustZeroAllocs(t, "Counter.Inc/Add Gauge.Set Histogram.Observe", 2, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		h.Observe(0.25)
		h.Observe(-1) // underflow bin
		h.Observe(2)  // overflow bin
	})
}

package obs

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations in fixed-width bins over [Lo, Hi);
// out-of-range observations land in underflow/overflow counters. It
// mirrors the bin and quantile semantics of internal/stats.Histogram
// exactly (the simulators' reporting shape) but every write is a
// single atomic add, so it is safe on hot concurrent paths.
type Histogram struct {
	lo, hi  float64
	binSize float64
	bins    []atomic.Int64
	under   atomic.Int64
	over    atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram with the given bounds and bin
// count. Registries construct histograms; invalid shapes are a
// programming error and panic at registration time.
func newHistogram(lo, hi float64, bins int) *Histogram {
	if !(hi > lo) {
		panic("obs: histogram needs hi > lo")
	}
	if bins < 1 {
		panic("obs: histogram needs at least one bin")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]atomic.Int64, bins), binSize: (hi - lo) / float64(bins)}
}

// Observe records one value.
//
//diverselint:hotpath per-sample histogram record
func (h *Histogram) Observe(x float64) {
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	switch {
	case x < h.lo:
		h.under.Add(1)
	case x >= h.hi:
		h.over.Add(1)
	default:
		idx := int((x - h.lo) / h.binSize)
		if idx >= len(h.bins) { // guard float edge at exactly hi-ε
			idx = len(h.bins) - 1
		}
		h.bins[idx].Add(1)
	}
}

// ObserveDuration records a duration given in seconds (a convenience
// alias that keeps call sites honest about the unit).
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the histogram range [lo, hi).
func (h *Histogram) Bounds() (lo, hi float64) { return h.lo, h.hi }

// Bins reports the bin count.
func (h *Histogram) Bins() int { return len(h.bins) }

// Quantile returns an approximation of the q-quantile (0 ≤ q ≤ 1)
// assuming observations are uniform within each bin — the same
// estimator as stats.Histogram.Quantile. Underflow mass is attributed
// to lo and overflow to hi. Under concurrent writers the result is a
// consistent-enough approximation, not a linearizable snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(total)
	cum := float64(h.under.Load())
	if cum >= target {
		return h.lo
	}
	for i := range h.bins {
		c := h.bins[i].Load()
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.binSize
		}
		cum = next
	}
	return h.hi
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Lo, Hi float64
	Bins   []int64
	Under  int64
	Over   int64
	Count  int64
	Sum    float64
}

// Snapshot copies the current state for inspection in tests.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Lo:    h.lo,
		Hi:    h.hi,
		Bins:  make([]int64, len(h.bins)),
		Under: h.under.Load(),
		Over:  h.over.Load(),
		Count: h.count.Load(),
		Sum:   h.Sum(),
	}
	for i := range h.bins {
		s.Bins[i] = h.bins[i].Load()
	}
	return s
}

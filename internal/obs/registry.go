package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates the registry's metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered {k="v",...}, or ""
	ctr    *Counter
	gge    *Gauge
	hst    *Histogram
}

// family groups all label variants of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series          // registration order
	byLab  map[string]*series // rendered labels → series
}

// Registry holds metric families and renders them. Registration is
// get-or-create: asking for an existing (name, labels) pair returns
// the same underlying metric, so packages can register at init time
// and tests can re-register freely. Registering the same name with a
// different kind is a programming error and panics.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns alternating key, value pairs into a canonical
// {k="v",...} string (keys sorted, values escaped). Empty input
// renders as "".
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// lookup finds or creates the (family, series) for name/labels.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) *series {
	lab := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLab: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.byLab[lab]
	if s == nil {
		s = &series{labels: lab}
		f.byLab[lab] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or finds) a counter. labels are alternating
// key, value pairs, e.g. Counter("frames_total", "...", "channel", "0").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.gge == nil {
		s.gge = &Gauge{}
	}
	return s.gge
}

// Histogram registers (or finds) a histogram with fixed-width bins
// over [lo, hi). On a pre-existing series the original shape wins and
// lo/hi/bins are ignored.
func (r *Registry) Histogram(name, help string, lo, hi float64, bins int, labels ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hst == nil {
		s.hst = newHistogram(lo, hi, bins)
	}
	return s.hst
}

// Snapshot is a point-in-time copy of every metric in a registry,
// keyed by name plus rendered labels (e.g. `frames_total{channel="0"}`).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a snapshotted counter value (zero if absent).
func (s Snapshot) Counter(key string) int64 { return s.Counters[key] }

// Gauge returns a snapshotted gauge value (zero if absent).
func (s Snapshot) Gauge(key string) int64 { return s.Gauges[key] }

// Snapshot copies the current value of every registered metric.
//
//diverselint:coldpath scrape-path copy of every series, not per-sample
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.fams[name]
		for _, s := range f.series {
			key := f.name + s.labels
			switch f.kind {
			case kindCounter:
				snap.Counters[key] = s.ctr.Value()
			case kindGauge:
				snap.Gauges[key] = s.gge.Value()
			case kindHistogram:
				snap.Histograms[key] = s.hst.Snapshot()
			}
		}
	}
	return snap
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, one line per
// series, histograms as cumulative le-buckets plus _sum and _count.
//diverselint:coldpath scrape-path text exposition render, not per-sample
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		// Copy the series slice so rendering proceeds without the lock;
		// metric reads are atomic.
		cp := &family{name: f.name, help: f.help, kind: f.kind, series: append([]*series(nil), f.series...)}
		fams = append(fams, cp)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.gge.Value())
			case kindHistogram:
				writeHistogramText(&b, f.name, s.labels, s.hst.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogramText renders one histogram series: cumulative buckets
// at each bin upper edge (underflow mass is below the first edge, so
// it is included from the first bucket on), then +Inf, _sum, _count.
//diverselint:coldpath scrape-path text exposition render, not per-sample
func writeHistogramText(b *strings.Builder, name, labels string, h HistogramSnapshot) {
	binSize := (h.Hi - h.Lo) / float64(len(h.Bins))
	cum := h.Under
	for i, c := range h.Bins {
		cum += c
		le := h.Lo + float64(i+1)*binSize
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(labels, strconv.FormatFloat(le, 'g', -1, 64)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(labels, "+Inf"), h.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, strconv.FormatFloat(h.Sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count)
}

// mergeLE merges an le="..." label into an existing rendered label
// set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Handler serves the registry as a /metrics-style HTTP endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//diverselint:ignore errdrop a failed metrics write means the scraper hung up mid-response; there is no caller to report to and the next scrape starts fresh
		_ = r.WriteText(w)
	})
}

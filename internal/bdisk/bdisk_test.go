package bdisk

import (
	"testing"

	"diversecast/internal/airsim"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func testDB(tb testing.TB, n int, theta float64, seed int64) *core.Database {
	tb.Helper()
	return workload.Config{N: n, Theta: theta, Phi: 0.5, Seed: seed}.MustGenerate()
}

func TestConfigValidation(t *testing.T) {
	db := testDB(t, 12, 1, 1)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no disks", Config{Bandwidth: 10}},
		{"zero rel freq", Config{RelFreq: []int{4, 0}, Bandwidth: 10}},
		{"increasing rel freq", Config{RelFreq: []int{1, 2}, Bandwidth: 10}},
		{"more disks than items", Config{RelFreq: []int{5, 4, 3, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1}, Bandwidth: 10}},
		{"bad sizes count", Config{RelFreq: []int{2, 1}, DiskSizes: []int{12}, Bandwidth: 10}},
		{"sizes sum mismatch", Config{RelFreq: []int{2, 1}, DiskSizes: []int{4, 4}, Bandwidth: 10}},
		{"zero size disk", Config{RelFreq: []int{2, 1}, DiskSizes: []int{0, 12}, Bandwidth: 10}},
		{"zero bandwidth", Config{RelFreq: []int{2, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Build(db, tc.cfg); err == nil {
				t.Fatal("should fail")
			}
		})
	}
}

func TestSingleDiskIsFlatCycle(t *testing.T) {
	db := testDB(t, 10, 1, 2)
	p, layout, err := Build(db, Config{RelFreq: []int{1}, Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if layout.MajorCycles != 1 {
		t.Fatalf("major cycles %d, want 1", layout.MajorCycles)
	}
	if len(p.Channels[0].Slots) != db.Len() {
		t.Fatalf("%d slots for %d items", len(p.Channels[0].Slots), db.Len())
	}
	// Cycle = total size / bandwidth, same as a flat program.
	if got, want := p.Channels[0].CycleLength, db.TotalSize()/10; got != want {
		t.Fatalf("cycle %v, want %v", got, want)
	}
}

func TestOccurrenceCountsMatchRelFreq(t *testing.T) {
	db := testDB(t, 24, 1.2, 3)
	cfg := Config{RelFreq: []int{4, 2, 1}, Bandwidth: 10}
	p, layout, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for disk, positions := range layout.Disks {
		for _, pos := range positions {
			occ := len(p.Occurrences(pos))
			if occ != cfg.RelFreq[disk] {
				t.Fatalf("disk %d item at %d occurs %d times, want %d",
					disk, pos, occ, cfg.RelFreq[disk])
			}
		}
	}
}

func TestHotterItemsOnFasterDisks(t *testing.T) {
	db := testDB(t, 30, 1.2, 4)
	_, layout, err := Build(db, Config{RelFreq: []int{3, 1}, DiskSizes: []int{6, 24}, Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	minHot := 2.0
	for _, pos := range layout.Disks[0] {
		if f := db.Item(pos).Freq; f < minHot {
			minHot = f
		}
	}
	for _, pos := range layout.Disks[1] {
		if db.Item(pos).Freq > minHot+1e-12 {
			t.Fatal("a cold-disk item is hotter than a hot-disk item")
		}
	}
}

// Hot items wait far less than cold items under the measured schedule.
func TestHotItemsWaitLess(t *testing.T) {
	db := testDB(t, 24, 1.2, 5)
	p, layout, err := Build(db, Config{RelFreq: []int{4, 1}, DiskSizes: []int{4, 20}, Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	cycle := p.Channels[0].CycleLength
	meanWait := func(pos int) float64 {
		const samples = 500
		var sum float64
		for i := 0; i < samples; i++ {
			w, err := p.WaitFor(pos, cycle*float64(i)/samples)
			if err != nil {
				t.Fatal(err)
			}
			sum += w
		}
		return sum / samples
	}
	hot := meanWait(layout.Disks[0][0])
	cold := meanWait(layout.Disks[1][len(layout.Disks[1])-1])
	if hot*2 > cold {
		t.Fatalf("hot item wait %v not clearly below cold item wait %v", hot, cold)
	}
}

// The headline comparison: under skewed access on ONE channel, the
// multi-frequency disk layout beats the flat cycle, because hot items
// no longer wait half the full rotation.
func TestDisksBeatFlatCycleOnSkewedAccess(t *testing.T) {
	db := testDB(t, 40, 1.3, 6)
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: 30000, Rate: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	flatAlloc, err := core.NewAllocation(db, 1, make([]int, db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := broadcast.Build(flatAlloc, 10, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := airsim.Measure(flat, trace)
	if err != nil {
		t.Fatal(err)
	}

	disks, _, err := Build(db, Config{RelFreq: []int{4, 2, 1}, DiskSizes: []int{5, 10, 25}, Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := airsim.Measure(disks, trace)
	if err != nil {
		t.Fatal(err)
	}

	if diskRes.Wait.Mean >= flatRes.Wait.Mean {
		t.Fatalf("broadcast disks (%v) did not beat the flat cycle (%v)",
			diskRes.Wait.Mean, flatRes.Wait.Mean)
	}
}

// Cross-paradigm sanity: K-channel DRP-CDS and a 1-channel disk layout
// both differentiate service; with equal total bandwidth both must
// beat the undifferentiated flat single channel.
func TestBothParadigmsBeatFlat(t *testing.T) {
	db := testDB(t, 40, 1.3, 8)
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: 20000, Rate: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(p *broadcast.Program) float64 {
		res, err := airsim.Measure(p, trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wait.Mean
	}

	flatAlloc, err := core.NewAllocation(db, 1, make([]int, db.Len()))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := broadcast.Build(flatAlloc, 40, broadcast.ByPosition) // 4× bandwidth, one channel
	if err != nil {
		t.Fatal(err)
	}

	drpAlloc, err := core.NewDRPCDS().Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	drp, err := broadcast.Build(drpAlloc, 10, broadcast.ByPosition) // 4 channels × 10
	if err != nil {
		t.Fatal(err)
	}

	disks, _, err := Build(db, Config{RelFreq: []int{4, 2, 1}, DiskSizes: []int{5, 10, 25}, Bandwidth: 40})
	if err != nil {
		t.Fatal(err)
	}

	flatWait, drpWait, diskWait := measure(flat), measure(drp), measure(disks)
	if drpWait >= flatWait {
		t.Fatalf("DRP-CDS channels (%v) did not beat flat (%v)", drpWait, flatWait)
	}
	if diskWait >= flatWait {
		t.Fatalf("broadcast disks (%v) did not beat flat (%v)", diskWait, flatWait)
	}
	t.Logf("flat %0.3f, broadcast disks %0.3f, DRP-CDS multichannel %0.3f", flatWait, diskWait, drpWait)
}

func BenchmarkBuild(b *testing.B) {
	db := testDB(b, 120, 1.0, 10)
	cfg := Config{RelFreq: []int{4, 2, 1}, Bandwidth: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(db, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

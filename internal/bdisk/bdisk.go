// Package bdisk implements Broadcast Disks (Acharya, Alonso, Franklin
// and Zdonik, SIGMOD 1995 — the reproduced paper's reference [1]):
// multi-frequency scheduling on a single channel. Items are grouped
// onto D "disks" spinning at different relative speeds; the generated
// cycle interleaves disk chunks so a disk-d item airs RelFreq[d] times
// per major cycle, cutting the probe time of hot items at the expense
// of cold ones.
//
// This is the orthogonal axis to the reproduced paper's contribution:
// DRP-CDS differentiates service by partitioning items ACROSS
// channels, broadcast disks differentiate WITHIN one channel by
// repetition. The tests compare both under equal total bandwidth.
package bdisk

import (
	"errors"
	"fmt"
	"sort"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
)

// Config describes a broadcast-disk layout.
type Config struct {
	// RelFreq is the relative broadcast frequency of each disk,
	// hottest first (e.g. {4, 2, 1}); it must be non-increasing and
	// positive. len(RelFreq) is the number of disks D.
	RelFreq []int
	// DiskSizes optionally fixes how many items each disk holds
	// (hottest items go to disk 0). Empty means near-equal counts.
	DiskSizes []int
	// Bandwidth is the channel bandwidth in size units per second.
	Bandwidth float64
}

// Validation errors.
var (
	ErrNoDisks     = errors.New("bdisk: need at least one disk")
	ErrBadRelFreq  = errors.New("bdisk: relative frequencies must be positive and non-increasing")
	ErrBadSizes    = errors.New("bdisk: disk sizes must be positive and sum to N")
	ErrBadBandwith = errors.New("bdisk: bandwidth must be positive")
)

func (c Config) validate(n int) error {
	if len(c.RelFreq) == 0 {
		return ErrNoDisks
	}
	for i, r := range c.RelFreq {
		if r < 1 {
			return fmt.Errorf("%w: disk %d has %d", ErrBadRelFreq, i, r)
		}
		if i > 0 && r > c.RelFreq[i-1] {
			return fmt.Errorf("%w: disk %d faster than disk %d", ErrBadRelFreq, i, i-1)
		}
	}
	if len(c.RelFreq) > n {
		return fmt.Errorf("%w: %d disks for %d items", ErrBadSizes, len(c.RelFreq), n)
	}
	if len(c.DiskSizes) != 0 {
		if len(c.DiskSizes) != len(c.RelFreq) {
			return fmt.Errorf("%w: %d sizes for %d disks", ErrBadSizes, len(c.DiskSizes), len(c.RelFreq))
		}
		total := 0
		for i, s := range c.DiskSizes {
			if s < 1 {
				return fmt.Errorf("%w: disk %d holds %d items", ErrBadSizes, i, s)
			}
			total += s
		}
		if total != n {
			return fmt.Errorf("%w: sizes sum to %d, N=%d", ErrBadSizes, total, n)
		}
	}
	if !(c.Bandwidth > 0) {
		return ErrBadBandwith
	}
	return nil
}

// Layout records which disk each item landed on.
type Layout struct {
	// Disks[d] lists database positions on disk d, hottest disk
	// first.
	Disks [][]int
	// MajorCycles is the number of minor cycles per major cycle
	// (= max relative frequency after normalization to chunks).
	MajorCycles int
}

// Build generates the broadcast-disk program for db on one channel.
// Items are ranked by access frequency; the hottest go to the fastest
// disk. The classic algorithm splits disk d into
// maxChunks/RelFreq[d] chunks and emits, for minor cycle i, chunk
// (i mod numChunks_d) of every disk in disk order.
func Build(db *core.Database, cfg Config) (*broadcast.Program, *Layout, error) {
	n := db.Len()
	if err := cfg.validate(n); err != nil {
		return nil, nil, err
	}
	d := len(cfg.RelFreq)

	// Assign items to disks by frequency rank.
	sizes := cfg.DiskSizes
	if len(sizes) == 0 {
		sizes = make([]int, d)
		base, rem := n/d, n%d
		for i := range sizes {
			sizes[i] = base
			if i < rem {
				sizes[i]++
			}
		}
		for i := range sizes {
			if sizes[i] == 0 {
				return nil, nil, fmt.Errorf("%w: %d disks for %d items", ErrBadSizes, d, n)
			}
		}
	}
	byFreq := db.ByFreq()
	layout := &Layout{Disks: make([][]int, d)}
	idx := 0
	for disk := 0; disk < d; disk++ {
		layout.Disks[disk] = append([]int(nil), byFreq[idx:idx+sizes[disk]]...)
		sort.Ints(layout.Disks[disk])
		idx += sizes[disk]
	}

	// Chunk counts: maxChunks = lcm(relative frequencies) so chunk
	// counts are integral; disk d has maxChunks/RelFreq[d] chunks.
	maxChunks := 1
	for _, r := range cfg.RelFreq {
		maxChunks = lcm(maxChunks, r)
	}
	layout.MajorCycles = maxChunks

	type chunk []int // database positions
	chunksOf := make([][]chunk, d)
	for disk := 0; disk < d; disk++ {
		numChunks := maxChunks / cfg.RelFreq[disk]
		items := layout.Disks[disk]
		cs := make([]chunk, numChunks)
		for i, pos := range items {
			ci := i * numChunks / len(items)
			cs[ci] = append(cs[ci], pos)
		}
		chunksOf[disk] = cs
	}

	// Emit the major cycle.
	var slots []broadcast.Slot
	var at float64
	for minor := 0; minor < maxChunks; minor++ {
		for disk := 0; disk < d; disk++ {
			cs := chunksOf[disk]
			for _, pos := range cs[minor%len(cs)] {
				it := db.Item(pos)
				dur := it.Size / cfg.Bandwidth
				slots = append(slots, broadcast.Slot{
					Pos: pos, ItemID: it.ID, Size: it.Size, Start: at, Duration: dur,
				})
				at += dur
			}
		}
	}

	p := &broadcast.Program{
		K:         1,
		Bandwidth: cfg.Bandwidth,
		Channels: []broadcast.Channel{{
			Index:       0,
			Slots:       slots,
			CycleLength: at,
		}},
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("bdisk: generated program invalid: %w", err)
	}
	return p, layout, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Package cache models client-side caching for broadcast
// environments, after Acharya, Alonso, Franklin and Zdonik,
// "Broadcast Disks" (SIGMOD 1995) — the reproduced paper's reference
// [1]. A mobile client caches downloaded items; a hit answers a
// request instantly, a miss waits for the item's next transmission.
//
// The key insight of that line of work is that cache policies should
// be cost-based in a broadcast setting: an item that reappears on air
// soon is cheap to refetch and a poor use of cache space. PIX
// (probability inverse broadcast-frequency) evicts the entry with the
// smallest p/x; the size-aware Cost policy extends it to diverse item
// sizes by scoring p·refetch/size, a GreedyDual-Size-style rule that
// matches this paper's variable-size world.
package cache

import (
	"errors"
	"fmt"
	"math"
)

// Entry is the metadata a policy sees for one cached item.
type Entry struct {
	// Pos is the item's database position.
	Pos int
	// Size is the item's size in size units.
	Size float64
	// Prob is the item's access probability.
	Prob float64
	// RefetchWait is the expected waiting time to re-acquire the
	// item from the broadcast (half its channel cycle plus its
	// download time).
	RefetchWait float64
	// LastUsed is the virtual time of the last access.
	LastUsed float64
	// Uses counts accesses since insertion.
	Uses int
}

// Policy ranks cache victims. Score returns an eviction priority: the
// entry with the LOWEST score is evicted first.
type Policy interface {
	Name() string
	Score(e Entry, now float64) float64
}

// LRU evicts the least recently used entry.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Score implements Policy.
func (LRU) Score(e Entry, _ float64) float64 { return e.LastUsed }

// LFU evicts the least frequently used entry.
type LFU struct{}

// Name implements Policy.
func (LFU) Name() string { return "LFU" }

// Score implements Policy.
func (LFU) Score(e Entry, _ float64) float64 { return float64(e.Uses) }

// PIX evicts the entry with the smallest probability-to-broadcast-
// frequency ratio p/x (Broadcast Disks). With x = 1/RefetchPeriod the
// score is proportional to p·RefetchWait.
type PIX struct{}

// Name implements Policy.
func (PIX) Name() string { return "PIX" }

// Score implements Policy.
func (PIX) Score(e Entry, _ float64) float64 { return e.Prob * e.RefetchWait }

// Cost is the size-aware PIX: probability times refetch wait per size
// unit occupied, so a big item must save proportionally more waiting
// time to hold its cache space.
type Cost struct{}

// Name implements Policy.
func (Cost) Name() string { return "COST" }

// Score implements Policy.
func (Cost) Score(e Entry, _ float64) float64 { return e.Prob * e.RefetchWait / e.Size }

// Policies returns one instance of every built-in policy.
func Policies() []Policy { return []Policy{LRU{}, LFU{}, PIX{}, Cost{}} }

// Cache is a client cache with a size-unit capacity. The zero value
// is unusable; construct with New.
type Cache struct {
	policy   Policy
	capacity float64
	used     float64
	entries  map[int]*Entry

	hits, misses int
}

// Construction errors.
var (
	ErrBadCapacity = errors.New("cache: capacity must be positive and finite")
	ErrNilPolicy   = errors.New("cache: nil policy")
)

// New builds an empty cache with the given capacity in size units.
func New(policy Policy, capacity float64) (*Cache, error) {
	if policy == nil {
		return nil, ErrNilPolicy
	}
	if !(capacity > 0) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadCapacity, capacity)
	}
	return &Cache{policy: policy, capacity: capacity, entries: make(map[int]*Entry)}, nil
}

// Policy returns the eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

// Len reports the number of cached items; Used the occupied size
// units.
func (c *Cache) Len() int { return len(c.entries) }

// Used reports the occupied capacity in size units.
func (c *Cache) Used() float64 { return c.used }

// Hits and Misses report the access counters.
func (c *Cache) Hits() int { return c.hits }

// Misses reports the number of accesses that missed.
func (c *Cache) Misses() int { return c.misses }

// HitRatio returns hits/(hits+misses), 0 before any access.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Access looks up the item at pos at virtual time now, updating
// recency/frequency metadata. It reports whether the access hit.
func (c *Cache) Access(pos int, now float64) bool {
	if e, ok := c.entries[pos]; ok {
		e.LastUsed = now
		e.Uses++
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Admit inserts a downloaded item, evicting victims by policy score
// until it fits. Items larger than the whole cache are not admitted
// (standard for size-aware caches). It reports whether the item was
// admitted.
func (c *Cache) Admit(e Entry, now float64) bool {
	if e.Size > c.capacity {
		return false
	}
	if _, ok := c.entries[e.Pos]; ok {
		return true // already cached
	}
	for c.used+e.Size > c.capacity {
		victim := c.victim(now)
		if victim == nil {
			return false // unreachable: entries exist while used > 0
		}
		c.used -= victim.Size
		delete(c.entries, victim.Pos)
	}
	stored := e
	stored.LastUsed = now
	if stored.Uses == 0 {
		stored.Uses = 1
	}
	c.entries[stored.Pos] = &stored
	c.used += stored.Size
	return true
}

// victim returns the entry with the lowest policy score (ties: lowest
// position, for determinism).
func (c *Cache) victim(now float64) *Entry {
	var best *Entry
	bestScore := math.Inf(1)
	for _, e := range c.entries {
		s := c.policy.Score(*e, now)
		//diverselint:ignore floateq deliberate exact tie-break: an epsilon here would make the "ties break on position" ordering intransitive
		if s < bestScore || (s == bestScore && best != nil && e.Pos < best.Pos) {
			best, bestScore = e, s
		}
	}
	return best
}

// Contains reports whether pos is cached (without touching metadata).
func (c *Cache) Contains(pos int) bool {
	_, ok := c.entries[pos]
	return ok
}

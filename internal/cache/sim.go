package cache

import (
	"errors"
	"fmt"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/obs"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Cache-simulation instrumentation on the process-wide registry: the
// served/hit/miss accounting multi-channel dissemination systems are
// evaluated by, plus the per-request waiting-time distribution.
var (
	cacheHits = obs.Default().Counter("cache_hits_total",
		"requests answered from the client cache")
	cacheMisses = obs.Default().Counter("cache_misses_total",
		"requests that waited on the broadcast")
	cacheWait = obs.Default().Histogram("cache_wait_seconds",
		"per-request waiting time (zero on hits), virtual seconds", 0, 120, 60)
)

// SimResult summarizes a cache-aware client simulation.
type SimResult struct {
	Requests int
	// Wait is the per-request waiting time (zero on hits).
	Wait stats.Summary
	// MissWait is the waiting time over misses only.
	MissWait stats.Summary
	// HitRatio is the fraction of requests answered from cache.
	HitRatio float64
}

// Simulate replays a request trace for one client with a cache in
// front of the broadcast: hits cost nothing, misses wait for the
// item's next transmission (closed form on the cyclic program) and
// then admit the item.
func Simulate(a *core.Allocation, p *broadcast.Program, cch *Cache, trace []workload.Request) (*SimResult, error) {
	if a == nil || p == nil || cch == nil {
		return nil, errors.New("cache: nil allocation, program or cache")
	}
	if len(trace) == 0 {
		return nil, errors.New("cache: empty request trace")
	}
	db := a.Database()
	bandwidth := p.Bandwidth

	var wait, missWait stats.Accumulator
	for _, req := range trace {
		if cch.Access(req.Pos, req.Time) {
			wait.Add(0)
			cacheHits.Inc()
			cacheWait.Observe(0)
			continue
		}
		w, err := p.WaitFor(req.Pos, req.Time)
		if err != nil {
			return nil, fmt.Errorf("cache: miss wait: %w", err)
		}
		wait.Add(w)
		missWait.Add(w)
		cacheMisses.Inc()
		cacheWait.Observe(w)

		it := db.Item(req.Pos)
		cch.Admit(Entry{
			Pos:         req.Pos,
			Size:        it.Size,
			Prob:        it.Freq,
			RefetchWait: core.ItemWaitingTime(a, req.Pos, bandwidth),
		}, req.Time+w)
	}
	return &SimResult{
		Requests: len(trace),
		Wait:     wait.Summarize(),
		MissWait: missWait.Summarize(),
		HitRatio: cch.HitRatio(),
	}, nil
}

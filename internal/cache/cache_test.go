package cache

import (
	"fmt"
	"math"
	"testing"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 10); err != ErrNilPolicy {
		t.Errorf("nil policy: %v", err)
	}
	if _, err := New(LRU{}, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(LRU{}, math.Inf(1)); err == nil {
		t.Error("infinite capacity should fail")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, err := New(LRU{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(1, 0) {
		t.Fatal("empty cache hit")
	}
	if !c.Admit(Entry{Pos: 1, Size: 4, Prob: 0.5, RefetchWait: 2}, 0) {
		t.Fatal("admit failed")
	}
	if !c.Access(1, 1) {
		t.Fatal("cached item missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v", c.HitRatio())
	}
	if c.Len() != 1 || c.Used() != 4 {
		t.Fatalf("len/used = %d/%v", c.Len(), c.Used())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, pol := range Policies() {
		c, err := New(pol, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			size := float64(i%4) + 1
			c.Admit(Entry{Pos: i, Size: size, Prob: 0.01, RefetchWait: 1}, float64(i))
			if c.Used() > 10+1e-12 {
				t.Fatalf("%s: used %v exceeds capacity", pol.Name(), c.Used())
			}
		}
	}
}

func TestOversizedItemRejected(t *testing.T) {
	c, err := New(LRU{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Admit(Entry{Pos: 1, Size: 11, Prob: 1, RefetchWait: 1}, 0) {
		t.Fatal("oversized item admitted")
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after rejection")
	}
}

func TestReadmitIsNoOp(t *testing.T) {
	c, err := New(LRU{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	e := Entry{Pos: 1, Size: 4, Prob: 0.5, RefetchWait: 2}
	if !c.Admit(e, 0) || !c.Admit(e, 1) {
		t.Fatal("admit failed")
	}
	if c.Len() != 1 || c.Used() != 4 {
		t.Fatalf("double admit corrupted state: len %d used %v", c.Len(), c.Used())
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c, err := New(LRU{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	c.Admit(Entry{Pos: 1, Size: 5, Prob: 0.1, RefetchWait: 1}, 0)
	c.Admit(Entry{Pos: 2, Size: 5, Prob: 0.1, RefetchWait: 1}, 1)
	c.Access(1, 2) // touch 1 so 2 is oldest
	c.Admit(Entry{Pos: 3, Size: 5, Prob: 0.1, RefetchWait: 1}, 3)
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatalf("LRU evicted wrong entry: 1=%v 2=%v 3=%v",
			c.Contains(1), c.Contains(2), c.Contains(3))
	}
}

func TestPIXEvictsCheapToRefetch(t *testing.T) {
	c, err := New(PIX{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Same probability: the item that reappears on air quickly
	// (small refetch wait) should go first.
	c.Admit(Entry{Pos: 1, Size: 5, Prob: 0.2, RefetchWait: 0.5}, 0)
	c.Admit(Entry{Pos: 2, Size: 5, Prob: 0.2, RefetchWait: 50}, 1)
	c.Admit(Entry{Pos: 3, Size: 5, Prob: 0.2, RefetchWait: 10}, 2)
	if c.Contains(1) {
		t.Fatal("PIX kept the cheap-to-refetch entry")
	}
	if !c.Contains(2) {
		t.Fatal("PIX evicted the expensive-to-refetch entry")
	}
}

func TestCostEvictsBigLowValue(t *testing.T) {
	c, err := New(Cost{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Equal p·refetch: the bigger item has the lower per-unit value.
	c.Admit(Entry{Pos: 1, Size: 8, Prob: 0.2, RefetchWait: 10}, 0)
	c.Admit(Entry{Pos: 2, Size: 2, Prob: 0.2, RefetchWait: 10}, 1)
	c.Admit(Entry{Pos: 3, Size: 6, Prob: 0.2, RefetchWait: 10}, 2)
	if c.Contains(1) {
		t.Fatal("COST kept the big low-density entry")
	}
	if !c.Contains(2) {
		t.Fatal("COST evicted the small high-density entry")
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]bool{"LRU": true, "LFU": true, "PIX": true, "COST": true}
	for _, p := range Policies() {
		if !want[p.Name()] {
			t.Errorf("unexpected policy %q", p.Name())
		}
	}
}

// --- simulation tests ---

func simFixture(tb testing.TB, n int, seed int64) (*core.Allocation, *broadcast.Program, []workload.Request) {
	tb.Helper()
	db := workload.Config{N: n, Theta: 1.0, Phi: 1.5, Seed: seed}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 4)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := broadcast.Build(a, workload.PaperBandwidth, broadcast.ByPosition)
	if err != nil {
		tb.Fatal(err)
	}
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: 20000, Rate: 40, Seed: seed + 1})
	if err != nil {
		tb.Fatal(err)
	}
	return a, p, trace
}

func TestSimulateValidation(t *testing.T) {
	a, p, trace := simFixture(t, 20, 1)
	c, err := New(LRU{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(nil, p, c, trace); err == nil {
		t.Error("nil allocation should fail")
	}
	if _, err := Simulate(a, p, c, nil); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestSimulateAccounting(t *testing.T) {
	a, p, trace := simFixture(t, 30, 2)
	c, err := New(LRU{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(a, p, c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(trace) {
		t.Fatalf("requests %d", res.Requests)
	}
	if res.HitRatio <= 0 || res.HitRatio >= 1 {
		t.Fatalf("hit ratio %v should be strictly between 0 and 1 here", res.HitRatio)
	}
	// Overall mean = miss mean × miss fraction (hits wait zero).
	want := res.MissWait.Mean * (1 - res.HitRatio)
	if math.Abs(res.Wait.Mean-want) > 1e-9*(1+want) {
		t.Fatalf("wait mean %v, want %v", res.Wait.Mean, want)
	}
}

// Any cache lowers the mean wait versus no cache, and a bigger cache
// helps at least as much on the same trace.
func TestCacheReducesWaitMonotonically(t *testing.T) {
	a, p, trace := simFixture(t, 30, 3)

	noCacheMean := func() float64 {
		var sum float64
		for _, r := range trace {
			w, err := p.WaitFor(r.Pos, r.Time)
			if err != nil {
				t.Fatal(err)
			}
			sum += w
		}
		return sum / float64(len(trace))
	}()

	prev := noCacheMean
	for _, capacity := range []float64{10, 40, 160} {
		c, err := New(PIX{}, capacity)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(a, p, c, trace)
		if err != nil {
			t.Fatal(err)
		}
		if res.Wait.Mean >= prev {
			t.Fatalf("capacity %v: mean %v did not improve on %v", capacity, res.Wait.Mean, prev)
		}
		prev = res.Wait.Mean
	}
}

// The broadcast-disk result: cost-based policies (PIX/COST) beat LRU
// in a broadcast environment because refetch costs differ per item.
func TestCostBasedPoliciesBeatLRU(t *testing.T) {
	a, p, trace := simFixture(t, 40, 4)
	meanFor := func(pol Policy) float64 {
		c, err := New(pol, 60)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(a, p, c, trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wait.Mean
	}
	lru := meanFor(LRU{})
	pix := meanFor(PIX{})
	cost := meanFor(Cost{})
	if pix >= lru {
		t.Errorf("PIX (%v) did not beat LRU (%v)", pix, lru)
	}
	if cost >= lru {
		t.Errorf("COST (%v) did not beat LRU (%v)", cost, lru)
	}
}

func BenchmarkSimulatePolicies(b *testing.B) {
	a, p, trace := simFixture(b, 40, 5)
	for _, pol := range Policies() {
		b.Run(pol.Name(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				c, err := New(pol, 60)
				if err != nil {
					b.Fatal(err)
				}
				res, err := Simulate(a, p, c, trace)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Wait.Mean
			}
			b.ReportMetric(mean, "wait_s")
		})
	}
}

func ExampleCache() {
	c, _ := New(PIX{}, 10)
	c.Admit(Entry{Pos: 1, Size: 6, Prob: 0.6, RefetchWait: 12}, 0)
	c.Admit(Entry{Pos: 2, Size: 6, Prob: 0.1, RefetchWait: 1}, 1) // evicts nothing it needs? capacity forces a choice
	fmt.Println(c.Contains(1), c.Contains(2))
	// Output: false true
}

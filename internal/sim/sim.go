// Package sim is a small deterministic discrete-event simulation
// engine: a virtual clock and an event queue ordered by (time,
// insertion sequence). The broadcast air model (internal/airsim) runs
// on it to measure empirical waiting times against the paper's
// analytical model.
package sim

import (
	"errors"
	"fmt"
	"math"

	"diversecast/internal/obs"
	"diversecast/internal/pqueue"
)

// Engine instrumentation on the process-wide registry. The queue-wait
// histogram observes, per fired event, how long (in virtual seconds)
// the event sat between being scheduled and firing — the engine-level
// waiting-time distribution that server-side accounting builds on.
var (
	simScheduled = obs.Default().Counter("sim_events_scheduled_total",
		"events accepted into the pending queue")
	simFired = obs.Default().Counter("sim_events_fired_total",
		"events executed")
	simQueueWait = obs.Default().Histogram("sim_event_queue_wait_virtual_seconds",
		"virtual seconds between scheduling and firing, per event", 0, 120, 60)
)

// Handler is invoked when its event fires. It may schedule further
// events on the simulator it was registered with.
type Handler func()

type event struct {
	at      float64
	schedAt float64 // clock value when the event was scheduled
	seq     uint64
	fn      Handler
}

// Simulator owns the virtual clock and the pending-event queue. The
// zero value is not usable; construct with New. Not safe for
// concurrent use: a simulation is single-threaded by design so runs
// are reproducible.
type Simulator struct {
	now     float64
	seq     uint64
	pending *pqueue.Queue[event]
	fired   uint64
}

// Scheduling errors.
var (
	ErrPastEvent  = errors.New("sim: event scheduled before current time")
	ErrBadTime    = errors.New("sim: event time must be finite")
	ErrNilHandler = errors.New("sim: nil handler")
)

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{
		pending: pqueue.New(func(a, b event) bool {
			//diverselint:ignore floateq deliberate exact tie-break: only bit-identical timestamps are "simultaneous"; an epsilon would reorder distinct events
			if a.at != b.at {
				return a.at < b.at
			}
			return a.seq < b.seq // FIFO among simultaneous events
		}),
	}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired reports how many events have executed.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return s.pending.Len() }

// At schedules fn at absolute virtual time t (t ≥ Now).
func (s *Simulator) At(t float64, fn Handler) error {
	if fn == nil {
		return ErrNilHandler
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: %v", ErrBadTime, t)
	}
	if t < s.now {
		return fmt.Errorf("%w: %v < now %v", ErrPastEvent, t, s.now)
	}
	s.seq++
	s.pending.Push(event{at: t, schedAt: s.now, seq: s.seq, fn: fn})
	simScheduled.Inc()
	return nil
}

// After schedules fn delay seconds from Now (delay ≥ 0).
func (s *Simulator) After(delay float64, fn Handler) error {
	return s.At(s.now+delay, fn)
}

// Step executes the next event, advancing the clock to it. It reports
// whether an event was executed.
func (s *Simulator) Step() bool {
	ev, ok := s.pending.Pop()
	if !ok {
		return false
	}
	s.now = ev.at
	s.fired++
	simFired.Inc()
	simQueueWait.Observe(ev.at - ev.schedAt)
	ev.fn()
	return true
}

// Run executes events until the queue is empty or maxEvents have
// fired (0 means no bound). It returns the number of events executed
// by this call.
func (s *Simulator) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with time ≤ horizon, leaving later events
// queued, and finally advances the clock to horizon. It returns the
// number of events executed.
func (s *Simulator) RunUntil(horizon float64) uint64 {
	var n uint64
	for {
		ev, ok := s.pending.Peek()
		if !ok || ev.at > horizon {
			break
		}
		s.Step()
		n++
	}
	if horizon > s.now {
		s.now = horizon
	}
	return n
}

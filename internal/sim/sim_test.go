package sim

import (
	"errors"
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	mustAt := func(at float64, v int) {
		t.Helper()
		if err := s.At(at, func() { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(3, 3)
	mustAt(1, 1)
	mustAt(2, 2)
	if n := s.Run(0); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 5; i++ {
		v := i
		if err := s.At(1, func() { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestSchedulingValidation(t *testing.T) {
	s := New()
	if err := s.At(1, nil); !errors.Is(err, ErrNilHandler) {
		t.Errorf("nil handler: %v", err)
	}
	if err := s.At(math.NaN(), func() {}); !errors.Is(err, ErrBadTime) {
		t.Errorf("NaN time: %v", err)
	}
	if err := s.At(math.Inf(1), func() {}); !errors.Is(err, ErrBadTime) {
		t.Errorf("inf time: %v", err)
	}
	if err := s.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if err := s.At(4, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past event: %v", err)
	}
	if err := s.After(-1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("negative delay: %v", err)
	}
}

func TestHandlersScheduleMoreEvents(t *testing.T) {
	s := New()
	var ticks int
	var tick Handler
	tick = func() {
		ticks++
		if ticks < 10 {
			if err := s.After(1, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := s.At(0, tick); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if ticks != 10 {
		t.Fatalf("ticks = %d", ticks)
	}
	if s.Now() != 9 {
		t.Fatalf("clock = %v, want 9", s.Now())
	}
	if s.Fired() != 10 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		if err := s.At(float64(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(2); n != 2 {
		t.Fatalf("Run(2) executed %d", n)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		if err := s.At(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	n := s.RunUntil(5)
	if n != 3 || len(fired) != 3 {
		t.Fatalf("RunUntil(5) fired %d events (%v)", n, fired)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// Resume past the horizon.
	s.Run(0)
	if len(fired) != 4 || s.Now() != 10 {
		t.Fatalf("resume failed: fired %v, clock %v", fired, s.Now())
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	s := New()
	if err := s.At(7, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	s.RunUntil(3) // horizon in the past: must be a no-op on the clock
	if s.Now() != 7 {
		t.Fatalf("clock rewound to %v", s.Now())
	}
}

func TestEmptyRun(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty simulator returned true")
	}
	if n := s.Run(0); n != 0 {
		t.Fatalf("Run on empty simulator executed %d", n)
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello broadcast")
	if err := WriteFrame(&buf, MsgItemChunk, body); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgItemChunk {
		t.Fatalf("type = %v", f.Type)
	}
	if !bytes.Equal(f.Body, body) {
		t.Fatalf("body = %q", f.Body)
	}
}

func TestEmptyBodyFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgError, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgError || len(f.Body) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestMultipleFramesInSequence(t *testing.T) {
	var buf bytes.Buffer
	types := []MsgType{MsgHello, MsgSubscribe, MsgItemBegin, MsgItemChunk, MsgItemEnd}
	for i, mt := range types {
		if err := WriteFrame(&buf, mt, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, mt := range types {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != mt || f.Body[0] != byte(i) {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := ItemBegin{Channel: 2, Pos: 7, ItemID: 8, Size: 12.5, PayloadLen: 800, Cycle: 3}
	if err := WriteJSON(&buf, MsgItemBegin, want); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got ItemBegin
	if err := DecodeJSON(f, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestAllBodyTypesRoundTrip(t *testing.T) {
	tests := []struct {
		t    MsgType
		body any
		into func() any
	}{
		{MsgHello, &Hello{K: 4, Bandwidth: 10, TimeScale: 0.01}, func() any { return &Hello{} }},
		{MsgSubscribe, &Subscribe{Channel: 3}, func() any { return &Subscribe{} }},
		{MsgItemEnd, &ItemEnd{Channel: 1, Pos: 2, ItemID: 3, Cycle: 4}, func() any { return &ItemEnd{} }},
		{MsgError, &ErrorBody{Message: "boom"}, func() any { return &ErrorBody{} }},
	}
	for _, tt := range tests {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tt.t, tt.body); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := tt.into()
		if err := DecodeJSON(f, got); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOversizedFrameRejectedOnWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgItemChunk, make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("error = %v", err)
	}
}

func TestOversizedFrameRejectedOnRead(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrameSize+1)
	hdr[4] = byte(MsgItemChunk)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("error = %v", err)
	}
}

func TestZeroLengthFrameRejected(t *testing.T) {
	var hdr [4]byte // length 0: no type byte
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("error = %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgItemChunk, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Cut mid-body: read must fail, and not with bare EOF.
	if _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-4])); err == nil || err == io.EOF {
		t.Fatalf("truncated body error = %v", err)
	}
	// Cut mid-header after the first byte: also a hard error.
	if _, err := ReadFrame(bytes.NewReader(raw[:2])); err == nil {
		t.Fatalf("truncated header should fail")
	}
}

func TestCleanEOF(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("")); err != io.EOF {
		t.Fatalf("empty stream error = %v, want io.EOF", err)
	}
}

func TestDecodeJSONError(t *testing.T) {
	f := Frame{Type: MsgHello, Body: []byte("{bad json")}
	var h Hello
	if err := DecodeJSON(f, &h); err == nil {
		t.Fatal("bad JSON should fail")
	} else if !strings.Contains(err.Error(), "hello") {
		t.Fatalf("error %q should name the frame type", err)
	}
}

// TestEncodeFrameMatchesWriteFrame pins the contract the broadcast
// fan-out relies on: a frame encoded once into a contiguous buffer is
// byte-identical to what WriteFrame streams, for every type and body
// shape (empty, small, chunk-sized).
func TestEncodeFrameMatchesWriteFrame(t *testing.T) {
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 4096)}
	for _, mt := range []MsgType{MsgHello, MsgItemBegin, MsgItemChunk, MsgItemEnd, MsgResync} {
		for i, body := range bodies {
			enc, err := EncodeFrame(mt, body)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, mt, body); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, buf.Bytes()) {
				t.Fatalf("type %s body %d: EncodeFrame and WriteFrame disagree", mt, i)
			}
		}
	}
	if _, err := EncodeFrame(MsgItemChunk, make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized EncodeFrame error = %v", err)
	}
}

func TestEncodeJSONMatchesWriteJSON(t *testing.T) {
	want := Resync{Channel: 3, Skipped: 1 << 40}
	enc, err := EncodeJSON(MsgResync, want)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, MsgResync, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Fatal("EncodeJSON and WriteJSON disagree")
	}
	f, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var got Resync
	if err := DecodeJSON(f, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt, want := range map[MsgType]string{
		MsgHello: "hello", MsgSubscribe: "subscribe", MsgItemBegin: "item-begin",
		MsgItemChunk: "item-chunk", MsgItemEnd: "item-end", MsgError: "error",
		MsgResync: "resync",
	} {
		if got := mt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mt, got, want)
		}
	}
	if got := MsgType(99).String(); !strings.Contains(got, "unknown") {
		t.Errorf("unknown type String() = %q", got)
	}
}

// Property: arbitrary bodies round-trip through a pipe of frames.
func TestFrameRoundTripProperty(t *testing.T) {
	check := func(tb byte, body []byte) bool {
		if len(body)+1 > MaxFrameSize {
			return true
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgType(tb), body); err != nil {
			return false
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return f.Type == MsgType(tb) && bytes.Equal(f.Body, body)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package wire defines the framing and message types of the netcast
// protocol: length-prefixed frames with a one-byte type and a JSON (or
// raw, for payload chunks) body. Both the broadcast server and the
// tuning client speak it.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MsgType identifies a frame's meaning.
type MsgType byte

// Protocol message types.
const (
	// MsgHello is sent by the server on connect: a Hello body.
	MsgHello MsgType = 1
	// MsgSubscribe is sent by the client to tune to a channel: a
	// Subscribe body.
	MsgSubscribe MsgType = 2
	// MsgItemBegin opens one item transmission: an ItemBegin body.
	MsgItemBegin MsgType = 3
	// MsgItemChunk carries raw item payload bytes.
	MsgItemChunk MsgType = 4
	// MsgItemEnd closes one item transmission: an ItemEnd body.
	MsgItemEnd MsgType = 5
	// MsgError reports a fatal protocol error: an ErrorBody body.
	MsgError MsgType = 6
	// MsgResync announces a gap in the broadcast stream: the server
	// lapped this subscriber in the shared frame ring and resumed it
	// from the ring head, skipping the frames in between. A Resync
	// body.
	MsgResync MsgType = 7
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgSubscribe:
		return "subscribe"
	case MsgItemBegin:
		return "item-begin"
	case MsgItemChunk:
		return "item-chunk"
	case MsgItemEnd:
		return "item-end"
	case MsgError:
		return "error"
	case MsgResync:
		return "resync"
	default:
		return fmt.Sprintf("unknown(%d)", byte(t))
	}
}

// MaxFrameSize bounds a frame body; larger frames are rejected so a
// corrupt length prefix cannot trigger an unbounded allocation.
const MaxFrameSize = 1 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrShortFrame    = errors.New("wire: frame shorter than header")
)

// Hello is the server greeting.
type Hello struct {
	K         int     `json:"k"`
	Bandwidth float64 `json:"bandwidth"`
	// TimeScale is the server's real-seconds-per-virtual-second
	// pacing factor (tests run accelerated broadcasts).
	TimeScale float64 `json:"time_scale"`
}

// Subscribe tunes the client to one broadcast channel.
type Subscribe struct {
	Channel int `json:"channel"`
	// Item optionally declares the item ID the client is tuning in
	// for, with HasItem marking presence (ID 0 is a valid item, so
	// the zero value cannot double as "unset"). Servers with cost
	// telemetry feed it to the per-item tune-in frequency estimator;
	// servers without it, and servers talking to older clients that
	// omit both fields, behave identically either way.
	Item    int  `json:"item,omitempty"`
	HasItem bool `json:"has_item,omitempty"`
}

// ItemBegin announces the start of an item transmission on the
// subscribed channel.
type ItemBegin struct {
	Channel int     `json:"channel"`
	Pos     int     `json:"pos"`
	ItemID  int     `json:"item_id"`
	Size    float64 `json:"size"`
	// PayloadLen is the total number of chunk bytes to follow.
	PayloadLen int `json:"payload_len"`
	// Cycle counts the channel's broadcast cycles, starting at 0.
	Cycle int `json:"cycle"`
}

// ItemEnd closes an item transmission.
type ItemEnd struct {
	Channel int `json:"channel"`
	Pos     int `json:"pos"`
	ItemID  int `json:"item_id"`
	Cycle   int `json:"cycle"`
}

// ErrorBody carries a fatal server-side error to the client.
type ErrorBody struct {
	Message string `json:"message"`
}

// Resync tells a lagging subscriber that Skipped frames were dropped
// between the last frame it received and the next one it will: the
// connection survives, but any transmission in progress is torn and
// the receiver must wait for the next ItemBegin.
type Resync struct {
	Channel int    `json:"channel"`
	Skipped uint64 `json:"skipped"`
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type MsgType
	Body []byte
}

// WriteFrame writes one frame: 4-byte big-endian body length
// (including the type byte), the type, then the body.
func WriteFrame(w io.Writer, t MsgType, body []byte) error {
	if len(body)+1 > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return fmt.Errorf("wire: writing frame body: %w", err)
		}
	}
	return nil
}

// EncodeFrame serializes one frame — header, type byte, body — into a
// single contiguous buffer, byte-identical to what WriteFrame puts on
// the wire. Broadcast paths encode a frame once and hand the immutable
// buffer to every subscriber instead of re-framing per connection.
func EncodeFrame(t MsgType, body []byte) ([]byte, error) {
	if len(body)+1 > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	buf := make([]byte, 5+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)+1))
	buf[4] = byte(t)
	copy(buf[5:], body)
	return buf, nil
}

// EncodeJSON marshals v and encodes it as a contiguous frame of type t.
func EncodeJSON(t MsgType, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshaling %s: %w", t, err)
	}
	return EncodeFrame(t, body)
}

// WriteJSON marshals v and writes it as a frame of type t.
func WriteJSON(w io.Writer, t MsgType, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshaling %s: %w", t, err)
	}
	return WriteFrame(w, t, body)
}

// ReadFrame reads one frame. It returns io.EOF unchanged at a clean
// connection end (before any header byte).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: reading frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < 1 {
		return Frame{}, ErrShortFrame
	}
	if length > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return Frame{Type: MsgType(buf[0]), Body: buf[1:]}, nil
}

// DecodeJSON unmarshals a frame body into v, reporting the frame type
// on error.
func DecodeJSON(f Frame, v any) error {
	if err := json.Unmarshal(f.Body, v); err != nil {
		return fmt.Errorf("wire: decoding %s: %w", f.Type, err)
	}
	return nil
}

package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame decoder:
// it must never panic, never allocate beyond MaxFrameSize, and any
// frame it accepts must re-encode to the bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	// Seeds: a valid frame, a truncated one, an oversized header, an
	// empty stream, and a zero-length frame.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, MsgItemChunk, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:3])
	var oversized [5]byte
	binary.BigEndian.PutUint32(oversized[:4], MaxFrameSize+1)
	f.Add(oversized[:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted frames re-encode to exactly the bytes consumed.
		consumed := len(data) - r.Len()
		var re bytes.Buffer
		if werr := WriteFrame(&re, frame.Type, frame.Body); werr != nil {
			t.Fatalf("accepted frame does not re-encode: %v", werr)
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("round trip mismatch: read %d bytes, re-encoded %d", consumed, re.Len())
		}
	})
}

// FuzzFrameStream decodes as many frames as the input holds; the
// decoder must terminate and fail cleanly at the first corruption.
func FuzzFrameStream(f *testing.F) {
	var stream bytes.Buffer
	for _, mt := range []MsgType{MsgHello, MsgItemBegin, MsgItemChunk, MsgItemEnd} {
		if err := WriteFrame(&stream, mt, []byte{byte(mt)}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream.Bytes())
	f.Add([]byte("garbage that is definitely not a frame stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 1000; i++ {
			_, err := ReadFrame(r)
			if err == io.EOF || err != nil {
				return
			}
		}
		if r.Len() > 0 {
			t.Fatal("decoder failed to consume a bounded stream in 1000 frames")
		}
	})
}

// Package stats provides the summary statistics the experiment harness
// and simulators report: streaming accumulators (Welford), summaries
// with confidence intervals, and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
)

// Accumulator computes count, mean and variance in one streaming pass
// using Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add observes one value.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N reports the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 with none).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 with none).
func (a *Accumulator) Max() float64 { return a.max }

// Summary snapshots an accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the normal-approximation 95%
	// confidence interval of the mean.
	CI95 float64
}

// Summarize snapshots the accumulator's statistics.
func (a *Accumulator) Summarize() Summary {
	s := Summary{N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), Min: a.min, Max: a.max}
	if a.n > 1 {
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(a.n))
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (sd=%.3g, min=%.4g, max=%.4g)",
		s.N, s.Mean, s.CI95, s.StdDev, s.Min, s.Max)
}

// Of summarizes a slice in one call.
func Of(xs []float64) Summary {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Summarize()
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RelativeError returns (got-want)/want; it is how EXPERIMENTS.md
// reports heuristic gaps versus the optimum reference.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (got - want) / want
}

package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations in fixed-width bins over [Lo, Hi);
// out-of-range observations land in overflow counters. The simulators
// use it to report waiting-time distributions, not just means.
type Histogram struct {
	lo, hi  float64
	bins    []int
	under   int
	over    int
	total   int
	binSize float64
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%v, %v)", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins), binSize: (hi - lo) / float64(bins)}, nil
}

// Add observes one value.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / h.binSize)
		if idx >= len(h.bins) { // guard float edge at exactly hi-ε
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// Total reports the number of observations.
func (h *Histogram) Total() int { return h.total }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins reports the bin count.
func (h *Histogram) Bins() int { return len(h.bins) }

// Underflow and Overflow report out-of-range counts.
func (h *Histogram) Underflow() int { return h.under }

// Overflow reports observations at or above the upper bound.
func (h *Histogram) Overflow() int { return h.over }

// Quantile returns an approximation of the q-quantile (0 ≤ q ≤ 1)
// assuming observations are uniform within each bin. Underflow mass is
// attributed to lo and overflow to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return h.lo
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target {
		return h.lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.binSize
		}
		cum = next
	}
	return h.hi
}

// Render draws an ASCII bar chart with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 1
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		lo := h.lo + float64(i)*h.binSize
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%10.3f..%-10.3f %6d %s\n", lo, lo+h.binSize, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%22s %6d\n", "<underflow>", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%22s %6d\n", "<overflow>", h.over)
	}
	return b.String()
}

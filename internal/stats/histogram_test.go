package stats

import "testing"

// Quantile edge cases beyond the uniform sweep in stats_test.go:
// degenerate mass placements that exercise the estimator's bin-walk
// boundary conditions.

// All mass in the first bin, empty trailing bins: high quantiles must
// interpolate inside the occupied bin, never skid into the empty tail
// or return hi.
func TestQuantileEmptyTrailingBins(t *testing.T) {
	h, err := NewHistogram(0, 10, 5) // bins of width 2
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(1) // all in bin 0 = [0, 2)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < 0 || got > 2 {
			t.Errorf("Quantile(%v) = %v, outside the only occupied bin [0,2)", q, got)
		}
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want hi", got)
	}
}

// Mass exactly on bin boundaries: a value equal to a bin's lower edge
// belongs to that bin ([lo, hi) semantics), and the quantiles must
// stay within the occupied bins.
func TestQuantileMassOnBinBoundaries(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Add(float64(2 * i)) // exactly on every bin's lower edge
	}
	for i := 0; i < h.Bins(); i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want exactly 1 (boundary values belong to the bin they open)", i, h.Bin(i))
		}
	}
	// The median of {0,2,4,6,8} sits in bin 2.
	if got := h.Quantile(0.5); got < 4 || got > 6 {
		t.Errorf("Quantile(0.5) = %v, want within [4,6)", got)
	}
	// The upper bound itself is overflow, not the last bin.
	h.Add(10)
	if h.Overflow() != 1 {
		t.Errorf("Add(hi) landed in a bin; overflow = %d", h.Overflow())
	}
}

// All-underflow input: every quantile collapses to lo.
func TestQuantileAllUnderflow(t *testing.T) {
	h, err := NewHistogram(10, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		h.Add(-5)
	}
	if h.Underflow() != 7 || h.Total() != 7 {
		t.Fatalf("underflow %d / total %d", h.Underflow(), h.Total())
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 10 {
			t.Errorf("Quantile(%v) = %v, want lo", q, got)
		}
	}
}

// All-overflow input: the bin walk finds no mass, so quantiles report
// hi (overflow mass is attributed to the upper bound).
func TestQuantileAllOverflow(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.Add(9)
	}
	for _, q := range []float64{0.25, 0.5, 0.99} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %v, want hi", q, got)
		}
	}
}

// Mixed underflow + bins: the underflow mass shifts the interpolation
// target but is pinned to lo when the quantile falls inside it.
func TestQuantileUnderflowThenBins(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Add(-1) // underflow
	}
	for i := 0; i < 5; i++ {
		h.Add(5) // bin 2
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("Quantile inside underflow mass = %v, want lo", got)
	}
	if got := h.Quantile(0.9); got < 4 || got > 6 {
		t.Errorf("Quantile(0.9) = %v, want within bin [4,6)", got)
	}
}

// A single observation answers every interior quantile from its bin.
func TestQuantileSingleObservation(t *testing.T) {
	h, err := NewHistogram(0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(4.5) // bin 2 = [4, 6)
	for _, q := range []float64{0.001, 0.5, 0.999} {
		if got := h.Quantile(q); got < 4 || got > 6 {
			t.Errorf("Quantile(%v) = %v, want within [4,6)", q, got)
		}
	}
}

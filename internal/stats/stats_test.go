package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance
	// is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("single observation must have zero variance")
	}
	s := a.Summarize()
	if s.CI95 != 0 {
		t.Fatal("single observation must have zero CI")
	}
	if s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("summary = %+v", s)
	}
}

// Property: streaming results match the two-pass formulas.
func TestAccumulatorMatchesTwoPass(t *testing.T) {
	check := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 16
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		scale := 1 + math.Abs(variance)
		return math.Abs(a.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(a.Variance()-variance) < 1e-9*scale
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Of([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=2") {
		t.Fatalf("summary string %q lacks fields", str)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError(110,100) = %v", got)
	}
	if got := RelativeError(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Fatalf("RelativeError(90,100) = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("hi == lo should fail")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5.5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d", h.Underflow(), h.Overflow())
	}
	wantBins := []int{2, 1, 1, 0, 1} // [0,2): {0,1.9}, [2,4): {2}, [4,6): {5.5}, [8,10): {9.99}
	for i, want := range wantBins {
		if got := h.Bin(i); got != want {
			t.Errorf("bin %d = %d, want %d", i, got, want)
		}
	}
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d", h.Bins())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Add(rng.Float64() * 100)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(q)
		if math.Abs(got-q*100) > 1.5 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v", q, got, q*100)
		}
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 100 {
		t.Error("extreme quantiles should clamp to bounds")
	}
	empty, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should return lo")
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)
	h.Add(1.5)
	h.Add(3)
	h.Add(-5)
	h.Add(99)
	out := h.Render(10)
	if !strings.Contains(out, "<underflow>") || !strings.Contains(out, "<overflow>") {
		t.Fatalf("render lacks overflow rows:\n%s", out)
	}
	if !strings.Contains(out, "##########") {
		t.Fatalf("render lacks full-width bar:\n%s", out)
	}
}

func TestOf(t *testing.T) {
	s := Of(nil)
	if s.N != 0 {
		t.Fatal("Of(nil) should be empty")
	}
	s = Of([]float64{5, 5, 5})
	if s.Mean != 5 || s.StdDev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

package broadcast

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func buildFixture(t *testing.T) (*core.Allocation, *Program) {
	t.Helper()
	db := core.PaperExampleDatabase()
	a, err := core.NewDRPCDS().Allocate(db, core.PaperExampleK)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(a, workload.PaperBandwidth, ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	return a, p
}

func TestBuildValidation(t *testing.T) {
	db := core.PaperExampleDatabase()
	a, err := core.NewDRP().Allocate(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(nil, 10, ByPosition); err == nil {
		t.Error("nil allocation should fail")
	}
	if _, err := Build(a, 0, ByPosition); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := Build(a, -1, ByPosition); err == nil {
		t.Error("negative bandwidth should fail")
	}
	if _, err := Build(a, math.Inf(1), ByPosition); err == nil {
		t.Error("infinite bandwidth should fail")
	}
}

func TestBuildStructure(t *testing.T) {
	a, p := buildFixture(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.K != a.K() {
		t.Fatalf("K = %d, want %d", p.K, a.K())
	}
	// Every item appears in exactly one slot, on its allocated channel.
	db := a.Database()
	count := 0
	for c, ch := range p.Channels {
		for _, slot := range ch.Slots {
			count++
			if a.ChannelOf(slot.Pos) != c {
				t.Errorf("item pos %d scheduled on channel %d, allocated to %d", slot.Pos, c, a.ChannelOf(slot.Pos))
			}
			if db.Item(slot.Pos).ID != slot.ItemID {
				t.Errorf("slot item ID %d != db ID %d", slot.ItemID, db.Item(slot.Pos).ID)
			}
		}
		// Cycle length = aggregate size / bandwidth (Eq. in §2.1).
		if want := core.CycleLength(a, c, p.Bandwidth); math.Abs(ch.CycleLength-want) > 1e-9 {
			t.Errorf("channel %d cycle %v, want %v", c, ch.CycleLength, want)
		}
	}
	if count != db.Len() {
		t.Fatalf("%d slots for %d items", count, db.Len())
	}
}

func TestSlotOrders(t *testing.T) {
	db := core.PaperExampleDatabase()
	a, err := core.NewDRP().Allocate(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Build(a, 10, ByFrequency)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range pf.Channels {
		for i := 1; i < len(ch.Slots); i++ {
			if db.Item(ch.Slots[i].Pos).Freq > db.Item(ch.Slots[i-1].Pos).Freq {
				t.Fatal("ByFrequency slots not in descending frequency")
			}
		}
	}
	ps, err := Build(a, 10, BySize)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range ps.Channels {
		for i := 1; i < len(ch.Slots); i++ {
			if ch.Slots[i].Size < ch.Slots[i-1].Size {
				t.Fatal("BySize slots not in ascending size")
			}
		}
	}
	// The order must not change any cycle length.
	p0, err := Build(a, 10, ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	for c := range p0.Channels {
		if math.Abs(p0.Channels[c].CycleLength-pf.Channels[c].CycleLength) > 1e-12 {
			t.Fatal("slot order changed cycle length")
		}
	}
}

func TestLocate(t *testing.T) {
	a, p := buildFixture(t)
	db := a.Database()
	for pos := 0; pos < db.Len(); pos++ {
		c, s, ok := p.Locate(pos)
		if !ok {
			t.Fatalf("item pos %d not located", pos)
		}
		if p.Channels[c].Slots[s].Pos != pos {
			t.Fatalf("Locate(%d) points at wrong slot", pos)
		}
	}
	if _, _, ok := p.Locate(999); ok {
		t.Fatal("Locate of unscheduled position succeeded")
	}
}

func TestNextStartAndWaitFor(t *testing.T) {
	_, p := buildFixture(t)
	pos := p.Channels[0].Slots[0].Pos
	slot := p.Channels[0].Slots[0]
	cycle := p.Channels[0].CycleLength

	// At t=0 the first slot starts immediately.
	start, err := p.NextStart(pos, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != slot.Start {
		t.Fatalf("NextStart at 0 = %v, want %v", start, slot.Start)
	}
	// Just after the slot begins, the client waits for the next cycle.
	start, err = p.NextStart(pos, slot.Start+1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(start-(slot.Start+cycle)) > 1e-6 {
		t.Fatalf("NextStart mid-slot = %v, want next cycle %v", start, slot.Start+cycle)
	}
	// Far in the future the wait stays within (0, cycle+duration].
	for _, at := range []float64{17.3, 123.456, 9999.9} {
		w, err := p.WaitFor(pos, at)
		if err != nil {
			t.Fatal(err)
		}
		if w <= 0 || w > cycle+slot.Duration+1e-9 {
			t.Fatalf("WaitFor(%v) = %v outside (0, cycle+dur]", at, w)
		}
	}
	if _, err := p.WaitFor(999, 0); err == nil {
		t.Fatal("WaitFor unscheduled item should fail")
	}
}

// Property: the mean of WaitFor over arrival times uniform in one
// cycle equals the analytical item waiting time of Eq. (1).
func TestWaitForMeanMatchesAnalyticalModel(t *testing.T) {
	db := workload.Config{N: 25, Theta: 0.8, Phi: 1.5, Seed: 5}.MustGenerate()
	a, err := core.NewDRPCDS().Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	const b = 10.0
	p, err := Build(a, b, ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < db.Len(); pos++ {
		c, _, _ := p.Locate(pos)
		cycle := p.Channels[c].CycleLength
		const samples = 2000
		var sum float64
		for i := 0; i < samples; i++ {
			at := cycle * float64(i) / samples
			w, err := p.WaitFor(pos, at)
			if err != nil {
				t.Fatal(err)
			}
			sum += w
		}
		got := sum / samples
		want := core.ItemWaitingTime(a, pos, b)
		if math.Abs(got-want) > want*0.01+1e-6 {
			t.Fatalf("item %d: mean wait %v, analytical %v", pos, got, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, p := buildFixture(t)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K != p.K || loaded.Bandwidth != p.Bandwidth {
		t.Fatal("header fields lost in round trip")
	}
	for c := range p.Channels {
		if len(loaded.Channels[c].Slots) != len(p.Channels[c].Slots) {
			t.Fatal("slots lost in round trip")
		}
		for s := range p.Channels[c].Slots {
			if loaded.Channels[c].Slots[s] != p.Channels[c].Slots[s] {
				t.Fatalf("slot %d/%d differs after round trip", c, s)
			}
		}
	}
	// The loaded program is immediately usable.
	pos := p.Channels[0].Slots[0].Pos
	w1, err := p.WaitFor(pos, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := loaded.WaitFor(pos, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("loaded program computes different waits")
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("corrupt JSON should fail")
	}
	// Structurally valid JSON but an inconsistent program.
	bad := `{"k":1,"bandwidth":10,"channels":[{"index":0,"slots":[
		{"pos":0,"item_id":1,"size":10,"start":5,"duration":1}],"cycle_length":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("inconsistent program should fail validation")
	}
}

func TestRender(t *testing.T) {
	_, p := buildFixture(t)
	out := p.Render(map[int]string{1: "headline-news"})
	if !strings.Contains(out, "channel 0") || !strings.Contains(out, "headline-news") {
		t.Fatalf("render output missing expected content:\n%s", out)
	}
	if !strings.Contains(out, "item 2") {
		t.Fatalf("untitled items should fall back to item IDs:\n%s", out)
	}
}

// Property: programs built from arbitrary valid allocations validate.
func TestBuildAlwaysValidates(t *testing.T) {
	check := func(seed uint16, rawN, rawK uint8, order uint8) bool {
		n := int(rawN)%30 + 1
		k := int(rawK)%n + 1
		db := workload.Config{N: n, Theta: 0.8, Phi: 2, Seed: int64(seed)}.MustGenerate()
		a, err := core.NewDRP().Allocate(db, k)
		if err != nil {
			return false
		}
		p, err := Build(a, 10, SlotOrder(order%3))
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

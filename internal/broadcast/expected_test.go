package broadcast_test

import (
	"math"
	"testing"

	"diversecast/internal/broadcast"
	"diversecast/internal/core"
)

// TestExpectedWaitMatchesChannelWaitingTime cross-checks the
// schedule-level expectation against the model-level one: on a Build
// program, Channel.ExpectedWait under the database frequencies must
// equal core.ChannelWaitingTime (Eq. 1) for every channel of the
// paper's worked example.
func TestExpectedWaitMatchesChannelWaitingTime(t *testing.T) {
	db := core.PaperExampleDatabase()
	for _, bandwidth := range []float64{1, 10} {
		a, err := core.NewDRPExampleConsistent().Allocate(db, 5)
		if err != nil {
			t.Fatal(err)
		}
		p, err := broadcast.Build(a, bandwidth, broadcast.ByPosition)
		if err != nil {
			t.Fatal(err)
		}
		freqs := db.Frequencies()
		for c, ch := range p.Channels {
			want := core.ChannelWaitingTime(a, c, bandwidth)
			got := ch.ExpectedWait(freqs)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("bandwidth %g channel %d: ExpectedWait %v, ChannelWaitingTime %v",
					bandwidth, c, got, want)
			}
		}
	}
}

// TestExpectedFirstDelivery pins the closed form on a hand-computed
// two-slot channel: durations 1 and 3, cycle 4.
//
//	E = (1/4)(0.5 + 3) + (3/4)(1.5 + 1) = 0.875 + 1.875 = 2.75
func TestExpectedFirstDelivery(t *testing.T) {
	db, err := core.NewDatabase([]core.Item{
		{ID: 1, Freq: 0.5, Size: 1},
		{ID: 2, Freq: 0.5, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAllocation(db, 1, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 1, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Channels[0].ExpectedFirstDelivery(); math.Abs(got-2.75) > 1e-12 {
		t.Fatalf("ExpectedFirstDelivery = %v, want 2.75", got)
	}

	// Uniform slots degenerate to 1.5 slot durations: remainder d/2
	// plus the next full slot d.
	db2, err := core.NewDatabase([]core.Item{
		{ID: 1, Freq: 0.5, Size: 2},
		{ID: 2, Freq: 0.5, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.NewAllocation(db2, 1, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := broadcast.Build(a2, 1, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Channels[0].ExpectedFirstDelivery(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("uniform ExpectedFirstDelivery = %v, want 3", got)
	}
}

// TestExpectedWaitEdgeCases: zero-mass profiles fall back to the
// unweighted mean download, and empty channels report zero.
func TestExpectedWaitEdgeCases(t *testing.T) {
	db, err := core.NewDatabase([]core.Item{
		{ID: 1, Freq: 0.9, Size: 1},
		{ID: 2, Freq: 0.1, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAllocation(db, 1, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := broadcast.Build(a, 1, broadcast.ByPosition)
	if err != nil {
		t.Fatal(err)
	}
	ch := p.Channels[0]
	// Zero mass: cycle/2 + mean(1,3) = 2 + 2 = 4.
	if got := ch.ExpectedWait([]float64{0, 0}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("zero-mass ExpectedWait = %v, want 4", got)
	}
	// Short profile: slots outside the profile carry zero mass.
	if got := ch.ExpectedWait([]float64{1}); math.Abs(got-(2+1)) > 1e-12 {
		t.Fatalf("short-profile ExpectedWait = %v, want 3", got)
	}
	var empty broadcast.Channel
	if got := empty.ExpectedWait([]float64{1}); got != 0 {
		t.Fatalf("empty channel ExpectedWait = %v", got)
	}
	if got := empty.ExpectedFirstDelivery(); got != 0 {
		t.Fatalf("empty channel ExpectedFirstDelivery = %v", got)
	}
}

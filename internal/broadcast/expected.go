package broadcast

// Analytic wait expectations for a scheduled channel, in virtual
// seconds. These are the "predicted" side of the cost-attribution
// telemetry (internal/obs/costmon): the runtime records what clients
// actually waited and holds it against these closed forms, which are
// the scheduled-program counterparts of the paper's Eq. (1) per-channel
// waiting time Z_i/(2b) + download/(b·F_i).

// ExpectedWait returns the mean access time experienced by a request
// arriving uniformly at random in the cycle for an item drawn from
// freqs (indexed by database position): mean probe wait Z/2 plus the
// frequency-weighted mean download time of the channel's slots.
//
// With slot durations z_j/b this is exactly Eq. (1) for the channel,
// so on a Build program it agrees with core.ChannelWaitingTime to
// floating-point accuracy. Slots whose position carries zero (or
// missing) frequency mass fall back to an unweighted mean download,
// and an empty channel has zero expected wait.
func (c Channel) ExpectedWait(freqs []float64) float64 {
	if len(c.Slots) == 0 || c.CycleLength <= 0 {
		return 0
	}
	var mass, weighted, flat float64
	for _, s := range c.Slots {
		var f float64
		if s.Pos >= 0 && s.Pos < len(freqs) {
			f = freqs[s.Pos]
		}
		mass += f
		weighted += f * s.Duration
		flat += s.Duration
	}
	download := flat / float64(len(c.Slots))
	if mass > 0 {
		download = weighted / mass
	}
	return c.CycleLength/2 + download
}

// ExpectedFirstDelivery returns the mean time from a uniformly-random
// tune-in instant until the end of the first complete item
// transmission on the channel. A listener joining during slot j (an
// event of probability d_j/Z) waits out the remainder of that slot
// (d_j/2 in expectation — its head was already missed) and then the
// whole of the next slot:
//
//	E = Σ_j (d_j/Z) · (d_j/2 + d_{j+1 mod n})
//
// This is the quantity the netcast server realizes per subscriber
// (tune-in → first MsgItemEnd preceded by a MsgItemBegin), as opposed
// to ExpectedWait, which is the per-request access time airsim
// realizes. The two differ: first delivery does not condition on
// which item the listener wants.
func (c Channel) ExpectedFirstDelivery() float64 {
	n := len(c.Slots)
	if n == 0 || c.CycleLength <= 0 {
		return 0
	}
	var sum float64
	for j, s := range c.Slots {
		next := c.Slots[(j+1)%n].Duration
		sum += s.Duration / c.CycleLength * (s.Duration/2 + next)
	}
	return sum
}

package broadcast

import (
	"bytes"
	"strings"
	"testing"

	"diversecast/internal/core"
)

// FuzzReadJSON throws arbitrary bytes at the program loader: it must
// never panic, and any program it accepts must validate and support
// schedule queries without panicking.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real program.
	db := core.PaperExampleDatabase()
	a, err := core.NewDRP().Allocate(db, 3)
	if err != nil {
		f.Fatal(err)
	}
	p, err := Build(a, 10, ByPosition)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"k":0,"bandwidth":0,"channels":[]}`)
	f.Add(`{"k":1,"bandwidth":10,"channels":[{"index":0,"slots":[],"cycle_length":0}]}`)
	f.Add(`garbage`)

	f.Fuzz(func(t *testing.T, in string) {
		loaded, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := loaded.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid program: %v", err)
		}
		// Schedule queries must be total for scheduled positions.
		for _, ch := range loaded.Channels {
			for _, slot := range ch.Slots {
				if _, err := loaded.WaitFor(slot.Pos, 123.456); err != nil {
					t.Fatalf("WaitFor failed on scheduled item: %v", err)
				}
			}
		}
	})
}

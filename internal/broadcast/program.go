// Package broadcast turns a channel allocation into an executable
// broadcast program: per-channel cyclic schedules with slot start
// times, plus lookup helpers (when does item x next air?), JSON
// serialization and human-readable rendering. Both the discrete-event
// air simulator and the TCP broadcast server execute these programs.
package broadcast

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"diversecast/internal/core"
)

// Slot is one item transmission within a channel cycle.
type Slot struct {
	// Pos is the item's database position; ItemID its stable ID.
	Pos    int     `json:"pos"`
	ItemID int     `json:"item_id"`
	Size   float64 `json:"size"`
	// Start is the slot's offset from the cycle start in seconds;
	// Duration is Size/bandwidth.
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
}

// End returns the slot's end offset.
func (s Slot) End() float64 { return s.Start + s.Duration }

// Channel is one broadcast channel's cyclic schedule.
type Channel struct {
	Index       int     `json:"index"`
	Slots       []Slot  `json:"slots"`
	CycleLength float64 `json:"cycle_length"`
	// GroupCost is the channel's F·Z contribution to the paper's
	// grouping cost (Eq. 3), carried over from the allocation at build
	// time so runtime consumers — per-cycle trace spans, renderings —
	// can report it without access to the item frequencies. Zero for
	// hand-assembled programs that never saw an allocation.
	GroupCost float64 `json:"group_cost,omitempty"`
}

// Program is an executable broadcast program.
type Program struct {
	K         int       `json:"k"`
	Bandwidth float64   `json:"bandwidth"`
	Channels  []Channel `json:"channels"`

	// locate[pos] lists every {channel, slot index} carrying the
	// item; rebuilt on load. Programs built by Build/BuildCustom have
	// one occurrence per item; multi-frequency schedules (broadcast
	// disks) repeat hot items within a cycle.
	locate map[int][][2]int
}

// SlotOrder selects the ordering of items within a channel cycle. For
// a flat cyclic channel the order does not change any item's average
// waiting time (the probe time to a specific item is uniform over the
// cycle either way); it changes presentation and the instantaneous
// schedule only.
type SlotOrder int

const (
	// ByPosition orders slots by database position (default).
	ByPosition SlotOrder = iota
	// ByFrequency orders slots by descending access frequency.
	ByFrequency
	// BySize orders slots by ascending item size.
	BySize
)

// ErrEmptyProgram is returned when building from a nil allocation.
var ErrEmptyProgram = errors.New("broadcast: nil allocation")

// Build compiles an allocation into a program under the given channel
// bandwidth (size units per second).
func Build(a *core.Allocation, bandwidth float64, order SlotOrder) (*Program, error) {
	if a == nil {
		return nil, ErrEmptyProgram
	}
	return BuildCustom(a, bandwidth, func(_ int, group []int) []int {
		d := a.Database()
		switch order {
		case ByFrequency:
			sort.SliceStable(group, func(i, j int) bool {
				return d.Item(group[i]).Freq > d.Item(group[j]).Freq
			})
		case BySize:
			sort.SliceStable(group, func(i, j int) bool {
				return d.Item(group[i]).Size < d.Item(group[j]).Size
			})
		}
		return group
	})
}

// BuildCustom compiles an allocation with a caller-chosen slot order:
// reorder receives each channel's database positions (ascending) and
// returns the cycle order. The returned slice must be a permutation of
// the input; BuildCustom verifies this. Within a flat cyclic channel
// the order does not change any single item's mean waiting time, but
// it does change multi-item query spans (see internal/query).
func BuildCustom(a *core.Allocation, bandwidth float64, reorder func(channel int, group []int) []int) (*Program, error) {
	if a == nil {
		return nil, ErrEmptyProgram
	}
	if !(bandwidth > 0) || math.IsInf(bandwidth, 0) {
		return nil, fmt.Errorf("broadcast: bandwidth must be positive and finite, got %v", bandwidth)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("broadcast: %w", err)
	}
	db := a.Database()
	agg := a.Aggregates()
	p := &Program{K: a.K(), Bandwidth: bandwidth, Channels: make([]Channel, a.K())}
	for c, group := range a.Groups() {
		original := append([]int(nil), group...)
		group = reorder(c, append([]int(nil), group...))
		if !samePositionSet(original, group) {
			return nil, fmt.Errorf("broadcast: reorder for channel %d is not a permutation of its items", c)
		}
		ch := Channel{Index: c, Slots: make([]Slot, 0, len(group))}
		var at float64
		for _, pos := range group {
			it := db.Item(pos)
			d := it.Size / bandwidth
			ch.Slots = append(ch.Slots, Slot{
				Pos: pos, ItemID: it.ID, Size: it.Size, Start: at, Duration: d,
			})
			at += d
		}
		ch.CycleLength = at
		ch.GroupCost = agg[c].Cost()
		p.Channels[c] = ch
	}
	p.buildIndex()
	return p, nil
}

// samePositionSet reports whether b is a permutation of a.
func samePositionSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]int, len(a))
	for _, v := range a {
		seen[v]++
	}
	for _, v := range b {
		seen[v]--
		if seen[v] < 0 {
			return false
		}
	}
	return true
}

func (p *Program) buildIndex() {
	p.locate = make(map[int][][2]int)
	for c, ch := range p.Channels {
		for s, slot := range ch.Slots {
			p.locate[slot.Pos] = append(p.locate[slot.Pos], [2]int{c, s})
		}
	}
}

// Locate returns the channel and slot index of the item's first
// occurrence. ok is false if the item is not scheduled. Use
// Occurrences for multi-frequency schedules.
func (p *Program) Locate(pos int) (channel, slot int, ok bool) {
	if p.locate == nil {
		p.buildIndex()
	}
	locs, ok := p.locate[pos]
	if !ok {
		return 0, 0, false
	}
	return locs[0][0], locs[0][1], true
}

// Occurrences returns every (channel, slot) pair carrying the item at
// database position pos.
func (p *Program) Occurrences(pos int) [][2]int {
	if p.locate == nil {
		p.buildIndex()
	}
	return append([][2]int(nil), p.locate[pos]...)
}

// NextStart returns the absolute time ≥ t at which the item at
// database position pos next begins transmission, considering every
// occurrence in the cycle.
func (p *Program) NextStart(pos int, t float64) (float64, error) {
	if p.locate == nil {
		p.buildIndex()
	}
	locs, ok := p.locate[pos]
	if !ok {
		return 0, fmt.Errorf("broadcast: item position %d not scheduled", pos)
	}
	best := math.Inf(1)
	for _, loc := range locs {
		ch := p.Channels[loc[0]]
		slot := ch.Slots[loc[1]]
		if ch.CycleLength <= 0 {
			return 0, fmt.Errorf("broadcast: channel %d has empty cycle", loc[0])
		}
		// Number of whole cycles before t, then the first start ≥ t.
		k := math.Floor((t - slot.Start) / ch.CycleLength)
		start := slot.Start + k*ch.CycleLength
		for start < t {
			start += ch.CycleLength
		}
		if start < best {
			best = start
		}
	}
	return best, nil
}

// WaitFor returns the full waiting time (probe plus download) of a
// request arriving at time t for the item at database position pos: a
// client tuning in at t receives the item's next complete
// transmission.
func (p *Program) WaitFor(pos int, t float64) (float64, error) {
	start, err := p.NextStart(pos, t)
	if err != nil {
		return 0, err
	}
	c, s, _ := p.Locate(pos)
	return start + p.Channels[c].Slots[s].Duration - t, nil
}

// Validate checks structural invariants: contiguous slots from zero,
// cycle length equal to the slot sum, durations consistent with the
// bandwidth, and every occurrence of an item on a single channel with
// a single size. (An item may occur several times per cycle —
// multi-frequency broadcast-disk schedules — but always on one
// channel.)
func (p *Program) Validate() error {
	if p.K != len(p.Channels) {
		return fmt.Errorf("broadcast: K=%d but %d channels", p.K, len(p.Channels))
	}
	if !(p.Bandwidth > 0) {
		return fmt.Errorf("broadcast: bandwidth %v", p.Bandwidth)
	}
	onChannel := make(map[int]int)
	sizeOf := make(map[int]float64)
	for c, ch := range p.Channels {
		if ch.Index != c {
			return fmt.Errorf("broadcast: channel %d has index %d", c, ch.Index)
		}
		var at float64
		for i, slot := range ch.Slots {
			if prev, ok := onChannel[slot.Pos]; ok && prev != c {
				return fmt.Errorf("broadcast: item position %d scheduled on channels %d and %d", slot.Pos, prev, c)
			}
			onChannel[slot.Pos] = c
			if prev, ok := sizeOf[slot.Pos]; ok && math.Abs(prev-slot.Size) > 1e-9 {
				return fmt.Errorf("broadcast: item position %d scheduled with sizes %v and %v", slot.Pos, prev, slot.Size)
			}
			sizeOf[slot.Pos] = slot.Size
			if math.Abs(slot.Start-at) > 1e-9*(1+at) {
				return fmt.Errorf("broadcast: channel %d slot %d starts at %v, want %v", c, i, slot.Start, at)
			}
			if math.Abs(slot.Duration-slot.Size/p.Bandwidth) > 1e-9*(1+slot.Duration) {
				return fmt.Errorf("broadcast: channel %d slot %d duration %v inconsistent with size %v", c, i, slot.Duration, slot.Size)
			}
			at += slot.Duration
		}
		if math.Abs(ch.CycleLength-at) > 1e-9*(1+at) {
			return fmt.Errorf("broadcast: channel %d cycle %v, slots sum to %v", c, ch.CycleLength, at)
		}
	}
	return nil
}

// Render draws the program as a fixed-width table, one row per slot.
// titles may be nil; when present it maps item IDs to display names.
func (p *Program) Render(titles map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "broadcast program: %d channels, bandwidth %.3g units/s\n", p.K, p.Bandwidth)
	for _, ch := range p.Channels {
		fmt.Fprintf(&b, "channel %d  (cycle %.3fs, %d items)\n", ch.Index, ch.CycleLength, len(ch.Slots))
		for _, s := range ch.Slots {
			name := fmt.Sprintf("item %d", s.ItemID)
			if t, ok := titles[s.ItemID]; ok {
				name = t
			}
			fmt.Fprintf(&b, "  %8.3fs  +%7.3fs  %-24s size %.3g\n", s.Start, s.Duration, name, s.Size)
		}
	}
	return b.String()
}

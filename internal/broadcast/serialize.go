package broadcast

import (
	"encoding/json"
	"fmt"
	"io"
)

// programJSON is the on-disk schema; it matches Program's exported
// fields so the format is stable and human-inspectable.
type programJSON struct {
	K         int       `json:"k"`
	Bandwidth float64   `json:"bandwidth"`
	Channels  []Channel `json:"channels"`
}

// WriteJSON serializes the program, indented for inspection.
func (p *Program) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(programJSON{K: p.K, Bandwidth: p.Bandwidth, Channels: p.Channels}); err != nil {
		return fmt.Errorf("broadcast: encoding program: %w", err)
	}
	return nil
}

// ReadJSON deserializes a program written by WriteJSON and validates
// it before returning.
func ReadJSON(r io.Reader) (*Program, error) {
	var pj programJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("broadcast: decoding program: %w", err)
	}
	p := &Program{K: pj.K, Bandwidth: pj.Bandwidth, Channels: pj.Channels}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("broadcast: loaded program invalid: %w", err)
	}
	p.buildIndex()
	return p, nil
}

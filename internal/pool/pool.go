// Package pool provides the bounded by-index worker pool behind every
// deterministic parallel fabric in this repository: genetic fitness
// evaluation, experiment sweep cells, and the sharded CDS candidate
// sweeps. The contract that makes parallelism safe to put under
// bit-exact algorithms is the same everywhere:
//
//   - work is identified by index, handed out through an atomic
//     cursor, and every unit writes results only to its own slot (or
//     its own shard of a larger array);
//   - any reduction over those slots folds them in index order, so
//     the outcome is independent of which worker ran which index and
//     of GOMAXPROCS.
//
// The pool lives only for one call — a few microseconds of goroutine
// setup, irrelevant next to the work it parallelizes — so there is no
// lifecycle to manage and nothing to leak.
package pool

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0,n) on at most workers
// goroutines. workers <= 1 (or n <= 1) runs inline on the caller's
// goroutine. fn must confine its writes to per-index state; under
// that discipline the result is identical for any pool width.
//
// The inline path (workers <= 1) is the hot contract: dispatch itself
// adds nothing to what fn allocates. The parallel path pays exactly W
// goroutine spawns per call — the suppressions below are that cost,
// audited.
//
//diverselint:hotpath inline dispatch must add zero allocations
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//diverselint:ignore hotalloc,loopalloc W goroutine spawns and one worker closure per parallel call are the pool's entire dispatch cost; the workers=1 gate test pins the inline path to zero
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunRanges splits [0,n) into exactly shards contiguous ranges and
// executes fn(shard, lo, hi) for each on at most workers goroutines.
// Shard boundaries depend only on (n, shards) — lo = shard*n/shards —
// never on scheduling, so per-shard partial results reduced in shard
// order are deterministic at any pool width. Empty ranges (n < shards)
// still invoke fn so per-shard output slots are always written.
func RunRanges(workers, shards, n int, fn func(shard, lo, hi int)) {
	if shards <= 0 {
		return
	}
	//diverselint:ignore hotalloc one range-adapter closure per parallel call is dispatch cost, same audit as the worker spawn below it
	Run(workers, shards, func(s int) {
		fn(s, s*n/shards, (s+1)*n/shards)
	})
}

package pool_test

import (
	"testing"

	"diversecast/internal/alloctest"
	"diversecast/internal/pool"
)

// TestRunInlineAllocFree gates the //diverselint:hotpath contract on
// pool.Run: with workers <= 1 (or n == 1) dispatch runs inline on the
// caller's goroutine and adds zero allocations to whatever fn itself
// does. The parallel path's W goroutine spawns are the audited
// suppressions in pool.go, priced separately.
func TestRunInlineAllocFree(t *testing.T) {
	sum := 0
	fn := func(i int) { sum += i }
	alloctest.MustZeroAllocs(t, "pool.Run workers=1", 2, func() {
		pool.Run(1, 64, fn)
	})
	alloctest.MustZeroAllocs(t, "pool.Run n=1", 2, func() {
		pool.Run(8, 1, fn)
	})
	if sum == 0 {
		t.Fatal("fn never ran")
	}
}

package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 64} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			hits := make([]int32, n)
			Run(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times, want 1", workers, n, i, h)
				}
			}
		}
	}
}

func TestRunSerialPreservesOrder(t *testing.T) {
	var got []int
	Run(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial Run visited %v, want ascending order", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("serial Run visited %d indices, want 5", len(got))
	}
}

func TestRunRangesPartition(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 5, 16, 97, 1000} {
			covered := make([]int32, n)
			var calls atomic.Int64
			prevHi := make([]int, shards)
			RunRanges(1, shards, n, func(shard, lo, hi int) {
				calls.Add(1)
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("shards=%d n=%d: bad range shard=%d [%d,%d)", shards, n, shard, lo, hi)
				}
				prevHi[shard] = hi
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			if calls.Load() != int64(shards) {
				t.Fatalf("shards=%d n=%d: fn invoked %d times, want once per shard", shards, n, calls.Load())
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("shards=%d n=%d: index %d covered %d times, want exactly once", shards, n, i, c)
				}
			}
			// Contiguity: shard boundaries must tile [0,n) in shard order.
			lo := 0
			for s := 0; s < shards; s++ {
				if want := (s + 1) * n / shards; prevHi[s] != want {
					t.Fatalf("shards=%d n=%d: shard %d hi=%d, want %d", shards, n, s, prevHi[s], want)
				}
				lo = prevHi[s]
			}
			if lo != n {
				t.Fatalf("shards=%d n=%d: ranges end at %d, want %d", shards, n, lo, n)
			}
		}
	}
}

func TestRunRangesDeterministicAcrossWidths(t *testing.T) {
	const shards, n = 8, 1003
	fold := func(workers int) int64 {
		partial := make([]int64, shards)
		RunRanges(workers, shards, n, func(shard, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i * i)
			}
			partial[shard] = s
		})
		var total int64
		for _, p := range partial {
			total += p
		}
		return total
	}
	want := fold(1)
	for _, w := range []int{2, 4, 8, 16} {
		if got := fold(w); got != want {
			t.Fatalf("workers=%d: shard-ordered fold %d, want %d", w, got, want)
		}
	}
}

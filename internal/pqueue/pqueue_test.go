package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	if q.Len() != 0 {
		t.Fatalf("empty queue Len = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
	if got := q.Drain(); len(got) != 0 {
		t.Fatalf("Drain on empty queue returned %v", got)
	}
}

func TestMinQueueOrdering(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		q.Push(v)
	}
	want := []int{1, 2, 3, 5, 8, 9}
	for i, w := range want {
		got, ok := q.Pop()
		if !ok || got != w {
			t.Fatalf("pop %d: got %d (%v), want %d", i, got, ok, w)
		}
	}
}

func TestMaxQueueOrdering(t *testing.T) {
	q := New(func(a, b int) bool { return a > b })
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		q.Push(v)
	}
	if top, _ := q.Peek(); top != 9 {
		t.Fatalf("Peek = %d, want 9", top)
	}
	got := q.Drain()
	want := []int{9, 8, 5, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v", got, want)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	q.Push(4)
	if _, ok := q.Peek(); !ok || q.Len() != 1 {
		t.Fatal("Peek removed the element")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	q.Push(10)
	q.Push(1)
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	q.Push(0)
	q.Push(20)
	if v, _ := q.Pop(); v != 0 {
		t.Fatalf("got %d, want 0", v)
	}
	if v, _ := q.Pop(); v != 10 {
		t.Fatalf("got %d, want 10", v)
	}
	if v, _ := q.Pop(); v != 20 {
		t.Fatalf("got %d, want 20", v)
	}
}

func TestStructElements(t *testing.T) {
	type task struct {
		name string
		prio float64
	}
	q := New(func(a, b task) bool { return a.prio > b.prio })
	q.Push(task{"low", 1})
	q.Push(task{"high", 10})
	q.Push(task{"mid", 5})
	if v, _ := q.Pop(); v.name != "high" {
		t.Fatalf("got %q, want high", v.name)
	}
}

func TestItemsIsACopy(t *testing.T) {
	q := New(func(a, b int) bool { return a < b })
	q.Push(1)
	q.Push(2)
	items := q.Items()
	items[0] = 99
	if v, _ := q.Peek(); v != 1 {
		t.Fatal("Items aliased the internal slice")
	}
}

// Property: draining always yields a sorted sequence equal to the
// multiset of pushed values.
func TestDrainSortsArbitraryInput(t *testing.T) {
	check := func(vals []float64) bool {
		q := New(func(a, b float64) bool { return a < b })
		for _, v := range vals {
			q.Push(v)
		}
		got := q.Drain()
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := New(func(a, b int) bool { return a < b })
	const n = 5000
	pushed := make([]int, n)
	for i := range pushed {
		pushed[i] = rng.Intn(1000)
		q.Push(pushed[i])
	}
	prev := -1
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue ran dry at %d", i)
		}
		if v < prev {
			t.Fatalf("out of order: %d after %d", v, prev)
		}
		prev = v
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := New(func(a, b float64) bool { return a < b })
		for _, v := range vals {
			q.Push(v)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

// Package pqueue provides a small generic priority queue built on
// container/heap. It is used by the DRP allocator (max-queue of groups
// keyed by cost) and by the discrete-event simulator (min-queue of
// events keyed by time).
package pqueue

import "container/heap"

// Queue is a priority queue over elements of type T. The zero value is
// not usable; construct one with New. Queue is not safe for concurrent
// use.
type Queue[T any] struct {
	h *inner[T]
}

// New returns an empty queue that pops the element for which less
// orders it before every other element. For a min-queue pass a "<"
// comparison; for a max-queue pass ">".
func New[T any](less func(a, b T) bool) *Queue[T] {
	return &Queue[T]{h: &inner[T]{less: less}}
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.h.elems) }

// Push adds v to the queue.
func (q *Queue[T]) Push(v T) { heap.Push(q.h, v) }

// Pop removes and returns the highest-priority element. The boolean is
// false if the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	if len(q.h.elems) == 0 {
		var zero T
		return zero, false
	}
	return heap.Pop(q.h).(T), true
}

// Peek returns the highest-priority element without removing it. The
// boolean is false if the queue is empty.
func (q *Queue[T]) Peek() (T, bool) {
	if len(q.h.elems) == 0 {
		var zero T
		return zero, false
	}
	return q.h.elems[0], true
}

// Drain removes and returns all elements in priority order.
func (q *Queue[T]) Drain() []T {
	out := make([]T, 0, q.Len())
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Items returns a copy of the queued elements in heap (not priority)
// order. It is intended for inspection and tests.
func (q *Queue[T]) Items() []T {
	out := make([]T, len(q.h.elems))
	copy(out, q.h.elems)
	return out
}

// inner implements heap.Interface.
type inner[T any] struct {
	elems []T
	less  func(a, b T) bool
}

func (h *inner[T]) Len() int           { return len(h.elems) }
func (h *inner[T]) Less(i, j int) bool { return h.less(h.elems[i], h.elems[j]) }
func (h *inner[T]) Swap(i, j int)      { h.elems[i], h.elems[j] = h.elems[j], h.elems[i] }

func (h *inner[T]) Push(x any) { h.elems = append(h.elems, x.(T)) }

func (h *inner[T]) Pop() any {
	old := h.elems
	n := len(old)
	v := old[n-1]
	var zero T
	old[n-1] = zero
	h.elems = old[:n-1]
	return v
}

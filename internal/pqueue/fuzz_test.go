package pqueue

import (
	"sort"
	"testing"
)

// FuzzPQueue drives a Queue[int] with an arbitrary op sequence decoded
// from fuzz bytes and checks every observable result against a naive
// reference that keeps a sorted slice: same pops, same peeks, same
// lengths, same drain order. Ties are legal inputs — the comparator is
// a strict "<", so among equal elements any pop order is heap-valid;
// the reference therefore only demands equal *values*, which for ints
// is full equality.
//
// Opcode stream (one byte op, one byte operand where needed):
//
//	0: Push(operand)  1: Pop  2: Peek  3: Len  4: Items (length only)
//	5: Drain — then continue with the now-empty queue
func FuzzPQueue(f *testing.F) {
	f.Add([]byte{0, 5, 0, 3, 1, 1, 1})           // push 5, push 3, pops past empty
	f.Add([]byte{0, 2, 0, 2, 0, 1, 2, 1, 1, 1})  // duplicates
	f.Add([]byte{0, 9, 0, 1, 5, 0, 4, 2})        // drain then reuse
	f.Add([]byte{3, 2, 1, 4, 5})                 // every op on an empty queue
	f.Add([]byte{0, 255, 0, 0, 0, 128, 1, 1, 1}) // extremes
	f.Fuzz(func(t *testing.T, data []byte) {
		q := New(func(a, b int) bool { return a < b })
		var ref []int // kept ascending; ref[0] is the min

		refPush := func(v int) {
			i := sort.SearchInts(ref, v)
			ref = append(ref, 0)
			copy(ref[i+1:], ref[i:])
			ref[i] = v
		}
		refPop := func() (int, bool) {
			if len(ref) == 0 {
				return 0, false
			}
			v := ref[0]
			ref = ref[1:]
			return v, true
		}

		for i := 0; i < len(data); i++ {
			switch data[i] % 6 {
			case 0: // Push
				i++
				if i >= len(data) {
					return
				}
				v := int(data[i])
				q.Push(v)
				refPush(v)
			case 1: // Pop
				got, ok := q.Pop()
				want, wok := refPop()
				if ok != wok || got != want {
					t.Fatalf("op %d: Pop = (%d,%v), reference = (%d,%v)", i, got, ok, want, wok)
				}
			case 2: // Peek
				got, ok := q.Peek()
				if len(ref) == 0 {
					if ok {
						t.Fatalf("op %d: Peek succeeded on empty queue: %d", i, got)
					}
				} else if !ok || got != ref[0] {
					t.Fatalf("op %d: Peek = (%d,%v), reference min = %d", i, got, ok, ref[0])
				}
			case 3: // Len
				if q.Len() != len(ref) {
					t.Fatalf("op %d: Len = %d, reference = %d", i, q.Len(), len(ref))
				}
			case 4: // Items: a copy of the backing array, any order
				items := q.Items()
				if len(items) != len(ref) {
					t.Fatalf("op %d: Items has %d elements, reference %d", i, len(items), len(ref))
				}
				sort.Ints(items)
				for j := range items {
					if items[j] != ref[j] {
						t.Fatalf("op %d: Items (sorted) differs at %d: %d vs %d", i, j, items[j], ref[j])
					}
				}
			case 5: // Drain must yield the full ascending order
				got := q.Drain()
				if len(got) != len(ref) {
					t.Fatalf("op %d: Drain yielded %d elements, reference %d", i, len(got), len(ref))
				}
				for j := range got {
					if got[j] != ref[j] {
						t.Fatalf("op %d: Drain order differs at %d: %d vs %d", i, j, got[j], ref[j])
					}
				}
				if q.Len() != 0 {
					t.Fatalf("op %d: queue non-empty after Drain: %d", i, q.Len())
				}
				ref = ref[:0]
			}
		}

		// Whatever remains must drain in exactly ascending order — the
		// heap invariant held across the whole interleaving.
		final := q.Drain()
		if len(final) != len(ref) {
			t.Fatalf("final Drain yielded %d elements, reference %d", len(final), len(ref))
		}
		for j := range final {
			if final[j] != ref[j] {
				t.Fatalf("final Drain differs at %d: %d vs %d", j, final[j], ref[j])
			}
		}
	})
}

package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/passes"
	"diversecast/internal/analysis/summary"
)

// writeModule materializes a throwaway module on disk and returns its
// root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const testGoMod = "module example.com/m\n\ngo 1.24\n"

// lintModule loads every package of the module at root and runs the
// full diverselint suite.
func lintModule(t *testing.T, root string) []analysis.Finding {
	t.Helper()
	mod, err := analysis.FindModule(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := mod.ExpandPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(mod.Resolver())
	loader.GoVersion = mod.GoVersion
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", p, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := summary.Build(loader.Fset, pkgs, callgraph.Build(pkgs))
	findings, err := analysis.Run(loader.Fset, pkgs, passes.All(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestReintroducedBugClassesAreCaught reconstructs the reintroduced
// bug shapes the acceptance criteria name — the netcast lock-held
// send, a map-order cost accumulation, the stranded writeLoop
// goroutine, an early-return lock leak, wall-clock cost jitter, a
// dropped hot-path error, and the PR-6 unguarded caster.add mutation
// — and asserts the suite flags every one (this is the tripwire that
// makes `make lint` fail if any is reintroduced).
func TestReintroducedBugClassesAreCaught(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"netcast/caster.go": `package netcast

import "sync"

type caster struct {
	mu sync.Mutex
	//diverselint:guard mu
	subs map[chan []byte]struct{}
}

func (ca *caster) send(body []byte) {
	ca.mu.Lock()
	for ch := range ca.subs {
		ch <- body
	}
	ca.mu.Unlock()
}

// add is the PR-6 race, byte for byte: registration mutates the
// guarded subs map without taking mu, so a concurrent send ranges a
// map mid-write.
func (ca *caster) add(ch chan []byte) {
	ca.subs[ch] = struct{}{}
}
`,
		// The stranded writeLoop, byte for byte the PR-1 shape: the
		// goroutine ranges a channel nothing in the package closes.
		"netcast/client.go": `package netcast

type client struct {
	out  chan []byte
	last []byte
}

func (c *client) start() {
	go c.writeLoop()
}

func (c *client) writeLoop() {
	for m := range c.out {
		c.last = m
	}
}
`,
		"netcast/registry.go": `package netcast

import "sync"

type registry struct {
	mu sync.Mutex
	n  int
}

func (r *registry) bump(bad bool) error {
	r.mu.Lock()
	if bad {
		return errStop
	}
	r.n++
	r.mu.Unlock()
	return nil
}

var errStop = &stopErr{}

type stopErr struct{}

func (*stopErr) Error() string { return "stop" }
`,
		"core/cost.go": `package core

func Cost(groups map[int]struct{ F, Z float64 }) float64 {
	var total float64
	for _, g := range groups {
		total += g.F * g.Z
	}
	return total
}
`,
		"core/jitter.go": `package core

import "time"

func Jitter(xs []float64) float64 {
	t := 0.0
	for range xs {
		t += float64(time.Now().UnixNano())
	}
	return t
}
`,
		"wire/wire.go": `package wire

import "errors"

func WriteJSON(v any) error { return errors.New("short write") }
`,
		"core/emit.go": `package core

import "example.com/m/wire"

func Emit(v any) {
	wire.WriteJSON(v)
}
`,
		// The PR-9 hot-path allocation shape: a label formatted per
		// item inside a hotpath root's sweep loop. One line trips all
		// three escape passes — the fmt.Sprintf call allocates
		// (hotalloc), the int argument boxes into its variadic
		// (boxparam), and the site sits in a loop of a hot package
		// (loopalloc).
		"core/sweep.go": `package core

import "fmt"

//diverselint:hotpath per-move sweep must not format
func Sweep(xs []int) string {
	var last string
	for _, x := range xs {
		last = fmt.Sprintf("item-%d", x)
	}
	return last
}
`,
		// The defer-in-loop shape: each iteration allocates a defer
		// record that only runs at function exit.
		"netcast/flush.go": `package netcast

func flushAll(fns []func()) {
	for _, fn := range fns {
		defer fn()
	}
}
`,
	})
	findings := lintModule(t, root)
	want := map[string]bool{
		"locksend":    false,
		"floatdet":    false,
		"goroleak":    false,
		"lockbalance": false,
		"detrand":     false,
		"errdrop":     false,
		"guardrace":   false,
		"hotalloc":    false,
		"boxparam":    false,
		"loopalloc":   false,
	}
	for _, f := range findings {
		if f.Suppressed {
			t.Errorf("unexpected suppression: %s", f)
		}
		if _, ok := want[f.Analyzer]; ok {
			want[f.Analyzer] = true
		}
	}
	for name, hit := range want {
		if !hit {
			t.Errorf("reintroduced %s bug class not flagged; findings: %v", name, findings)
		}
	}
}

// TestSuppressionDirectives checks the //diverselint:ignore contract:
// same-line and preceding-line directives suppress (with the reason
// captured), a directive for a different analyzer does not, and a
// reasonless directive is itself a finding.
func TestSuppressionDirectives(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"a/a.go": `package a

func sameLine(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //diverselint:ignore floatdet low bits immaterial here
	}
	return s
}

func precedingLine(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		//diverselint:ignore floatdet low bits immaterial here
		s += v
	}
	return s
}

func wrongAnalyzer(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //diverselint:ignore floateq wrong analyzer name
	}
	return s
}

func noReason(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //diverselint:ignore floatdet
	}
	return s
}
`,
	})
	findings := lintModule(t, root)
	var suppressed, unsuppressed, malformed int
	for _, f := range findings {
		switch {
		case f.Analyzer == "ignorespec":
			malformed++
		case f.Suppressed:
			suppressed++
			if f.Reason == "" {
				t.Errorf("suppressed finding lost its reason: %s", f)
			}
		default:
			unsuppressed++
		}
	}
	// sameLine + precedingLine suppressed; wrongAnalyzer + noReason
	// still flagged; the reasonless directive adds one ignorespec.
	if suppressed != 2 || unsuppressed != 2 || malformed != 1 {
		t.Errorf("got %d suppressed, %d unsuppressed, %d malformed; want 2, 2, 1\nfindings: %v",
			suppressed, unsuppressed, malformed, findings)
	}
}

// TestCleanModule: a module using all the blessed patterns yields no
// findings.
func TestCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"a/a.go": `package a

import "sort"

func cost(groups map[int]float64) float64 {
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += groups[k]
	}
	return total
}
`,
	})
	for _, f := range lintModule(t, root) {
		t.Errorf("unexpected finding on clean module: %s", f)
	}
}

package summary

import (
	"go/ast"
	"go/types"
	"strings"

	"diversecast/internal/analysis/callgraph"
)

// recordAccesses walks one CFG node and appends an Access per struct
// field it touches, with the lock set held before the node runs.
// Nested function literals are excluded (they are their own nodes,
// with their own lock context); expressions inside go/defer
// statements ARE included — receiver and arguments are evaluated at
// the statement, whatever happens to the call itself.
func (c *comp) recordAccesses(node ast.Node, f fact, s *FuncSummary, inTest bool) {
	r := &accessRec{c: c, f: f, s: s, test: inTest}
	switch n := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			r.write(lhs)
		}
		for _, rhs := range n.Rhs {
			r.read(rhs)
		}
	case *ast.IncDecStmt:
		r.write(n.X)
	default:
		r.read(node)
	}
}

type accessRec struct {
	c    *comp
	f    fact
	s    *FuncSummary
	test bool
}

// write records e as a mutation target: the field assigned, or — for
// element/deref writes — the field whose contents are written
// through.
func (r *accessRec) write(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if r.record(e, true, false) {
			r.read(e.X)
			return
		}
		r.read(e)
	case *ast.IndexExpr:
		// s.buf[i] = v mutates what s.buf holds.
		r.write(e.X)
		r.read(e.Index)
	case *ast.StarExpr:
		// *p = v writes through the pointer; reading p is what
		// touches the field.
		r.read(e.X)
	default:
		r.read(e)
	}
}

// read walks root recording every field access, treating &f as a
// write (the pointer may be written through) and classifying
// sync/atomic calls on &f as atomic.
func (r *accessRec) read(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := atomicCall(r.c.info, n); ok {
				for _, arg := range n.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
						if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
							if r.recordAtomic(sel, atomicWrites(name)) {
								r.read(sel.X)
								continue
							}
						}
					}
					r.read(arg)
				}
				r.read(n.Fun)
				return false
			}
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					if r.record(sel, true, false) {
						r.read(sel.X)
						return false
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			if r.record(n, false, false) {
				r.read(n.X)
				return false
			}
			return true
		}
		return true
	})
}

// record appends an Access if e selects a struct field of an
// in-program type, reporting whether it did (so the caller recurses
// into the base expression itself).
func (r *accessRec) record(e *ast.SelectorExpr, write, atomic bool) bool {
	sel, ok := r.c.info.Selections[e]
	if !ok || sel.Kind() != types.FieldVal {
		return false
	}
	id, fld := r.c.fieldID(sel)
	if id == "" {
		return false
	}
	switch syncKind(fld.Type()) {
	case "sync":
		return true // the lock itself is not guarded data
	case "atomic":
		atomic = true
	}
	r.s.Accesses = append(r.s.Accesses, &Access{
		Field:  id,
		Pos:    e.Sel.Pos(),
		Write:  write,
		Atomic: atomic,
		Test:   r.test,
		Node:   r.c.n,
		Held:   cloneSet(r.f.held),
	})
	return true
}

func (r *accessRec) recordAtomic(e *ast.SelectorExpr, write bool) bool {
	return r.record(e, write, true)
}

// atomicCall reports whether the call targets sync/atomic, returning
// the function name.
func atomicCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return fn.Name(), true
}

// atomicWrites reports whether the named sync/atomic function mutates
// its target.
func atomicWrites(name string) bool {
	return !strings.HasPrefix(name, "Load")
}

// hotPkgs are the import-path leaves whose error returns must not be
// dropped — shared vocabulary with the errdrop pass.
var hotPkgs = map[string]bool{
	"netcast": true,
	"wire":    true,
	"obs":     true,
}

// hotError reports whether the function returns an error that may
// originate from a hot-package call — directly (`return wire.X()`),
// via a local (`err := wire.X(); ...; return err`), or transitively
// through an in-program callee whose own summary is hot.
func (c *comp) hotError() bool {
	if !returnsError(c.n) {
		return false
	}
	// Pass 1: objects assigned from hot calls, flow-insensitively.
	hot := make(map[types.Object]bool)
	c.walkOwn(func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		tainted := false
		for _, rhs := range as.Rhs {
			if c.anyHotCall(rhs) {
				tainted = true
				break
			}
		}
		if !tainted {
			return
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					hot[obj] = true
				} else if obj := c.info.Uses[id]; obj != nil {
					hot[obj] = true
				}
			}
		}
	})
	// Pass 2: does any return carry the taint?
	found := false
	c.walkOwn(func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		if len(ret.Results) == 0 {
			// Naked return: named results carry whatever was
			// assigned to them.
			for obj := range hot {
				if v, ok := obj.(*types.Var); ok && isNamedResult(c.n, v) {
					found = true
					return
				}
			}
			return
		}
		for _, res := range ret.Results {
			if c.anyHotCall(res) {
				found = true
				return
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && hot[c.info.Uses[id]] {
				found = true
				return
			}
		}
	})
	return found
}

// walkOwn visits the function body excluding nested literals.
func (c *comp) walkOwn(visit func(ast.Node)) {
	ast.Inspect(c.n.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// anyHotCall reports whether e contains a call whose error result
// originates in a hot package or a hot-summary callee.
func (c *comp) anyHotCall(e ast.Expr) bool {
	hot := false
	ast.Inspect(e, func(n ast.Node) bool {
		if hot {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.isHotCall(call) {
			hot = true
			return false
		}
		return true
	})
	return hot
}

func (c *comp) isHotCall(call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = c.info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = c.info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if hotPkgs[path[strings.LastIndex(path, "/")+1:]] && callReturnsError(c.info, call) {
		return true
	}
	// Transitive: a single in-program callee whose summary is hot.
	if callee := singleCallee(c.p.sites[call], callgraph.Call); callee != nil {
		if cs := c.p.Funcs[callee]; cs != nil && cs.HotError {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// returnsError reports whether the node's signature includes an error
// result.
func returnsError(n *callgraph.Node) bool {
	sig := n.Signature()
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// isNamedResult reports whether v is one of the function's named
// results.
func isNamedResult(n *callgraph.Node, v *types.Var) bool {
	sig := n.Signature()
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if res.At(i) == v {
			return true
		}
	}
	return false
}

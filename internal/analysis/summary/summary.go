// Package summary computes per-function interprocedural summaries
// over the call graph: the lock-discipline layer the guardrace,
// lockorder, lockbalance, and errdrop passes share.
//
// For every function body (declared functions and function literals
// alike) the builder runs one forward dataflow pass over the cfg
// package's graph, tracking three must-facts per sync.Mutex/RWMutex:
//
//   - held:  the lock is held at this point on every path. Deferred
//     unlocks do NOT clear held — they run at exit, so the lock
//     protects everything after the defer statement.
//   - owed:  acquired here and not yet discharged by an unlock or a
//     defer-unlock — the function's net-acquire obligation.
//   - rel:   released without a matching local acquire — the shape of
//     an unlock helper.
//
// Net effects at the exit block become the function's summary, and
// the bottom-up pass over SCCs (the call graph emits callees first)
// lets call sites apply their callees' net effects transitively:
// "b.lock() acquires b.mu" is visible to every caller. A second,
// top-down pass intersects the lock sets held at every ordinary call
// site of a function to compute EntryHeld — the locks a function can
// rely on its callers holding. Goroutine spawns and function-value
// references contribute nothing (a new goroutine inherits no locks;
// a stored function value runs who-knows-where), and exported
// functions, main/init, and test functions are roots with an empty
// entry context.
//
// Lock and field identities are TYPE-based: "pkgpath.Type.field"
// names the mu field of every value of that struct type at once, and
// package-level locks are "pkgpath.var". This is the classic
// coarsening that makes whole-program guard inference tractable —
// two instances of the same struct share one identity, which is
// exactly what a per-struct guard contract wants. Locks held in
// local variables are untracked.
//
// Alongside lock facts the walk records every struct-field access
// with the lock set held at that point (guardrace's raw material),
// every lock-acquisition site with the locks already held
// (lockorder's raw material), goroutine spawn sites, and a HotError
// bit: the function returns an error that may originate from a
// netcast/wire/obs call, directly or through in-program callees —
// errdrop's "discarded three frames up" fuel.
//
// Everything is deterministic: nodes are visited in call-graph order,
// blocks and statements in CFG order, and all map-derived output is
// sorted before use.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/cfg"
	"diversecast/internal/analysis/escape"
)

// A LockID names a mutex by type identity: "pkgpath.Type.field" for a
// struct-field lock, "pkgpath.var" for a package-level lock.
type LockID string

// A FieldID names a struct field by type identity:
// "pkgpath.Type.field".
type FieldID string

// An Access is one read or write of a struct field, with the lock
// context it happened under.
type Access struct {
	Field FieldID
	Pos   token.Pos
	// Write marks assignments, ++/--, element writes through the
	// field, and address-taking (a pointer that escapes may be
	// written through).
	Write bool
	// Atomic marks accesses through sync/atomic — atomic.* calls on
	// &f, or any access to a field of a sync/atomic type.
	Atomic bool
	// Test marks accesses in _test.go files; guard inference ignores
	// them (tests poke at internals single-goroutine).
	Test bool
	// Node is the function body the access appears in.
	Node *callgraph.Node
	// Held is the lock set held locally at the access. EffectiveHeld
	// adds the function's entry context.
	Held map[LockID]bool
}

// An AcquireSite is one lock acquisition (direct, or transitively
// through a callee's net-acquire effect) with the locks already held.
type AcquireSite struct {
	Lock LockID
	Pos  token.Pos
	// Via is the callee name when the acquisition happens inside a
	// call ("" for a direct mu.Lock()).
	Via string
	// Held is the lock set held locally just before the acquisition.
	Held map[LockID]bool
}

// A SpawnSite is one go statement.
type SpawnSite struct {
	Pos token.Pos
	// Callee is the spawned function's node, nil when the spawned
	// expression does not resolve to an in-program function.
	Callee *callgraph.Node
}

// A FuncSummary is the interprocedural digest of one function body.
type FuncSummary struct {
	Node *callgraph.Node

	// NetAcquire maps each lock acquired — and still owed — on every
	// path to exit to its acquisition position.
	NetAcquire map[LockID]token.Pos
	// NetRelease holds locks released on every path without a local
	// acquisition (unlock helpers).
	NetRelease map[LockID]bool
	// EntryHeld holds locks held by EVERY ordinary caller at every
	// call site (empty for roots: exported functions, main/init,
	// tests, goroutine targets, stored function values).
	EntryHeld map[LockID]bool
	// HotError: the function returns an error that may originate from
	// a netcast/wire/obs call, directly or through its callees.
	HotError bool

	Spawns   []SpawnSite
	Accesses []*Access
	Acquires []AcquireSite
}

// A Program is the whole-program summary set.
type Program struct {
	Graph *callgraph.Graph
	Fset  *token.FileSet
	// Funcs has one summary per call-graph node with a body.
	Funcs map[*callgraph.Node]*FuncSummary
	// Guards are the //diverselint:guard field contracts, in file
	// order (see guards.go).
	Guards []*GuardSpec
	// Alloc is the whole-program allocation summary set (hot-path
	// roots, per-function sites, the transitive Allocates bit) the
	// hotalloc/loopalloc/boxparam passes and the -hot report share.
	Alloc *escape.Program

	inProgram map[string]bool
	sites     map[*ast.CallExpr][]*callgraph.Edge
	callHeld  map[*callgraph.Edge]map[LockID]bool
}

// Of returns n's summary, nil for bodyless nodes.
func (p *Program) Of(n *callgraph.Node) *FuncSummary { return p.Funcs[n] }

// EdgesAt returns the call-graph edges leaving the given call
// expression (nil when the call does not resolve in-program).
func (p *Program) EdgesAt(call *ast.CallExpr) []*callgraph.Edge { return p.sites[call] }

// EffectiveHeld is the access's local lock set plus the enclosing
// function's entry context — the set guard inference tests against.
func (p *Program) EffectiveHeld(a *Access) map[LockID]bool {
	s := p.Funcs[a.Node]
	if s == nil || len(s.EntryHeld) == 0 {
		return a.Held
	}
	out := make(map[LockID]bool, len(a.Held)+len(s.EntryHeld))
	for l := range a.Held {
		out[l] = true
	}
	for l := range s.EntryHeld {
		out[l] = true
	}
	return out
}

// InProgram reports whether the package path belongs to the analyzed
// program.
func (p *Program) InProgram(path string) bool { return p.inProgram[path] }

// Build computes summaries for every function in the graph: one
// bottom-up pass over the SCC condensation for net effects, accesses,
// and HotError, then one top-down pass for entry-held contexts, then
// the //diverselint:guard contract scan.
func Build(fset *token.FileSet, pkgs []*analysis.Package, g *callgraph.Graph) *Program {
	p := &Program{
		Graph:     g,
		Fset:      fset,
		Funcs:     make(map[*callgraph.Node]*FuncSummary),
		inProgram: make(map[string]bool),
		sites:     make(map[*ast.CallExpr][]*callgraph.Edge),
		callHeld:  make(map[*callgraph.Edge]map[LockID]bool),
	}
	for _, pkg := range pkgs {
		p.inProgram[pkg.Path] = true
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Site != nil {
				p.sites[e.Site] = append(p.sites[e.Site], e)
			}
		}
	}

	// Bottom-up: SCCs come callees-first. Within a multi-node SCC
	// (mutual recursion) iterate to a fixpoint on the summary facts
	// that feed back into callers — net effects and HotError.
	for _, scc := range g.SCCs {
		recursive := len(scc) > 1
		if !recursive {
			for _, e := range scc[0].Out {
				if e.Callee == scc[0] {
					recursive = true
					break
				}
			}
		}
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				if n.Body == nil {
					continue
				}
				s := p.compute(n)
				if !effectsEqual(p.Funcs[n], s) {
					changed = true
				}
				p.Funcs[n] = s
			}
			if !recursive || !changed || round >= 4 {
				break
			}
		}
	}

	// Top-down: SCCs backward visits callers before callees.
	for i := len(g.SCCs) - 1; i >= 0; i-- {
		for _, n := range g.SCCs[i] {
			s := p.Funcs[n]
			if s == nil {
				continue
			}
			s.EntryHeld = p.entryHeld(n)
		}
	}

	p.collectGuards(pkgs)
	p.Alloc = escape.Build(fset, pkgs, g)
	return p
}

// effectsEqual compares the summary facts that flow into callers.
func effectsEqual(a, b *FuncSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.HotError != b.HotError ||
		len(a.NetAcquire) != len(b.NetAcquire) ||
		len(a.NetRelease) != len(b.NetRelease) {
		return false
	}
	for l := range a.NetAcquire {
		if _, ok := b.NetAcquire[l]; !ok {
			return false
		}
	}
	for l := range a.NetRelease {
		if !b.NetRelease[l] {
			return false
		}
	}
	return true
}

// entryHeld intersects the lock sets of every ordinary (call/defer)
// in-edge. Any root condition — exported, main/init, test file, a go
// or ref in-edge, no in-edges at all — means the function can run
// with no locks, so the context is empty.
func (p *Program) entryHeld(n *callgraph.Node) map[LockID]bool {
	if n.Fn != nil {
		if n.Fn.Exported() || n.Fn.Name() == "main" || n.Fn.Name() == "init" {
			return nil
		}
	}
	if strings.HasSuffix(p.Fset.Position(n.Pos).Filename, "_test.go") {
		return nil
	}
	if len(n.In) == 0 {
		return nil
	}
	var entry map[LockID]bool
	for _, e := range n.In {
		if e.Kind == callgraph.Go || e.Kind == callgraph.Ref {
			return nil
		}
		contrib := make(map[LockID]bool)
		for l := range p.callHeld[e] {
			contrib[l] = true
		}
		if e.Caller.SCC != n.SCC {
			// The caller's own entry context extends the site's held
			// set; same-SCC edges use the site set alone (the caller's
			// context is still being computed).
			if cs := p.Funcs[e.Caller]; cs != nil {
				for l := range cs.EntryHeld {
					contrib[l] = true
				}
			}
		}
		if entry == nil {
			entry = contrib
			continue
		}
		for l := range entry {
			if !contrib[l] {
				delete(entry, l)
			}
		}
		if len(entry) == 0 {
			return nil
		}
	}
	return entry
}

// fact is the per-point lock state: see the package comment.
type fact struct {
	held map[LockID]bool
	owed map[LockID]token.Pos
	rel  map[LockID]bool
}

func newFact() fact {
	return fact{
		held: map[LockID]bool{},
		owed: map[LockID]token.Pos{},
		rel:  map[LockID]bool{},
	}
}

func (f fact) clone() fact {
	g := fact{
		held: make(map[LockID]bool, len(f.held)),
		owed: make(map[LockID]token.Pos, len(f.owed)),
		rel:  make(map[LockID]bool, len(f.rel)),
	}
	for k, v := range f.held {
		g.held[k] = v
	}
	for k, v := range f.owed {
		g.owed[k] = v
	}
	for k, v := range f.rel {
		g.rel[k] = v
	}
	return g
}

// joinFact intersects all three components (must-facts). Owed
// positions keep the smaller position so the solution is independent
// of visit order.
func joinFact(a, b fact) fact {
	out := newFact()
	for l := range a.held {
		if b.held[l] {
			out.held[l] = true
		}
	}
	for l, pa := range a.owed {
		if pb, ok := b.owed[l]; ok {
			if pb < pa {
				pa = pb
			}
			out.owed[l] = pa
		}
	}
	for l := range a.rel {
		if b.rel[l] {
			out.rel[l] = true
		}
	}
	return out
}

func factEqual(a, b fact) bool {
	if len(a.held) != len(b.held) || len(a.owed) != len(b.owed) || len(a.rel) != len(b.rel) {
		return false
	}
	for l := range a.held {
		if !b.held[l] {
			return false
		}
	}
	for l := range a.owed {
		if _, ok := b.owed[l]; !ok {
			return false
		}
	}
	for l := range a.rel {
		if !b.rel[l] {
			return false
		}
	}
	return true
}

// comp computes one function's summary.
type comp struct {
	p    *Program
	n    *callgraph.Node
	info *types.Info
}

func (p *Program) compute(n *callgraph.Node) *FuncSummary {
	s := &FuncSummary{
		Node:       n,
		NetAcquire: map[LockID]token.Pos{},
		NetRelease: map[LockID]bool{},
	}
	c := &comp{p: p, n: n, info: n.Pkg.TypesInfo}
	g := cfg.New(n.Body, cfg.Options{NoReturn: cfg.NoReturn(c.info)})
	facts := cfg.Forward(g, cfg.Lattice[fact]{
		Entry:    newFact(),
		Join:     joinFact,
		Transfer: func(node ast.Node, f fact) fact { return c.apply(node, f, nil) },
		Equal:    factEqual,
	})

	// Recording walk: re-fold the converged facts block by block,
	// this time capturing accesses, acquisitions, call-site held
	// sets, and spawns at each node.
	inTest := strings.HasSuffix(p.Fset.Position(n.Pos).Filename, "_test.go")
	for _, blk := range g.Blocks {
		if !facts.Reached[blk] {
			continue
		}
		f := facts.In[blk]
		for _, node := range blk.Nodes {
			c.recordAccesses(node, f, s, inTest)
			f = c.apply(node, f, s)
		}
	}

	if facts.Reached[g.Exit] {
		exit := facts.In[g.Exit]
		for l, pos := range exit.owed {
			s.NetAcquire[l] = pos
		}
		for l := range exit.rel {
			s.NetRelease[l] = true
		}
		// A deferred call runs at exit: its context is what was held
		// at registration AND still held at exit.
		for _, e := range n.Out {
			if e.Kind != callgraph.Defer {
				continue
			}
			held := p.callHeld[e]
			for l := range held {
				if !exit.held[l] {
					delete(held, l)
				}
			}
		}
	}

	s.HotError = c.hotError()
	return s
}

// apply is the transfer function. With s == nil it only advances the
// fact (fixpoint mode); with s it also records acquisition sites,
// call-site held sets, and spawns (recording mode).
func (c *comp) apply(node ast.Node, f fact, s *FuncSummary) fact {
	switch n := node.(type) {
	case *ast.DeferStmt:
		f = c.applyDefer(n, f, s)
		for _, a := range n.Call.Args {
			f = c.applyCalls(a, f, s)
		}
	case *ast.GoStmt:
		if s != nil {
			spawn := SpawnSite{Pos: n.Pos()}
			for _, e := range c.p.sites[n.Call] {
				if e.Kind == callgraph.Go {
					spawn.Callee = e.Callee
					break
				}
			}
			s.Spawns = append(s.Spawns, spawn)
		}
		for _, a := range n.Call.Args {
			f = c.applyCalls(a, f, s)
		}
	default:
		f = c.applyCalls(node, f, s)
	}
	return f
}

// applyDefer handles a defer statement: a deferred unlock (or a
// deferred call to a net-release helper) discharges the owed
// obligation without clearing held — the lock stays held until exit.
func (c *comp) applyDefer(n *ast.DeferStmt, f fact, s *FuncSummary) fact {
	if _, _, op := analysis.ClassifyLockCall(c.info, n.Call); op == analysis.LockRelease {
		if l := c.lockID(n.Call.Fun.(*ast.SelectorExpr).X); l != "" {
			g := f.clone()
			delete(g.owed, l)
			f = g
		}
		return f
	}
	edges := c.p.sites[n.Call]
	if s != nil {
		for _, e := range edges {
			if e.Kind == callgraph.Defer {
				c.p.callHeld[e] = cloneSet(f.held)
			}
		}
	}
	if callee := singleCallee(edges, callgraph.Defer); callee != nil {
		if cs := c.p.Funcs[callee]; cs != nil && len(cs.NetRelease) > 0 {
			g := f.clone()
			for _, l := range sortedLocks(cs.NetRelease) {
				delete(g.owed, l)
			}
			f = g
		}
	}
	return f
}

// applyCalls folds every call expression under root (nested function
// literals excluded — they are their own nodes) into the fact.
func (c *comp) applyCalls(root ast.Node, f fact, s *FuncSummary) fact {
	var calls []*ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	for _, call := range calls {
		f = c.applyCall(call, f, s)
	}
	return f
}

func (c *comp) applyCall(call *ast.CallExpr, f fact, s *FuncSummary) fact {
	if _, _, op := analysis.ClassifyLockCall(c.info, call); op != analysis.LockNone {
		l := c.lockID(call.Fun.(*ast.SelectorExpr).X)
		if l == "" {
			return f
		}
		if op == analysis.LockAcquire {
			if s != nil {
				s.Acquires = append(s.Acquires, AcquireSite{
					Lock: l, Pos: call.Pos(), Held: cloneSet(f.held),
				})
			}
			return acquire(f, l, call.Pos())
		}
		return release(f, l)
	}

	edges := c.p.sites[call]
	if s != nil {
		for _, e := range edges {
			if e.Kind == callgraph.Call {
				c.p.callHeld[e] = cloneSet(f.held)
			}
		}
	}
	// Apply the callee's net effects — only for an unambiguous
	// (single-callee) synchronous call; interface dispatch with
	// several candidates applies nothing.
	callee := singleCallee(edges, callgraph.Call)
	if callee == nil {
		return f
	}
	cs := c.p.Funcs[callee]
	if cs == nil {
		return f
	}
	for _, l := range sortedAcquires(cs.NetAcquire) {
		if s != nil {
			s.Acquires = append(s.Acquires, AcquireSite{
				Lock: l, Pos: call.Pos(), Via: callee.Name, Held: cloneSet(f.held),
			})
		}
		f = acquire(f, l, call.Pos())
	}
	for _, l := range sortedLocks(cs.NetRelease) {
		f = release(f, l)
	}
	return f
}

func singleCallee(edges []*callgraph.Edge, kind callgraph.EdgeKind) *callgraph.Node {
	var out *callgraph.Node
	for _, e := range edges {
		if e.Kind != kind {
			continue
		}
		if out != nil {
			return nil
		}
		out = e.Callee
	}
	return out
}

func acquire(f fact, l LockID, pos token.Pos) fact {
	g := f.clone()
	g.held[l] = true
	if g.rel[l] {
		delete(g.rel, l)
	} else if _, ok := g.owed[l]; !ok {
		g.owed[l] = pos
	}
	return g
}

func release(f fact, l LockID) fact {
	g := f.clone()
	delete(g.held, l)
	if _, ok := g.owed[l]; ok {
		delete(g.owed, l)
	} else {
		g.rel[l] = true
	}
	return g
}

func cloneSet(m map[LockID]bool) map[LockID]bool {
	out := make(map[LockID]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func sortedLocks(m map[LockID]bool) []LockID {
	out := make([]LockID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAcquires(m map[LockID]token.Pos) []LockID {
	out := make([]LockID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lockID resolves a mutex receiver expression to its type-based
// identity: a struct field ("pkg.Type.field"), a package-level var
// ("pkg.var"), or — for a promoted Lock() on a struct embedding a
// mutex — the embedded field. Locals return "".
func (c *comp) lockID(recv ast.Expr) LockID {
	recv = ast.Unparen(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if id, _ := c.fieldID(sel); id != "" {
				return LockID(id)
			}
		}
		return ""
	case *ast.Ident:
		v, ok := c.info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return LockID(v.Pkg().Path() + "." + v.Name())
		}
		// A promoted c.Lock(): the receiver is the struct itself and
		// the mutex is an embedded field.
		if id := embeddedMutex(v.Type()); id != "" {
			return id
		}
		return ""
	}
	return ""
}

// embeddedMutex names the embedded sync.Mutex/RWMutex field of t's
// struct type, "" when there is none.
func embeddedMutex(t types.Type) LockID {
	named, _ := deref(t).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	st, _ := named.Underlying().(*types.Struct)
	if st == nil {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if fld.Embedded() && syncKind(fld.Type()) == "sync" {
			return LockID(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name())
		}
	}
	return ""
}

// fieldID names the field a FieldVal selection reaches, by the
// selection's receiver type: "pkg.Type.field". It returns "" for
// receivers that are not in-program named structs.
func (c *comp) fieldID(sel *types.Selection) (FieldID, *types.Var) {
	fld, ok := sel.Obj().(*types.Var)
	if !ok {
		return "", nil
	}
	named, _ := deref(sel.Recv()).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return "", nil
	}
	if !c.p.inProgram[named.Obj().Pkg().Path()] {
		return "", nil
	}
	return FieldID(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name()), fld
}

func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// syncKind classifies a field's type: "sync" for sync.Mutex & co
// (excluded from access records — the lock is not data), "atomic"
// for sync/atomic value types (every access counts as atomic), ""
// otherwise.
func syncKind(t types.Type) string {
	named, _ := deref(t).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	switch named.Obj().Pkg().Path() {
	case "sync":
		return "sync"
	case "sync/atomic":
		return "atomic"
	}
	return ""
}

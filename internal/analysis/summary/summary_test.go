package summary_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/summary"
)

func buildProgram(t *testing.T, files map[string]string) *summary.Program {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := analysis.FindModule(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := mod.ExpandPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(mod.Resolver())
	loader.GoVersion = mod.GoVersion
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", p, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	g := callgraph.Build(pkgs)
	return summary.Build(loader.Fset, pkgs, g)
}

func nodeNamed(t *testing.T, p *summary.Program, suffix string) *summary.FuncSummary {
	t.Helper()
	for _, n := range p.Graph.Nodes {
		if strings.HasSuffix(n.Name, suffix) {
			if s := p.Of(n); s != nil {
				return s
			}
			t.Fatalf("node %q has no summary", suffix)
		}
	}
	t.Fatalf("no node %q", suffix)
	return nil
}

const gomod = "module example.com/m\n\ngo 1.24\n"

func TestNetEffectsAndHelpers(t *testing.T) {
	p := buildProgram(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) lock()   { b.mu.Lock() }
func (b *box) unlock() { b.mu.Unlock() }

func (b *box) balanced() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) deferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) viaHelper() {
	b.lock()
	b.n++
	b.unlock()
}
`,
	})
	const mu = summary.LockID("example.com/m/a.box.mu")

	lock := nodeNamed(t, p, ".lock")
	if _, ok := lock.NetAcquire[mu]; !ok {
		t.Errorf("lock(): NetAcquire = %v, want %s", lock.NetAcquire, mu)
	}
	unlock := nodeNamed(t, p, ".unlock")
	if !unlock.NetRelease[mu] {
		t.Errorf("unlock(): NetRelease = %v, want %s", unlock.NetRelease, mu)
	}
	for _, name := range []string{".balanced", ".deferred", ".viaHelper"} {
		s := nodeNamed(t, p, name)
		if len(s.NetAcquire) != 0 || len(s.NetRelease) != 0 {
			t.Errorf("%s: net effects %v/%v, want none", name, s.NetAcquire, s.NetRelease)
		}
		// The b.n access inside must be seen with mu held — including
		// through the lock()/unlock() helpers and through defer.
		found := false
		for _, a := range s.Accesses {
			if a.Field == "example.com/m/a.box.n" {
				found = true
				if !p.EffectiveHeld(a)[mu] {
					t.Errorf("%s: access to box.n not seen as guarded by %s", name, mu)
				}
			}
		}
		if !found {
			t.Errorf("%s: no access record for box.n", name)
		}
	}
}

func TestEntryHeldPropagation(t *testing.T) {
	p := buildProgram(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// bump is only ever called with mu held.
func (b *box) bump() { b.n++ }

func (b *box) Incr() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump()
}

func (b *box) Twice() {
	b.mu.Lock()
	b.bump()
	b.bump()
	b.mu.Unlock()
}

// spawned runs on its own goroutine: no inherited locks.
func (b *box) spawned() { b.n++ }

func (b *box) Kick() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.spawned()
}
`,
	})
	const mu = summary.LockID("example.com/m/a.box.mu")

	bump := nodeNamed(t, p, ".bump")
	if !bump.EntryHeld[mu] {
		t.Errorf("bump(): EntryHeld = %v, want %s (every caller holds it)", bump.EntryHeld, mu)
	}
	spawned := nodeNamed(t, p, ".spawned")
	if len(spawned.EntryHeld) != 0 {
		t.Errorf("spawned(): EntryHeld = %v, want empty (go target inherits nothing)", spawned.EntryHeld)
	}
	// Exported functions are roots.
	incr := nodeNamed(t, p, ".Incr")
	if len(incr.EntryHeld) != 0 {
		t.Errorf("Incr(): EntryHeld = %v, want empty (exported root)", incr.EntryHeld)
	}
	kick := nodeNamed(t, p, ".Kick")
	if len(kick.Spawns) != 1 {
		t.Fatalf("Kick(): %d spawn sites, want 1", len(kick.Spawns))
	}
	if kick.Spawns[0].Callee == nil || !strings.HasSuffix(kick.Spawns[0].Callee.Name, ".spawned") {
		t.Errorf("Kick(): spawn callee = %v, want spawned", kick.Spawns[0].Callee)
	}
}

func TestAccessModes(t *testing.T) {
	p := buildProgram(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu    sync.Mutex
	plain int64
	gauge atomic.Int64
}

func (s *stats) Mixed() {
	s.mu.Lock()
	s.plain = 1 // write under lock
	s.mu.Unlock()
	atomic.AddInt64(&s.plain, 1) // atomic write, no lock
	s.gauge.Store(2)             // atomic-typed field
	_ = s.plain                  // plain read, no lock
}
`,
	})
	s := nodeNamed(t, p, ".Mixed")
	var writes, atomics, reads int
	for _, a := range s.Accesses {
		switch {
		case a.Field == "example.com/m/a.stats.plain" && a.Atomic:
			atomics++
			if !a.Write {
				t.Error("atomic.AddInt64 access not marked as write")
			}
		case a.Field == "example.com/m/a.stats.plain" && a.Write:
			writes++
			if !a.Held["example.com/m/a.stats.mu"] {
				t.Error("locked write not seen as held")
			}
		case a.Field == "example.com/m/a.stats.plain":
			reads++
		case a.Field == "example.com/m/a.stats.gauge":
			if !a.Atomic {
				t.Error("atomic.Int64 field access not marked atomic")
			}
		case strings.HasSuffix(string(a.Field), ".mu"):
			t.Errorf("mutex field recorded as data access: %v", a.Field)
		}
	}
	if writes != 1 || atomics != 1 || reads != 1 {
		t.Errorf("plain field: %d writes / %d atomics / %d reads, want 1/1/1", writes, atomics, reads)
	}
}

func TestAcquireSitesAndHeld(t *testing.T) {
	p := buildProgram(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

import "sync"

type pair struct {
	a, b sync.Mutex
	n    int
}

func (p *pair) Nested() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}
`,
	})
	s := nodeNamed(t, p, ".Nested")
	if len(s.Acquires) != 2 {
		t.Fatalf("%d acquire sites, want 2", len(s.Acquires))
	}
	second := s.Acquires[1]
	if second.Lock != "example.com/m/a.pair.b" {
		t.Errorf("second acquire = %s, want pair.b", second.Lock)
	}
	if !second.Held["example.com/m/a.pair.a"] {
		t.Errorf("pair.b acquired with held=%v, want pair.a held", second.Held)
	}
}

func TestHotErrorPropagation(t *testing.T) {
	p := buildProgram(t, map[string]string{
		"go.mod": gomod,
		"wire/wire.go": `package wire

import "errors"

func Send() error { return errors.New("boom") }
`,
		"a/a.go": `package a

import "example.com/m/wire"

// frame1 returns the hot error directly.
func frame1() error { return wire.Send() }

// frame2 propagates it through a local.
func frame2() error {
	err := frame1()
	return err
}

// frame3 propagates frame2's — three frames from the wire call.
func frame3() error { return frame2() }

// cold never touches a hot package.
func cold() error { return nil }
`,
	})
	for _, name := range []string{".frame1", ".frame2", ".frame3"} {
		if s := nodeNamed(t, p, name); !s.HotError {
			t.Errorf("%s: HotError = false, want true", name)
		}
	}
	if s := nodeNamed(t, p, ".cold"); s.HotError {
		t.Error("cold(): HotError = true, want false")
	}
}

func TestGuardDirectives(t *testing.T) {
	p := buildProgram(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

import "sync"

type box struct {
	mu sync.Mutex
	//diverselint:guard mu
	n int
	//diverselint:guard none written once before any goroutine starts
	cfg string
	//diverselint:guard missing
	bad int
}
`,
	})
	byField := make(map[summary.FieldID]*summary.GuardSpec)
	for _, g := range p.Guards {
		byField[g.Field] = g
	}
	n := byField["example.com/m/a.box.n"]
	if n == nil || n.Lock != "example.com/m/a.box.mu" || n.Err != "" {
		t.Errorf("box.n guard = %+v, want lock box.mu", n)
	}
	cfg := byField["example.com/m/a.box.cfg"]
	if cfg == nil || !cfg.None || cfg.Reason == "" {
		t.Errorf("box.cfg guard = %+v, want none with reason", cfg)
	}
	bad := byField["example.com/m/a.box.bad"]
	if bad == nil || bad.Err == "" {
		t.Errorf("box.bad guard = %+v, want parse error", bad)
	}
	for _, g := range p.Guards {
		if g.Pos == token.NoPos {
			t.Errorf("guard %s has no position", g.Field)
		}
	}
}

package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"diversecast/internal/analysis"
)

// guardPrefix introduces a field guard contract:
//
//	//diverselint:guard mu            — field is guarded by sibling mutex mu
//	//diverselint:guard none <reason> — field is deliberately unguarded
//	                                    (single-owner, immutable-after-init, ...)
//
// The directive rides on a struct field's doc comment or line
// comment. A named guard turns inference into a hard contract: EVERY
// non-test, non-atomic access must hold the lock, whatever the
// observed ratio. `none` silences inference for the field and
// requires a reason, mirroring the audited-suppression rule.
const guardPrefix = "//diverselint:guard"

// A GuardSpec is one parsed //diverselint:guard directive.
type GuardSpec struct {
	// Field is the annotated field ("pkg.Type.field").
	Field FieldID
	// Lock is the named guard ("pkg.Type.lockfield"); empty for
	// none-directives and malformed ones.
	Lock LockID
	// None marks a deliberate opt-out.
	None bool
	// Reason is the text after `none`.
	Reason string
	// Pos is the directive's position.
	Pos token.Pos
	// PkgPath is the package the struct is declared in (passes report
	// a spec only when analyzing its package).
	PkgPath string
	// Err describes a malformed directive (unknown lock field,
	// missing reason); the guardrace pass reports it verbatim.
	Err string
}

// collectGuards parses every //diverselint:guard directive in the
// analyzed packages, in package/file/declaration order.
func (p *Program) collectGuards(pkgs []*analysis.Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					p.guardStruct(pkg, ts.Name.Name, st)
				}
			}
		}
	}
}

func (p *Program) guardStruct(pkg *analysis.Package, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		text, pos, ok := guardDirective(field)
		if !ok {
			continue
		}
		for _, name := range fieldNames(field) {
			spec := &GuardSpec{
				Field:   FieldID(pkg.Path + "." + typeName + "." + name),
				Pos:     pos,
				PkgPath: pkg.Path,
			}
			p.parseGuard(spec, pkg, st, text)
			p.Guards = append(p.Guards, spec)
		}
	}
}

// guardDirective extracts the directive text from a field's doc or
// line comment.
func guardDirective(field *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == guardPrefix || strings.HasPrefix(c.Text, guardPrefix+" ") {
				return strings.TrimSpace(strings.TrimPrefix(c.Text, guardPrefix)), c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// fieldNames lists a field's declared names; an embedded field is
// named after its type.
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		out := make([]string, len(field.Names))
		for i, n := range field.Names {
			out[i] = n.Name
		}
		return out
	}
	// Embedded: strip pointer and package qualifier.
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return []string{t.Name}
	case *ast.SelectorExpr:
		return []string{t.Sel.Name}
	}
	return nil
}

// parseGuard fills spec from the directive text, validating the named
// lock against the enclosing struct.
func (p *Program) parseGuard(spec *GuardSpec, pkg *analysis.Package, st *ast.StructType, text string) {
	if text == "" {
		spec.Err = "missing guard: want a sibling mutex field name or `none <reason>`"
		return
	}
	name, rest, _ := strings.Cut(text, " ")
	if name == "none" {
		reason := strings.TrimSpace(rest)
		if reason == "" {
			spec.Err = "guard none needs a reason (why is unguarded access safe?)"
			return
		}
		spec.None = true
		spec.Reason = reason
		return
	}
	// The guard must be a sibling sync.Mutex/RWMutex field.
	lockField := findField(st, name)
	if lockField == nil {
		spec.Err = "guard names unknown sibling field " + name
		return
	}
	if !isMutexType(pkg, lockField.Type) {
		spec.Err = "guard field " + name + " is not a sync.Mutex or sync.RWMutex"
		return
	}
	// pkg.Type derived from the annotated field's own ID.
	prefix := string(spec.Field[:strings.LastIndex(string(spec.Field), ".")])
	spec.Lock = LockID(prefix + "." + name)
}

func findField(st *ast.StructType, name string) *ast.Field {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return field
			}
		}
		if len(field.Names) == 0 {
			for _, n := range fieldNames(field) {
				if n == name {
					return field
				}
			}
		}
	}
	return nil
}

func isMutexType(pkg *analysis.Package, expr ast.Expr) bool {
	t := pkg.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	named, _ := deref(t).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// Package analysistest runs one analyzer over a testdata corpus and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Corpus layout is the x/tools GOPATH convention: testdata/src/<pkg>
// holds one package per directory; imports between corpus packages
// resolve within testdata/src, everything else comes from the
// standard library. Expectations are written on the offending line:
//
//	sum += v // want `ranging over a map`
//
// The string is a regular expression that must match the diagnostic
// message. Every diagnostic must be wanted and every want matched.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/summary"
)

// Run loads each corpus package and applies the analyzer, comparing
// diagnostics with the corpus's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		st, err := os.Stat(dir)
		return dir, err == nil && st.IsDir()
	})
	loader.IncludeTests = true

	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading corpus package %s: %v", path, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("corpus %s: type error: %v", path, terr)
		}
		runOne(t, loader.Fset, a, pkg)
	}
}

type expectation struct {
	re  *regexp.Regexp
	hit bool
}

func runOne(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *analysis.Package) {
	t.Helper()
	// key: filename:line
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, pat := range parseWants(t, fset.Position(c.Pos()), c.Text) {
					pos := fset.Position(c.Pos())
					key := posKey(pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{re: pat})
				}
			}
		}
	}

	// Interprocedural passes read whole-program summaries from
	// Pass.Inter; for a corpus the "program" is the corpus package
	// itself.
	pkgs := []*analysis.Package{pkg}
	prog := summary.Build(fset, pkgs, callgraph.Build(pkgs))

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Inter:     prog,
	}
	pass.Report = func(d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		key := posKey(pos.Filename, pos.Line)
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				return
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

var wantRE = regexp.MustCompile("// want (.*)$")

// parseWants extracts the regexps of one comment's want clause; both
// back-quoted and double-quoted patterns are accepted, several per
// comment.
func parseWants(t *testing.T, pos token.Position, comment string) []*regexp.Regexp {
	t.Helper()
	m := wantRE.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var pats []*regexp.Regexp
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, rest)
			}
			raw, rest = rest[1:1+end], rest[2+end:]
		case '"':
			end := strings.IndexByte(rest[1:], '"')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, rest)
			}
			raw, rest = rest[1:1+end], rest[2+end:]
		default:
			t.Fatalf("%s: malformed want clause %q", pos, rest)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
		}
		pats = append(pats, re)
		rest = strings.TrimSpace(rest)
	}
	return pats
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// Package callgraph builds a whole-program call graph over the
// packages the diverselint loader produced — the interprocedural
// skeleton under the summary layer and the guardrace/lockorder
// passes.
//
// Every function declaration and every function literal becomes a
// Node; call sites become Edges tagged with how control transfers:
//
//   - Call: an ordinary synchronous call. The callee runs on the
//     caller's goroutine with the caller's lock state.
//   - Go: the call after a go keyword. The callee runs concurrently,
//     so it inherits NOTHING — no held locks, no deferred cleanups.
//   - Defer: a deferred call. It runs at function exit; passes that
//     track lock state treat its context conservatively.
//   - Ref: a function value taken without being called here (a method
//     value, a function passed as an argument). The graph cannot see
//     when — or whether — it runs, so summary propagation treats the
//     target like a root.
//
// Resolution is purely static, via go/types: direct calls and
// concrete-receiver method calls resolve to exactly one node;
// interface method calls use bounded method-set dispatch — one edge
// per named type in the analyzed program whose method set satisfies
// the interface (the bound is the program itself: types outside the
// analyzed packages do not exist for dispatch purposes). Calls
// through plain function-typed variables are not resolved; the Ref
// edge at the point the value was taken keeps the target reachable.
//
// Construction order is deterministic (packages in the order given,
// files and declarations in source order), and so are the node IDs,
// the edge lists, and the Tarjan SCC condensation built from them —
// a requirement inherited from the repo-wide byte-identical-output
// rule for analysis reports.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"diversecast/internal/analysis"
)

// An EdgeKind says how control reaches the callee.
type EdgeKind int

const (
	// Call is a plain synchronous call expression.
	Call EdgeKind = iota
	// Go is a call spawned on a new goroutine (go f()).
	Go
	// Defer is a deferred call (defer f()).
	Defer
	// Ref is a function value taken without an immediate call: a
	// method value, or a function/literal passed as an argument.
	Ref
)

func (k EdgeKind) String() string {
	switch k {
	case Call:
		return "call"
	case Go:
		return "go"
	case Defer:
		return "defer"
	case Ref:
		return "ref"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// A Node is one function body in the program: a declared function or
// method, or a function literal.
type Node struct {
	// ID is the node's dense, deterministic index into Graph.Nodes.
	ID int
	// Name is a stable human-readable identity: the types.Func full
	// name for declarations, or "<enclosing>$<n>" for the n-th
	// function literal (source order) inside <enclosing>.
	Name string
	// Fn is the declared function object; nil for function literals.
	Fn *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body (nil for bodyless declarations, e.g.
	// assembly stubs — such nodes exist but carry no edges).
	Body *ast.BlockStmt
	// Pkg is the package the body lives in (its TypesInfo covers the
	// body's expressions).
	Pkg *analysis.Package
	// Pos is the function's position (the func keyword).
	Pos token.Pos

	// Out and In are the edge lists, in deterministic order.
	Out, In []*Edge

	// SCC is the index of the node's strongly connected component in
	// Graph.SCCs after condensation.
	SCC int
}

// An Edge is one resolved call/spawn/defer/reference site.
type Edge struct {
	Caller, Callee *Node
	Kind           EdgeKind
	// Pos is the site's position in the caller.
	Pos token.Pos
	// Site is the call expression, nil for Ref edges.
	Site *ast.CallExpr
}

// A Graph is the whole-program call graph with its SCC condensation.
type Graph struct {
	Nodes []*Node

	// SCCs lists the strongly connected components in reverse
	// topological order of the condensation: every edge leaving a
	// component points to a component at a SMALLER index, so iterating
	// SCCs forward visits callees before callers (the bottom-up order
	// summaries want) and backward visits callers first (the top-down
	// order entry-context propagation wants).
	SCCs [][]*Node

	byFn  map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node

	// named is every non-alias named type defined in the analyzed
	// packages, in deterministic order — the dispatch universe for
	// interface method calls.
	named []*types.Named
}

// Signature returns the node's function signature (nil when type
// information is incomplete).
func (n *Node) Signature() *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil && n.Pkg != nil && n.Pkg.TypesInfo != nil {
		sig, _ := n.Pkg.TypesInfo.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// NodeFor returns the node of a declared function or method, nil when
// fn is not part of the analyzed program.
func (g *Graph) NodeFor(fn *types.Func) *Node { return g.byFn[fn] }

// NodeForLit returns the node of a function literal, nil when lit is
// not part of the analyzed program.
func (g *Graph) NodeForLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph of the given packages. The package
// order fixes node IDs, so callers must pass a deterministic slice
// (the loader's sorted import-path order).
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		byFn:  make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}
	b := &builder{g: g}
	for _, pkg := range pkgs {
		b.collectNodes(pkg)
		b.collectNamed(pkg)
	}
	for _, n := range g.Nodes {
		b.collectEdges(n)
	}
	g.condense()
	return g
}

type builder struct {
	g *Graph
}

// collectNodes creates a node per function declaration and per
// function literal, in source order. A literal's node is named after
// its innermost enclosing declared function.
func (b *builder) collectNodes(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{
				ID:   len(b.g.Nodes),
				Name: fn.FullName(),
				Fn:   fn,
				Body: fd.Body,
				Pkg:  pkg,
				Pos:  fd.Pos(),
			}
			b.g.Nodes = append(b.g.Nodes, n)
			b.g.byFn[fn] = n
			if fd.Body != nil {
				b.collectLits(pkg, n.Name, fd.Body)
			}
		}
	}
}

// collectLits creates nodes for the function literals inside body
// (excluding those nested in deeper literals, which recurse with
// their own prefix).
func (b *builder) collectLits(pkg *analysis.Package, prefix string, body *ast.BlockStmt) {
	i := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		node := &Node{
			ID:   len(b.g.Nodes),
			Name: fmt.Sprintf("%s$%d", prefix, i),
			Lit:  lit,
			Body: lit.Body,
			Pkg:  pkg,
			Pos:  lit.Pos(),
		}
		i++
		b.g.Nodes = append(b.g.Nodes, node)
		b.g.byLit[lit] = node
		b.collectLits(pkg, node.Name, lit.Body)
		return false
	}
	ast.Inspect(body, walk)
}

// collectNamed gathers the package's named (non-alias) type
// definitions — the interface-dispatch universe.
func (b *builder) collectNamed(pkg *analysis.Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			b.g.named = append(b.g.named, named)
		}
	}
}

// collectEdges resolves every call, go, defer, and function-value
// reference in n's body (nested literals excluded — they have their
// own nodes).
func (b *builder) collectEdges(n *Node) {
	if n.Body == nil {
		return
	}
	info := n.Pkg.TypesInfo

	// handled marks expressions already consumed as part of a call
	// site (the Fun and its Sel ident), so the value walk below does
	// not double-count them as references.
	handled := make(map[ast.Expr]bool)

	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// The literal's body belongs to its own node; taking the
			// literal here (without the CallExpr case having claimed it
			// as an immediately-invoked Fun) is a reference to it.
			if !handled[node] {
				if callee := b.g.byLit[node]; callee != nil {
					b.addEdge(n, callee, Ref, node.Pos(), nil)
				}
			}
			return false
		case *ast.GoStmt:
			b.callEdges(n, node.Call, Go, handled)
			// Arguments of the spawned call are evaluated here and may
			// take references.
			for _, arg := range node.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.DeferStmt:
			b.callEdges(n, node.Call, Defer, handled)
			for _, arg := range node.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			b.callEdges(n, node, Call, handled)
			return true
		case *ast.SelectorExpr:
			// A method value or method expression (x.M / T.M taken,
			// not called) keeps M reachable.
			if !handled[node] {
				if sel, ok := info.Selections[node]; ok &&
					(sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr) {
					handled[node.Sel] = true
					b.refEdges(n, node, sel)
				}
			}
			return true
		case *ast.Ident:
			if handled[node] {
				return true
			}
			if fn, ok := info.Uses[node].(*types.Func); ok {
				if callee := b.g.byFn[fn]; callee != nil {
					b.addEdge(n, callee, Ref, node.Pos(), nil)
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(n.Body, walk)
}

// callEdges resolves one call expression to its callee node(s) and
// records edges of the given kind. The call's Fun (and its selector
// ident) is marked handled so the value walk does not double-count it
// as a reference.
func (b *builder) callEdges(n *Node, call *ast.CallExpr, kind EdgeKind, handled map[ast.Expr]bool) {
	info := n.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)
	handled[fun] = true

	switch fun := fun.(type) {
	case *ast.Ident:
		// Direct call of a declared function (or a conversion/builtin,
		// which Uses resolves to a non-Func and we skip).
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if callee := b.g.byFn[fn]; callee != nil {
				b.addEdge(n, callee, kind, call.Pos(), call)
			}
		}
	case *ast.SelectorExpr:
		handled[fun.Sel] = true
		sel, ok := info.Selections[fun]
		if !ok {
			// Package-qualified call (pkg.F): resolves through Uses.
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				if callee := b.g.byFn[fn]; callee != nil {
					b.addEdge(n, callee, kind, call.Pos(), call)
				}
			}
			return
		}
		if sel.Kind() != types.MethodVal {
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		if types.IsInterface(sel.Recv()) {
			// Bounded dispatch: one edge per program type implementing
			// the receiver interface with this method.
			for _, impl := range b.dispatch(sel.Recv(), fn) {
				b.addEdge(n, impl, kind, call.Pos(), call)
			}
			return
		}
		if callee := b.g.byFn[fn]; callee != nil {
			b.addEdge(n, callee, kind, call.Pos(), call)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: func(){...}().
		if callee := b.g.byLit[fun]; callee != nil {
			b.addEdge(n, callee, kind, call.Pos(), call)
		}
	}
}

// refEdges records Ref edges for a method value x.M: the concrete
// method, or every dispatch candidate when x is an interface.
func (b *builder) refEdges(n *Node, selExpr *ast.SelectorExpr, sel *types.Selection) {
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
		for _, impl := range b.dispatch(sel.Recv(), fn) {
			b.addEdge(n, impl, Ref, selExpr.Pos(), nil)
		}
		return
	}
	if callee := b.g.byFn[fn]; callee != nil {
		b.addEdge(n, callee, Ref, selExpr.Pos(), nil)
	}
}

// dispatch returns the nodes of every method in the analyzed program
// that an interface method call could reach: for each named type T in
// the program whose T or *T implements the receiver interface, the
// method with the call's name.
func (b *builder) dispatch(recv types.Type, ifaceFn *types.Func) []*Node {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	for _, named := range b.g.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceFn.Pkg(), ifaceFn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if callee := b.g.byFn[m]; callee != nil {
			out = append(out, callee)
		}
	}
	return out
}

func (b *builder) addEdge(caller, callee *Node, kind EdgeKind, pos token.Pos, site *ast.CallExpr) {
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Pos: pos, Site: site}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// condense runs Tarjan's algorithm over the deterministic node/edge
// order; components are emitted callees-first (reverse topological
// order of the condensation).
func (g *Graph) condense() {
	const unvisited = -1
	index := make([]int, len(g.Nodes))
	low := make([]int, len(g.Nodes))
	onStack := make([]bool, len(g.Nodes))
	for i := range index {
		index[i] = unvisited
	}
	var stack []*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n.ID] = next
		low[n.ID] = next
		next++
		stack = append(stack, n)
		onStack[n.ID] = true
		for _, e := range n.Out {
			m := e.Callee
			if index[m.ID] == unvisited {
				strongconnect(m)
				if low[m.ID] < low[n.ID] {
					low[n.ID] = low[m.ID]
				}
			} else if onStack[m.ID] && index[m.ID] < low[n.ID] {
				low[n.ID] = index[m.ID]
			}
		}
		if low[n.ID] == index[n.ID] {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m.ID] = false
				m.SCC = len(g.SCCs)
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	for _, n := range g.Nodes {
		if index[n.ID] == unvisited {
			strongconnect(n)
		}
	}
}

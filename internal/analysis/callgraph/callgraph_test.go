package callgraph_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
)

// buildGraph materializes a throwaway module, loads every package,
// and builds its call graph.
func buildGraph(t *testing.T, files map[string]string) *callgraph.Graph {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := analysis.FindModule(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := mod.ExpandPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(mod.Resolver())
	loader.GoVersion = mod.GoVersion
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", p, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	return callgraph.Build(pkgs)
}

// edges flattens the graph into "caller -kind-> callee" strings.
func edges(g *callgraph.Graph) map[string]int {
	out := make(map[string]int)
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			out[e.Caller.Name+" -"+e.Kind.String()+"-> "+e.Callee.Name]++
		}
	}
	return out
}

func wantEdge(t *testing.T, got map[string]int, edge string) {
	t.Helper()
	if got[edge] == 0 {
		t.Errorf("missing edge %q; have:\n  %s", edge, strings.Join(keys(got), "\n  "))
	}
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

const gomod = "module example.com/m\n\ngo 1.24\n"

func TestStaticAndMethodCalls(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

type box struct{ v int }

func (b *box) get() int { return b.v }

func helper() int { return 1 }

func Top() int {
	b := &box{}
	return helper() + b.get()
}
`,
	})
	e := edges(g)
	wantEdge(t, e, "example.com/m/a.Top -call-> example.com/m/a.helper")
	wantEdge(t, e, "example.com/m/a.Top -call-> (*example.com/m/a.box).get")
	// Exactly one edge per site: the method-name ident inside the
	// call must not add a spurious ref edge.
	if n := e["example.com/m/a.Top -ref-> (*example.com/m/a.box).get"]; n != 0 {
		t.Errorf("call site double-counted as %d ref edge(s)", n)
	}
}

func TestInterfaceDispatchIsBounded(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

type sink interface{ put(int) }

type fileSink struct{ n int }

func (f *fileSink) put(v int) { f.n += v }

type nullSink struct{}

func (nullSink) put(int) {}

type unrelated struct{}

func (unrelated) other() {}

func drain(s sink) { s.put(1) }
`,
	})
	e := edges(g)
	// One edge per implementing type, none to unrelated methods.
	wantEdge(t, e, "example.com/m/a.drain -call-> (*example.com/m/a.fileSink).put")
	wantEdge(t, e, "example.com/m/a.drain -call-> (example.com/m/a.nullSink).put")
	for k := range e {
		if strings.Contains(k, "drain") && strings.Contains(k, "other") {
			t.Errorf("dispatch reached a non-implementing method: %s", k)
		}
	}
}

func TestGoDeferAndLiteralEdges(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

func work() {}

func cleanup() {}

func Run() {
	go work()
	defer cleanup()
	go func() {
		work()
	}()
	func() { cleanup() }()
}
`,
	})
	e := edges(g)
	wantEdge(t, e, "example.com/m/a.Run -go-> example.com/m/a.work")
	wantEdge(t, e, "example.com/m/a.Run -defer-> example.com/m/a.cleanup")
	// The spawned literal is its own node, reached by a go edge, and
	// its body's call belongs to the literal node, not to Run.
	wantEdge(t, e, "example.com/m/a.Run -go-> example.com/m/a.Run$0")
	wantEdge(t, e, "example.com/m/a.Run$0 -call-> example.com/m/a.work")
	// Immediately-invoked literal: a call edge, not a ref.
	wantEdge(t, e, "example.com/m/a.Run -call-> example.com/m/a.Run$1")
	wantEdge(t, e, "example.com/m/a.Run$1 -call-> example.com/m/a.cleanup")
	if n := e["example.com/m/a.Run -ref-> example.com/m/a.Run$1"]; n != 0 {
		t.Errorf("immediately-invoked literal double-counted as %d ref edge(s)", n)
	}
}

func TestMethodValuesAndFuncRefs(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

type worker struct{ n int }

func (w *worker) step() { w.n++ }

func apply(f func()) { f() }

func free() {}

func Run(w *worker) {
	apply(w.step)
	apply(free)
}
`,
	})
	e := edges(g)
	wantEdge(t, e, "example.com/m/a.Run -call-> example.com/m/a.apply")
	// The method value and the function reference keep their targets
	// reachable even though the graph cannot see apply invoke them.
	wantEdge(t, e, "example.com/m/a.Run -ref-> (*example.com/m/a.worker).step")
	wantEdge(t, e, "example.com/m/a.Run -ref-> example.com/m/a.free")
}

func TestSCCCondensationOrder(t *testing.T) {
	g := buildGraph(t, map[string]string{
		"go.mod": gomod,
		"a/a.go": `package a

func leaf() int { return 1 }

// ping and pong are mutually recursive: one SCC.
func ping(n int) int {
	if n == 0 {
		return leaf()
	}
	return pong(n - 1)
}

func pong(n int) int { return ping(n) }

func Top(n int) int { return ping(n) }
`,
	})
	find := func(name string) *callgraph.Node {
		for _, n := range g.Nodes {
			if strings.HasSuffix(n.Name, name) {
				return n
			}
		}
		t.Fatalf("no node %q", name)
		return nil
	}
	ping, pong, leaf, top := find(".ping"), find(".pong"), find(".leaf"), find(".Top")
	if ping.SCC != pong.SCC {
		t.Errorf("mutual recursion split across SCCs %d and %d", ping.SCC, pong.SCC)
	}
	if leaf.SCC == ping.SCC || top.SCC == ping.SCC {
		t.Errorf("SCC lumped non-cyclic nodes: leaf=%d ping=%d top=%d", leaf.SCC, ping.SCC, top.SCC)
	}
	// Reverse topological order: callees before callers.
	if !(leaf.SCC < ping.SCC && ping.SCC < top.SCC) {
		t.Errorf("SCC order not callees-first: leaf=%d ping/pong=%d top=%d", leaf.SCC, ping.SCC, top.SCC)
	}
	// Determinism: a second build yields identical node names and IDs.
	// (The builder walks packages, files, and declarations in fixed
	// order, so this must hold bit-for-bit.)
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Errorf("node %s has ID %d at index %d", n.Name, n.ID, i)
		}
	}
}

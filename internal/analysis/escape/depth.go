package escape

import (
	"go/ast"

	"diversecast/internal/analysis/cfg"
)

// Loop nesting depth comes from the CFG, not from counting for/range
// keywords: a block's depth is the number of nested strongly
// connected components it sits in. Peeling is the textbook recursion
// — find the non-trivial SCCs of the reachable subgraph, bump their
// members' depth, delete the back edges into each component's entry
// blocks, and recurse into the component. goto-formed and
// labeled-branch loops therefore nest exactly like structured ones.

// nodeDepths maps every ast.Node appearing in a reachable CFG block
// to its loop depth.
func nodeDepths(g *cfg.Graph) map[ast.Node]int {
	reach := g.Reach()
	var blocks []*cfg.Block
	for _, b := range g.Blocks {
		if reach[b] {
			blocks = append(blocks, b)
		}
	}
	succs := make(map[*cfg.Block][]*cfg.Block, len(blocks))
	in := make(map[*cfg.Block]bool, len(blocks))
	for _, b := range blocks {
		in[b] = true
	}
	for _, b := range blocks {
		for _, s := range b.Succs {
			if in[s] {
				succs[b] = append(succs[b], s)
			}
		}
	}
	depth := make(map[*cfg.Block]int, len(blocks))
	peel(blocks, succs, 1, depth)

	out := make(map[ast.Node]int)
	for _, b := range blocks {
		for _, n := range b.Nodes {
			out[n] = depth[b]
		}
	}
	return out
}

// peel assigns depth level to the members of every non-trivial SCC of
// the subgraph (blocks, succs), then recurses into each component
// with its entry back edges removed.
func peel(blocks []*cfg.Block, succs map[*cfg.Block][]*cfg.Block, level int, depth map[*cfg.Block]int) {
	for _, comp := range sccs(blocks, succs) {
		trivial := len(comp) == 1
		if trivial {
			for _, s := range succs[comp[0]] {
				if s == comp[0] {
					trivial = false
					break
				}
			}
		}
		if trivial {
			continue
		}
		member := make(map[*cfg.Block]bool, len(comp))
		for _, b := range comp {
			member[b] = true
			depth[b] = level
		}
		// Entries: blocks with a predecessor outside the component (or,
		// degenerately, the component's first block when the whole
		// subgraph is one cycle with no outside edge).
		entry := make(map[*cfg.Block]bool)
		outside := make(map[*cfg.Block]bool)
		for _, b := range blocks {
			if member[b] {
				continue
			}
			for _, s := range succs[b] {
				if member[s] {
					outside[s] = true
				}
			}
		}
		for _, b := range comp {
			if outside[b] {
				entry[b] = true
			}
		}
		if len(entry) == 0 {
			entry[comp[0]] = true
		}
		inner := make(map[*cfg.Block][]*cfg.Block, len(comp))
		for _, b := range comp {
			for _, s := range succs[b] {
				if member[s] && !entry[s] {
					inner[b] = append(inner[b], s)
				}
			}
		}
		// Keep the entries themselves in the recursion (an inner loop
		// may start at one), just not the edges back into them.
		peel(comp, inner, level+1, depth)
	}
}

// sccs is Tarjan over the given subgraph, in the deterministic block
// order handed in.
func sccs(blocks []*cfg.Block, succs map[*cfg.Block][]*cfg.Block) [][]*cfg.Block {
	const unvisited = -1
	index := make(map[*cfg.Block]int, len(blocks))
	low := make(map[*cfg.Block]int, len(blocks))
	onStack := make(map[*cfg.Block]bool, len(blocks))
	for _, b := range blocks {
		index[b] = unvisited
	}
	var stack []*cfg.Block
	var out [][]*cfg.Block
	next := 0
	var connect func(b *cfg.Block)
	connect = func(b *cfg.Block) {
		index[b] = next
		low[b] = next
		next++
		stack = append(stack, b)
		onStack[b] = true
		for _, s := range succs[b] {
			if index[s] == unvisited {
				connect(s)
				if low[s] < low[b] {
					low[b] = low[s]
				}
			} else if onStack[s] && index[s] < low[b] {
				low[b] = index[s]
			}
		}
		if low[b] == index[b] {
			var comp []*cfg.Block
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == b {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, b := range blocks {
		if index[b] == unvisited {
			connect(b)
		}
	}
	return out
}

package escape

import (
	"go/ast"
	"go/types"
)

// An append only grows when the destination's capacity runs out, and
// the repo's hot loops lean on exactly that: claim() drains into the
// caller's scratch via dst[:0], the batched selector refills pending
// from a 3·k-capacity buffer. preallocVars is the syntactic
// must-analysis behind the exemption — a local is "preallocated" when
// every assignment to it is one of:
//
//	v := make(T, n, c)       // explicit capacity
//	v = x[:0]  /  v = v[:j]  // reslice of existing storage
//	v = append(v, ...)       // self-append (growth is the question,
//	                         // not a disqualifier)
//
// Any other assignment (including `var v []T`, whose nil value grows
// from zero) disqualifies. append to a disqualified or unknown
// destination is an Append site; append directly to a slice
// expression (append(dst[:0], ...)) is exempt by form.

// preallocVars returns the set of local variable objects that are
// provably preallocated in body.
func preallocVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	hasPre := make(map[types.Object]bool)
	hasOther := make(map[types.Object]bool)

	classify := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs == nil {
			hasOther[obj] = true // var v []T — nil, grows from zero
			return
		}
		switch e := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(e.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						if len(e.Args) == 3 {
							hasPre[obj] = true
							return
						}
					case "append":
						if dest := appendDestObj(info, e); dest != nil && dest == obj {
							return // self-append: neutral
						}
					}
				}
			}
			hasOther[obj] = true
		case *ast.SliceExpr:
			hasPre[obj] = true
		default:
			hasOther[obj] = true
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own node classifies its own locals
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					classify(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for i := range n.Lhs {
					classify(n.Lhs[i], n.Rhs[0])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					classify(name, rhs)
				}
			}
		}
		return true
	})

	out := make(map[types.Object]bool)
	for obj := range hasPre {
		if !hasOther[obj] {
			out[obj] = true
		}
	}
	return out
}

// appendDestObj resolves the destination object of an append call:
// the identifier itself, or the identifier under a slice expression
// (append(v[:0], ...)).
func appendDestObj(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	dst := ast.Unparen(call.Args[0])
	if se, ok := dst.(*ast.SliceExpr); ok {
		dst = ast.Unparen(se.X)
	}
	id, ok := dst.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

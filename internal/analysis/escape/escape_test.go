package escape_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/escape"
)

func buildCorpus(t *testing.T) (*escape.Program, *callgraph.Graph) {
	t.Helper()
	loader := analysis.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
		st, err := os.Stat(dir)
		return dir, err == nil && st.IsDir()
	})
	pkg, err := loader.Load("esc")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("corpus type error: %v", terr)
	}
	pkgs := []*analysis.Package{pkg}
	g := callgraph.Build(pkgs)
	return escape.Build(loader.Fset, pkgs, g), g
}

func node(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s", name)
	return nil
}

func TestDirectives(t *testing.T) {
	p, g := buildCorpus(t)

	if len(p.Malformed) != 1 {
		t.Fatalf("Malformed = %d entries, want 1 (the reasonless coldpath)", len(p.Malformed))
	}
	if msg := p.Malformed[0].Msg; !strings.Contains(msg, "needs a reason") {
		t.Errorf("malformed message = %q, want it to demand a reason", msg)
	}

	good := p.Of(node(t, g, "esc.goodCold"))
	if !good.Cold || good.ColdReason != "genuinely startup-only" {
		t.Errorf("goodCold: Cold=%v ColdReason=%q, want true/\"genuinely startup-only\"", good.Cold, good.ColdReason)
	}
	if bad := p.Of(node(t, g, "esc.badCold")); bad.Cold {
		t.Error("badCold: a reasonless coldpath must not take effect")
	}
}

func TestHotChain(t *testing.T) {
	p, g := buildCorpus(t)

	if len(p.Roots) != 1 {
		t.Fatalf("Roots = %d, want 1", len(p.Roots))
	}
	r := p.Roots[0]
	if r.Node.Name != "esc.Root" || r.Note != "kernel" {
		t.Fatalf("root = %s note %q, want esc.Root note \"kernel\"", r.Node.Name, r.Note)
	}

	allocN := node(t, g, "esc.alloc")
	if !r.Reached(node(t, g, "esc.wrap")) || !r.Reached(allocN) {
		t.Fatal("root must reach wrap and alloc")
	}
	chain := r.Chain(allocN)
	var names []string
	for _, n := range chain {
		names = append(names, n.Name)
	}
	if got := strings.Join(names, " "); got != "esc.Root esc.wrap esc.alloc" {
		t.Errorf("Chain(alloc) = %q, want the two-hop path", got)
	}
	if via := r.Via(allocN); via != "esc.wrap -> esc.alloc" {
		t.Errorf("Via(alloc) = %q", via)
	}

	if r.Reached(node(t, g, "esc.gated")) {
		t.Error("gated is never called from the root and must not be reached")
	}

	fs := p.HotFindings()
	if len(fs) != 1 {
		t.Fatalf("HotFindings = %d, want exactly alloc's make", len(fs))
	}
	if fs[0].Node != allocN || fs[0].Site.Kind != escape.Make {
		t.Errorf("finding = %s %v, want esc.alloc make", fs[0].Node.Name, fs[0].Site.Kind)
	}
}

func TestPropagation(t *testing.T) {
	p, g := buildCorpus(t)

	al := p.Of(node(t, g, "esc.alloc"))
	if !al.SelfAllocates() || !al.Allocates || al.AllocVia != "" {
		t.Errorf("alloc: self=%v alloc=%v via=%q, want direct allocation", al.SelfAllocates(), al.Allocates, al.AllocVia)
	}
	wr := p.Of(node(t, g, "esc.wrap"))
	if wr.SelfAllocates() || !wr.Allocates || wr.AllocVia != "esc.alloc" {
		t.Errorf("wrap: self=%v alloc=%v via=%q, want transitive via esc.alloc", wr.SelfAllocates(), wr.Allocates, wr.AllocVia)
	}
	if rt := p.Of(node(t, g, "esc.Root")); !rt.Allocates {
		t.Error("Root must inherit the Allocates bit")
	}

	// The mutually recursive pair converges: both allocate (recurB
	// directly, recurA through it).
	if ra := p.Of(node(t, g, "esc.recurA")); !ra.Allocates || ra.AllocVia != "esc.recurB" {
		t.Errorf("recurA: alloc=%v via=%q, want true via esc.recurB", ra.Allocates, ra.AllocVia)
	}
	if rb := p.Of(node(t, g, "esc.recurB")); !rb.Allocates || !rb.SelfAllocates() {
		t.Error("recurB must allocate directly")
	}
}

func TestSitesDepthGatesPrealloc(t *testing.T) {
	p, g := buildCorpus(t)

	gt := p.Of(node(t, g, "esc.gated"))
	if len(gt.Sites) != 1 || !gt.Sites[0].Gated {
		t.Fatalf("gated: %d sites, want one gated make", len(gt.Sites))
	}
	if gt.SelfAllocates() || gt.Allocates {
		t.Error("a fully gated function does not allocate on the disabled path")
	}

	lp := p.Of(node(t, g, "esc.loopy"))
	if len(lp.Sites) != 2 {
		t.Fatalf("loopy: %d sites, want 2 makes (the preallocated append is exempt)", len(lp.Sites))
	}
	for _, s := range lp.Sites {
		if s.Kind == escape.Append {
			t.Errorf("loopy: append to a capacity-preallocated local must not be a site: %s", s.What)
		}
	}
	if d0, d1 := lp.Sites[0].Depth, lp.Sites[1].Depth; d0 != 0 || d1 != 1 {
		t.Errorf("loopy depths = %d,%d, want 0 (hoisted) and 1 (in loop)", d0, d1)
	}
}

func TestShortName(t *testing.T) {
	cases := map[string]string{
		"(*diversecast/internal/core.batchedSelector).repair": "(*core.batchedSelector).repair",
		"diversecast/internal/netcast.NewServer":              "netcast.NewServer",
		"esc.Root":      "esc.Root",
		"hot.Apply$0":   "hot.Apply$0",
		"(trace.Span).Active": "(trace.Span).Active",
	}
	for in, want := range cases {
		if got := escape.ShortName(in); got != want {
			t.Errorf("ShortName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHotPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"diversecast/internal/core":      true,
		"diversecast/internal/netcast":   true,
		"diversecast/internal/pool":      true,
		"diversecast/internal/obs":       true,
		"diversecast/internal/obs/trace": true,
		"core":                           true,
		"diversecast/internal/analysis":  false,
		"plain":                          false,
	} {
		if got := escape.HotPackage(path); got != want {
			t.Errorf("HotPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

package escape

import (
	"strings"

	"diversecast/internal/analysis/callgraph"
)

// ShortName compresses a call-graph node name for diagnostics by
// dropping the directory part of every package path:
// "(*diversecast/internal/core.batchedSelector).repair" becomes
// "(*core.batchedSelector).repair". Corpus packages with bare import
// paths pass through unchanged.
func ShortName(name string) string {
	var b strings.Builder
	word := make([]byte, 0, len(name))
	flush := func() {
		w := string(word)
		if i := strings.LastIndexByte(w, '/'); i >= 0 {
			w = w[i+1:]
		}
		b.WriteString(w)
		word = word[:0]
	}
	for i := 0; i < len(name); i++ {
		switch ch := name[i]; ch {
		case '(', ')', '*', ' ':
			flush()
			b.WriteByte(ch)
		default:
			word = append(word, ch)
		}
	}
	flush()
	return b.String()
}

// Via renders the call chain from the root to n (exclusive of the
// root, short names, " -> " separated); "" when the site is in the
// root itself.
func (r *Root) Via(n *callgraph.Node) string {
	chain := r.Chain(n)
	if len(chain) <= 1 {
		return ""
	}
	parts := make([]string, 0, len(chain)-1)
	for _, c := range chain[1:] {
		parts = append(parts, ShortName(c.Name))
	}
	return strings.Join(parts, " -> ")
}

// HotPackage reports whether a package path names one of the repo's
// hot packages — any path segment in {core, netcast, pool, obs}, so
// test corpora can opt in with a bare "core" import path.
func HotPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "core", "netcast", "pool", "obs":
			return true
		}
	}
	return false
}

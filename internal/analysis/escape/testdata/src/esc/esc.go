// Package esc is the escape-layer unit-test corpus: directives (one
// deliberately malformed), a two-hop hot chain, a mutually recursive
// allocating pair, a gated site, and a preallocated append.
package esc

import "trace"

var tr *trace.Tracer

// Root reaches alloc through wrap.
//
//diverselint:hotpath kernel
func Root(xs []int64) int64 {
	return wrap(xs)
}

func wrap(xs []int64) int64 { return alloc(xs) }

func alloc(xs []int64) int64 {
	b := make([]int64, len(xs))
	copy(b, xs)
	return b[0]
}

//diverselint:coldpath
func badCold() {}

//diverselint:coldpath genuinely startup-only
func goodCold() []byte { return make([]byte, 1) }

func gated(n int64) {
	if tr.Enabled() {
		b := make([]byte, int(n))
		_ = b
	}
}

func loopy(xs []int64) []int64 {
	out := make([]int64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
		b := make([]byte, 1)
		_ = b
	}
	return out
}

func recurA(n int) {
	if n > 0 {
		recurB(n - 1)
	}
}

func recurB(n int) {
	b := make([]byte, 1)
	_ = b
	if n > 0 {
		recurA(n - 1)
	}
}

package escape

import (
	"go/ast"
	"go/token"
	"go/types"
)

// collector walks one function body recording allocation sites, with
// the CFG-derived loop depth tracked through the traversal: entering
// any node the CFG placed in a block adopts that block's depth, and
// the ast.Inspect pop (the f(nil) call) restores the previous one.
type collector struct {
	p    *Program
	fi   *FuncInfo
	info *types.Info
	fset *token.FileSet

	nodeDepth map[ast.Node]int
	prealloc  map[types.Object]bool

	depth int
	saved []int
}

func (c *collector) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			c.depth = c.saved[len(c.saved)-1]
			c.saved = c.saved[:len(c.saved)-1]
			return true
		}
		// Adopt the node's own block depth before visiting it:
		// statement-level sites (go, defer in loop, map writes) must see
		// the depth of the block the statement lives in, not the
		// enclosing context's.
		prev := c.depth
		if d, ok := c.nodeDepth[n]; ok {
			c.depth = d
		}
		if !c.visit(n) {
			c.depth = prev // pruned subtree: no pop will restore
			return false
		}
		c.saved = append(c.saved, prev)
		return true
	})
}

func (c *collector) site(kind SiteKind, pos token.Pos, what string) {
	c.fi.Sites = append(c.fi.Sites, &Site{
		Kind:  kind,
		Pos:   pos,
		Depth: c.depth,
		Gated: c.fi.GatedAt(pos),
		What:  what,
	})
}

func (c *collector) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// The literal's body belongs to its own call-graph node; here
		// only the closure value itself is the cost — and only when it
		// captures (a capture-free literal is a static function value).
		if name := c.captures(n); name != "" {
			c.site(Closure, n.Pos(), "func literal captures "+name+" (heap closure if it escapes)")
		}
		return false

	case *ast.GoStmt:
		c.site(GoSpawn, n.Pos(), "go statement spawns a goroutine")
		return true

	case *ast.DeferStmt:
		if c.depth > 0 {
			c.site(DeferLoop, n.Pos(), "defer in a loop allocates a record per iteration")
		}
		return true

	case *ast.CompositeLit:
		switch c.typeOf(n).(type) {
		case *types.Slice:
			c.site(Composite, n.Pos(), exprString(n.Type)+" literal allocates its backing array")
		case *types.Map:
			c.site(Composite, n.Pos(), exprString(n.Type)+" literal allocates")
		}
		return true

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				switch c.typeOf(lit).(type) {
				case *types.Struct, *types.Array:
					c.site(Composite, n.Pos(), "&"+exprString(lit.Type)+"{...} escapes to the heap")
				}
			}
		}
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(c.info.TypeOf(n)) && c.info.Types[n].Value == nil {
			c.site(StringConv, n.Pos(), "string concatenation allocates")
		}
		return true

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			if _, isMap := c.typeOf(ix.X).(*types.Map); isMap {
				c.site(MapWrite, ix.Pos(), "map write may grow buckets")
			}
		}
		return true

	case *ast.CallExpr:
		c.call(n)
		return true
	}
	return true
}

func (c *collector) call(call *ast.CallExpr) {
	// Conversions: only the string↔bytes/runes family allocates.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && c.info.Types[call].Value == nil {
			dst, src := tv.Type, c.info.TypeOf(call.Args[0])
			switch {
			case isString(dst) && isBytesOrRunes(src):
				c.site(StringConv, call.Pos(), "string(...) conversion copies")
			case isBytesOrRunes(dst) && isString(src):
				c.site(StringConv, call.Pos(), exprString(call.Fun)+"(...) conversion copies")
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					c.site(Make, call.Pos(), "make("+exprString(call.Args[0])+")")
				}
			case "new":
				if len(call.Args) > 0 {
					c.site(New, call.Pos(), "new("+exprString(call.Args[0])+")")
				}
			case "append":
				c.appendCall(call)
			}
			return
		}
	}

	// Known-allocating stdlib families — in-program wrappers need no
	// list, the SCC propagation carries their bit.
	if name := c.allocCallee(call); name != "" {
		c.site(AllocCall, call.Pos(), "call to "+name+" allocates")
	}

	// Interface boxing at the call site, any/error variadics included.
	c.boxing(call)
}

// appendCall flags appends that may grow: destination neither a
// provably preallocated local nor a direct slice expression.
func (c *collector) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if _, ok := dst.(*ast.SliceExpr); ok {
		return // append(x[:0], ...): the caller's-scratch idiom
	}
	if id, ok := dst.(*ast.Ident); ok {
		obj := c.info.Uses[id]
		if obj == nil {
			obj = c.info.Defs[id]
		}
		if obj != nil && c.prealloc[obj] {
			return
		}
	}
	c.site(Append, call.Pos(), "append to "+exprString(call.Args[0])+" may grow (not provably preallocated)")
}

// allocCallee matches the known-allocating stdlib families: all of
// fmt, errors.New/Join, the timer constructors, and strconv
// formatting. Everything else in the stdlib is assumed clean — the
// documented imprecision the AllocsPerRun gate tests backstop.
func (c *collector) allocCallee(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.info.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "fmt":
		return "fmt." + name
	case "errors":
		if name == "New" || name == "Join" {
			return "errors." + name
		}
	case "time":
		switch name {
		case "NewTimer", "NewTicker", "After", "Tick":
			return "time." + name
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote":
			return "strconv." + name
		}
	}
	return ""
}

// boxing flags concrete, non-pointer-shaped, non-constant arguments
// passed to interface parameters. Constants are exempt (their eface
// is static data), as are pointer-shaped values (the interface data
// word holds them directly).
func (c *collector) boxing(call *ast.CallExpr) {
	sig, ok := c.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				return // slice passed through, no per-element boxing
			}
			st, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := c.info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue
		}
		at := tv.Type
		if types.IsInterface(at) || pointerShaped(at) || isUntypedNil(at) {
			continue
		}
		c.site(Box, arg.Pos(),
			typeString(at)+" boxed into interface argument of "+exprString(call.Fun))
	}
}

// captures returns the name of the first enclosing-function variable
// the literal captures, "" when it captures nothing.
func (c *collector) captures(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() != nil && v.Pkg().Scope() == v.Parent() {
			return true // package-level var, not a capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own local/param
		}
		name = v.Name()
		return false
	})
	return name
}

func (c *collector) typeOf(e ast.Expr) types.Type {
	t := c.info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBytesOrRunes(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether a value of type t fits the interface
// data word without boxing: pointers, channels, maps, functions, and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

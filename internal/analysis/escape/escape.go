// Package escape computes per-function allocation summaries over the
// cfg and callgraph layers — the performance analogue of the lock
// summaries in internal/analysis/summary, and the shared substrate of
// the hotalloc, loopalloc, and boxparam passes.
//
// For every function body the collector records each syntactic
// allocation site: composite literals of slice/map kind (and &T{}
// escapes), make/new, append that may grow, map writes, string↔[]byte
// conversions and string concatenation, interface boxing at call
// sites (including any/error variadics), closures that capture
// enclosing variables, calls into known-allocating stdlib families
// (fmt, errors.New/Join, the time.NewTimer class, strconv
// formatting), go statements, and defer inside a loop. Each site
// carries its loop nesting depth — computed from the CFG by peeling
// strongly connected components, so goto- and labeled-branch loops
// count exactly like for/range — and a Gated bit for sites that can
// only execute when tracing is enabled (see gates.go): the
// disabled-trace path is the hot contract, so gated sites are exempt
// everywhere.
//
// The per-function Allocates bit then propagates bottom-up over the
// call-graph SCC condensation exactly like summary.Build: a function
// allocates if it has an ungated site of its own, or if any ungated
// Call/Defer site reaches an in-program callee that allocates. Within
// a mutually recursive component the (monotone, boolean) facts
// iterate to a fixpoint.
//
// Hot-path contracts are declared in doc comments:
//
//	//diverselint:hotpath [note]    — this function and everything it
//	                                  reaches synchronously must not
//	                                  allocate
//	//diverselint:coldpath <reason> — prune this function from hot
//	                                  reachability (and exempt it from
//	                                  loopalloc); the reason is
//	                                  mandatory and audited
//
// Reachability from each root follows Call and Defer edges, plus Ref
// edges to function literals (a closure defined in hot code runs hot
// work — the worker bodies handed to pool.Run live here). Go edges
// are not followed (a spawned goroutine is the spawn site's cost, not
// the hot path's), test-file functions are skipped, and edges whose
// site sits in a gated region are pruned along with coldpath-marked
// callees. Everything — node order, site order, root order — is
// deterministic, inherited from the callgraph builder's ID order and
// source positions.
package escape

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/cfg"
)

// The directive spellings (doc-comment lines on function
// declarations).
const (
	HotDirective  = "//diverselint:hotpath"
	ColdDirective = "//diverselint:coldpath"
)

// A SiteKind classifies one allocation site.
type SiteKind int

const (
	// Composite is a slice or map composite literal, or a struct
	// literal whose address is taken (&T{...}).
	Composite SiteKind = iota
	// Make is a make() of a slice, map, or channel.
	Make
	// New is a new(T).
	New
	// Append is an append whose destination is not provably
	// preallocated (see prealloc.go); it may grow the backing array.
	Append
	// MapWrite is m[k] = v — bucket growth can allocate.
	MapWrite
	// StringConv is a string↔[]byte/[]rune conversion or a
	// non-constant string concatenation.
	StringConv
	// Box is a concrete non-pointer-shaped value converted to an
	// interface at a call site (including any/error variadics) — the
	// trace-attr and metrics-label class.
	Box
	// Closure is a function literal that captures variables of its
	// enclosing function (the captures force a heap closure when the
	// literal escapes).
	Closure
	// AllocCall is a call into a known-allocating stdlib family:
	// fmt.*, errors.New/Join, time.NewTimer/NewTicker/After/Tick,
	// strconv formatting.
	AllocCall
	// GoSpawn is a go statement: a new goroutine is an allocation.
	GoSpawn
	// DeferLoop is a defer registered inside a loop — each iteration
	// heap-allocates a defer record (a depth-0 defer is open-coded and
	// free, so it is not a site).
	DeferLoop
)

func (k SiteKind) String() string {
	switch k {
	case Composite:
		return "composite"
	case Make:
		return "make"
	case New:
		return "new"
	case Append:
		return "append"
	case MapWrite:
		return "mapwrite"
	case StringConv:
		return "stringconv"
	case Box:
		return "box"
	case Closure:
		return "closure"
	case AllocCall:
		return "alloccall"
	case GoSpawn:
		return "go"
	case DeferLoop:
		return "deferloop"
	}
	return "site"
}

// A Site is one syntactic allocation in a function body.
type Site struct {
	Kind SiteKind
	Pos  token.Pos
	// Depth is the loop nesting depth from the CFG (0 = straight-line
	// code).
	Depth int
	// Gated marks sites that execute only when tracing is enabled —
	// exempt from every allocation contract (the contract covers the
	// disabled path).
	Gated bool
	// What is the rendered description ("make([]int, n)", "x boxed
	// into interface argument of fmt.Sprintf", ...).
	What string
}

// A FuncInfo is one function's allocation summary.
type FuncInfo struct {
	Node *callgraph.Node
	// Sites lists the function's own allocation sites in source order.
	Sites []*Site

	// HotRoot marks a //diverselint:hotpath declaration; HotNote is
	// its optional trailing note.
	HotRoot bool
	HotNote string
	// Cold marks a //diverselint:coldpath declaration; ColdReason is
	// its mandatory reason.
	Cold       bool
	ColdReason string

	// Allocates reports whether the function allocates on the
	// disabled-trace path, directly or through any ungated Call/Defer
	// callee (transitive, SCC fixpoint).
	Allocates bool
	// AllocVia names the first callee responsible when the function
	// has no ungated site of its own ("" when it allocates directly or
	// not at all).
	AllocVia string

	gated []posRange
}

// SelfAllocates reports whether the function has an ungated
// allocation site of its own.
func (fi *FuncInfo) SelfAllocates() bool {
	for _, s := range fi.Sites {
		if !s.Gated {
			return true
		}
	}
	return false
}

// GatedAt reports whether pos lies in a region that only executes
// when tracing is enabled.
func (fi *FuncInfo) GatedAt(pos token.Pos) bool {
	for _, r := range fi.gated {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}

type posRange struct{ from, to token.Pos }

// A Malformed records a directive that does not parse — today only a
// coldpath without its mandatory reason. hotalloc reports these.
type Malformed struct {
	Pos token.Pos
	Msg string
}

// A Root is one //diverselint:hotpath function with its reachable
// set.
type Root struct {
	Node *callgraph.Node
	Note string
	// Order is the BFS visit order from the root (the root itself
	// first) — deterministic, and the order findings are emitted in.
	Order []*callgraph.Node

	reached map[*callgraph.Node]*callgraph.Edge
}

// Reached reports whether n is hot-reachable from the root.
func (r *Root) Reached(n *callgraph.Node) bool {
	_, ok := r.reached[n]
	return ok
}

// Chain returns the call chain root..n along first-reach (BFS,
// shortest) edges. The root's own chain is [root].
func (r *Root) Chain(n *callgraph.Node) []*callgraph.Node {
	if _, ok := r.reached[n]; !ok {
		return nil
	}
	var rev []*callgraph.Node
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		e := r.reached[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	out := make([]*callgraph.Node, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// A Program is the whole-program allocation summary set.
type Program struct {
	Fset  *token.FileSet
	Graph *callgraph.Graph
	// Funcs has one summary per call-graph node with a body.
	Funcs map[*callgraph.Node]*FuncInfo
	// Roots lists the //diverselint:hotpath functions in node-ID
	// order.
	Roots []*Root
	// Malformed lists unparsable directives, in position order per the
	// deterministic node walk.
	Malformed []Malformed

	inProgram map[string]bool
}

// Of returns n's allocation summary, nil for bodyless nodes.
func (p *Program) Of(n *callgraph.Node) *FuncInfo { return p.Funcs[n] }

// A HotFinding couples one ungated allocation site with the hot root
// that reaches it.
type HotFinding struct {
	Root *Root
	Node *callgraph.Node
	Site *Site
}

// HotFindings returns every ungated site reachable from any hot root,
// deduplicated (the first root in ID order claims a site), in
// deterministic root/BFS/source order. Passes filter by Kind.
func (p *Program) HotFindings() []HotFinding {
	type key struct {
		pos  token.Pos
		kind SiteKind
	}
	seen := make(map[key]bool)
	var out []HotFinding
	for _, r := range p.Roots {
		for _, f := range p.RootFindings(r) {
			k := key{f.Site.Pos, f.Site.Kind}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, f)
		}
	}
	return out
}

// RootFindings returns every ungated site reachable from one root, in
// BFS-then-source order (no cross-root deduplication — the -hot
// report wants each root's full view).
func (p *Program) RootFindings(r *Root) []HotFinding {
	var out []HotFinding
	for _, n := range r.Order {
		fi := p.Funcs[n]
		if fi == nil {
			continue
		}
		for _, s := range fi.Sites {
			if s.Gated {
				continue
			}
			out = append(out, HotFinding{Root: r, Node: n, Site: s})
		}
	}
	return out
}

// InProgram reports whether the package path belongs to the analyzed
// program.
func (p *Program) InProgram(path string) bool { return p.inProgram[path] }

// Build computes allocation summaries for every function in the
// graph: directive scan, per-body site collection, bottom-up SCC
// propagation of the Allocates bit, then hot-root reachability.
func Build(fset *token.FileSet, pkgs []*analysis.Package, g *callgraph.Graph) *Program {
	p := &Program{
		Fset:      fset,
		Graph:     g,
		Funcs:     make(map[*callgraph.Node]*FuncInfo),
		inProgram: make(map[string]bool),
	}
	for _, pkg := range pkgs {
		p.inProgram[pkg.Path] = true
	}

	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		fi := &FuncInfo{Node: n}
		p.Funcs[n] = fi
	}
	p.scanDirectives(pkgs)
	for _, n := range g.Nodes {
		if fi := p.Funcs[n]; fi != nil {
			p.collect(fi)
		}
	}
	p.propagate()
	p.findRoots()
	return p
}

// scanDirectives reads hotpath/coldpath directives off function doc
// comments, in package/file/decl order.
func (p *Program) scanDirectives(pkgs []*analysis.Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := p.Graph.NodeFor(fn)
				fi := p.Funcs[node]
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(c.Text)
					switch {
					case text == HotDirective || strings.HasPrefix(text, HotDirective+" "):
						if fi != nil {
							fi.HotRoot = true
							fi.HotNote = strings.TrimSpace(strings.TrimPrefix(text, HotDirective))
						}
					case text == ColdDirective:
						p.Malformed = append(p.Malformed, Malformed{
							Pos: c.Pos(),
							Msg: "//diverselint:coldpath needs a reason (why is this function off the hot path?)",
						})
					case strings.HasPrefix(text, ColdDirective+" "):
						reason := strings.TrimSpace(strings.TrimPrefix(text, ColdDirective))
						if reason == "" {
							p.Malformed = append(p.Malformed, Malformed{
								Pos: c.Pos(),
								Msg: "//diverselint:coldpath needs a reason (why is this function off the hot path?)",
							})
							continue
						}
						if fi != nil {
							fi.Cold = true
							fi.ColdReason = reason
						}
					}
				}
			}
		}
	}
}

// propagate runs the bottom-up SCC fixpoint on the Allocates bit.
func (p *Program) propagate() {
	for _, scc := range p.Graph.SCCs {
		recursive := len(scc) > 1
		if !recursive {
			for _, e := range scc[0].Out {
				if e.Callee == scc[0] {
					recursive = true
					break
				}
			}
		}
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				fi := p.Funcs[n]
				if fi == nil {
					continue
				}
				alloc, via := p.computeAllocates(fi)
				if alloc != fi.Allocates {
					changed = true
				}
				fi.Allocates = alloc
				fi.AllocVia = via
			}
			if !recursive || !changed || round >= 4 {
				break
			}
		}
	}
}

// computeAllocates folds the function's own ungated sites with its
// ungated Call/Defer callees' bits.
func (p *Program) computeAllocates(fi *FuncInfo) (bool, string) {
	if fi.SelfAllocates() {
		return true, ""
	}
	for _, e := range fi.Node.Out {
		if e.Kind != callgraph.Call && e.Kind != callgraph.Defer {
			continue
		}
		if fi.GatedAt(e.Pos) {
			continue
		}
		cs := p.Funcs[e.Callee]
		if cs != nil && cs.Allocates {
			return true, e.Callee.Name
		}
	}
	return false, ""
}

// findRoots collects the hotpath roots in node-ID order and runs the
// reachability BFS for each.
func (p *Program) findRoots() {
	for _, n := range p.Graph.Nodes {
		fi := p.Funcs[n]
		if fi == nil || !fi.HotRoot {
			continue
		}
		r := &Root{
			Node:    n,
			Note:    fi.HotNote,
			reached: map[*callgraph.Node]*callgraph.Edge{n: nil},
		}
		queue := []*callgraph.Node{n}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			r.Order = append(r.Order, cur)
			curInfo := p.Funcs[cur]
			for _, e := range cur.Out {
				if !p.followEdge(curInfo, e) {
					continue
				}
				if _, ok := r.reached[e.Callee]; ok {
					continue
				}
				r.reached[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}
		p.Roots = append(p.Roots, r)
	}
}

// followEdge applies the hot-reachability pruning rules: Call/Defer
// always, Ref only to function literals, never Go; gated sites,
// coldpath callees, bodyless callees, and test-file callees prune.
func (p *Program) followEdge(caller *FuncInfo, e *callgraph.Edge) bool {
	switch e.Kind {
	case callgraph.Call, callgraph.Defer:
	case callgraph.Ref:
		if e.Callee.Lit == nil {
			return false
		}
	default: // Go
		return false
	}
	if e.Callee.Body == nil {
		return false
	}
	if caller != nil && caller.GatedAt(e.Pos) {
		return false
	}
	ci := p.Funcs[e.Callee]
	if ci == nil || ci.Cold {
		return false
	}
	if strings.HasSuffix(p.Fset.Position(e.Callee.Pos).Filename, "_test.go") {
		return false
	}
	return true
}

// collect fills one function's gates, loop depths, and sites (see
// sites.go / gates.go / depth.go).
func (p *Program) collect(fi *FuncInfo) {
	n := fi.Node
	g := cfg.New(n.Body, cfg.Options{NoReturn: cfg.NoReturn(n.Pkg.TypesInfo)})
	nodeDepth := nodeDepths(g)
	fi.gated = gatedRanges(n.Pkg.TypesInfo, n.Body)
	c := &collector{
		p:    p,
		fi:   fi,
		info: n.Pkg.TypesInfo,
		fset: p.Fset,

		nodeDepth: nodeDepth,
		prealloc:  preallocVars(n.Pkg.TypesInfo, n.Body),
	}
	c.walk(n.Body)
}

package escape

import (
	"go/ast"
	"go/types"
)

// Gate detection encodes the repo's disabled-trace contract: the hot
// allocation invariants cover the path taken when tracing is OFF, so
// code that provably runs only when tracing is on is exempt. A gate
// is a call to (*trace.Tracer).Enabled or (trace.Span).Active —
// matched by method name, receiver type name, and package NAME
// "trace" (the same convention obsnames uses), so test corpora can
// stub the package.
//
// Two shapes mark regions gated:
//
//	if tr.Enabled() { ... }            // then-branch gated
//	if x == nil || !span.Active() {    // early-out: the remainder of
//	        return                     // the enclosing statement list
//	}                                  // is gated
//	... gated ...
//
// plus the local-flag idiom the CDS refinement loop uses:
//
//	wantTrace := tr.Enabled() && ...
//	if wantTrace { ... }               // then-branch gated
//
// An `else` of a negated gate (runs when tracing is on) is gated too.
// The match is syntactic and conservative in the safe direction:
// anything not provably enabled-only stays subject to the contracts.

// gatedRanges returns the position ranges of body that execute only
// when tracing is enabled.
func gatedRanges(info *types.Info, body *ast.BlockStmt) []posRange {
	gv := gateVars(info, body)
	var out []posRange
	var list func(stmts []ast.Stmt, end ast.Node)
	list = func(stmts []ast.Stmt, end ast.Node) {
		for i, s := range stmts {
			ifs, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			pos, neg := condGate(info, gv, ifs.Cond)
			if pos {
				out = append(out, posRange{ifs.Body.Pos(), ifs.Body.End()})
			}
			if neg {
				if ifs.Else != nil {
					out = append(out, posRange{ifs.Else.Pos(), ifs.Else.End()})
				}
				if terminates(ifs.Body) && i+1 < len(stmts) {
					out = append(out, posRange{stmts[i+1].Pos(), end.End()})
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			list(n.List, n)
		case *ast.CaseClause:
			if len(n.Body) > 0 {
				list(n.Body, n)
			}
		case *ast.CommClause:
			if len(n.Body) > 0 {
				list(n.Body, n)
			}
		}
		return true
	})
	return out
}

// gateVars finds locals defined once as a (conjunction containing a)
// positive gate call: `wantTrace := tr.Enabled() && n > 1`.
func gateVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if pos, neg := condGate(info, nil, as.Rhs[0]); pos && !neg {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// condGate classifies a condition: pos when it contains an un-negated
// gate (truth implies tracing on), neg when it contains a negated one
// (truth implies tracing off, on the gate's account).
func condGate(info *types.Info, gv map[types.Object]bool, cond ast.Expr) (pos, neg bool) {
	var walk func(e ast.Expr, negated bool)
	walk = func(e ast.Expr, negated bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if e.Op.String() == "!" {
				walk(e.X, !negated)
			}
		case *ast.BinaryExpr:
			walk(e.X, negated)
			walk(e.Y, negated)
		case *ast.CallExpr:
			if isGateCall(info, e) {
				if negated {
					neg = true
				} else {
					pos = true
				}
			}
		case *ast.Ident:
			if gv != nil {
				if obj := info.Uses[e]; obj != nil && gv[obj] {
					if negated {
						neg = true
					} else {
						pos = true
					}
				}
			}
		}
	}
	walk(cond, false)
	return pos, neg
}

// isGateCall matches (*Tracer).Enabled and (Span).Active of a package
// named "trace".
func isGateCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "trace" {
		return false
	}
	switch {
	case fn.Name() == "Enabled" && named.Obj().Name() == "Tracer":
		return true
	case fn.Name() == "Active" && named.Obj().Name() == "Span":
		return true
	}
	return false
}

// terminates reports whether a block's last statement leaves the
// enclosing statement list (return, break/continue/goto, or a
// no-return call like panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

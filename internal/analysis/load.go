package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A Package is one parsed and type-checked package, ready for
// analyzers to consume.
type Package struct {
	Path  string // import path ("diversecast/internal/core")
	Dir   string // absolute directory
	Files []*ast.File

	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checker complaints. The tree is
	// expected to type-check cleanly; the driver surfaces these as
	// warnings so a partially broken package still gets best-effort
	// analysis instead of aborting the run.
	TypeErrors []error
}

// A Loader parses and type-checks packages. Imports inside the target
// tree resolve through Resolve; everything else (the standard
// library) is type-checked from GOROOT source via go/importer, the
// only import mechanism that needs neither export data nor network.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to its source directory. It
	// returns ok=false for paths outside the target tree (handed to
	// the standard-library importer instead).
	Resolve func(path string) (dir string, ok bool)
	// IncludeTests adds *_test.go files of the package under test
	// (not external _test packages) to the parse set.
	IncludeTests bool
	// GoVersion is the language version for the type checker
	// (e.g. "go1.24"); empty means the toolchain default.
	GoVersion string

	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader resolving in-tree imports via resolve.
func NewLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}
}

// Load parses and type-checks the package at the given import path
// (which must resolve through l.Resolve), loading in-tree
// dependencies first. Results are cached per path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %q does not resolve to a source directory", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	// Load in-tree dependencies up front so type-checking below only
	// ever sees already-cached packages (the importer func must not
	// recurse into the checker).
	for _, f := range files {
		for _, imp := range f.Imports {
			depPath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, inTree := l.Resolve(depPath); inTree && depPath != path {
				if _, err := l.Load(depPath); err != nil {
					return nil, fmt.Errorf("analysis: loading %s (for %s): %w", depPath, path, err)
				}
			}
		}
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		GoVersion: l.GoVersion,
		Importer:  importerFunc(l.importDep),
		Error:     func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error when TypeErrors is non-empty; the
	// partially checked package is still usable for analysis.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, inTree := l.Resolve(path); inTree {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the non-test (plus, optionally, in-package test)
// files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		// One package per directory: ignore external test packages
		// ("foo_test") and, should both main and foo coexist, keep
		// the first package name seen.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// --- module discovery -------------------------------------------------

var (
	moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)
	goLineRE     = regexp.MustCompile(`(?m)^go\s+(\d+\.\d+)`)
)

// A Module locates a Go module on disk: its root directory, module
// path, and declared language version.
type Module struct {
	Root      string
	Path      string
	GoVersion string
}

// FindModule walks up from dir to the enclosing go.mod.
func FindModule(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleLineRE.FindSubmatch(data)
			if m == nil {
				return nil, fmt.Errorf("analysis: %s/go.mod has no module line", dir)
			}
			mod := &Module{Root: dir, Path: string(m[1])}
			if g := goLineRE.FindSubmatch(data); g != nil {
				mod.GoVersion = "go" + string(g[1])
			}
			return mod, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// Resolver returns a Loader resolve function mapping the module's own
// import paths to directories under its root.
func (m *Module) Resolver() func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == m.Path {
			return m.Root, true
		}
		rel, ok := strings.CutPrefix(path, m.Path+"/")
		if !ok {
			return "", false
		}
		dir := filepath.Join(m.Root, filepath.FromSlash(rel))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return "", false
		}
		return dir, true
	}
}

// skipDir reports whether a directory subtree is invisible to the Go
// toolchain (and therefore to the linter): testdata corpora, VCS
// metadata, vendored or underscore/dot-prefixed trees.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// ExpandPatterns turns package patterns ("./...", "./internal/core",
// an import path) into the module's matching import paths, in sorted
// order. Only directories containing at least one non-test Go file
// are returned.
func (m *Module) ExpandPatterns(patterns ...string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			err := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if p != m.Root && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				if !hasGoFiles(p) {
					return nil
				}
				rel, err := filepath.Rel(m.Root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					add(m.Path)
				} else {
					add(m.Path + "/" + filepath.ToSlash(rel))
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(strings.TrimPrefix(pat, "./"))
			if rel == "" || rel == "." {
				add(m.Path)
			} else {
				add(m.Path + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

package cfg_test

import (
	"go/ast"
	"sort"
	"strings"
	"testing"

	"diversecast/internal/analysis/cfg"
)

// assignedSet is the fact domain of a tiny must-analysis: the set of
// variable names definitely assigned on every path.
type assignedSet map[string]bool

func (s assignedSet) with(names ...string) assignedSet {
	out := make(assignedSet, len(s)+len(names))
	for k := range s {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func (s assignedSet) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func assignedLattice() cfg.Lattice[assignedSet] {
	return cfg.Lattice[assignedSet]{
		Entry: assignedSet{},
		Join: func(a, b assignedSet) assignedSet {
			out := assignedSet{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Transfer: func(n ast.Node, f assignedSet) assignedSet {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return f
			}
			var names []string
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					names = append(names, id.Name)
				}
			}
			if len(names) == 0 {
				return f
			}
			return f.with(names...)
		},
		Equal: func(a, b assignedSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

// TestForwardMustAssigned: a variable assigned in only one branch is
// not definitely assigned at the merge; one assigned in both is. The
// loop body's facts must converge (back edge joins with the entry
// fact).
func TestForwardMustAssigned(t *testing.T) {
	_, g := build(t, `
func f(c bool, xs []int) {
	a := 1
	if c {
		b := 2
		d := 3
		_ = b
		_ = d
	} else {
		b := 4
		_ = b
	}
	for _, x := range xs {
		e := x
		_ = e
	}
	done := true
	_ = done
}`)
	facts := cfg.Forward(g, assignedLattice())

	if !facts.Reached[g.Exit] {
		t.Fatal("exit not reached")
	}
	// The exit fact is the out-fact of its single fall-off predecessor.
	var exitIn assignedSet
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit && facts.Reached[b] {
				exitIn = facts.Out(b)
			}
		}
	}
	got := exitIn.String()
	// a and b are assigned on every path; d only in the then-branch;
	// e only inside the loop (zero-iteration path skips it).
	want := "a,b,done"
	if got != want {
		t.Errorf("definitely-assigned at exit = {%s}, want {%s}", got, want)
	}
}

// TestForwardLoopFixpoint: facts entering a loop header must be the
// join of the entry path and the back edge — an assignment inside the
// loop body must not count as definite at the header.
func TestForwardLoopFixpoint(t *testing.T) {
	_, g := build(t, `
func f(n int) {
	i := 0
	for i < n {
		j := i
		_ = j
		i = i + 1
	}
	k := 9
	_ = k
}`)
	facts := cfg.Forward(g, assignedLattice())
	var header *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.header" {
			header = b
		}
	}
	if header == nil {
		t.Fatal("no for.header block")
	}
	in := facts.In[header]
	if !in["i"] {
		t.Error("i should be definitely assigned at the loop header")
	}
	if in["j"] {
		t.Error("j is loop-local; the zero-iteration entry path must keep it out of the header's must-set")
	}
}

// TestForwardUnreachedDead: blocks after a return stay unreached and
// get no facts.
func TestForwardUnreachedDead(t *testing.T) {
	_, g := build(t, `
func f() int {
	return 1
}`)
	facts := cfg.Forward(g, assignedLattice())
	for _, b := range g.Blocks {
		if b == g.Entry || b == g.Exit {
			continue
		}
		if len(b.Preds) == 0 && facts.Reached[b] {
			t.Errorf("dead block %d.%s marked reached", b.Index, b.Kind)
		}
	}
}

package cfg

import (
	"go/ast"
)

// A Lattice describes one forward dataflow problem: the fact domain
// F, the entry fact, the join at control-flow merges, and the
// per-node transfer function.
//
// Facts are shared between blocks, so Join and Transfer MUST NOT
// mutate their inputs — return a fresh value (or the unchanged input)
// instead. The domain must have finite height: the fixpoint loop
// iterates until In facts stop changing under Join.
type Lattice[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges the facts of two incoming edges (must-analyses
	// intersect, may-analyses union).
	Join func(a, b F) F
	// Transfer applies one node's effect to the incoming fact.
	Transfer func(n ast.Node, f F) F
	// Equal reports fact equality (fixpoint detection).
	Equal func(a, b F) bool
}

// Facts is the fixpoint solution of one forward problem.
type Facts[F any] struct {
	lat Lattice[F]
	// In is the fact at each reached block's entry.
	In map[*Block]F
	// Reached marks blocks reachable from Entry; unreached blocks
	// (dead code) have no fact and should be skipped by reporters.
	Reached map[*Block]bool
}

// Out folds the block's nodes over its entry fact, yielding the fact
// at the block's end. Reporters that need the fact at an interior
// node re-run Transfer themselves node by node from In[b].
func (f *Facts[F]) Out(b *Block) F {
	fact := f.In[b]
	for _, n := range b.Nodes {
		fact = f.lat.Transfer(n, fact)
	}
	return fact
}

// Forward runs the classic worklist iteration to a fixpoint and
// returns the per-block entry facts. Only blocks reachable from
// g.Entry participate; iteration order is deterministic (FIFO over
// the deterministic successor lists), and so is the solution for any
// commutative, associative Join.
func Forward[F any](g *Graph, lat Lattice[F]) *Facts[F] {
	f := &Facts[F]{
		lat:     lat,
		In:      make(map[*Block]F),
		Reached: make(map[*Block]bool),
	}
	f.In[g.Entry] = lat.Entry
	f.Reached[g.Entry] = true

	queue := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		out := f.Out(b)
		for _, s := range b.Succs {
			changed := false
			if !f.Reached[s] {
				f.Reached[s] = true
				f.In[s] = out
				changed = true
			} else if j := lat.Join(f.In[s], out); !lat.Equal(j, f.In[s]) {
				f.In[s] = j
				changed = true
			}
			if changed && !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return f
}

package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"diversecast/internal/analysis/cfg"
)

// build parses src (one file with one function) and builds the CFG of
// the first FuncDecl, with the syntactic panic classifier.
func build(t *testing.T, src string) (*token.FileSet, *cfg.Graph) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, cfg.New(fd.Body, cfg.Options{})
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// checkGraph compares the formatted graph against the hand-built
// expectation.
func checkGraph(t *testing.T, fset *token.FileSet, g *cfg.Graph, want string) {
	t.Helper()
	got := strings.TrimSpace(g.Format(fset))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func exitReachable(g *cfg.Graph) bool { return g.Reach()[g.Exit] }

// TestGotoLoop: a goto cycle with no way out — the exit block must be
// unreachable and the cycle visible.
func TestGotoLoop(t *testing.T) {
	fset, g := build(t, `
func f() {
	x := 0
L:
	x++
	goto L
}`)
	checkGraph(t, fset, g, `
0.entry: [x := 0] -> 2
1.exit:
2.label.L: [x++] -> 2`)
	if exitReachable(g) {
		t.Error("exit reachable through a goto-only loop")
	}
	if !g.HasReachableCycle() {
		t.Error("goto cycle not detected")
	}
}

// TestLabeledBreak: break with a label must jump past the OUTER loop,
// not just the inner one.
func TestLabeledBreak(t *testing.T) {
	fset, g := build(t, `
func f(xs [][]int) int {
	s := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			s += v
		}
	}
	return s
}`)
	checkGraph(t, fset, g, `
0.entry: [s := 0] -> 2
1.exit:
2.label.outer: -> 3
3.range.loop: [for _, row := range xs] -> 4 5
4.range.body: -> 6
5.range.done: [return s] term -> 1
6.range.loop: [for _, v := range row] -> 7 8
7.range.body: [v < 0] -> 10 9
8.range.done: -> 3
9.if.done: [s += v] -> 6
10.if.then: -> 5`)
	if !exitReachable(g) {
		t.Error("exit not reachable")
	}
}

// TestSelect: comm clauses become marked branch statements; a
// caseless select blocks forever, making the following code dead.
func TestSelect(t *testing.T) {
	fset, g := build(t, `
func f(in chan int, quit chan struct{}, out chan int) {
	for {
		select {
		case v := <-in:
			out <- v
		case <-quit:
			return
		}
	}
}`)
	checkGraph(t, fset, g, `
0.entry: -> 2
1.exit:
2.for.header: -> 3
3.for.body: -> 6 7
5.select.done: -> 2
6.select.case: [v := <-in] [out <- v] -> 5
7.select.case: [<-quit] [return] term -> 1`)
	comms := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if s, ok := n.(ast.Stmt); ok && g.IsSelectComm(s) {
				comms++
			}
		}
	}
	if comms != 2 {
		t.Errorf("got %d marked select comm statements, want 2", comms)
	}

	_, g2 := build(t, `
func g(x *int) {
	select {}
	*x = 1
}`)
	if exitReachable(g2) {
		t.Error("code after select{} should be unreachable")
	}
}

// TestDeferUnlock: the defer is an ordinary node in flow order, and
// both the early return and the fall-off-the-end path are exit
// predecessors — the shape the lockbalance transfer relies on.
func TestDeferUnlock(t *testing.T) {
	fset, g := build(t, `
func f(mu interface{ Lock(); Unlock() }, c bool, x *int) {
	mu.Lock()
	defer mu.Unlock()
	if c {
		return
	}
	*x = 2
}`)
	checkGraph(t, fset, g, `
0.entry: [mu.Lock()] [defer mu.Unlock()] [c] -> 3 2
1.exit:
2.if.done: [*x = 2] -> 1
3.if.then: [return] term -> 1`)
	if got := len(g.Exit.Preds); got != 2 {
		t.Errorf("exit has %d predecessors, want 2 (early return + fall-off)", got)
	}
}

// TestPanicTerm: a panic call terminates its block with an edge to
// exit and Term set to the call.
func TestPanicTerm(t *testing.T) {
	_, g := build(t, `
func f(c bool, x *int) {
	if c {
		panic("boom")
	}
	*x = 1
}`)
	var panicBlocks int
	for _, b := range g.Blocks {
		if b.Term == nil || b == g.Exit {
			continue
		}
		if call, ok := b.Term.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				panicBlocks++
				hasExit := false
				for _, s := range b.Succs {
					hasExit = hasExit || s == g.Exit
				}
				if !hasExit {
					t.Error("panic block has no edge to exit")
				}
			}
		}
	}
	if panicBlocks != 1 {
		t.Errorf("got %d panic-terminated blocks, want 1", panicBlocks)
	}
}

// TestSwitchFallthrough: fallthrough edges into the next clause; a
// switch without default can bypass every clause.
func TestSwitchFallthrough(t *testing.T) {
	_, g := build(t, `
func f(x int) int {
	n := 0
	switch x {
	case 1:
		n = 1
		fallthrough
	case 2:
		n += 2
	}
	return n
}`)
	if !exitReachable(g) {
		t.Error("exit not reachable")
	}
	// The case-1 block must have an edge to the case-2 block
	// (fallthrough), and the switch entry an edge to done (no default).
	var case1, case2 *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			if case1 == nil {
				case1 = b
			} else {
				case2 = b
			}
		}
	}
	if case1 == nil || case2 == nil {
		t.Fatal("missing switch case blocks")
	}
	found := false
	for _, s := range case1.Succs {
		found = found || s == case2
	}
	if !found {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

// Package cfg builds per-function control-flow graphs and runs
// forward dataflow analyses over them — the flow-sensitive layer under
// the diverselint passes that check *path* properties (lock balance,
// goroutine joinability, determinism taint) rather than per-line
// syntax.
//
// The builder is a small, dependency-free analogue of
// golang.org/x/tools/go/cfg: a function body becomes basic blocks of
// ast.Nodes in execution order, with edges for if/for/range/switch/
// select/goto/labeled-branch control flow. Two repo-specific choices:
//
//   - Every function has a single virtual Exit block. return
//     statements and no-return calls (panic, os.Exit, t.Fatal — see
//     NoReturn) edge straight to it, with the routing node recorded as
//     Block.Term, so "on every path to return/panic" is literally "at
//     every predecessor of Exit".
//   - defer statements appear as ordinary nodes in flow order. A
//     deferred call is guaranteed to run at function exit on every
//     path that passes its registration, which is exactly the shape
//     the lock-balance transfer function needs (defer mu.Unlock()
//     balances every exit downstream of it, and only those).
//
// Statements inside function literals are NOT part of the enclosing
// function's graph: a closure runs on its own goroutine's schedule
// and lock state, so passes build a separate graph per FuncLit.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. Exit is the single
	// virtual sink every return/panic/fall-off-the-end reaches; it
	// holds no nodes.
	Entry, Exit *Block

	// Blocks lists every block (including unreachable ones, which
	// keep dead code from crashing analyses) in creation order —
	// deterministic for a given body.
	Blocks []*Block

	selectComm map[ast.Stmt]bool
}

// A Block is one straight-line run of nodes.
type Block struct {
	Index int
	// Kind is a human-readable tag ("entry", "for.body", ...) used by
	// Format and the tests.
	Kind string
	// Nodes are the block's statements and control expressions in
	// execution order. Condition expressions (if/for cond, switch
	// tag) and range statements appear as their own nodes so transfer
	// functions observe every evaluated expression.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Term is the node that routes this block directly to Exit: a
	// *ast.ReturnStmt, or the *ast.CallExpr of a no-return call. It
	// is nil for ordinary blocks and for the implicit
	// fall-off-the-end edge.
	Term ast.Node
}

// IsSelectComm reports whether s is the communication clause of a
// select case. A send there is non-blocking by construction (the
// select chose a ready case), so lock-order passes exempt it.
func (g *Graph) IsSelectComm(s ast.Stmt) bool { return g.selectComm[s] }

// Reach returns the set of blocks reachable from Entry.
func (g *Graph) Reach() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// HasReachableCycle reports whether any cycle is reachable from Entry
// (i.e. the function contains a loop that can actually run).
func (g *Graph) HasReachableCycle() bool {
	const (
		white = iota // unvisited
		grey         // on the DFS stack
		black        // done
	)
	color := make(map[*Block]int)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		color[b] = grey
		for _, s := range b.Succs {
			switch color[s] {
			case grey:
				return true
			case white:
				if walk(s) {
					return true
				}
			}
		}
		color[b] = black
		return false
	}
	return walk(g.Entry)
}

// Options configures graph construction.
type Options struct {
	// NoReturn reports whether a call never returns to its caller
	// (panic, os.Exit, log.Fatalf, testing.T Fatal/Skip...). Such
	// calls get an edge to Exit with the call as Term. Nil recognizes
	// only the syntactic builtin panic.
	NoReturn func(*ast.CallExpr) bool
}

// NoReturn returns a types-aware no-return classifier: the builtin
// panic, os.Exit, runtime.Goexit, log.Fatal*/Panic*, and the
// testing.T/B/F Fatal*/Skip*/FailNow family.
func NoReturn(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		var obj types.Object
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			obj = info.Uses[fun]
		case *ast.SelectorExpr:
			obj = info.Uses[fun.Sel]
		default:
			return false
		}
		if b, ok := obj.(*types.Builtin); ok {
			return b.Name() == "panic"
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "os":
			return name == "Exit"
		case "runtime":
			return name == "Goexit"
		case "log":
			return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
		case "testing":
			switch name {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true
			}
		}
		return false
	}
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt, opt Options) *Graph {
	b := &builder{
		g:        &Graph{selectComm: make(map[ast.Stmt]bool)},
		noReturn: opt.NoReturn,
		named:    make(map[string]*Block),
	}
	if b.noReturn == nil {
		b.noReturn = func(call *ast.CallExpr) bool {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && id.Name == "panic"
		}
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, b.g.Exit)
	return b.g
}

type builder struct {
	g        *Graph
	noReturn func(*ast.CallExpr) bool
	cur      *Block

	// targets is the stack of enclosing breakable/continuable
	// constructs.
	targets *target
	// named maps label names to their blocks (goto targets); keyed by
	// name since the parser runs with SkipObjectResolution.
	named map[string]*Block
	// pendingLabel is the label of the LabeledStmt being built, to be
	// claimed by the next loop/switch/select.
	pendingLabel string
	// fall is the fallthrough target inside a switch clause.
	fall *Block
}

type target struct {
	prev  *target
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startDead begins a fresh block with no predecessors — the code
// following a return/goto/panic, unreachable unless something jumps
// to it (a label).
func (b *builder) startDead(kind string) {
	b.cur = b.newBlock(kind)
}

// labelBlock returns (creating on first use) the block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.named[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.named[name] = blk
	return blk
}

// claimLabel consumes the pending label of the enclosing LabeledStmt.
func (b *builder) claimLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) findBreak(label string) *Block {
	for t := b.targets; t != nil; t = t.prev {
		if label == "" || t.label == label {
			return t.brk
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for t := b.targets; t != nil; t = t.prev {
		if t.cont != nil && (label == "" || t.label == label) {
			return t.cont
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.cur.Term = call
			b.edge(b.cur, b.g.Exit)
			b.startDead("dead")
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur.Term = s
		b.edge(b.cur, b.g.Exit)
		b.startDead("dead")

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.edge(b.cur, t)
			}
			b.startDead("dead")
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.edge(b.cur, t)
			}
			b.startDead("dead")
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(label))
			b.startDead("dead")
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.edge(b.cur, b.fall)
			}
			b.startDead("dead")
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		done := b.newBlock("if.done")
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
		} else {
			b.edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.claimLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock("for.header")
		b.edge(b.cur, header)
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		var post *Block
		cont := header
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, done)
		}
		b.targets = &target{prev: b.targets, label: label, brk: done, cont: cont}
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets.prev
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, header)
		} else {
			b.edge(b.cur, header)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.claimLabel()
		header := b.newBlock("range.loop")
		header.Nodes = append(header.Nodes, s)
		b.edge(b.cur, header)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(header, body)
		b.edge(header, done)
		b.targets = &target{prev: b.targets, label: label, brk: done, cont: header}
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets.prev
		b.edge(b.cur, header)
		b.cur = done

	case *ast.SwitchStmt:
		label := b.claimLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.claimLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(label, s.Body, s.Assign)

	case *ast.SelectStmt:
		label := b.claimLabel()
		entry := b.cur
		done := b.newBlock("select.done")
		b.targets = &target{prev: b.targets, label: label, brk: done}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(entry, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.g.selectComm[cc.Comm] = true
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, done)
		}
		b.targets = b.targets.prev
		// A select with no cases blocks forever: done keeps no edge
		// from entry and the following code is unreachable — exactly
		// the semantics of `select {}`.
		b.cur = done

	case *ast.DeclStmt, *ast.AssignStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing
	}
}

// switchBody builds the clause blocks of a switch or type switch.
// assign is the type switch's assign/expr statement (added to the
// entry block as the evaluated node), nil for expression switches.
func (b *builder) switchBody(label string, body *ast.BlockStmt, assign ast.Stmt) {
	if assign != nil {
		b.add(assign)
	}
	entry := b.cur
	done := b.newBlock("switch.done")
	b.targets = &target{prev: b.targets, label: label, brk: done}

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blocks[i] = b.newBlock("switch.case")
		if cc.List == nil {
			hasDefault = true
			blocks[i].Kind = "switch.default"
		}
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		b.edge(entry, blocks[i])
	}
	if !hasDefault {
		b.edge(entry, done)
	}
	savedFall := b.fall
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if i+1 < len(clauses) {
			b.fall = blocks[i+1]
		} else {
			b.fall = nil
		}
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.fall = savedFall
	b.targets = b.targets.prev
	b.cur = done
}

// Format renders the graph for tests and debugging: one line per
// block with its kind, nodes (single-line source), terminator marker
// and successor indices.
func (g *Graph) Format(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		// Skip empty unreachable filler blocks to keep the rendering
		// focused (dead blocks after return/goto usually hold nothing).
		if len(blk.Preds) == 0 && len(blk.Nodes) == 0 && blk != g.Entry && blk != g.Exit {
			continue
		}
		fmt.Fprintf(&sb, "%d.%s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " [%s]", nodeString(fset, n))
		}
		if blk.Term != nil {
			sb.WriteString(" term")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeString(fset *token.FileSet, n ast.Node) string {
	// A RangeStmt node stands for the iteration header only (its body
	// is separate blocks); render it without the body.
	if r, ok := n.(*ast.RangeStmt); ok {
		s := "range " + nodeString(fset, r.X)
		if r.Key != nil {
			vars := nodeString(fset, r.Key)
			if r.Value != nil {
				vars += ", " + nodeString(fset, r.Value)
			}
			s = vars + " " + r.Tok.String() + " " + s
		}
		return "for " + s
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("%T", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

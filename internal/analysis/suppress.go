package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//diverselint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line itself (end-of-line comment) or
// on the line immediately above it. The reason is mandatory: an
// ignore without a justification is itself reported as a finding, so
// every suppression in the tree documents why the invariant does not
// apply. The analyzer list may be "all".
//
// The prefix is deliberately not staticcheck's //lint:ignore —
// staticcheck validates the check names in those directives, and the
// two tools run side by side in CI.

const ignorePrefix = "diverselint:ignore"

// A directive is one parsed //diverselint:ignore comment.
type directive struct {
	pos       token.Position // of the comment
	analyzers map[string]bool
	reason    string
}

func (d *directive) matches(analyzer string) bool {
	return d.analyzers["all"] || d.analyzers[analyzer]
}

// parseDirectives extracts ignore directives from a file, keyed by
// the line they suppress. A directive on line N suppresses findings
// on line N and, when it is the only thing on its line, also on line
// N+1. Malformed directives (no analyzer, or no reason) are returned
// separately so the driver can report them.
func parseDirectives(fset *token.FileSet, f *ast.File) (byLine map[int][]*directive, malformed []*directive) {
	byLine = make(map[int][]*directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			d := &directive{pos: pos, analyzers: make(map[string]bool)}
			if len(fields) >= 1 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						d.analyzers[name] = true
					}
				}
				d.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			if len(d.analyzers) == 0 || d.reason == "" {
				malformed = append(malformed, d)
				continue
			}
			byLine[pos.Line] = append(byLine[pos.Line], d)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
		}
	}
	return byLine, malformed
}

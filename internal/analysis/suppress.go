package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//diverselint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line itself (end-of-line comment) or
// on the line immediately above it. The reason is mandatory: an
// ignore without a justification is itself reported as a finding, so
// every suppression in the tree documents why the invariant does not
// apply. The analyzer list may be "all".
//
// The prefix is deliberately not staticcheck's //lint:ignore —
// staticcheck validates the check names in those directives, and the
// two tools run side by side in CI.

const ignorePrefix = "diverselint:ignore"

// A Suppression is one parsed //diverselint:ignore directive. The
// driver's -audit mode walks every directive in the module through
// this type; the lint run itself uses the same records keyed by the
// lines they cover.
type Suppression struct {
	Pos       token.Position // of the comment
	Analyzers []string       // as written, in order; may contain "all"
	Reason    string
}

// Matches reports whether the directive covers the named analyzer.
func (s *Suppression) Matches(analyzer string) bool {
	for _, a := range s.Analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

// FileSuppressions extracts every ignore directive from a file.
// Malformed directives (no analyzer, or no reason) are returned
// separately so callers can report them.
func FileSuppressions(fset *token.FileSet, f *ast.File) (valid, malformed []Suppression) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			s := Suppression{Pos: fset.Position(c.Pos())}
			if fields := strings.Fields(rest); len(fields) >= 1 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						s.Analyzers = append(s.Analyzers, name)
					}
				}
				s.Reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			if len(s.Analyzers) == 0 || s.Reason == "" {
				malformed = append(malformed, s)
				continue
			}
			valid = append(valid, s)
		}
	}
	return valid, malformed
}

// parseDirectives keys a file's valid directives by the lines they
// suppress: a directive on line N suppresses findings on line N and
// on line N+1.
func parseDirectives(fset *token.FileSet, f *ast.File) (byLine map[int][]*Suppression, malformed []Suppression) {
	valid, malformed := FileSuppressions(fset, f)
	byLine = make(map[int][]*Suppression)
	for i := range valid {
		s := &valid[i]
		byLine[s.Pos.Line] = append(byLine[s.Pos.Line], s)
		byLine[s.Pos.Line+1] = append(byLine[s.Pos.Line+1], s)
	}
	return byLine, malformed
}

package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic from one analyzer, positioned and
// suppression-resolved.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks findings matched by a //diverselint:ignore
	// directive; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the merged
// findings sorted by position. Suppressed findings are included
// (marked) so drivers can count or display them; malformed
// suppression directives are reported as findings of the pseudo
// analyzer "ignorespec". inter is the whole-program interprocedural
// state handed to every pass via Pass.Inter (nil disables the
// interprocedural passes' cross-function reasoning).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, inter any) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		byLine := make(map[string]map[int][]*Suppression) // filename -> line -> directives
		for _, f := range pkg.Files {
			lines, malformed := parseDirectives(fset, f)
			name := fset.Position(f.Pos()).Filename
			byLine[name] = lines
			for _, d := range malformed {
				findings = append(findings, Finding{
					Analyzer: "ignorespec",
					Pos:      d.Pos,
					Message:  "malformed //diverselint:ignore directive: need an analyzer list and a reason",
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Inter:     inter,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				fd := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				for _, dir := range byLine[pos.Filename][pos.Line] {
					if dir.Matches(a.Name) {
						fd.Suppressed = true
						fd.Reason = dir.Reason
						break
					}
				}
				findings = append(findings, fd)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

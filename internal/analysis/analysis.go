// Package analysis is a small, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The module cannot vendor x/tools (the repo builds offline with the
// standard library only), so this package provides just enough of the
// same shape — Analyzer, Pass, Reportf — for the diverselint suite
// under passes/ to read as ordinary go/analysis code, and for the
// suite to migrate to the real framework wholesale if x/tools ever
// becomes available. Loading and type-checking live in load.go; the
// driver loop and suppression directives in run.go and suppress.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass: a named invariant check
// that runs over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //diverselint:ignore directives. It must be a valid Go
	// identifier.
	Name string

	// Doc is the one-paragraph description printed by
	// `diverselint -list`: the invariant guarded and why it matters
	// to this codebase.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Report. A non-nil error aborts the whole lint run
	// (it signals a broken analyzer, not a finding).
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Inter carries the whole-program interprocedural state shared by
	// every pass in a run — concretely a *summary.Program (declared
	// `any` here because summary imports this package). Per-function
	// passes ignore it; the interprocedural passes (guardrace,
	// lockorder, and the summary-aware lockbalance/errdrop upgrades)
	// type-assert it and degrade to intraprocedural behavior when it
	// is absent.
	Inter any

	// Report delivers one diagnostic. The driver fills position
	// information and applies suppression directives.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding within the package being analyzed.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IsFloat reports whether t's underlying type is float32 or float64.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// MethodFullName resolves the method referenced by a selector call to
// its *types.Func full name, e.g. "(*sync.Mutex).Lock". It returns ""
// when the selector does not resolve to a method (including when type
// information is incomplete). Promoted methods of embedded fields
// resolve to the embedded type's method, which is exactly what the
// lock- and wait-matching passes need.
func MethodFullName(info *types.Info, sel *ast.SelectorExpr) string {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return "" // package-level function, not a method
	}
	return fn.FullName()
}

// A LockOp classifies a call's effect on a mutex.
type LockOp int

const (
	LockNone    LockOp = iota // not a mutex operation
	LockAcquire               // Lock or RLock
	LockRelease               // Unlock or RUnlock
)

// lock method full names, resolved through go/types so promoted
// methods of embedded mutexes match too. Shared by the locksend and
// lockbalance passes.
var (
	lockAcquireMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	lockReleaseMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
)

// ClassifyLockCall classifies e as a sync.Mutex/RWMutex acquire or
// release. recv is the receiver expression's source text (the lock's
// identity for held-set tracking), method the method name
// (Lock/RLock/Unlock/RUnlock).
func ClassifyLockCall(info *types.Info, e ast.Expr) (recv, method string, op LockOp) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", LockNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", LockNone
	}
	full := MethodFullName(info, sel)
	switch {
	case lockAcquireMethods[full]:
		return types.ExprString(sel.X), sel.Sel.Name, LockAcquire
	case lockReleaseMethods[full]:
		return types.ExprString(sel.X), sel.Sel.Name, LockRelease
	}
	return "", "", LockNone
}

// LookupInterface finds the named interface type (e.g. path "net",
// name "Conn") in pkg's transitive imports. It returns nil when the
// package or name is absent — callers degrade gracefully rather than
// fail, since an analyzed package that never imports net cannot be
// holding one of its connections.
func LookupInterface(pkg *types.Package, path, name string) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			obj, ok := p.Scope().Lookup(name).(*types.TypeName)
			if !ok {
				return nil
			}
			iface, _ := obj.Type().Underlying().(*types.Interface)
			return iface
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// ImplementsOrIs reports whether t is, points to, or implements the
// interface iface (nil iface reports false).
func ImplementsOrIs(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

package ctxloop_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, "testdata", ctxloop.Analyzer, "a")
}

// Corpus for ctxloop: infinite loops that cannot observe shutdown.
package a

import "net"

// Flagged: the PR-1 accept-loop class — Accept with no shutdown
// select; Close() strands this goroutine (and a persistent error
// busy-spins it).
func acceptNaive(ln net.Listener, handle func(net.Conn)) {
	for {
		conn, err := ln.Accept() // want `blocking Accept`
		if err != nil {
			continue
		}
		go handle(conn)
	}
}

// Clean: the netcast shape — a select on the closed channel decides
// between retry and exit.
func acceptWithShutdown(ln net.Listener, closed chan struct{}, handle func(net.Conn)) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-closed:
				return
			default:
			}
			continue
		}
		go handle(conn)
	}
}

// Flagged: a bare receive in an infinite loop blocks forever once
// producers stop; there is no way to signal the loop down.
func drainNaive(ch chan int, sink func(int)) {
	for {
		v := <-ch // want `bare channel receive`
		sink(v)
	}
}

// Clean: comma-ok receive observes close.
func drainCommaOk(ch chan int, sink func(int)) {
	for {
		v, ok := <-ch
		if !ok {
			return
		}
		sink(v)
	}
}

// Clean: select with a done case.
func drainSelect(ch chan int, done chan struct{}, sink func(int)) {
	for {
		select {
		case v := <-ch:
			sink(v)
		case <-done:
			return
		}
	}
}

// Clean: range over a channel terminates on close (not an infinite
// for statement at all).
func drainRange(ch chan int, sink func(int)) {
	for v := range ch {
		sink(v)
	}
}

// Clean: a bounded loop is not a service loop.
func drainN(ch chan int, n int, sink func(int)) {
	for i := 0; i < n; i++ {
		sink(<-ch)
	}
}

// Clean: a method named Accept on a non-listener is not the class.
type queue struct{}

func (queue) Accept() int { return 0 }

func notAListener(q queue, stop chan struct{}) {
	for {
		_ = q.Accept()
		select {
		case <-stop:
			return
		default:
		}
	}
}

// Flagged even for the non-listener Accept shape: the bare receive
// in the nested helper loop below is its own finding.
func nested(ch chan int, done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		func() {
			for {
				<-ch // want `bare channel receive`
			}
		}()
	}
}

// Package ctxloop flags infinite service loops that block on an
// accept or channel receive with no way to observe shutdown.
//
// This is the accept-loop class fixed in PR 1: `for { conn, err :=
// ln.Accept(); ... }` can neither exit when the server closes nor
// distinguish shutdown from a transient error, so Close() leaves the
// goroutine behind (or busy-spinning on a persistent error). A
// compliant loop selects on a done/closed channel somewhere in its
// body — see netcast.(*Server).acceptLoop for the canonical shape.
package ctxloop

import (
	"go/ast"
	"go/token"

	"diversecast/internal/analysis"
)

// Analyzer flags unstoppable infinite loops.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flags infinite `for` loops that block on a listener Accept or a bare channel receive " +
		"without any select (or comma-ok receive) in the body: such loops cannot observe " +
		"shutdown and strand their goroutine past Close (the accept-loop class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			checkLoop(pass, loop)
			return true
		})
	}
	return nil
}

// checkLoop inspects one infinite loop body. The loop is compliant if
// it contains any select statement (presumed to include a shutdown
// case) or a comma-ok receive (which observes channel close). It is
// flagged if, lacking both, it performs a blocking accept or a bare
// receive.
func checkLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	var (
		hasSelect    bool
		hasCommaOk   bool
		firstBlocker ast.Node
		blockerDesc  string
	)

	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // separate goroutine/closure: its own loop problem
		case *ast.ForStmt:
			if st != loop && st.Cond == nil {
				return false // nested infinite loop is checked on its own
			}
		case *ast.SelectStmt:
			hasSelect = true
			return false
		case *ast.AssignStmt:
			// v, ok := <-ch observes close; the loop can exit.
			if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
				if u, ok := st.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					hasCommaOk = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && firstBlocker == nil {
				firstBlocker = st
				blockerDesc = "bare channel receive"
			}
		case *ast.CallExpr:
			if isAccept(pass, st) && firstBlocker == nil {
				firstBlocker = st
				blockerDesc = "blocking Accept"
			}
		}
		return true
	})

	if hasSelect || hasCommaOk || firstBlocker == nil {
		return
	}
	pass.Reportf(firstBlocker.Pos(),
		"infinite loop performs a %s with no select on a done/closed channel anywhere in the body: the loop cannot observe shutdown (see netcast.(*Server).acceptLoop for the compliant shape)",
		blockerDesc)
}

// isAccept reports whether call invokes an Accept method on a
// net.Listener (or anything implementing it).
func isAccept(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Accept" {
		return false
	}
	listener := analysis.LookupInterface(pass.Pkg, "net", "Listener")
	if listener == nil {
		// Package never links net; a method merely named Accept is
		// not the accept-loop class.
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && analysis.ImplementsOrIs(t, listener)
}

package detrand_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "a")
}

// Package detrand tracks determinism taint: values derived from
// wall-clock time, the global math/rand source, or map iteration
// order, flowing into places that must be reproducible.
//
// The repository's experiments are replication-exact: every figure is
// regenerated from a seed, and the golden tests against the paper's
// tables only mean something if a run is a pure function of that
// seed. The three nondeterminism sources that have actually bitten
// broadcast-scheduling codebases are
//
//   - time.Now/Since/Until — wall-clock deltas folded into costs,
//   - the global math/rand source (rand.Intn, rand.Float64, ... — the
//     seeded rand.New(rand.NewSource(seed)) idiom is exactly what this
//     pass wants instead, and is never flagged),
//   - map iteration order captured into values.
//
// The analysis is a forward may-taint dataflow over the function CFG
// (join = union): assignments propagate taint object-to-object, and
// three sinks report —
//
//  1. float accumulation (+=, -=, *=, /=, x = x + y) of a time- or
//     rand-tainted value (map-order float accumulation is floatdet's
//     finding and is not duplicated here),
//  2. comparisons inside a comparator (a FuncLit passed to
//     sort.Slice/SliceStable/SliceIsSorted/Search, or a method named
//     Less) with a tainted operand — nondeterministic tie-breaks
//     reorder results run to run,
//  3. task closures (a FuncLit launched by `go` or handed to another
//     function as an argument) capturing a time- or rand-tainted
//     variable — worker pools replay such tasks in a different
//     interleaving every run.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/cfg"
)

// Analyzer flags nondeterministic values reaching reproducibility-
// critical sinks.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flags wall-clock (time.Now), global math/rand, and map-iteration-order values flowing " +
		"into float accumulation, sort comparators, or task closures: experiment output must be a " +
		"pure function of the seed, so thread a seeded *rand.Rand and keep timings out of costs",
	Run: run,
}

// kind is a bitset of taint origins.
type kind uint8

const (
	kindTime    kind = 1 << iota // time.Now / Since / Until
	kindRand                     // global math/rand source
	kindMapIter                  // map iteration order
)

func (k kind) describe() string {
	switch {
	case k&kindTime != 0:
		return "time.Now"
	case k&kindRand != 0:
		return "the global math/rand source"
	case k&kindMapIter != 0:
		return "map iteration order"
	}
	return "a nondeterministic source"
}

// fact maps objects to the taint that MAY have reached them.
type fact map[types.Object]kind

// litRole classifies how a function literal will be invoked.
type litRole int

const (
	rolePlain      litRole = iota // called inline / deferred
	roleTask                      // go stmt or callback argument
	roleComparator                // sort.* ordering argument
)

type checker struct {
	pass *analysis.Pass
	done map[*ast.FuncLit]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, done: map[*ast.FuncLit]bool{}}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests may time and shuffle freely
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.analyze(fd.Body, fact{}, fd.Name.Name == "Less")
			}
		}
	}
	return nil
}

// analyze runs the taint dataflow over one function body. seed holds
// taints captured from the enclosing function (for closures).
func (c *checker) analyze(body *ast.BlockStmt, seed fact, comparator bool) {
	g := cfg.New(body, cfg.Options{NoReturn: cfg.NoReturn(c.pass.TypesInfo)})
	facts := cfg.Forward(g, cfg.Lattice[fact]{
		Entry: cloneFact(seed),
		Join:  union,
		Transfer: func(n ast.Node, f fact) fact {
			return c.transfer(n, f)
		},
		Equal: factEqual,
	})
	for _, b := range g.Blocks {
		if !facts.Reached[b] {
			continue
		}
		f := facts.In[b]
		for _, n := range b.Nodes {
			c.checkNode(n, f, comparator)
			f = c.transfer(n, f)
		}
	}
}

func (c *checker) checkNode(n ast.Node, f fact, comparator bool) {
	// A RangeStmt CFG node stands for the iteration header; only the
	// ranged expression is evaluated here.
	if r, ok := n.(*ast.RangeStmt); ok {
		n = r.X
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		c.checkAccumulation(as, f)
	}
	if comparator {
		c.checkComparisons(n, f)
	}
	c.visitLits(n, f)
}

// checkAccumulation is sink 1: a float accumulator absorbing a time-
// or rand-tainted value.
func (c *checker) checkAccumulation(as *ast.AssignStmt, f fact) {
	lhs, rhs := accumulation(as)
	if lhs == nil {
		return
	}
	if t := c.pass.TypesInfo.TypeOf(lhs); t == nil || !analysis.IsFloat(t) {
		return
	}
	k := c.exprTaint(rhs, f) & (kindTime | kindRand)
	if k == 0 {
		return
	}
	c.pass.Reportf(as.Pos(),
		"%s accumulates a value derived from %s: the result differs run to run and breaks seed-exact replication; thread a seeded *rand.Rand or keep timings out of the cost path",
		types.ExprString(lhs), k.describe())
}

// accumulation recognizes x += y (and -= *= /=) and the spelled-out
// x = x + y, returning the accumulator and the accumulated expression.
func accumulation(as *ast.AssignStmt) (lhs, rhs ast.Expr) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return as.Lhs[0], as.Rhs[0]
	case token.ASSIGN:
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil, nil
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, nil
		}
		ls := types.ExprString(as.Lhs[0])
		if types.ExprString(be.X) == ls || (be.Op == token.ADD || be.Op == token.MUL) && types.ExprString(be.Y) == ls {
			return as.Lhs[0], as.Rhs[0]
		}
	}
	return nil, nil
}

// checkComparisons is sink 2: inside a comparator, any comparison
// with a tainted operand makes the sort order nondeterministic.
func (c *checker) checkComparisons(n ast.Node, f fact) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		be, ok := x.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if k := c.exprTaint(be.X, f) | c.exprTaint(be.Y, f); k != 0 {
			c.pass.Reportf(be.Pos(),
				"comparator result depends on %s: the sort order changes run to run, so downstream allocations stop being seed-reproducible; compare stable fields and break ties deterministically",
				k.describe())
			return false // one report per comparison tree
		}
		return true
	})
}

// visitLits discovers the function literals evaluated by this node,
// classifies how each will be invoked, applies sink 3, and recurses
// into their bodies with the captured taints as the entry fact.
func (c *checker) visitLits(n ast.Node, f fact) {
	roles := map[*ast.FuncLit]litRole{}
	mark := func(e ast.Expr, r litRole) {
		if lit, ok := e.(*ast.FuncLit); ok {
			if _, seen := roles[lit]; !seen {
				roles[lit] = r
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			mark(x.Call.Fun, roleTask)
		case *ast.DeferStmt:
			mark(x.Call.Fun, rolePlain) // runs in this goroutine, once
		case *ast.CallExpr:
			r := roleTask
			if isSortOrdering(c.pass.TypesInfo, x.Fun) {
				r = roleComparator
			}
			for _, a := range x.Args {
				mark(a, r)
			}
		case *ast.FuncLit:
			c.handleLit(x, roles[x], f)
			return false // nested literals belong to x's own walk
		}
		return true
	})
}

func (c *checker) handleLit(lit *ast.FuncLit, r litRole, f fact) {
	if c.done[lit] {
		return
	}
	c.done[lit] = true
	if r == roleTask {
		if obj, k := c.capturedTaint(lit, f); obj != nil {
			c.pass.Reportf(lit.Pos(),
				"task closure captures %q, whose value derives from %s: pooled tasks replay in a different interleaving every run, so the output stops being seed-reproducible; resolve the value deterministically before handing the task off",
				obj.Name(), k.describe())
		}
	}
	c.analyze(lit.Body, f, r == roleComparator)
}

// capturedTaint finds a free variable of lit carrying time or rand
// taint at the literal's creation point.
func (c *checker) capturedTaint(lit *ast.FuncLit, f fact) (types.Object, kind) {
	var obj types.Object
	var k kind
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if obj != nil {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		o := c.pass.TypesInfo.Uses[id]
		if o == nil || (o.Pos() >= lit.Pos() && o.Pos() < lit.End()) {
			return true // bound inside the literal, not captured
		}
		if t := f[o] & (kindTime | kindRand); t != 0 {
			obj, k = o, t
		}
		return obj == nil
	})
	return obj, k
}

// ---- taint transfer ----

func (c *checker) transfer(n ast.Node, f fact) fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return c.transferAssign(n, f)
	case *ast.DeclStmt:
		return c.transferDecl(n, f)
	case *ast.RangeStmt:
		return c.transferRange(n, f)
	}
	return f
}

func (c *checker) transferAssign(as *ast.AssignStmt, f fact) fact {
	w := writer{f: f}
	switch as.Tok {
	case token.DEFINE, token.ASSIGN:
		if len(as.Rhs) == len(as.Lhs) {
			// Taints are read from the pre-state before any write, so
			// `a, b = b, a` swaps correctly.
			ks := make([]kind, len(as.Rhs))
			for i, r := range as.Rhs {
				ks[i] = c.exprTaint(r, f)
			}
			for i, l := range as.Lhs {
				c.assignTo(&w, l, ks[i])
			}
		} else if len(as.Rhs) == 1 {
			k := c.exprTaint(as.Rhs[0], f)
			for _, l := range as.Lhs {
				c.assignTo(&w, l, k)
			}
		}
	default: // op-assign: the accumulator keeps its old taint too
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			k := c.exprTaint(as.Lhs[0], f) | c.exprTaint(as.Rhs[0], f)
			c.assignTo(&w, as.Lhs[0], k)
		}
	}
	return w.f
}

func (c *checker) transferDecl(ds *ast.DeclStmt, f fact) fact {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return f
	}
	w := writer{f: f}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var k kind
			switch {
			case len(vs.Values) == len(vs.Names):
				k = c.exprTaint(vs.Values[i], f)
			case len(vs.Values) == 1:
				k = c.exprTaint(vs.Values[0], f)
			}
			w.set(c.identObj(name), k, true)
		}
	}
	return w.f
}

func (c *checker) transferRange(r *ast.RangeStmt, f fact) fact {
	k := c.exprTaint(r.X, f)
	if t := c.pass.TypesInfo.TypeOf(r.X); t != nil && analysis.IsMap(t) {
		k |= kindMapIter
	}
	w := writer{f: f}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		w.set(c.identObj(id), k, true)
	}
	return w.f
}

// assignTo writes taint k through an lvalue: strongly for a plain
// variable, weakly (union) for a field/element of a tracked base.
func (c *checker) assignTo(w *writer, lhs ast.Expr, k kind) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		w.set(c.identObj(id), k, true)
		return
	}
	w.set(baseObject(c.pass.TypesInfo, lhs), k, false)
}

func (c *checker) identObj(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// baseObject resolves the variable at the root of an lvalue chain.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// writer is a copy-on-write view of a fact.
type writer struct {
	f      fact
	cloned bool
}

func (w *writer) set(obj types.Object, k kind, strong bool) {
	if obj == nil {
		return
	}
	old := w.f[obj]
	nv := k
	if !strong {
		nv = old | k
	}
	if nv == old {
		return
	}
	if !w.cloned {
		w.f = cloneFact(w.f)
		w.cloned = true
	}
	if nv == 0 {
		delete(w.f, obj)
	} else {
		w.f[obj] = nv
	}
}

// ---- taint of expressions ----

func (c *checker) exprTaint(e ast.Expr, f fact) kind {
	switch e := e.(type) {
	case *ast.Ident:
		return f[c.identObj(e)]
	case *ast.ParenExpr:
		return c.exprTaint(e.X, f)
	case *ast.SelectorExpr:
		k := c.exprTaint(e.X, f)
		if obj := c.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			k |= f[obj]
		}
		return k
	case *ast.StarExpr:
		return c.exprTaint(e.X, f)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return 0 // channel values are the sender's concern
		}
		return c.exprTaint(e.X, f)
	case *ast.BinaryExpr:
		return c.exprTaint(e.X, f) | c.exprTaint(e.Y, f)
	case *ast.IndexExpr:
		return c.exprTaint(e.X, f)
	case *ast.SliceExpr:
		return c.exprTaint(e.X, f)
	case *ast.TypeAssertExpr:
		return c.exprTaint(e.X, f)
	case *ast.KeyValueExpr:
		return c.exprTaint(e.Value, f)
	case *ast.CompositeLit:
		var k kind
		for _, el := range e.Elts {
			k |= c.exprTaint(el, f)
		}
		return k
	case *ast.CallExpr:
		return c.callTaint(e, f)
	}
	return 0
}

func (c *checker) callTaint(call *ast.CallExpr, f fact) kind {
	// Conversions pass taint through: float64(time.Now().UnixNano()).
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.exprTaint(call.Args[0], f)
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := c.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return sourceKind(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if k := sourceKind(fn); k != 0 {
				return k
			}
			if fn.Signature().Recv() != nil {
				// A method's result inherits its receiver's taint:
				// start.Add(d), now.UnixNano(), ...
				return c.exprTaint(fun.X, f)
			}
		}
	}
	return 0
}

// sourceKind classifies a function as a nondeterminism source.
// rand.New/NewSource/NewZipf are explicitly NOT sources: the seeded
// *rand.Rand idiom is the fix this pass asks for.
func sourceKind(fn *types.Func) kind {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return kindTime
		}
	case "math/rand", "math/rand/v2":
		if fn.Signature().Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			return kindRand
		}
	}
	return 0
}

// isSortOrdering reports whether the callee is a sort function whose
// closure argument defines an ordering.
func isSortOrdering(info *types.Info, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return false
	}
	switch fn.Name() {
	case "Slice", "SliceStable", "SliceIsSorted", "Search":
		return true
	}
	return false
}

// ---- lattice plumbing ----

func union(a, b fact) fact {
	out := cloneFact(a)
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func factEqual(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func cloneFact(f fact) fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

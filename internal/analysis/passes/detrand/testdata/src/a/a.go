// Corpus for detrand: time/rand/map-order taint must not reach
// accumulation, comparators, or task closures.
package a

import (
	"math/rand"
	"sort"
	"time"
)

func use(v any) { _ = v }

// Flagged: wall-clock delta folded into a float cost.
func jitterCost(costs []float64) float64 {
	total := 0.0
	for range costs {
		dt := float64(time.Now().UnixNano())
		total += dt // want `accumulates a value derived from time\.Now`
	}
	return total
}

// Flagged: the global rand source perturbing a cost, including through
// an intermediate variable and the spelled-out accumulation form.
func noisyCost(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		noise := rand.Float64()
		t = t + x*noise // want `accumulates a value derived from the global math/rand source`
	}
	return t
}

// Clean: the seeded-rng threading idiom this pass asks for.
func seededCost(xs []float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for _, x := range xs {
		t += x * rng.Float64()
	}
	return t
}

// Clean: integer time accounting is not a float sink.
func elapsedNs(start time.Time) int64 {
	var total int64
	total += time.Now().UnixNano() - start.UnixNano()
	return total
}

// Flagged: a comparator whose ordering depends on the clock.
func sortByAge(xs []int64) {
	now := time.Now().UnixNano()
	sort.Slice(xs, func(i, j int) bool {
		return xs[i]-now < xs[j]-now // want `comparator result depends on time\.Now`
	})
}

// Flagged: random tie-breaking inside a comparator.
func shuffledSort(xs []int) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i] == xs[j] {
			return rand.Intn(2) == 0 // want `comparator result depends on the global math/rand source`
		}
		return xs[i] < xs[j]
	})
}

// Flagged: the current map-iteration key leaking into a sort order.
func iterSort(m map[string]int, keys []string) {
	for k := range m {
		sort.Slice(keys, func(i, j int) bool {
			if keys[i] == keys[j] {
				return keys[i] < k // want `comparator result depends on map iteration order`
			}
			return keys[i] < keys[j]
		})
	}
}

// Clean: a deterministic comparator, and a Less method reading only
// stable fields.
func sortPlain(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

type byID struct{ ids []int }

func (b byID) Len() int           { return len(b.ids) }
func (b byID) Swap(i, j int)      { b.ids[i], b.ids[j] = b.ids[j], b.ids[i] }
func (b byID) Less(i, j int) bool { return b.ids[i] < b.ids[j] }

// Flagged: a task closure capturing a wall-clock stamp — pooled tasks
// replay in a different interleaving every run.
func submitAll(run func(func())) {
	stamp := time.Now()
	run(func() { // want `task closure captures "stamp"`
		use(stamp)
	})
}

// Flagged: the same capture through a go statement.
func spawn() {
	seed := rand.Int63()
	go func() { // want `task closure captures "seed"`
		use(seed)
	}()
}

// Clean: deferred closures run once, in this goroutine, in a
// deterministic order.
func timed() {
	start := time.Now()
	defer func() {
		use(time.Since(start))
	}()
}

// Clean: a task closure over deterministic inputs.
func submitPlain(run func(func()), xs []float64) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	run(func() {
		use(sum)
	})
}

// Package locksend flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held.
//
// This is the netcast shutdown-deadlock class fixed in PR 1: a caster
// that performed a blocking channel send to a subscriber queue while
// holding its subscriber-set mutex could deadlock against Close(),
// which needs the same mutex to drop the slow subscriber. The safe
// patterns — a select with a default (non-blocking send), or copying
// the subscriber set out under the lock and sending after unlock —
// are exactly what the analyzer accepts.
//
// Since the CFG layer landed, the held set is a real forward
// dataflow over the function's control-flow graph (must-analysis,
// join = ordered intersection) instead of the original lexical scan:
// a lock released on every arm of a branch is released after the
// merge, a lock held across a loop stays held on the back edge, and
// `defer mu.Unlock()` keeps the lock held to function exit — which is
// exactly the truth the original heuristic only approximated.
package locksend

import (
	"go/ast"
	"go/types"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/cfg"
)

// Analyzer flags blocking sends, net.Conn writes, and WaitGroup waits
// under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flags blocking channel sends, net.Conn Write calls, and sync.WaitGroup.Wait calls " +
		"made while a sync.Mutex/RWMutex is held: any of them can deadlock against a " +
		"goroutine that needs the same lock to make progress (the netcast shutdown-deadlock class)",
	Run: run,
}

var waitMethods = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
}

func run(pass *analysis.Pass) error {
	conn := analysis.LookupInterface(pass.Pkg, "net", "Conn")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				// Each function starts lock-free; goroutine and
				// closure bodies encountered inside are analyzed by
				// their own Inspect visit.
				checkFunc(pass, conn, body)
			}
			return true
		})
	}
	return nil
}

// held is the ordered stack of locks known to be held on every path
// to a program point (innermost last — diagnostics name the most
// recent acquisition).
type held []string

func checkFunc(pass *analysis.Pass, conn *types.Interface, body *ast.BlockStmt) {
	g := cfg.New(body, cfg.Options{NoReturn: cfg.NoReturn(pass.TypesInfo)})
	facts := cfg.Forward(g, cfg.Lattice[held]{
		Entry: held{},
		Join:  intersect,
		Transfer: func(n ast.Node, h held) held {
			return transfer(pass, n, h)
		},
		Equal: equal,
	})
	for _, b := range g.Blocks {
		if !facts.Reached[b] {
			continue
		}
		h := facts.In[b]
		for _, n := range b.Nodes {
			checkNode(pass, conn, g, n, h)
			h = transfer(pass, n, h)
		}
	}
}

func transfer(pass *analysis.Pass, n ast.Node, h held) held {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return h
	}
	recv, _, op := analysis.ClassifyLockCall(pass.TypesInfo, es.X)
	switch op {
	case analysis.LockAcquire:
		return append(h[:len(h):len(h)], recv)
	case analysis.LockRelease:
		for i := len(h) - 1; i >= 0; i-- {
			if h[i] == recv {
				out := append(held(nil), h[:i]...)
				return append(out, h[i+1:]...)
			}
		}
	}
	// Note: a deferred Unlock deliberately has no effect — the lock
	// stays held for the remainder of the function, which is the
	// truth the analysis needs.
	return h
}

// checkNode flags blocking operations in one CFG node given the locks
// held on entry to it.
func checkNode(pass *analysis.Pass, conn *types.Interface, g *cfg.Graph, n ast.Node, h held) {
	if len(h) == 0 {
		return
	}
	lock := h[len(h)-1]
	switch n := n.(type) {
	case *ast.SendStmt:
		// A send that is a select communication clause is either
		// non-blocking (default present) or bounded by a peer case
		// (e.g. shutdown); plain sends block until a receiver drains.
		if !g.IsSelectComm(n) {
			pass.Reportf(n.Pos(),
				"blocking channel send while holding %s: a full buffer deadlocks every goroutine that needs this lock; use a select with default, or send after unlocking", lock)
		}

	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at exit, after this scan's state no
		// longer applies; a spawned goroutine does not inherit the
		// parent's locks.

	default:
		checkExprs(pass, conn, n, lock)
	}
}

// checkExprs flags blocking calls (WaitGroup.Wait, net.Conn.Write)
// appearing anywhere inside a node's expressions. Function literals
// are skipped: they run later, on their own goroutine's lock state.
func checkExprs(pass *analysis.Pass, conn *types.Interface, n ast.Node, lock string) {
	// A RangeStmt node stands for the iteration header only; its body
	// belongs to other blocks.
	if r, ok := n.(*ast.RangeStmt); ok {
		n = r.X
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		full := analysis.MethodFullName(pass.TypesInfo, sel)
		if waitMethods[full] {
			pass.Reportf(call.Pos(),
				"%s.Wait() while holding %s: goroutines being waited on may need the lock to finish; wait after unlocking", types.ExprString(sel.X), lock)
			return true
		}
		if sel.Sel.Name == "Write" && conn != nil {
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && analysis.ImplementsOrIs(t, conn) {
				pass.Reportf(call.Pos(),
					"net.Conn write to %s while holding %s: a slow peer stalls every goroutine that needs this lock; enqueue under the lock and write outside it", types.ExprString(sel.X), lock)
			}
		}
		return true
	})
}

func intersect(a, b held) held {
	inB := make(map[string]int, len(b))
	for _, k := range b {
		inB[k]++
	}
	out := held{}
	for _, k := range a {
		if inB[k] > 0 {
			inB[k]--
			out = append(out, k)
		}
	}
	return out
}

func equal(a, b held) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package locksend flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held.
//
// This is the netcast shutdown-deadlock class fixed in PR 1: a caster
// that performed a blocking channel send to a subscriber queue while
// holding its subscriber-set mutex could deadlock against Close(),
// which needs the same mutex to drop the slow subscriber. The safe
// patterns — a select with a default (non-blocking send), or copying
// the subscriber set out under the lock and sending after unlock —
// are exactly what the analyzer accepts.
package locksend

import (
	"go/ast"
	"go/types"

	"diversecast/internal/analysis"
)

// Analyzer flags blocking sends, net.Conn writes, and WaitGroup waits
// under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc: "flags blocking channel sends, net.Conn Write calls, and sync.WaitGroup.Wait calls " +
		"made while a sync.Mutex/RWMutex is held: any of them can deadlock against a " +
		"goroutine that needs the same lock to make progress (the netcast shutdown-deadlock class)",
	Run: run,
}

// lock method names, resolved through go/types so promoted methods of
// embedded mutexes match too.
var (
	lockMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	waitMethods = map[string]bool{
		"(*sync.WaitGroup).Wait": true,
	}
)

func run(pass *analysis.Pass) error {
	conn := analysis.LookupInterface(pass.Pkg, "net", "Conn")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				// Each function starts lock-free; goroutine and
				// closure bodies encountered inside are analyzed by
				// their own Inspect visit.
				scanBlock(pass, conn, body.List, nil)
			}
			return true
		})
	}
	return nil
}

// held tracks the lock expressions (rendered as source text) known to
// be held at a program point. The tracking is lexical, not
// control-flow precise: within one statement list, Lock/Unlock calls
// update the set in order; nested blocks (if/for/switch/select
// bodies) see a copy, so an early-return unlock inside a branch does
// not leak into the fall-through path. defer Unlock leaves the lock
// held for the remainder of the enclosing function — which is exactly
// the truth.
type held []string

func (h held) copyOf() held { return append(held(nil), h...) }

func (h held) without(expr string) held {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == expr {
			return append(h[:i:i], h[i+1:]...)
		}
	}
	return h
}

// scanBlock walks one statement list, threading the held-lock state
// through it and flagging blocking operations while locks are held.
func scanBlock(pass *analysis.Pass, conn *types.Interface, stmts []ast.Stmt, h held) held {
	for _, s := range stmts {
		h = scanStmt(pass, conn, s, h)
	}
	return h
}

func scanStmt(pass *analysis.Pass, conn *types.Interface, s ast.Stmt, h held) held {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if expr, kind := lockCall(pass, st.X); kind == lockAcquire {
			return append(h, expr)
		} else if kind == lockRelease {
			return h.without(expr)
		}
		checkExpr(pass, conn, st.X, h)

	case *ast.DeferStmt:
		// defer mu.Unlock() releases at function exit, so the lock
		// stays held for the remainder of this scan. Other deferred
		// calls run lock-free (at return the scan state no longer
		// applies); don't descend.

	case *ast.SendStmt:
		if len(h) > 0 {
			pass.Reportf(st.Pos(),
				"blocking channel send while holding %s: a full buffer deadlocks every goroutine that needs this lock; use a select with default, or send after unlocking", h[len(h)-1])
		}

	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			checkExpr(pass, conn, r, h)
		}

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			checkExpr(pass, conn, r, h)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			h = scanStmt(pass, conn, st.Init, h)
		}
		checkExpr(pass, conn, st.Cond, h)
		scanBlock(pass, conn, st.Body.List, h.copyOf())
		if st.Else != nil {
			scanStmt(pass, conn, st.Else, h.copyOf())
		}

	case *ast.BlockStmt:
		h = scanBlock(pass, conn, st.List, h)

	case *ast.ForStmt:
		scanBlock(pass, conn, st.Body.List, h.copyOf())

	case *ast.RangeStmt:
		scanBlock(pass, conn, st.Body.List, h.copyOf())

	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, conn, cc.Body, h.copyOf())
			}
		}

	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanBlock(pass, conn, cc.Body, h.copyOf())
			}
		}

	case *ast.SelectStmt:
		// A select chooses among ready cases: its sends are either
		// non-blocking (default present) or bounded by a peer case
		// (e.g. shutdown). Scan only the clause bodies.
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanBlock(pass, conn, cc.Body, h.copyOf())
			}
		}

	case *ast.GoStmt:
		// The spawned goroutine does not inherit the parent's locks;
		// its body is scanned independently by run's Inspect.

	case *ast.LabeledStmt:
		h = scanStmt(pass, conn, st.Stmt, h)
	}
	return h
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockCall classifies a call expression as a mutex acquire/release
// and returns the receiver expression's source text as identity.
func lockCall(pass *analysis.Pass, e ast.Expr) (string, lockKind) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", lockNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	full := analysis.MethodFullName(pass.TypesInfo, sel)
	switch {
	case lockMethods[full]:
		return types.ExprString(sel.X), lockAcquire
	case unlockMethods[full]:
		return types.ExprString(sel.X), lockRelease
	}
	return "", lockNone
}

// checkExpr flags blocking calls (WaitGroup.Wait, net.Conn.Write)
// appearing anywhere inside an expression evaluated under a lock.
// Function literals inside the expression are skipped: they run
// later, on their own goroutine's lock state.
func checkExpr(pass *analysis.Pass, conn *types.Interface, e ast.Expr, h held) {
	if len(h) == 0 || e == nil {
		return
	}
	lock := h[len(h)-1]
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		full := analysis.MethodFullName(pass.TypesInfo, sel)
		if waitMethods[full] {
			pass.Reportf(call.Pos(),
				"%s.Wait() while holding %s: goroutines being waited on may need the lock to finish; wait after unlocking", types.ExprString(sel.X), lock)
			return true
		}
		if sel.Sel.Name == "Write" && conn != nil {
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && analysis.ImplementsOrIs(t, conn) {
				pass.Reportf(call.Pos(),
					"net.Conn write to %s while holding %s: a slow peer stalls every goroutine that needs this lock; enqueue under the lock and write outside it", types.ExprString(sel.X), lock)
			}
		}
		return true
	})
}

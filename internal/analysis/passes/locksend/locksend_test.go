package locksend_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/locksend"
)

func TestLocksend(t *testing.T) {
	analysistest.Run(t, "testdata", locksend.Analyzer, "a")
}

// Corpus for locksend: blocking operations under a held mutex.
package a

import (
	"net"
	"sync"
)

type frame struct{ b []byte }

// caster mirrors netcast's caster: a subscriber set guarded by a
// mutex, with per-subscriber outbound queues.
type caster struct {
	mu   sync.Mutex
	subs map[chan frame]struct{}
	wg   sync.WaitGroup
}

// Flagged: the exact PR-1 netcast deadlock — a blocking send to a
// subscriber queue while holding the subscriber-set lock. A full
// queue blocks here forever while Close() waits on mu.
func (c *caster) sendBlocking(f frame) {
	c.mu.Lock()
	for ch := range c.subs {
		ch <- f // want `blocking channel send while holding c\.mu`
	}
	c.mu.Unlock()
}

// Clean: the PR-1 fix — non-blocking send via select with default;
// laggards are collected and dropped after unlock.
func (c *caster) sendNonBlocking(f frame) {
	c.mu.Lock()
	var drop []chan frame
	for ch := range c.subs {
		select {
		case ch <- f:
		default:
			drop = append(drop, ch)
		}
	}
	c.mu.Unlock()
	for _, ch := range drop {
		delete(c.subs, ch)
	}
}

// Clean: copy the set under the lock, send after unlocking.
func (c *caster) sendAfterUnlock(f frame) {
	c.mu.Lock()
	chans := make([]chan frame, 0, len(c.subs))
	for ch := range c.subs {
		chans = append(chans, ch)
	}
	c.mu.Unlock()
	for _, ch := range chans {
		ch <- f
	}
}

// Clean: an early-return unlock inside a branch must not make the
// fall-through path look unlocked (and vice versa).
func (c *caster) addThenSignal(ch chan frame, closed bool, sig chan struct{}) bool {
	c.mu.Lock()
	if closed {
		c.mu.Unlock()
		return false
	}
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	sig <- struct{}{}
	return true
}

// Flagged: WaitGroup.Wait under the lock — the waited-on goroutines
// may need the same lock to finish.
func (c *caster) closeWait() {
	c.mu.Lock()
	c.wg.Wait() // want `Wait\(\) while holding c\.mu`
	c.mu.Unlock()
}

// Clean: wait after unlocking.
func (c *caster) closeThenWait() {
	c.mu.Lock()
	c.subs = nil
	c.mu.Unlock()
	c.wg.Wait()
}

// Flagged: defer Unlock holds the lock to function end, so the send
// below is under it.
func (c *caster) deferredSend(ch chan frame, f frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- f // want `blocking channel send while holding c\.mu`
}

type server struct {
	mu    sync.RWMutex
	conns []net.Conn
}

// Flagged: a socket write under the (read-)lock stalls every writer
// waiting for the lock behind a slow peer.
func (s *server) broadcast(b []byte) {
	s.mu.RLock()
	for _, conn := range s.conns {
		conn.Write(b) // want `net\.Conn write to conn while holding s\.mu`
	}
	s.mu.RUnlock()
}

// Clean: snapshot under the lock, write outside it.
func (s *server) broadcastSafe(b []byte) {
	s.mu.RLock()
	conns := append([]net.Conn(nil), s.conns...)
	s.mu.RUnlock()
	for _, conn := range conns {
		conn.Write(b)
	}
}

// Clean: a goroutine launched under the lock does not hold it.
func (s *server) async(ch chan frame, f frame) {
	s.mu.Lock()
	go func() {
		ch <- f
	}()
	s.mu.Unlock()
}

// embedded mirrors types that embed their mutex; promoted Lock/Unlock
// must be tracked the same way.
type embedded struct {
	sync.Mutex
	out chan frame
}

// Flagged: promoted-lock send.
func (e *embedded) push(f frame) {
	e.Lock()
	e.out <- f // want `blocking channel send while holding e`
	e.Unlock()
}

package floatdet_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/floatdet"
)

func TestFloatdet(t *testing.T) {
	analysistest.Run(t, "testdata", floatdet.Analyzer, "a")
}

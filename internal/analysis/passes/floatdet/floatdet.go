// Package floatdet flags floating-point accumulation performed while
// ranging over a Go map.
//
// Map iteration order is deliberately randomized, and floating-point
// addition is not associative, so a sum accumulated across a map
// range differs from run to run in the low bits. This repository's
// grouping-cost pipeline (internal/core, internal/stats) reconciles
// costs bit-for-bit against Cost() — the property that makes the
// DRP/CDS golden tests against the paper's Table 3 meaningful — and a
// single map-order accumulation silently breaks it. Iterate over
// sorted keys instead, or accumulate into integers.
package floatdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"diversecast/internal/analysis"
)

// Analyzer flags float accumulation under map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "floatdet",
	Doc: "flags float32/float64 accumulation (+=, -=, *=, /=, or x = x + y) into a variable " +
		"declared outside a range-over-map loop: map order is randomized, so the " +
		"floating-point result is nondeterministic and breaks exact cost reconciliation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil || !analysis.IsMap(t) {
				return true
			}
			checkMapRange(pass, rs)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body for accumulation
// into floats that outlive the loop.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	loopVars := rangeVarObjects(pass.TypesInfo, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// A nested function literal is its own scope; accumulation
		// there runs when the literal is called, not per iteration.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, op, isAcc := accumulationTarget(pass.TypesInfo, as)
		if !isAcc {
			return true
		}
		t := pass.TypesInfo.TypeOf(lhs)
		if t == nil || !analysis.IsFloat(t) {
			return true
		}
		// Accumulating into a map/slice element indexed by the loop
		// variables is per-key and therefore order-independent.
		if indexedByLoopVar(pass.TypesInfo, lhs, loopVars) {
			return true
		}
		obj := baseObject(pass.TypesInfo, lhs)
		if obj == nil {
			return true
		}
		// Only variables that outlive the loop accumulate across
		// iterations in a nondeterministic order.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return true
		}
		pass.Reportf(as.Pos(),
			"%s %s into %s while ranging over a map: iteration order is randomized, so this floating-point result is nondeterministic; iterate over sorted keys instead",
			opName(op), types.ExprString(lhs), t)
		return true
	})
}

// accumulationTarget reports whether as accumulates into its LHS:
// either a compound assignment (+=, -=, *=, /=) or the spelled-out
// form x = x + y / x = x - y. It returns the accumulated expression
// and the operator.
func accumulationTarget(info *types.Info, as *ast.AssignStmt) (ast.Expr, token.Token, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, 0, false
	}
	lhs := as.Lhs[0]
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, as.Tok, true
	case token.ASSIGN:
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil, 0, false
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, 0, false
		}
		ls := types.ExprString(lhs)
		if types.ExprString(be.X) == ls || (be.Op == token.ADD || be.Op == token.MUL) && types.ExprString(be.Y) == ls {
			return lhs, be.Op, true
		}
	}
	return nil, 0, false
}

func opName(op token.Token) string {
	switch op {
	case token.ADD_ASSIGN, token.ADD:
		return "accumulates (+)"
	case token.SUB_ASSIGN, token.SUB:
		return "accumulates (-)"
	case token.MUL_ASSIGN, token.MUL:
		return "accumulates (*)"
	case token.QUO_ASSIGN, token.QUO:
		return "accumulates (/)"
	}
	return "accumulates"
}

// rangeVarObjects collects the objects bound by the range statement's
// key and value variables.
func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// indexedByLoopVar reports whether lhs is an index expression whose
// index mentions one of the loop variables (m[k] += ... is
// deterministic per key).
func indexedByLoopVar(info *types.Info, lhs ast.Expr, loopVars map[types.Object]bool) bool {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			found := false
			ast.Inspect(e.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && loopVars[obj] {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
			lhs = e.X
		default:
			return false
		}
	}
}

// baseObject resolves the variable at the root of an lvalue
// expression chain (x, x.f, x[i].f, (*x).f ...).
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// Corpus for floatdet: float accumulation under map iteration.
package a

import "sort"

// Flagged: the PR-1 class — a grouping-cost sum accumulated in map
// order drifts run to run and breaks reconciliation against Cost().
func costOverMap(groups map[int]float64) float64 {
	var total float64
	for _, c := range groups {
		total += c // want `ranging over a map`
	}
	return total
}

// Flagged: spelled-out accumulation form.
func spelledOut(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want `ranging over a map`
	}
	return sum
}

// Flagged: accumulation into a struct field that outlives the loop.
type agg struct{ f float64 }

func intoField(m map[int]float64) agg {
	var a agg
	for _, v := range m {
		a.f += v // want `ranging over a map`
	}
	return a
}

// Flagged: subtraction and multiplication are just as
// order-sensitive as addition.
func product(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `ranging over a map`
	}
	return p
}

// Clean: integer accumulation is exact at any order.
func countOverMap(groups map[int]float64) int {
	n := 0
	for range groups {
		n++
	}
	return n
}

// Clean: the sorted-keys idiom the diagnostic recommends.
func costSorted(groups map[int]float64) float64 {
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += groups[k]
	}
	return total
}

// Clean: per-key accumulation is deterministic per entry.
func perKey(src map[int]float64, dst map[int]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// Clean: accumulator declared inside the loop does not carry across
// iterations.
func scratch(m map[int][2]float64) []float64 {
	var out []float64
	for _, pair := range m {
		s := 0.0
		s += pair[0]
		s += pair[1]
		out = append(out, s)
	}
	return out
}

// Clean: ranging over a slice is ordered.
func costOverSlice(groups []float64) float64 {
	var total float64
	for _, c := range groups {
		total += c
	}
	return total
}

// Clean: accumulation inside a function literal runs on the
// closure's schedule, not per iteration.
func deferredWork(m map[int]float64) []func() {
	var fns []func()
	var total float64
	for _, v := range m {
		v := v
		fns = append(fns, func() { total += v })
	}
	return fns
}

// Package obsnames enforces the obs metric-registration conventions.
//
// The obs registry is get-or-create keyed by (name, labels): a typo'd
// or dynamically built metric name silently forks a new time series
// instead of feeding the existing one, and a registration inside a
// hot loop pays the registry mutex plus map lookups per iteration
// when the handle should be resolved once at startup (the
// serverMetrics/casterMetrics pattern in netcast).
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"diversecast/internal/analysis"
)

// Analyzer enforces literal snake_case metric names registered
// outside loops.
var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc: "flags obs.Registry Counter/Gauge/Histogram registrations whose metric name is not a " +
		"compile-time string constant in snake_case, and registrations inside loops: dynamic " +
		"names fork silent new series, and per-iteration registration pays the registry lock " +
		"on a hot path — resolve handles once at startup",
	Run: run,
}

var registerMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var loopDepth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ForStmt:
				loopDepth++
				if st.Init != nil {
					ast.Inspect(st.Init, walk)
				}
				ast.Inspect(st.Body, walk)
				loopDepth--
				return false
			case *ast.RangeStmt:
				loopDepth++
				ast.Inspect(st.Body, walk)
				loopDepth--
				return false
			case *ast.FuncLit:
				// A closure registered as a callback may run in a loop
				// we cannot see; conversely a loop around a closure
				// definition does not re-register per iteration.
				saved := loopDepth
				loopDepth = 0
				ast.Inspect(st.Body, walk)
				loopDepth = saved
				return false
			case *ast.CallExpr:
				checkCall(pass, st, loopDepth > 0)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// checkCall validates one potential registration call.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, inLoop bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] || len(call.Args) < 1 {
		return
	}
	if !isObsRegistry(pass.TypesInfo.TypeOf(sel.X)) {
		return
	}
	method := sel.Sel.Name
	if inLoop {
		pass.Reportf(call.Pos(),
			"obs metric registered via %s inside a loop: registration takes the registry lock and map lookups per iteration; resolve the handle once at startup (see netcast's casterMetrics)", method)
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"obs metric name passed to %s is not a compile-time string constant: dynamic names silently fork new time series on typos; use a literal name and put variability in labels", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCase.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"obs metric name %q is not snake_case (want %s): exposition-format consumers key on canonical names", name, snakeCase)
	}
}

// isObsRegistry reports whether t is (a pointer to) the obs package's
// Registry type. Matching is by package name + type name so the
// analyzer's own testdata can supply a stub obs package.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// Package obsnames enforces the obs metric-registration conventions
// and the trace span/event naming conventions.
//
// The obs registry is get-or-create keyed by (name, labels): a typo'd
// or dynamically built metric name silently forks a new time series
// instead of feeding the existing one, and a registration inside a
// hot loop pays the registry mutex plus map lookups per iteration
// when the handle should be resolved once at startup (the
// serverMetrics/casterMetrics pattern in netcast).
//
// Trace span and event names (trace.Tracer Start/StartAt/Event/EventAt
// and trace.Span Child/ChildAt/Event/EventAt) follow the same rule:
// exporters and tests correlate records by name, so a dynamic name
// splinters one logical timeline into unmatchable variants. Names
// must be compile-time snake_case constants; variability belongs in
// attrs. Unlike registrations, span starts inside loops are NOT
// flagged — per-iteration spans (one per CDS move, one per broadcast
// cycle) are the point of tracing, and Start on a disabled tracer is
// a couple of atomic loads, not a lock.
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"diversecast/internal/analysis"
)

// Analyzer enforces literal snake_case metric names registered
// outside loops.
var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc: "flags obs.Registry Counter/Gauge/Histogram registrations whose metric name is not a " +
		"compile-time string constant in snake_case, and registrations inside loops: dynamic " +
		"names fork silent new series, and per-iteration registration pays the registry lock " +
		"on a hot path — resolve handles once at startup; also flags trace span/event names " +
		"(Tracer Start/StartAt/Event/EventAt, Span Child/ChildAt/Event/EventAt) that are not " +
		"compile-time snake_case constants: exporters correlate records by name",
	Run: run,
}

var registerMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// traceNameMethods maps trace receiver type name to the methods whose
// first argument is a span/event name.
var traceNameMethods = map[string]map[string]bool{
	"Tracer": {"Start": true, "StartAt": true, "Event": true, "EventAt": true},
	"Span":   {"Child": true, "ChildAt": true, "Event": true, "EventAt": true},
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var loopDepth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ForStmt:
				loopDepth++
				if st.Init != nil {
					ast.Inspect(st.Init, walk)
				}
				ast.Inspect(st.Body, walk)
				loopDepth--
				return false
			case *ast.RangeStmt:
				loopDepth++
				ast.Inspect(st.Body, walk)
				loopDepth--
				return false
			case *ast.FuncLit:
				// A closure registered as a callback may run in a loop
				// we cannot see; conversely a loop around a closure
				// definition does not re-register per iteration.
				saved := loopDepth
				loopDepth = 0
				ast.Inspect(st.Body, walk)
				loopDepth = saved
				return false
			case *ast.CallExpr:
				checkCall(pass, st, loopDepth > 0)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// checkCall validates one potential registration or trace call.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, inLoop bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return
	}
	if isTraceCarrier(pass.TypesInfo.TypeOf(sel.X), sel.Sel.Name) {
		checkTraceName(pass, call, sel.Sel.Name)
		return
	}
	if !registerMethods[sel.Sel.Name] || !isObsRegistry(pass.TypesInfo.TypeOf(sel.X)) {
		return
	}
	method := sel.Sel.Name
	if inLoop {
		pass.Reportf(call.Pos(),
			"obs metric registered via %s inside a loop: registration takes the registry lock and map lookups per iteration; resolve the handle once at startup (see netcast's casterMetrics)", method)
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"obs metric name passed to %s is not a compile-time string constant: dynamic names silently fork new time series on typos; use a literal name and put variability in labels", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCase.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"obs metric name %q is not snake_case (want %s): exposition-format consumers key on canonical names", name, snakeCase)
	}
}

// checkTraceName validates the span/event name argument of a trace
// call. Span starts inside loops are deliberately not flagged: a span
// per move or per cycle is what tracing is for, and the disabled path
// is a couple of atomic loads.
func checkTraceName(pass *analysis.Pass, call *ast.CallExpr, method string) {
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"trace span/event name passed to %s is not a compile-time string constant: exporters and tests correlate records by name, and a dynamic name splinters one logical timeline; use a named constant and put variability in attrs", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCase.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"trace span/event name %q is not snake_case (want %s): timeline consumers key on canonical names", name, snakeCase)
	}
}

// isTraceCarrier reports whether t is the trace package's Tracer (or
// *Tracer) or Span type and method is one of its name-taking methods.
// Matching is by package name + type name so the analyzer's own
// testdata can supply a stub trace package.
func isTraceCarrier(t types.Type, method string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "trace" {
		return false
	}
	methods, ok := traceNameMethods[obj.Name()]
	return ok && methods[method]
}

// isObsRegistry reports whether t is (a pointer to) the obs package's
// Registry type. Matching is by package name + type name so the
// analyzer's own testdata can supply a stub obs package.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

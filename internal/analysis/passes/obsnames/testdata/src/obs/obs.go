// Package obs is a minimal stub of diversecast/internal/obs for the
// obsnames corpus: the analyzer matches registrations by package name
// ("obs") and receiver type name (Registry), so the corpus does not
// need the real implementation.
package obs

type Registry struct{}

type Counter struct{}

func (*Counter) Inc() {}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return nil }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return nil }

func (r *Registry) Histogram(name, help string, lo, hi float64, bins int, labels ...string) *Histogram {
	return nil
}

func Default() *Registry { return nil }

// Corpus for obsnames: metric-registration conventions.
package a

import (
	"strconv"

	"obs"
	"trace"
)

const goodName = "frames_sent_total"

// Clean: literal snake_case names, registered once at startup with
// variability in labels — the netcast casterMetrics pattern.
func registerGood(r *obs.Registry, channel int) (*obs.Counter, *obs.Gauge, *obs.Histogram) {
	ch := strconv.Itoa(channel)
	c := r.Counter("netcast_frames_sent_total", "frames enqueued", "channel", ch)
	g := r.Gauge("netcast_subscribers", "current subscribers", "channel", ch)
	h := r.Histogram("cds_refine_seconds", "refinement latency", 0, 10, 100)
	return c, g, h
}

// Clean: a named constant is still a compile-time constant.
func registerConst(r *obs.Registry) *obs.Counter {
	return r.Counter(goodName, "frames enqueued")
}

// Flagged: a dynamically built name forks a new series per distinct
// value instead of labeling one series.
func registerDynamic(r *obs.Registry, channel int) *obs.Counter {
	return r.Counter("frames_"+strconv.Itoa(channel), "per-channel frames") // want `not a compile-time string constant`
}

// Flagged: non-snake-case names break exposition-format consumers.
func registerCamel(r *obs.Registry) *obs.Counter {
	return r.Counter("framesSentTotal", "frames enqueued") // want `not snake_case`
}

// Flagged: leading underscore / uppercase.
func registerBadShapes(r *obs.Registry) {
	r.Gauge("_hidden", "leading underscore") // want `not snake_case`
	r.Counter("Frames_Total", "uppercase")   // want `not snake_case`
}

// Flagged: registration inside a loop pays the registry lock per
// iteration; resolve handles once at startup.
func registerInLoop(r *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("netcast_ticks_total", "ticks").Inc() // want `inside a loop`
	}
}

// Flagged: range loops count too.
func registerInRange(r *obs.Registry, chans []int) {
	for range chans {
		r.Gauge("netcast_subscribers", "subs") // want `inside a loop`
	}
}

// Clean: a closure defined inside a loop registers when called, not
// per loop iteration.
func registerClosure(r *obs.Registry, n int) []func() *obs.Counter {
	var fns []func() *obs.Counter
	for i := 0; i < n; i++ {
		fns = append(fns, func() *obs.Counter {
			return r.Counter("lazy_total", "registered lazily")
		})
	}
	return fns
}

// Clean: worker-pool gauges registered once when the pool spins up —
// the genetic/experiments evaluation-fabric pattern. Pool size is a
// label value, never part of the name.
func registerWorkerPool(r *obs.Registry, workers int) (*obs.Gauge, *obs.Gauge) {
	w := r.Gauge("genetic_eval_workers", "fitness workers", "pool", strconv.Itoa(workers))
	q := r.Gauge("genetic_eval_queue_depth", "pending fitness batches")
	return w, q
}

// Flagged: baking the pool size into the gauge name forks one series
// per configuration instead of labeling a single series.
func registerWorkerPoolDynamic(r *obs.Registry, workers int) *obs.Gauge {
	return r.Gauge("eval_workers_"+strconv.Itoa(workers), "fitness workers") // want `not a compile-time string constant`
}

// Clean: the parallel/batched CDS sweep counters — compile-time
// snake_case names registered once at package init and flushed once
// per refinement, never inside the sweep loops.
func registerCDSEngines(r *obs.Registry) (*obs.Counter, *obs.Counter) {
	sweeps := r.Counter("core_cds_parallel_sweeps_total", "sharded candidate sweeps")
	batched := r.Counter("core_cds_batched_moves_total", "moves applied in batches")
	return sweeps, batched
}

// Flagged: baking the worker count into the sweep counter name forks
// one series per pool width; width belongs in a label.
func registerCDSPerWorker(r *obs.Registry, workers int) *obs.Counter {
	return r.Counter("core_cds_parallel_sweeps_total_"+strconv.Itoa(workers), "per-width sweeps") // want `not a compile-time string constant`
}

// Flagged: flushing per shard inside the reduction loop pays the
// registry lock per shard; accumulate locally and flush once.
func registerCDSInReduce(r *obs.Registry, shards int) {
	for s := 0; s < shards; s++ {
		r.Counter("core_cds_batched_moves_total", "moves applied in batches").Inc() // want `inside a loop`
	}
}

// Clean: the costmon per-channel instrument bundle — one helper
// registering compile-time names with the channel as a label, called
// per channel at SetProgram time (not syntactically in a loop at the
// registration sites).
type costmonChanInstruments struct {
	tuneIns *obs.Counter
	waits   *obs.Histogram
	regret  *obs.Gauge
}

func registerCostmonChannel(r *obs.Registry, channel int, hi float64, bins int) costmonChanInstruments {
	ch := strconv.Itoa(channel)
	return costmonChanInstruments{
		tuneIns: r.Counter("costmon_tune_ins_total", "tune-ins attributed to the channel", "channel", ch),
		waits:   r.Histogram("costmon_wait_seconds", "realized waits", 0, hi, bins, "channel", ch),
		regret:  r.Gauge("costmon_cost_regret_us", "realized minus predicted mean wait", "channel", ch),
	}
}

// Flagged: baking the channel index into the name forks one series
// per channel; the index belongs in a label like every other
// per-channel instrument.
func registerCostmonDynamic(r *obs.Registry, channel int) *obs.Counter {
	return r.Counter("costmon_tune_ins_"+strconv.Itoa(channel), "per-channel tune-ins") // want `not a compile-time string constant`
}

// Flagged: re-registering the drift gauge on every sampler pass pays
// the registry lock per tick; resolve the handle at monitor
// construction.
func registerCostmonPerSample(r *obs.Registry, samples int) {
	for i := 0; i < samples; i++ {
		r.Gauge("costmon_drift_score_milli", "frequency drift") // want `inside a loop`
	}
}

// Clean: a Counter method on an unrelated type is not a
// registration.
type shelf struct{}

func (shelf) Counter(name string) int { return len(name) }

func notARegistry(s shelf) int {
	return s.Counter("whatever you LIKE")
}

// ---- trace span/event naming ----

const spanRefine = "cds_refine"

// Clean: named snake_case constants for span and event names, with
// variability carried in attrs — the core/netcast instrumentation
// pattern. Spans inside loops are fine: a span per move is the point.
func traceGood(tr *trace.Tracer, moves int) {
	span := tr.Start(spanRefine, trace.Int("k", 5))
	for i := 0; i < moves; i++ {
		mv := span.Child("cds_move", trace.Int("pos", int64(i)))
		mv.Event("queue_peek")
		mv.End()
	}
	span.End()
	tr.Event("run_done")
	tr.EventAt("virtual_tick", 1000)
	span.ChildAt("broadcast_cycle", 2000).End()
}

// Flagged: a dynamically built span name splinters the timeline into
// per-value variants nothing can correlate.
func traceDynamic(tr *trace.Tracer, alg string) {
	tr.Start("alloc_" + alg).End() // want `not a compile-time string constant`
}

// Flagged: events too, on both Tracer and Span.
func traceDynamicEvent(tr *trace.Tracer, ch int) {
	span := tr.Start(spanRefine)
	span.Event(pick(ch))            // want `not a compile-time string constant`
	tr.EventAt(pick(ch), 500)       // want `not a compile-time string constant`
	span.Child(pick(ch)).End()      // want `not a compile-time string constant`
	span.ChildAt(pick(ch), 1).End() // want `not a compile-time string constant`
	span.End()
}

func pick(i int) string { return "ch" }

// Flagged: non-snake-case names break timeline consumers keyed on
// canonical names.
func traceCamel(tr *trace.Tracer) {
	tr.Start("cdsRefine").End()      // want `not snake_case`
	tr.Event("Run-Done")             // want `not snake_case`
	tr.Start(spanRefine).Event("_x") // want `not snake_case`
}

// Clean: a Start method on an unrelated type is not a trace call.
type engine struct{}

func (engine) Start(name string) int { return len(name) }

func notATracer(e engine) int {
	return e.Start("whatever you LIKE")
}

// Package trace is a minimal stub of diversecast/internal/obs/trace
// for the obsnames corpus: the analyzer matches span/event calls by
// package name ("trace") and receiver type name (Tracer, Span), so
// the corpus does not need the real implementation.
package trace

type Attr struct{}

func Int(key string, v int64) Attr { return Attr{} }

type Tracer struct{}

func (tr *Tracer) Start(name string, attrs ...Attr) Span         { return Span{} }
func (tr *Tracer) StartAt(name string, ts int64, a ...Attr) Span { return Span{} }
func (tr *Tracer) Event(name string, attrs ...Attr)              {}
func (tr *Tracer) EventAt(name string, ts int64, attrs ...Attr)  {}

type Span struct{}

func (s Span) Child(name string, attrs ...Attr) Span         { return Span{} }
func (s Span) ChildAt(name string, ts int64, a ...Attr) Span { return Span{} }
func (s Span) Event(name string, attrs ...Attr)              {}
func (s Span) EventAt(name string, ts int64, attrs ...Attr)  {}
func (s Span) End(extra ...Attr)                             {}

func Default() *Tracer { return nil }

package obsnames_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/obsnames"
)

func TestObsnames(t *testing.T) {
	analysistest.Run(t, "testdata", obsnames.Analyzer, "a")
}

// Corpus: guard inference. counter.n is accessed ten times, nine of
// them with counter.mu held (twice through the lockedSum helper,
// whose callers all hold the lock — the interprocedural EntryHeld
// path; once under a defer-unlock). The single stray is the finding.
package inferred

import "sync"

type counter struct {
	mu    sync.Mutex
	n     int
	quiet int
}

func (c *counter) Add() {
	c.mu.Lock()
	c.n++
	c.n++
	c.mu.Unlock()
}

func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// lockedSum is only ever called with mu held, so its accesses count
// as guarded through the call graph.
func (c *counter) lockedSum() int {
	return c.n + c.n
}

func (c *counter) Sum() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lockedSum()
}

func (c *counter) Scale(k int) {
	c.mu.Lock()
	c.n *= k
	c.mu.Unlock()
}

func (c *counter) Dec() {
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}

func (c *counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

func (c *counter) Snapshot() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func (c *counter) Racy() int {
	return c.n // want `read of counter\.n without counter\.mu held: 9 of 10 accesses hold the lock`
}

// quiet has too few accesses for one stray to stay above the 90%
// threshold: inference keeps silent rather than guess.
func (c *counter) Bump() {
	c.mu.Lock()
	c.quiet++
	c.mu.Unlock()
	c.quiet++
}

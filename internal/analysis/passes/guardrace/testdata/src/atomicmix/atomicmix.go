// Corpus: mixed atomic/plain access. gauge.val is written with
// atomic.AddInt64 but read with a plain load — the plain read can
// tear against the atomic writer. A plain access under a lock is not
// flagged by this rule (a deliberate lock-plus-atomic scheme should
// be restructured, but it is not the silent-tear shape), and fields
// of sync/atomic value types are atomic by construction.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	mu   sync.Mutex
	val  int64
	safe atomic.Int64
}

func (g *gauge) Bump() {
	atomic.AddInt64(&g.val, 1)
}

func (g *gauge) Read() int64 {
	return g.val // want `plain read of gauge\.val, which is accessed atomically elsewhere`
}

func (g *gauge) LockedSet(v int64) {
	g.mu.Lock()
	g.val = v // locked plain access: outside this rule's shape
	g.mu.Unlock()
}

func (g *gauge) Safe() int64 { return g.safe.Load() }

func (g *gauge) SafeBump() { g.safe.Add(1) }

// Corpus: //diverselint:guard contracts. An annotated field is a
// hard rule — any access without the lock is a finding regardless of
// ratio — and `guard none` silences inference with an audited
// reason. Malformed directives are findings at the directive.
package annotated

import "sync"

type ring struct {
	mu sync.Mutex
	//diverselint:guard mu
	buf []int
	//diverselint:guard none owned by the single writer goroutine, never shared
	cursor int
	//diverselint:guard nosuch // want `malformed //diverselint:guard directive: guard names unknown sibling field nosuch`
	bad int
}

func (r *ring) Push(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, v)
}

func (r *ring) Peek() int {
	return r.buf[0] // want `read of ring\.buf without ring\.mu held: the field is declared //diverselint:guard mu`
}

func (r *ring) Advance() {
	r.cursor++ // declared unguarded: quiet
}

func (r *ring) Bad() int { return r.bad }

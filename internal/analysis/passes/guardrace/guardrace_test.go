package guardrace_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/guardrace"
)

func TestGuardRace(t *testing.T) {
	analysistest.Run(t, "testdata", guardrace.Analyzer, "inferred", "annotated", "atomicmix")
}

// Package guardrace infers which mutex guards which struct field and
// flags accesses that break the discipline — the PR-6 `caster.add`
// bug class, where a field normally touched under a lock is read or
// written outside it.
//
// The pass is interprocedural: it consumes the whole-program
// summaries in Pass.Inter (see internal/analysis/summary), where
// every field access is recorded together with the lock set held at
// that point — including locks taken by callers (EntryHeld) and
// locks taken through helper calls (net-acquire effects). Guard
// relations come from two sources:
//
//   - Inference: field F is guarded by mutex M when at least 90% of
//     F's accesses (outside tests, excluding atomics) hold M. The
//     minority accesses are reported. A fully consistent field — 100%
//     guarded, or never guarded — is silent: inference only fires on
//     the suspicious "almost always" shape. With the 0.9 threshold
//     this needs ten accesses or more before a single stray can
//     fire, which keeps small single-owner structs quiet.
//
//   - Contracts: a `//diverselint:guard mu` directive on the field
//     turns the relation into a hard rule — EVERY access must hold
//     the named sibling mutex, whatever the ratio — and
//     `//diverselint:guard none <reason>` declares the field
//     deliberately unguarded (single-owner, set-before-spawn) and
//     silences inference. Malformed directives are findings, like
//     malformed suppressions.
//
// Mixed atomic/plain access to one field is reported too: a plain
// load can tear under concurrent atomic writers, and a plain store
// can lose an atomic increment. Accesses in _test.go files never
// count — tests poke at internals from one goroutine.
//
// Lock and field identity is type-based ("pkg.Type.field"), so the
// verdict covers every instance of the struct at once; accesses are
// reported only in the package being analyzed, so a whole-program
// relation never produces duplicate findings across packages.
package guardrace

import (
	"sort"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/summary"
)

// Analyzer flags struct-field accesses that break an inferred or
// declared mutex-guard relation.
var Analyzer = &analysis.Analyzer{
	Name: "guardrace",
	Doc: "flags struct-field accesses outside the mutex that guards the field — inferred when " +
		"≥90% of a field's accesses hold one lock, or declared with //diverselint:guard — plus " +
		"mixed atomic/plain access to one field; the PR-6 caster.add race class",
	Run: run,
}

// The inference threshold, kept in integer arithmetic (9 of 10): a
// lock guarding at least 90% of a field's accesses is assumed
// intended to guard them all. Float math here would put the exact
// nine-of-ten boundary at the mercy of rounding (0.9*10 > 9.0 in
// float64), which is precisely the off-by-ulp class the repo's own
// floateq/floatdet passes exist to keep out of cost code.
const (
	guardRatioNum = 9
	guardRatioDen = 10
)

func run(pass *analysis.Pass) error {
	prog, ok := pass.Inter.(*summary.Program)
	if !ok || prog == nil {
		return nil // no interprocedural state: nothing to check
	}
	pkgPath := pass.Pkg.Path()

	specs := make(map[summary.FieldID]*summary.GuardSpec)
	for _, g := range prog.Guards {
		specs[g.Field] = g
		if g.Err != "" && g.PkgPath == pkgPath {
			pass.Reportf(g.Pos, "malformed //diverselint:guard directive: %s", g.Err)
		}
	}

	// Group every access in the program by field, in call-graph
	// order (deterministic).
	byField := make(map[summary.FieldID][]*summary.Access)
	var fields []summary.FieldID
	for _, n := range prog.Graph.Nodes {
		s := prog.Of(n)
		if s == nil {
			continue
		}
		for _, a := range s.Accesses {
			if _, ok := byField[a.Field]; !ok {
				fields = append(fields, a.Field)
			}
			byField[a.Field] = append(byField[a.Field], a)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })

	for _, field := range fields {
		accs := byField[field]
		spec := specs[field]
		if spec != nil && spec.None {
			continue // declared unguarded, with an audited reason
		}
		checkMixedAtomic(pass, prog, pkgPath, field, accs)
		if spec != nil && spec.Lock != "" {
			checkContract(pass, prog, pkgPath, field, spec, accs)
			continue
		}
		inferGuard(pass, prog, pkgPath, field, accs)
	}
	return nil
}

// checkContract enforces a //diverselint:guard declaration: every
// non-test, non-atomic access must hold the named lock.
func checkContract(pass *analysis.Pass, prog *summary.Program, pkgPath string, field summary.FieldID, spec *summary.GuardSpec, accs []*summary.Access) {
	for _, a := range accs {
		if a.Test || a.Atomic {
			continue
		}
		if prog.EffectiveHeld(a)[spec.Lock] {
			continue
		}
		if a.Node.Pkg.Path != pkgPath {
			continue
		}
		pass.Reportf(a.Pos,
			"%s of %s without %s held: the field is declared //diverselint:guard %s, so every access must hold the lock (or the contract must change)",
			verb(a), display(string(field)), display(string(spec.Lock)), lockField(spec.Lock))
	}
}

// inferGuard looks for the "almost always locked" shape and reports
// the stray accesses.
func inferGuard(pass *analysis.Pass, prog *summary.Program, pkgPath string, field summary.FieldID, accs []*summary.Access) {
	heldCount := make(map[summary.LockID]int)
	var locks []summary.LockID
	total := 0
	for _, a := range accs {
		if a.Test || a.Atomic {
			continue
		}
		total++
		for l := range prog.EffectiveHeld(a) {
			if heldCount[l] == 0 {
				locks = append(locks, l)
			}
			heldCount[l]++
		}
	}
	if total == 0 {
		return
	}
	sort.Slice(locks, func(i, j int) bool {
		if heldCount[locks[i]] != heldCount[locks[j]] {
			return heldCount[locks[i]] > heldCount[locks[j]]
		}
		return locks[i] < locks[j]
	})
	for _, lock := range locks {
		n := heldCount[lock]
		if n == total || guardRatioDen*n < guardRatioNum*total {
			continue
		}
		// lock guards ≥90% but not all: report the strays.
		for _, a := range accs {
			if a.Test || a.Atomic || prog.EffectiveHeld(a)[lock] {
				continue
			}
			if a.Node.Pkg.Path != pkgPath {
				continue
			}
			pass.Reportf(a.Pos,
				"%s of %s without %s held: %d of %d accesses hold the lock, so this stray is almost certainly a race; take the lock, or declare the field //diverselint:guard none with a reason",
				verb(a), display(string(field)), display(string(lock)), n, total)
		}
		return // one inferred guard per field is enough
	}
}

// checkMixedAtomic reports plain unlocked accesses to a field that is
// also accessed atomically.
func checkMixedAtomic(pass *analysis.Pass, prog *summary.Program, pkgPath string, field summary.FieldID, accs []*summary.Access) {
	atomics := 0
	for _, a := range accs {
		if a.Atomic && !a.Test {
			atomics++
		}
	}
	if atomics == 0 {
		return
	}
	for _, a := range accs {
		if a.Atomic || a.Test || len(prog.EffectiveHeld(a)) > 0 {
			continue
		}
		if a.Node.Pkg.Path != pkgPath {
			continue
		}
		pass.Reportf(a.Pos,
			"plain %s of %s, which is accessed atomically elsewhere: a plain access tears against concurrent atomic writers; use sync/atomic here too, or move every access under one lock",
			verb(a), display(string(field)))
	}
}

func verb(a *summary.Access) string {
	if a.Write {
		return "write"
	}
	return "read"
}

// display shortens "example.com/pkg.Type.field" to "Type.field" (or
// a package-level lock to "pkg.var") for diagnostics.
func display(id string) string {
	leaf := id[strings.LastIndex(id, "/")+1:] // "pkg.Type.field"
	if i := strings.Index(leaf, "."); i >= 0 {
		return leaf[i+1:]
	}
	return leaf
}

// lockField is the bare sibling field name of a lock ID, the token
// that appears in the //diverselint:guard directive.
func lockField(l summary.LockID) string {
	s := string(l)
	return s[strings.LastIndex(s, ".")+1:]
}

package loopalloc_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/loopalloc"
)

func TestLoopAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", loopalloc.Analyzer, "core", "plain")
}

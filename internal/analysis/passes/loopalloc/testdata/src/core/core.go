// Package core exercises loopalloc: allocation sites inside loops of
// a hot package, with nesting depth from the CFG — so goto loops
// count, hoisted makes don't, and provably preallocated appends are
// exempt. The package path matters: "core" is a hot segment.
package core

import "trace"

var tr *trace.Tracer

func perItem(items []int64) []int64 {
	out := make([]int64, 0, len(items)) // hoisted: depth 0, no finding
	for _, it := range items {
		buf := make([]byte, 8) // want `allocation in loop \(depth 1\): make\(\[\]byte\)`
		_ = buf
		out = append(out, it) // preallocated with cap above: exempt
	}
	return out
}

func collect(items []int64) []int64 {
	var out []int64
	for _, it := range items {
		out = append(out, it) // want `allocation in loop \(depth 1\): append to out may grow \(not provably preallocated\)`
	}
	return out
}

func nested(rows [][]int64) map[int64]int64 {
	idx := make(map[int64]int64, len(rows)) // depth 0: no finding
	for i, row := range rows {
		for _, v := range row {
			idx[v] = int64(i) // want `allocation in loop \(depth 2\): map write may grow buckets`
		}
	}
	return idx
}

func deferred(items []int64) {
	for range items {
		defer release() // want `allocation in loop \(depth 1\): defer in a loop allocates a record per iteration`
	}
}

func release() {}

// scan loops with goto: the CFG sees the back edge even though there
// is no for statement.
func scan(xs []int64) int64 {
	var sum int64
	i := 0
loop:
	if i < len(xs) {
		sum += xs[i]
		buf := make([]int64, 1) // want `allocation in loop \(depth 1\): make\(\[\]int64\)`
		_ = buf
		i++
		goto loop
	}
	return sum
}

// spawny and tally pin the three-clause for shape: statement-level
// sites (go, map write) must see the body block's depth even though
// only the loop condition carries the CFG depth marker.
func spawny(n int) {
	for i := 0; i < n; i++ {
		go release() // want `allocation in loop \(depth 1\): go statement spawns a goroutine`
	}
}

func tally(n int, m map[int]int) {
	for i := 0; i < n; i++ {
		m[i] = i // want `allocation in loop \(depth 1\): map write may grow buckets`
	}
}

// traced allocates per iteration only when tracing is on: gated,
// exempt.
func traced(items []int64) {
	for _, it := range items {
		if tr.Enabled() {
			lbl := make([]byte, 16)
			_ = lbl
			_ = it
		}
	}
}

// warmup is setup code; the audited coldpath directive exempts it
// from the per-iteration contract.
//
//diverselint:coldpath one-time table construction at startup
func warmup(n int) [][]byte {
	var tabs [][]byte
	for i := 0; i < n; i++ {
		tabs = append(tabs, make([]byte, i))
	}
	return tabs
}

// reuse appends into a caller-provided scratch reset to length zero —
// the repo's standard no-alloc idiom, exempt by form.
func reuse(dst, src []int64) []int64 {
	out := append(dst[:0], src[0]) // exempt: append to a slice expression
	for _, v := range src[1:] {
		out = append(out, v) // want `allocation in loop \(depth 1\): append to out may grow \(not provably preallocated\)`
	}
	return out
}

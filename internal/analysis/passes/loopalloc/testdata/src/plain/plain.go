// Package plain is not a hot package: the same per-iteration
// allocations that loopalloc flags in core are silent here.
package plain

func collect(items []int64) []int64 {
	var out []int64
	for _, it := range items {
		out = append(out, it)
		buf := make([]byte, 8)
		_ = buf
	}
	return out
}

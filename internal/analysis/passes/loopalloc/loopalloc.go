// Package loopalloc flags allocation in loops inside the repo's hot
// packages (core, netcast, pool, obs): allocations, defer
// registrations, and appends that are not provably preallocated,
// each reported with its loop nesting depth from the CFG — goto- and
// labeled-branch loops count exactly like for/range. A make hoisted
// above the loop is setup; the same make inside it is a per-iteration
// GC tax that a bench will eventually bill, which is why the net is
// wider than hotalloc's: every function in a hot package is checked,
// hot-reachable or not.
//
// Exemptions: interface-boxing sites (boxparam's domain), sites gated
// on tracing being enabled, functions in _test.go files (tests and
// benches allocate freely), and functions marked
// //diverselint:coldpath with an audited reason — the setup/teardown
// escape hatch that keeps per-site suppressions reserved for code
// that is genuinely hot.
package loopalloc

import (
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/escape"
	"diversecast/internal/analysis/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "loopalloc",
	Doc:  "allocations, defers, and growing appends in loops of hot packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	prog, _ := pass.Inter.(*summary.Program)
	if prog == nil || prog.Alloc == nil {
		return nil
	}
	pkgPath := pass.Pkg.Path()
	if !escape.HotPackage(pkgPath) {
		return nil
	}
	for _, n := range prog.Alloc.Graph.Nodes {
		if n.Pkg.Path != pkgPath {
			continue
		}
		fi := prog.Alloc.Of(n)
		if fi == nil || fi.Cold {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(n.Pos).Filename, "_test.go") {
			continue
		}
		for _, s := range fi.Sites {
			if s.Depth == 0 || s.Gated || s.Kind == escape.Box {
				continue
			}
			pass.Reportf(s.Pos, "allocation in loop (depth %d): %s", s.Depth, s.What)
		}
	}
	return nil
}

package lockbalance_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/lockbalance"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, "testdata", lockbalance.Analyzer, "a", "inter")
}

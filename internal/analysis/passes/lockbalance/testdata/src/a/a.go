// Corpus for lockbalance: locks must be released on every path to
// return/panic.
package a

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// Flagged: the early-return leak — the error path returns with mu
// still held.
func (s *store) putLeaky(k string, v int, bad bool) error {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path to return`
	if bad {
		return errBad
	}
	s.data[k] = v
	s.mu.Unlock()
	return nil
}

// Clean: every path unlocks before its return.
func (s *store) putBalanced(k string, v int, bad bool) error {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return errBad
	}
	s.data[k] = v
	s.mu.Unlock()
	return nil
}

// Clean: the canonical defer prologue balances every exit, early or
// late — this exact shape must never be flagged.
func (s *store) putDeferred(k string, v int, bad bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		return errBad
	}
	s.data[k] = v
	return nil
}

// Clean: a deferred closure that unlocks counts too.
func (s *store) putDeferredClosure(k string, v int) {
	s.mu.Lock()
	defer func() {
		s.data["writes"]++
		s.mu.Unlock()
	}()
	s.data[k] = v
}

// Flagged: a panic path is an exit too; without the defer the lock
// leaks into the recover handler upstream.
func (s *store) putOrPanic(k string, v int) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path to panic/exit`
	if s.data == nil {
		panic("store: nil map")
	}
	s.data[k] = v
	s.mu.Unlock()
}

// Flagged: read locks leak the same way; the suggestion names RUnlock.
func (s *store) getLeaky(k string) (int, bool) {
	s.rw.RLock() // want `s\.rw\.RLock\(\) is not released on every path to return.*defer s\.rw\.RUnlock\(\)`
	v, ok := s.data[k]
	if !ok {
		return 0, false
	}
	s.rw.RUnlock()
	return v, true
}

// Clean: lock/unlock strictly inside the loop body — the back edge
// re-enters the header lock-free.
func (s *store) drainLoop(keys []string) {
	for _, k := range keys {
		s.mu.Lock()
		delete(s.data, k)
		s.mu.Unlock()
	}
}

// Clean: correlated conditions. Flow analysis cannot see that the two
// ifs take the same arm, so the must-held intersection at the merge
// drops the lock — conservative, but guaranteed no false positive.
func (s *store) correlated(locked bool) {
	if locked {
		s.mu.Lock()
	}
	s.data["x"]++
	if locked {
		s.mu.Unlock()
	}
}

// Clean: a lock held across a bounded loop and released after it.
func (s *store) sumHeld(keys []string) int {
	total := 0
	s.mu.Lock()
	for _, k := range keys {
		total += s.data[k]
	}
	s.mu.Unlock()
	return total
}

// Flagged: a switch with one leaking case.
func (s *store) switchLeak(mode int) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path to return`
	switch mode {
	case 0:
		s.mu.Unlock()
	case 1:
		return // leaks
	default:
		s.mu.Unlock()
	}
}

// Clean: a goroutine body balances its own acquisitions; the launcher
// holds nothing.
func (s *store) asyncPut(k string, v int) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.data[k] = v
	}()
}

var errBad = errType{}

type errType struct{}

func (errType) Error() string { return "bad" }

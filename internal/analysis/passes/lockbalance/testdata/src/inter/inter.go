// Corpus: interprocedural lock balance. lockIt's summary says "net
// acquire of store.mu", so a caller that returns without releasing
// leaks the lock at the call site; unlockIt's net-release discharges
// the obligation whether the Lock was direct or through the helper,
// and a deferred net-releasing helper balances the prologue the same
// way defer mu.Unlock() does.
package inter

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

// lockIt returns with mu held: callers own the release. The helper
// itself still carries the intraprocedural finding — returning with a
// lock held is a deliberate-but-unusual contract that a real tree
// would mark with an audited //diverselint:ignore.
func (s *store) lockIt() {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path to return`
}

// unlockIt releases a lock the caller acquired.
func (s *store) unlockIt() {
	s.mu.Unlock()
}

func (s *store) Leak() int {
	s.lockIt() // want `lockIt\(\) returns with store\.mu held and it is not released on every path to return`
	return s.n
}

func (s *store) BalancedDirect() int {
	s.lockIt()
	v := s.n
	s.mu.Unlock()
	return v
}

func (s *store) BalancedHelper() int {
	s.mu.Lock()
	v := s.n
	s.unlockIt()
	return v
}

func (s *store) BalancedBothHelpers() int {
	s.lockIt()
	v := s.n
	s.unlockIt()
	return v
}

func (s *store) DeferredHelper() int {
	s.lockIt()
	defer s.unlockIt()
	return s.n
}

func (s *store) EarlyReturnLeak(bad bool) int {
	s.lockIt() // want `lockIt\(\) returns with store\.mu held and it is not released on every path to return`
	if bad {
		return -1
	}
	v := s.n
	s.mu.Unlock()
	return v
}

// Package lockbalance flags mutexes acquired but not released on
// every path to return or panic.
//
// This is the flow-sensitive upgrade of locksend's "held mutex"
// heuristic: a real held-set dataflow over the function's CFG. The
// bug class is the early-return leak —
//
//	mu.Lock()
//	if bad {
//		return err // mu still held: every later caller deadlocks
//	}
//	mu.Unlock()
//
// The analysis is a forward must-analysis: the fact is the set of
// locks held on EVERY path to a program point (join = intersection,
// so a lock held on only one arm of a branch is never reported — that
// conservatism is what keeps the pass at zero false positives on
// correlated-condition code). `defer mu.Unlock()` is modeled as
// balancing every exit downstream of its registration, which makes
// the canonical `mu.Lock(); defer mu.Unlock()` prologue exactly
// neutral.
//
// When whole-program summaries are available (Pass.Inter), the
// transfer function also applies callee lock effects: a call to a
// helper whose summary says "acquires T.mu and returns with it held"
// adds that lock to the caller's held set — so `c.lockIt(); return`
// is reported at the call site — and a helper that releases
// discharges the obligation, so the lock()/unlockHelper() split
// pattern stays quiet. Without summaries the pass degrades to its
// original intraprocedural behavior.
package lockbalance

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/cfg"
	"diversecast/internal/analysis/summary"
)

// Analyzer flags locks still held at a return or panic exit.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "flags a sync.Mutex/RWMutex Lock or RLock not matched by an Unlock on every path to " +
		"return/panic: a leaked lock deadlocks every later critical section; unlock before the " +
		"early exit or use defer",
	Run: run,
}

// heldLock records one acquisition still outstanding: where it
// happened and via which method (Lock vs RLock drives the suggested
// release name). A non-empty via names the in-program callee whose
// summary acquired the lock; such holds are keyed by type-based
// summary.LockID rather than receiver text.
type heldLock struct {
	pos     token.Pos
	method  string
	via     string
	summary bool
}

// fact maps a lock key — receiver-expression text for direct
// acquisitions, summary.LockID for callee-acquired locks — to its
// outstanding acquisition. Must-analysis: a key is present only if
// the lock is held on every path reaching the point.
type fact map[string]heldLock

func run(pass *analysis.Pass) error {
	prog, _ := pass.Inter.(*summary.Program) // nil: intraprocedural only
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				// Each function (and each closure) balances its own
				// acquisitions; nested literals are visited by their
				// own Inspect step and excluded from this CFG.
				checkFunc(pass, prog, body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, prog *summary.Program, body *ast.BlockStmt) {
	g := cfg.New(body, cfg.Options{NoReturn: cfg.NoReturn(pass.TypesInfo)})
	facts := cfg.Forward(g, cfg.Lattice[fact]{
		Entry: fact{},
		Join:  intersect,
		Transfer: func(n ast.Node, f fact) fact {
			return transfer(pass, prog, n, f)
		},
		Equal: equal,
	})

	// Every reached predecessor of Exit is one way out of the
	// function; anything still in its must-held set leaks. Report at
	// the acquisition site, once per site.
	reported := make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		if !facts.Reached[b] {
			continue
		}
		exits := false
		for _, s := range b.Succs {
			exits = exits || s == g.Exit
		}
		if !exits {
			continue
		}
		out := facts.Out(b)
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := out[k]
			if reported[h.pos] {
				continue
			}
			reported[h.pos] = true
			if h.summary {
				pass.Reportf(h.pos,
					"%s() returns with %s held and it is not released on every path to %s: unlock after the call or make %s balance its own lock",
					h.via, displayLock(k), exitKind(b.Term), h.via)
				continue
			}
			pass.Reportf(h.pos,
				"%s.%s() is not released on every path to %s: unlock before the early exit or use defer %s.%s()",
				k, h.method, exitKind(b.Term), k, releaseName(h.method))
		}
	}
}

func exitKind(term ast.Node) string {
	switch term.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.CallExpr:
		return "panic/exit"
	default:
		return "return" // fall-off-the-end
	}
}

func releaseName(acquire string) string {
	if acquire == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// displayLock shortens a type-based lock key
// ("pkg/path.Type.field") to "Type.field" for diagnostics;
// package-level locks ("pkg/path.var") and receiver-text keys pass
// through with just the import path trimmed.
func displayLock(k string) string {
	leaf := k[strings.LastIndex(k, "/")+1:]
	if i := strings.Index(leaf, "."); i >= 0 && strings.Count(leaf, ".") >= 2 {
		return leaf[i+1:]
	}
	return leaf
}

func transfer(pass *analysis.Pass, prog *summary.Program, n ast.Node, f fact) fact {
	switch n := n.(type) {
	case *ast.ExprStmt:
		recv, method, op := analysis.ClassifyLockCall(pass.TypesInfo, n.X)
		switch op {
		case analysis.LockAcquire:
			out := clone(f)
			out[recv] = heldLock{pos: n.X.(*ast.CallExpr).Pos(), method: method}
			return out
		case analysis.LockRelease:
			return discharge(f, recv)
		}
		if call, ok := n.X.(*ast.CallExpr); ok {
			return applyCalleeEffects(prog, call, f)
		}

	case *ast.DeferStmt:
		// A deferred release is guaranteed to run at function exit on
		// every path passing this registration: the balance
		// obligation is discharged here, path-sensitively. Covers
		// both `defer mu.Unlock()` and `defer func() { mu.Unlock() }()`.
		released := deferredReleases(pass, prog, n)
		if len(released) > 0 {
			out := f
			for _, recv := range released {
				out = discharge(out, recv)
			}
			return out
		}
	}
	return f
}

// applyCalleeEffects folds an in-program callee's net lock effects
// into the caller's held set: a net-acquiring helper leaves its locks
// held at the call site, a net-releasing helper discharges them.
// Multi-target sites (interface dispatch) apply nothing — the must-
// analysis cannot assume effects every implementation may not share.
func applyCalleeEffects(prog *summary.Program, call *ast.CallExpr, f fact) fact {
	if prog == nil {
		return f
	}
	var callee *callgraph.Node
	for _, e := range prog.EdgesAt(call) {
		if e.Kind != callgraph.Call {
			continue
		}
		if callee != nil {
			return f
		}
		callee = e.Callee
	}
	if callee == nil {
		return f
	}
	s := prog.Of(callee)
	if s == nil || (len(s.NetAcquire) == 0 && len(s.NetRelease) == 0) {
		return f
	}
	out := clone(f)
	acquired := make([]string, 0, len(s.NetAcquire))
	for lock := range s.NetAcquire {
		acquired = append(acquired, string(lock))
	}
	sort.Strings(acquired)
	for _, lock := range acquired {
		out[lock] = heldLock{pos: call.Pos(), method: "Lock", via: callee.Name, summary: true}
	}
	for lock := range s.NetRelease {
		out = discharge(out, string(lock))
	}
	return out
}

// discharge removes a released lock from the held set. The release
// and the acquisition may live in different namespaces — a direct
// `c.mu.Unlock()` is keyed by receiver text while a helper-acquired
// hold is keyed by type-based LockID (and vice versa) — so besides
// the exact key, any hold whose final field component matches the
// release's is dropped. Matching by field name alone can discharge a
// sibling lock of the same name, which errs exactly the way this
// must-analysis always errs: toward silence, never a false leak.
func discharge(f fact, key string) fact {
	field := key[strings.LastIndex(key, ".")+1:]
	out := f
	cloned := false
	for k := range f {
		if k != key && k[strings.LastIndex(k, ".")+1:] != field {
			continue
		}
		if !cloned {
			out, cloned = clone(f), true
		}
		delete(out, k)
	}
	return out
}

// deferredReleases collects the lock keys every unlock a defer
// statement guarantees: direct `defer mu.Unlock()`, unlocks inside a
// deferred closure, and — when summaries are available — a deferred
// helper whose net effect is a release (`defer c.cleanup()`).
func deferredReleases(pass *analysis.Pass, prog *summary.Program, d *ast.DeferStmt) []string {
	if recv, _, op := analysis.ClassifyLockCall(pass.TypesInfo, d.Call); op == analysis.LockRelease {
		return []string{recv}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return summaryReleases(prog, d.Call)
	}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure runs on its own schedule
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			if recv, _, op := analysis.ClassifyLockCall(pass.TypesInfo, es.X); op == analysis.LockRelease {
				out = append(out, recv)
			} else if call, ok := es.X.(*ast.CallExpr); ok {
				out = append(out, summaryReleases(prog, call)...)
			}
		}
		return true
	})
	return out
}

// summaryReleases is the net-release set of a call's single
// in-program callee, as lock keys.
func summaryReleases(prog *summary.Program, call *ast.CallExpr) []string {
	if prog == nil {
		return nil
	}
	var callee *callgraph.Node
	for _, e := range prog.EdgesAt(call) {
		if e.Kind != callgraph.Call && e.Kind != callgraph.Defer {
			continue
		}
		if callee != nil {
			return nil
		}
		callee = e.Callee
	}
	if callee == nil {
		return nil
	}
	s := prog.Of(callee)
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.NetRelease))
	for lock := range s.NetRelease {
		out = append(out, string(lock))
	}
	sort.Strings(out)
	return out
}

func clone(f fact) fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func intersect(a, b fact) fact {
	out := fact{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

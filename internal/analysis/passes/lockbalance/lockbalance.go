// Package lockbalance flags mutexes acquired but not released on
// every path to return or panic.
//
// This is the flow-sensitive upgrade of locksend's "held mutex"
// heuristic: a real held-set dataflow over the function's CFG. The
// bug class is the early-return leak —
//
//	mu.Lock()
//	if bad {
//		return err // mu still held: every later caller deadlocks
//	}
//	mu.Unlock()
//
// The analysis is a forward must-analysis: the fact is the set of
// locks held on EVERY path to a program point (join = intersection,
// so a lock held on only one arm of a branch is never reported — that
// conservatism is what keeps the pass at zero false positives on
// correlated-condition code). `defer mu.Unlock()` is modeled as
// balancing every exit downstream of its registration, which makes
// the canonical `mu.Lock(); defer mu.Unlock()` prologue exactly
// neutral.
package lockbalance

import (
	"go/ast"
	"go/token"
	"sort"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/cfg"
)

// Analyzer flags locks still held at a return or panic exit.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "flags a sync.Mutex/RWMutex Lock or RLock not matched by an Unlock on every path to " +
		"return/panic: a leaked lock deadlocks every later critical section; unlock before the " +
		"early exit or use defer",
	Run: run,
}

// heldLock records one acquisition still outstanding: where it
// happened and via which method (Lock vs RLock drives the suggested
// release name).
type heldLock struct {
	pos    token.Pos
	method string
}

// fact maps a lock's receiver-expression text to its outstanding
// acquisition. Must-analysis: a key is present only if the lock is
// held on every path reaching the point.
type fact map[string]heldLock

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				// Each function (and each closure) balances its own
				// acquisitions; nested literals are visited by their
				// own Inspect step and excluded from this CFG.
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body, cfg.Options{NoReturn: cfg.NoReturn(pass.TypesInfo)})
	facts := cfg.Forward(g, cfg.Lattice[fact]{
		Entry: fact{},
		Join:  intersect,
		Transfer: func(n ast.Node, f fact) fact {
			return transfer(pass, n, f)
		},
		Equal: equal,
	})

	// Every reached predecessor of Exit is one way out of the
	// function; anything still in its must-held set leaks. Report at
	// the acquisition site, once per site.
	reported := make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		if !facts.Reached[b] {
			continue
		}
		exits := false
		for _, s := range b.Succs {
			exits = exits || s == g.Exit
		}
		if !exits {
			continue
		}
		out := facts.Out(b)
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := out[k]
			if reported[h.pos] {
				continue
			}
			reported[h.pos] = true
			pass.Reportf(h.pos,
				"%s.%s() is not released on every path to %s: unlock before the early exit or use defer %s.%s()",
				k, h.method, exitKind(b.Term), k, releaseName(h.method))
		}
	}
}

func exitKind(term ast.Node) string {
	switch term.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.CallExpr:
		return "panic/exit"
	default:
		return "return" // fall-off-the-end
	}
}

func releaseName(acquire string) string {
	if acquire == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

func transfer(pass *analysis.Pass, n ast.Node, f fact) fact {
	switch n := n.(type) {
	case *ast.ExprStmt:
		recv, method, op := analysis.ClassifyLockCall(pass.TypesInfo, n.X)
		switch op {
		case analysis.LockAcquire:
			out := clone(f)
			out[recv] = heldLock{pos: n.X.(*ast.CallExpr).Pos(), method: method}
			return out
		case analysis.LockRelease:
			if _, ok := f[recv]; ok {
				out := clone(f)
				delete(out, recv)
				return out
			}
		}

	case *ast.DeferStmt:
		// A deferred release is guaranteed to run at function exit on
		// every path passing this registration: the balance
		// obligation is discharged here, path-sensitively. Covers
		// both `defer mu.Unlock()` and `defer func() { mu.Unlock() }()`.
		released := deferredReleases(pass, n)
		if len(released) > 0 {
			out := clone(f)
			for _, recv := range released {
				delete(out, recv)
			}
			return out
		}
	}
	return f
}

// deferredReleases collects the receiver texts of every unlock a
// defer statement guarantees.
func deferredReleases(pass *analysis.Pass, d *ast.DeferStmt) []string {
	if recv, _, op := analysis.ClassifyLockCall(pass.TypesInfo, d.Call); op == analysis.LockRelease {
		return []string{recv}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure runs on its own schedule
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			if recv, _, op := analysis.ClassifyLockCall(pass.TypesInfo, es.X); op == analysis.LockRelease {
				out = append(out, recv)
			}
		}
		return true
	})
	return out
}

func clone(f fact) fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func intersect(a, b fact) fact {
	out := fact{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Package passes registers the diverselint analyzer suite: every
// invariant the repository machine-checks, in one list shared by the
// cmd/diverselint driver and the integration tests.
package passes

import (
	"diversecast/internal/analysis"
	"diversecast/internal/analysis/passes/boxparam"
	"diversecast/internal/analysis/passes/ctxloop"
	"diversecast/internal/analysis/passes/detrand"
	"diversecast/internal/analysis/passes/errdrop"
	"diversecast/internal/analysis/passes/floatdet"
	"diversecast/internal/analysis/passes/floateq"
	"diversecast/internal/analysis/passes/goroleak"
	"diversecast/internal/analysis/passes/guardrace"
	"diversecast/internal/analysis/passes/hotalloc"
	"diversecast/internal/analysis/passes/lockbalance"
	"diversecast/internal/analysis/passes/lockorder"
	"diversecast/internal/analysis/passes/locksend"
	"diversecast/internal/analysis/passes/loopalloc"
	"diversecast/internal/analysis/passes/obsnames"
)

// All returns the full diverselint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		boxparam.Analyzer,
		ctxloop.Analyzer,
		detrand.Analyzer,
		errdrop.Analyzer,
		floatdet.Analyzer,
		floateq.Analyzer,
		goroleak.Analyzer,
		guardrace.Analyzer,
		hotalloc.Analyzer,
		lockbalance.Analyzer,
		lockorder.Analyzer,
		locksend.Analyzer,
		loopalloc.Analyzer,
		obsnames.Analyzer,
	}
}

package floateq_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "a")
}

// Package floateq flags exact equality comparison between computed
// floating-point values.
//
// The grouping-cost pipeline guarantees bit-for-bit reconciliation
// only along one documented path (Aggregates-order accumulation);
// everywhere else, two floats that are "the same quantity" computed
// two ways differ in the low bits, and == silently becomes
// always-false. Cost comparisons must go through an epsilon (compare
// |a−b| against a tolerance) or the exact-reconciliation path.
//
// Comparisons against a constant (x == 0, phi != 1) are exempt: zero
// and small-integer sentinels are exactly representable and comparing
// against them is the established "field unset" idiom throughout the
// config structs. Test files are exempt too — golden tests assert
// exact reconciliation on purpose.
package floateq

import (
	"go/ast"
	"go/token"
	"strings"

	"diversecast/internal/analysis"
)

// Analyzer flags computed-vs-computed float equality.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags == and != between two non-constant floating-point expressions outside _test.go " +
		"files: float equality on computed values is almost always wrong — use an epsilon or " +
		"the documented exact-reconciliation path, or annotate a deliberate exact tie-break",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.TypesInfo.TypeOf(be.X)
			ty := pass.TypesInfo.TypeOf(be.Y)
			if tx == nil || ty == nil || !analysis.IsFloat(tx) && !analysis.IsFloat(ty) {
				return true
			}
			if isConstant(pass, be.X) || isConstant(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"%s between two computed floating-point values: low-bit drift makes exact equality meaningless; compare math.Abs(a-b) against an epsilon, or annotate a deliberate exact tie-break",
				be.Op)
			return true
		})
	}
	return nil
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// Corpus for floateq: exact equality between computed floats.
package a

import "math"

// Flagged: two independently computed costs will differ in the low
// bits; this comparison is silently always-false.
func costsMatch(a, b []float64) bool {
	return sum(a) == sum(b) // want `computed floating-point values`
}

// Flagged: != is the same trap.
func costsDiffer(x, y float64) bool {
	return x*3 != y*3 // want `computed floating-point values`
}

// Clean: epsilon comparison is the prescribed fix.
func costsClose(a, b []float64) bool {
	return math.Abs(sum(a)-sum(b)) <= 1e-9
}

// Clean: comparing against a constant sentinel (the "field unset"
// idiom of the config structs) is exact and deliberate.
func unset(timeScale float64) bool {
	return timeScale == 0
}

// Clean: constant on either side.
func isUnit(z float64) bool {
	return 1 != z && z == 2
}

// Clean: integer equality is exact.
func sameCount(n, m int) bool {
	return n == m
}

// Clean: ordering comparisons on floats are fine (they do not
// pretend to bit-exactness).
func better(got, best float64) bool {
	return got < best
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

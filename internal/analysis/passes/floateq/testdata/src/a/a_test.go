// Test files are exempt: golden tests assert exact reconciliation on
// purpose (that determinism is the invariant floatdet protects).
package a

func exactGolden(got, want float64) bool {
	return got == want // no diagnostic: _test.go files are exempt
}

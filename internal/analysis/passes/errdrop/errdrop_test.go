package errdrop_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "a", "inter")
}

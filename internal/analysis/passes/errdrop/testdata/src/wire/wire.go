// A stand-in for the repo's wire package: the hot-path signatures the
// analyzer keys on.
package wire

import "errors"

type Conn struct{}

func WriteJSON(v any) error        { return errors.New("write") }
func ReadJSON(v any) (int, error)  { return 0, errors.New("read") }
func Size(v any) int               { return 0 }
func (c *Conn) Flush() error       { return nil }
func (c *Conn) Stats() (int, bool) { return 0, false }

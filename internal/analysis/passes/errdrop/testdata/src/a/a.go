// Corpus for errdrop: errors from hot-path packages must be handled.
package a

import "wire"

// Flagged: result ignored entirely.
func send(v any) {
	wire.WriteJSON(v) // want `error returned by wire\.WriteJSON is discarded`
}

// Flagged: explicitly blanked.
func sendBlank(v any) {
	_ = wire.WriteJSON(v) // want `error returned by wire\.WriteJSON is assigned to _`
}

// Flagged: error position blanked in a multi-assign.
func recv(v any) int {
	n, _ := wire.ReadJSON(v) // want `error returned by wire\.ReadJSON is assigned to _`
	return n
}

// Flagged: method calls count the same as package functions.
func drop(c *wire.Conn) {
	c.Flush() // want `error returned by c\.Flush is discarded`
}

// Clean: propagated.
func forward(v any) error {
	return wire.WriteJSON(v)
}

// Clean: handled.
func handled(v any) bool {
	if err := wire.WriteJSON(v); err != nil {
		return false
	}
	return true
}

// Clean: no error in the signature.
func sized(v any) int {
	return wire.Size(v)
}

// Clean: non-error results may be blanked.
func stats(c *wire.Conn) bool {
	_, ok := c.Stats()
	return ok
}

// Clean: deferred cleanup has nowhere to send an error.
func closer(c *wire.Conn) {
	defer c.Flush()
}

// Clean: drops from non-hot packages are some other linter's beat.
func localDrop() {
	localErr()
}

func localErr() error { return nil }

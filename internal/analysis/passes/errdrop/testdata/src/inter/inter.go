// Corpus: interprocedural errdrop. send wraps the hot wire call one
// frame up, relay and publish push it two and three frames up — each
// carries a HotError summary, so dropping any of their errors is the
// same bug as dropping wire.WriteJSON's. coldWork's error never
// touches a hot package and stays errcheck territory, not errdrop's.
package inter

import (
	"errors"

	"wire"
)

func send(v any) error { return wire.WriteJSON(v) }

func relay(v any) error { return send(v) }

func publish(v any) error { return relay(v) }

func dropOneUp(v any) {
	send(v) // want `error returned by send is discarded, and its error carries a netcast/wire/obs failure`
}

func dropThreeUp(v any) {
	publish(v) // want `error returned by publish is discarded, and its error carries a netcast/wire/obs failure`
}

func blankThreeUp(v any) {
	_ = publish(v) // want `error returned by publish is assigned to _, and its error carries a netcast/wire/obs failure`
}

// Clean: propagated.
func forward(v any) error { return publish(v) }

// Clean: deferred cleanup has no caller to return to.
func closer(v any) {
	defer publish(v)
}

func coldWork() error { return errors.New("cold") }

// Clean: a dropped cold error is sloppy but not a hot-path loss.
func dropCold() {
	coldWork()
	_ = coldWork()
}

// Package errdrop flags discarded error returns on the broadcast hot
// paths: calls into netcast, wire, and obs.
//
// Those three packages carry every byte between server and client
// (netcast, wire) and every measurement the experiments report (obs).
// An error dropped there does not crash anything — it silently
// strands a subscriber mid-cycle or corrupts a metric series, which
// is far harder to debug than a propagated failure. The pass flags
// both spellings of the drop:
//
//	wire.WriteJSON(conn, msg)      // result ignored entirely
//	_ = wire.WriteJSON(conn, msg)  // explicitly blanked
//
// Deferred calls are exempt (deferred cleanup has nowhere to send an
// error), as are test files. A deliberate drop — a best-effort
// shutdown courtesy, say — should carry an audited
// //diverselint:ignore errdrop directive explaining why losing the
// error is safe.
//
// With whole-program summaries (Pass.Inter) the pass also sees
// through wrappers: an in-program function whose summary says "my
// error return carries a netcast/wire/obs failure" — directly or
// through a chain of such wrappers — is held to the same standard,
// so hoisting the hot call one or three frames up no longer launders
// the drop. Without summaries the pass degrades to flagging direct
// hot-package calls only.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/summary"
)

// Analyzer flags dropped errors from netcast/wire/obs calls.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flags error returns from netcast, wire, and obs calls that are discarded or assigned " +
		"to _ outside defer: a dropped error on the broadcast hot path strands subscribers or " +
		"corrupts metrics silently; handle it, or suppress with an audited reason",
	Run: run,
}

// hotPkgs are the import-path leaf names whose errors must not be
// dropped.
var hotPkgs = map[string]bool{
	"netcast": true,
	"wire":    true,
	"obs":     true,
}

func run(pass *analysis.Pass) error {
	prog, _ := pass.Inter.(*summary.Program) // nil: direct calls only
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// Deferred cleanup has no caller to return to.
				return false
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := hotErrCall(pass.TypesInfo, call); ok {
						pass.Reportf(n.Pos(),
							"error returned by %s is discarded: a hot-path failure here strands subscribers or corrupts metrics with no trace; handle it or log it", name)
					} else if name, ok := wrappedHotCall(prog, pass.TypesInfo, call); ok {
						pass.Reportf(n.Pos(),
							"error returned by %s is discarded, and its error carries a netcast/wire/obs failure: hoisting the hot call into a wrapper does not make the drop safe; handle it or log it", name)
					}
				}
			case *ast.AssignStmt:
				checkBlank(pass, prog, n)
			}
			return true
		})
	}
	return nil
}

// checkBlank flags `_` bound to an error result of a hot call or a
// hot-error wrapper.
func checkBlank(pass *analysis.Pass, prog *summary.Program, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, direct := hotErrCall(pass.TypesInfo, call)
	wrapped := false
	if !direct {
		if name, wrapped = wrappedHotCall(prog, pass.TypesInfo, call); !wrapped {
			return
		}
	}
	results := resultTypes(pass.TypesInfo, call)
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(results) || !isError(results[i]) {
			continue
		}
		if wrapped {
			pass.Reportf(as.Pos(),
				"error returned by %s is assigned to _, and its error carries a netcast/wire/obs failure: hoisting the hot call into a wrapper does not make the drop safe; handle it or log it", name)
			return
		}
		pass.Reportf(as.Pos(),
			"error returned by %s is assigned to _: a hot-path failure here strands subscribers or corrupts metrics with no trace; handle it or log it", name)
		return
	}
}

// wrappedHotCall reports whether call's single in-program callee has
// a HotError summary — its error return propagates a hot-package
// failure through any number of in-program frames.
func wrappedHotCall(prog *summary.Program, info *types.Info, call *ast.CallExpr) (string, bool) {
	if prog == nil {
		return "", false
	}
	var callee *callgraph.Node
	for _, e := range prog.EdgesAt(call) {
		if e.Kind != callgraph.Call {
			continue
		}
		if callee != nil {
			return "", false
		}
		callee = e.Callee
	}
	if callee == nil {
		return "", false
	}
	s := prog.Of(callee)
	if s == nil || !s.HotError {
		return "", false
	}
	for _, t := range resultTypes(info, call) {
		if isError(t) {
			return types.ExprString(call.Fun), true
		}
	}
	return "", false
}

// hotErrCall reports whether call targets a function in a hot package
// whose results include an error, returning the call's source
// spelling for the diagnostic.
func hotErrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if !hotPkgs[path[strings.LastIndex(path, "/")+1:]] {
		return "", false
	}
	for _, t := range resultTypes(info, call) {
		if isError(t) {
			return types.ExprString(call.Fun), true
		}
	}
	return "", false
}

// resultTypes flattens the call's result tuple.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	t := info.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := range out {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}

var errorType = types.Universe.Lookup("error").Type()

func isError(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// Package hot exercises the hotalloc contract: every ungated
// allocation site reachable from a //diverselint:hotpath root on the
// disabled-trace path is a finding, with its call chain back to the
// root.
package hot

import (
	"fmt"

	"trace"
)

var tr *trace.Tracer

// Sweep is a hot root with one direct violation; the gated branch and
// the early-out-gated callee are exempt, the coldpath callee prunes.
//
//diverselint:hotpath per-cycle sweep kernel
func Sweep(xs, out []int64) int64 {
	var sum int64
	for i, x := range xs {
		out[i] = x
		sum += x
	}
	seen := make(map[int64]bool) // want `allocates on hot path from hot.Sweep: make\(map\[int64\]bool\)`
	_ = seen
	if tr.Enabled() {
		logSum(sum) // gated edge: logSum's fmt is not hot
	}
	note(sum)
	_ = scratch(len(xs))
	return sum + tail(xs)
}

// Drain shares tail with Sweep: the site in tail is claimed by the
// first root in declaration order, so Drain reports nothing extra.
//
//diverselint:hotpath drain loop
func Drain(xs []int64) int64 { return tail(xs) }

func tail(xs []int64) int64 {
	buf := make([]int64, len(xs)) // want `allocates on hot path from hot.Sweep \(via hot.tail\): make\(\[\]int64\)`
	copy(buf, xs)
	var sum int64
	for _, x := range buf {
		sum += x
	}
	return sum
}

// logSum is only reached through a gated edge — its allocation never
// runs with tracing off.
func logSum(sum int64) {
	fmt.Println("sum", sum)
}

// note is hot-reachable, but its allocation sits behind the early-out
// gate shape: with tracing off the function returns first.
func note(sum int64) {
	if tr == nil || !tr.Enabled() {
		return
	}
	msg := fmt.Sprintf("sum=%d", sum)
	_ = msg
}

// scratch is pruned from hot reachability by the audited directive.
//
//diverselint:coldpath one-time construction, not per-cycle
func scratch(n int) []int64 {
	return make([]int64, n)
}

// Apply reaches stamp through the closure it hands to each: Ref edges
// to function literals are followed (hot code defines hot closures).
//
//diverselint:hotpath fan-out dispatch
func Apply(xs []int64) {
	each(len(xs), func(i int) { // want `allocates on hot path from hot.Apply: func literal captures xs \(heap closure if it escapes\)`
		xs[i] = stamp(xs[i])
	})
}

func each(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

func stamp(x int64) int64 {
	s := fmt.Sprintf("%d", x) // want `allocates on hot path from hot.Apply \(via hot.Apply\$0 -> hot.stamp\): call to fmt.Sprintf allocates`
	return int64(len(s)) + x
}

type frame struct{ seq int64 }

// Publish pays for the spawn itself, but the spawned goroutine's body
// is not the hot path: Go edges are not followed.
//
//diverselint:hotpath publish fast path
func Publish(seq int64) *frame {
	go flush() // want `allocates on hot path from hot.Publish: go statement spawns a goroutine`
	return &frame{seq: seq} // want `allocates on hot path from hot.Publish: &frame\{\.\.\.\} escapes to the heap`
}

func flush() {
	b := make([]byte, 64)
	_ = b
}

// Package hotalloc enforces the repo's zero-allocation hot-path
// contracts: a function marked //diverselint:hotpath — and everything
// it reaches synchronously (Call/Defer edges, plus closures defined
// in hot code) — must not allocate on the disabled-trace path. Each
// violation is reported at the allocation site with its reachability
// chain back to the hot root, so the finding reads as the reviewer
// question it answers: "who dragged an allocation into the sweep?".
//
// Interface-boxing sites are boxparam's domain and excluded here;
// //diverselint:coldpath prunes reachability (reason mandatory,
// audited); sites that provably execute only when tracing is enabled
// are exempt everywhere. Without whole-program summaries (vet mode
// loads one package at a time) the pass still checks hot roots
// against their same-package callees — the cross-package chains need
// the standalone driver.
package hotalloc

import (
	"diversecast/internal/analysis"
	"diversecast/internal/analysis/escape"
	"diversecast/internal/analysis/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "allocations reachable from //diverselint:hotpath roots",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	prog, _ := pass.Inter.(*summary.Program)
	if prog == nil || prog.Alloc == nil {
		return nil
	}
	pkgPath := pass.Pkg.Path()

	// Files of this package, for attributing malformed directives.
	inPkg := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		inPkg[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, m := range prog.Alloc.Malformed {
		if inPkg[pass.Fset.Position(m.Pos).Filename] {
			pass.Reportf(m.Pos, "%s", m.Msg)
		}
	}

	for _, f := range prog.Alloc.HotFindings() {
		if f.Site.Kind == escape.Box {
			continue // boxparam reports these
		}
		if f.Node.Pkg.Path != pkgPath {
			continue
		}
		root := escape.ShortName(f.Root.Node.Name)
		if via := f.Root.Via(f.Node); via != "" {
			pass.Reportf(f.Site.Pos, "allocates on hot path from %s (via %s): %s",
				root, via, f.Site.What)
		} else {
			pass.Reportf(f.Site.Pos, "allocates on hot path from %s: %s",
				root, f.Site.What)
		}
	}
	return nil
}

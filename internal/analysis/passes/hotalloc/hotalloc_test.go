package hotalloc_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot")
}

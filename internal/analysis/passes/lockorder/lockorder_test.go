package lockorder_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "order")
}

// Package lockorder flags inconsistent lock-acquisition order: one
// function takes A then B, another takes B then A. Two goroutines
// running those functions concurrently can each hold their first
// lock and block forever on the second — the classic ABBA deadlock,
// invisible to any single-function analysis.
//
// The pass reads the whole-program summaries in Pass.Inter: every
// lock acquisition (direct mu.Lock(), or transitive through a
// callee's net-acquire effect) is recorded with the set of locks
// already held, including locks held by callers (EntryHeld). Lock
// identity is type-based ("pkg.Type.field"), so an order violation
// between two instances of the same struct pair is still caught —
// and, as with any type-based lockset, ordered self-locking of two
// distinct instances (a.mu then b.mu by address order) will be
// flagged as A-then-A; such deliberate hierarchies should carry an
// audited suppression.
//
// Each conflicting direction is reported once per acquisition site,
// citing a site that acquires in the opposite order, and only in the
// package being analyzed so whole-program pairs never duplicate
// across packages.
package lockorder

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/callgraph"
	"diversecast/internal/analysis/summary"
)

// Analyzer flags ABBA lock-order inversions across the program.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flags lock pairs acquired in opposite orders in different functions (A→B here, B→A " +
		"elsewhere): two goroutines interleaving those paths deadlock holding one lock each; " +
		"pick one global acquisition order",
	Run: run,
}

// an ordered acquisition: inner taken while outer held.
type ordered struct {
	outer, inner summary.LockID
}

type site struct {
	node *callgraph.Node
	pos  token.Pos
	via  string
}

func run(pass *analysis.Pass) error {
	prog, ok := pass.Inter.(*summary.Program)
	if !ok || prog == nil {
		return nil
	}
	pkgPath := pass.Pkg.Path()

	// Collect every ordered pair in the program, in call-graph order.
	pairs := make(map[ordered][]site)
	var order []ordered
	for _, n := range prog.Graph.Nodes {
		s := prog.Of(n)
		if s == nil {
			continue
		}
		for _, acq := range s.Acquires {
			outer := make(map[summary.LockID]bool, len(acq.Held)+len(s.EntryHeld))
			for l := range acq.Held {
				outer[l] = true
			}
			for l := range s.EntryHeld {
				outer[l] = true
			}
			for _, l := range sortedLocks(outer) {
				if l == acq.Lock {
					continue
				}
				o := ordered{outer: l, inner: acq.Lock}
				if _, ok := pairs[o]; !ok {
					order = append(order, o)
				}
				pairs[o] = append(pairs[o], site{node: n, pos: acq.Pos, via: acq.Via})
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].outer != order[j].outer {
			return order[i].outer < order[j].outer
		}
		return order[i].inner < order[j].inner
	})

	for _, o := range order {
		rev := ordered{outer: o.inner, inner: o.outer}
		against, ok := pairs[rev]
		if !ok {
			continue
		}
		for _, s := range pairs[o] {
			if s.node.Pkg.Path != pkgPath {
				continue
			}
			suffix := ""
			if s.via != "" {
				suffix = fmt.Sprintf(" (via %s)", s.via)
			}
			pass.Reportf(s.pos,
				"%s is acquired%s while %s is held, but %s takes them in the opposite order at %s: interleaved goroutines deadlock holding one lock each; pick one global order",
				displayLock(o.inner), suffix, displayLock(o.outer),
				against[0].node.Name, posLabel(prog, against[0].pos))
		}
	}
	return nil
}

func sortedLocks(m map[summary.LockID]bool) []summary.LockID {
	out := make([]summary.LockID, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func displayLock(l summary.LockID) string {
	s := string(l)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			s = s[i+1:]
			break
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

func posLabel(prog *summary.Program, pos token.Pos) string {
	p := prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

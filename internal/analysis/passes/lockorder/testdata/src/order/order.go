// Corpus: ABBA lock-order inversion. AB takes a then b, BA takes b
// then a — interleaved goroutines deadlock holding one lock each.
// The duo pair exercises the interprocedural path: CD reaches d
// through the lockD helper (a net-acquire summary), and lockD itself
// inherits c from its only caller (EntryHeld), so both the call site
// and the helper's own Lock line carry the inverted pair. The other
// pair is taken in one consistent order everywhere and stays quiet.
package order

import "sync"

type system struct {
	a, b sync.Mutex
}

func (s *system) AB() {
	s.a.Lock()
	s.b.Lock() // want `system\.b is acquired while system\.a is held`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *system) BA() {
	s.b.Lock()
	s.a.Lock() // want `system\.a is acquired while system\.b is held`
	s.a.Unlock()
	s.b.Unlock()
}

type duo struct {
	c, d sync.Mutex
}

func (t *duo) CD() {
	t.c.Lock()
	t.lockD() // want `duo\.d is acquired \(via .*lockD\) while duo\.c is held`
	t.d.Unlock()
	t.c.Unlock()
}

func (t *duo) DC() {
	t.d.Lock()
	t.c.Lock() // want `duo\.c is acquired while duo\.d is held`
	t.c.Unlock()
	t.d.Unlock()
}

func (t *duo) lockD() {
	t.d.Lock() // want `duo\.d is acquired while duo\.c is held`
}

type other struct {
	x, y sync.Mutex
}

func (o *other) One() {
	o.x.Lock()
	o.y.Lock()
	o.y.Unlock()
	o.x.Unlock()
}

func (o *other) Two() {
	o.x.Lock()
	o.y.Lock()
	o.y.Unlock()
	o.x.Unlock()
}

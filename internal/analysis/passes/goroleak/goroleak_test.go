package goroleak_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "a")
}

// Corpus for goroleak: goroutines must have a join or cancel signal.
package a

import (
	"context"
	"sync"
)

type client struct {
	out  chan string
	quit chan struct{}
	done chan struct{}
	sink string
	n    int
}

// Flagged: the PR-1 stranded-writeLoop reconstruction — nothing in
// this package ever closes c.out, so the range parks forever.
func (c *client) startLeaky() {
	go c.writeLoop() // want `goroutine has no join or cancel signal.*stranded-writeLoop`
}

func (c *client) writeLoop() {
	for m := range c.out {
		c.sink = m
	}
}

// Clean: ranging a channel the package closes ends when Close runs.
func (c *client) startDrained() {
	go c.drainLoop()
}

func (c *client) drainLoop() {
	for range c.done {
	}
}

func (c *client) Close() { close(c.done) }

// Flagged: a busy loop with no exit can never be joined — even a
// deferred Done would never run.
func (c *client) startSpinner() {
	go func() { // want `goroutine can never return`
		for {
			c.n++
		}
	}()
}

// Flagged: a named pump with an exit-free select loop is the same
// leak with extra steps.
func (c *client) startPump() {
	go c.pump() // want `goroutine can never return`
}

func (c *client) pump() {
	for {
		select {
		case m := <-c.out:
			c.sink = m
		}
	}
}

// Clean: the context case gives shutdown a handle.
func (c *client) startCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case m := <-c.out:
				c.sink = m
			}
		}
	}()
}

// Clean: worker-pool idiom — WaitGroup accounting is join evidence
// even though nothing here closes tasks (the producer does).
func pool(wg *sync.WaitGroup, tasks chan int) {
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				_ = t
			}
		}()
	}
}

// Clean: a quit channel that receives a value send counts as signaled.
func (c *client) startQuit() {
	go func() {
		for {
			if c.step() {
				return
			}
			<-c.quit
		}
	}()
}

func (c *client) Stop()      { c.quit <- struct{}{} }
func (c *client) step() bool { return c.n > 0 }

// Clean: a one-shot wait on a channel the package closes.
func (c *client) startWaiter() {
	go func() {
		<-c.done
		c.n = 0
	}()
}

// Skipped: calls that resolve outside the package are that package's
// concern.
func bootLog() {
	go println("boot")
}

// Package goroleak flags goroutines started with no join or cancel
// signal — the PR-1 stranded-writeLoop class.
//
// The original bug: netcast spawned `go c.writeLoop()` where the loop
// was `for m := range c.out { ... }` and nothing ever closed c.out, so
// every disconnected client left a goroutine parked on the channel
// forever. The fix closed the channel from Close(); this pass keeps
// the class from coming back.
//
// Two checks, both over the goroutine body's CFG:
//
//  1. The function exit is unreachable from the entry (e.g. `for {}`
//     with no return or break): the goroutine can NEVER be joined, so
//     even a `defer wg.Done()` never runs. Always reported.
//  2. The body contains a loop that blocks on an unsignaled channel —
//     a range over a channel nothing in the package closes, or a
//     bare `for` — AND the body shows no join/cancel evidence: no
//     WaitGroup.Done, no context Done/Err check, no select, and no
//     receive from a channel the package closes or sends to.
//
// The evidence scan is deliberately generous (any select counts, a
// close or send anywhere in the package counts) so the pass errs
// toward silence: a finding means nothing in the package could stop
// or wait for this goroutine.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"diversecast/internal/analysis"
	"diversecast/internal/analysis/cfg"
)

// Analyzer flags goroutines with no join or cancel path.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flags goroutines with no join or cancel signal — no WaitGroup.Done, no context check, " +
		"no select, and no receive from a channel the package ever closes or sends to: such a " +
		"goroutine outlives shutdown parked on a channel forever (the netcast stranded-writeLoop class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	sig := indexSignals(pass)
	decls := indexFuncDecls(pass)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // test goroutines die with the test binary
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if body := goBody(pass, decls, gs.Call); body != nil {
				check(pass, gs, body, sig)
			}
			return true
		})
	}
	return nil
}

// signals records, per package, which channel objects are ever closed
// or sent to — a receive from one of those is a real wakeup path.
type signals struct {
	closed map[types.Object]bool
	sent   map[types.Object]bool
}

func indexSignals(pass *analysis.Pass) signals {
	sig := signals{closed: map[types.Object]bool{}, sent: map[types.Object]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						if obj := chanObj(pass, n.Args[0]); obj != nil {
							sig.closed[obj] = true
						}
					}
				}
			case *ast.SendStmt:
				if obj := chanObj(pass, n.Chan); obj != nil {
					sig.sent[obj] = true
				}
			}
			return true
		})
	}
	return sig
}

// chanObj resolves a channel expression to the object it names — a
// variable for `ch`, the field object for `c.out` — or nil for
// anything more dynamic (map index, function result).
func chanObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

func indexFuncDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// goBody resolves the body a `go` statement will run: a literal
// inline, or a same-package FuncDecl. Calls into other packages and
// dynamic calls return nil and are skipped — their loops are that
// package's responsibility.
func goBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

func check(pass *analysis.Pass, gs *ast.GoStmt, body *ast.BlockStmt, sig signals) {
	g := cfg.New(body, cfg.Options{NoReturn: cfg.NoReturn(pass.TypesInfo)})
	if !g.Reach()[g.Exit] {
		pass.Reportf(gs.Pos(),
			"goroutine can never return: no path from its loop to the function exit, so no Wait or join ever completes; add a cancel case (context Done or a closable quit channel) so shutdown can reclaim it")
		return
	}
	if hasJoinEvidence(pass, body, sig) {
		return
	}
	if pos := suspiciousLoop(pass, body, sig); pos.IsValid() {
		pass.Reportf(gs.Pos(),
			"goroutine has no join or cancel signal (no WaitGroup.Done, context check, select, or receive from a channel this package closes or sends to): it can park forever on the loop at %s and leak past shutdown (the stranded-writeLoop class)",
			pass.Fset.Position(pos))
	}
}

// hasJoinEvidence reports whether anything in the body (closures
// included) ties the goroutine's lifetime to the outside world.
func hasJoinEvidence(pass *analysis.Pass, body *ast.BlockStmt, sig signals) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch analysis.MethodFullName(pass.TypesInfo, sel) {
				case "(*sync.WaitGroup).Done",
					"(context.Context).Done", "(context.Context).Err":
					found = true
				}
			}
		case *ast.SelectStmt:
			// Any select is a deliberate multi-way wait; its cases
			// (checked syntactically above for ctx/quit) bound blocking.
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanObj(pass, n.X); obj != nil && (sig.closed[obj] || sig.sent[obj]) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if obj := rangeChanObj(pass, n, sig); obj != nil && sig.closed[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// suspiciousLoop finds a loop (outside nested closures, which run on
// their own goroutines) that can block or spin forever: a range over
// a never-closed channel, or a bare `for`.
func suspiciousLoop(pass *analysis.Pass, body *ast.BlockStmt, sig signals) token.Pos {
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				pos = n.Pos()
			}
		case *ast.RangeStmt:
			if isChanRange(pass, n) {
				obj := rangeChanObj(pass, n, sig)
				if obj == nil || !sig.closed[obj] {
					pos = n.Pos()
				}
			}
		}
		return !pos.IsValid()
	})
	return pos
}

func isChanRange(pass *analysis.Pass, r *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(r.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func rangeChanObj(pass *analysis.Pass, r *ast.RangeStmt, sig signals) types.Object {
	if !isChanRange(pass, r) {
		return nil
	}
	return chanObj(pass, r.X)
}

// Package boxparam flags values escaping into interface{}/error
// parameters on hot paths — the trace-attr and metrics-label class of
// allocation: a concrete, non-pointer-shaped value passed where an
// interface (including an any/error variadic) is expected forces a
// heap box the caller never sees in the source. The hot-reachable
// set, gating, and coldpath pruning are shared with hotalloc through
// the escape layer; this pass owns exactly the boxing sites hotalloc
// excludes, so one line never draws two spellings of the same
// contract.
//
// Constants are exempt (their interface value is static data), as are
// pointer-shaped values (pointers, maps, channels, funcs — the
// interface data word holds them directly) and interface-to-interface
// assignments.
package boxparam

import (
	"diversecast/internal/analysis"
	"diversecast/internal/analysis/escape"
	"diversecast/internal/analysis/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "boxparam",
	Doc:  "interface boxing at call sites on //diverselint:hotpath paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	prog, _ := pass.Inter.(*summary.Program)
	if prog == nil || prog.Alloc == nil {
		return nil
	}
	pkgPath := pass.Pkg.Path()
	for _, f := range prog.Alloc.HotFindings() {
		if f.Site.Kind != escape.Box || f.Node.Pkg.Path != pkgPath {
			continue
		}
		root := escape.ShortName(f.Root.Node.Name)
		if via := f.Root.Via(f.Node); via != "" {
			pass.Reportf(f.Site.Pos, "boxes on hot path from %s (via %s): %s",
				root, via, f.Site.What)
		} else {
			pass.Reportf(f.Site.Pos, "boxes on hot path from %s: %s",
				root, f.Site.What)
		}
	}
	return nil
}

// Package trace is a corpus stub of the repo's tracing layer. Gate
// detection matches by method name, receiver type name, and package
// NAME, so Enabled/Active here gate exactly like the real ones.
package trace

type Tracer struct{ on bool }

func (t *Tracer) Enabled() bool { return t != nil && t.on }

type Span struct{ on bool }

func (s Span) Active() bool { return s.on }

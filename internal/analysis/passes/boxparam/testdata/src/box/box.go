// Package box exercises boxparam: concrete non-pointer-shaped values
// escaping into interface{}/error parameters on hot paths. Constants,
// pointers, interface pass-throughs, spread variadics, and gated
// calls are all exempt.
package box

import "trace"

var tr *trace.Tracer

type meter struct{ n int }

func (m *meter) observe(v any) { m.n++ }

func event(msg string, attrs ...any) {}

func fail(err error) {}

type code int

func (c code) Error() string { return "code" }

var m meter

// Record boxes directly and through a helper.
//
//diverselint:hotpath observe fast path
func Record(v int64, active bool) {
	m.observe(v)            // want `boxes on hot path from box.Record: int64 boxed into interface argument of m.observe`
	event("cycle", v, active) // want `int64 boxed into interface argument of event` `bool boxed into interface argument of event`
	relay(v)
}

func relay(v int64) {
	m.observe(v) // want `boxes on hot path from box.Record \(via box.relay\): int64 boxed into interface argument of m.observe`
}

// Check boxes a concrete error implementation into the error
// parameter — the errors-as-values spelling of the same cost.
//
//diverselint:hotpath error fast path
func Check(c code) {
	fail(c) // want `box.code boxed into interface argument of fail`
}

// Clean shows every exemption: constants have static interface data,
// pointer-shaped values ride in the data word, an interface argument
// is already boxed, a spread variadic passes the slice through, and
// the gated call only runs with tracing on.
//
//diverselint:hotpath exemption inventory
func Clean(p *meter, v any, attrs []any, x int64) {
	m.observe(42)  // constant: exempt
	m.observe(p)   // pointer-shaped: exempt
	m.observe(v)   // already an interface: exempt
	event("spread", attrs...) // slice passes through: exempt
	if tr.Enabled() {
		m.observe(x) // gated: exempt
	}
}

package boxparam_test

import (
	"testing"

	"diversecast/internal/analysis/analysistest"
	"diversecast/internal/analysis/passes/boxparam"
)

func TestBoxParam(t *testing.T) {
	analysistest.Run(t, "testdata", boxparam.Analyzer, "box")
}

// Package adapt closes the loop of the paper's Figure 1 architecture:
// the broadcast server "generates a broadcast program by collecting
// the access patterns of mobile users". It provides a streaming
// access-frequency estimator (Tracker) and incremental re-allocation
// (Replan) that adapts an existing channel allocation to a drifted
// profile by CDS local search instead of re-partitioning from scratch
// — preserving most item placements (low churn) at near-rebuild
// quality.
package adapt

import (
	"errors"
	"fmt"
	"math"

	"diversecast/internal/core"
)

// Tracker estimates per-item access frequencies from an observed
// request stream using exponentially decaying counts: an observation
// made Δt seconds ago weighs 2^(−Δt/HalfLife). It is the server-side
// statistics collector of the paper's architecture.
type Tracker struct {
	halfLife float64
	counts   []float64
	lastSeen []float64
}

// NewTracker builds a tracker over n items with the given half-life in
// seconds.
func NewTracker(n int, halfLife float64) (*Tracker, error) {
	if n < 1 {
		return nil, fmt.Errorf("adapt: tracker needs n >= 1, got %d", n)
	}
	if !(halfLife > 0) || math.IsInf(halfLife, 0) {
		return nil, fmt.Errorf("adapt: half-life must be positive and finite, got %v", halfLife)
	}
	return &Tracker{
		halfLife: halfLife,
		counts:   make([]float64, n),
		lastSeen: make([]float64, n),
	}, nil
}

// Len reports the number of tracked items.
func (t *Tracker) Len() int { return len(t.counts) }

// Observe records one request for the item at position pos at time at
// (seconds; must be non-decreasing per item).
func (t *Tracker) Observe(pos int, at float64) error {
	if pos < 0 || pos >= len(t.counts) {
		return fmt.Errorf("adapt: position %d outside [0,%d)", pos, len(t.counts))
	}
	if at < t.lastSeen[pos] {
		return fmt.Errorf("adapt: observation at %v precedes item %d's last at %v", at, pos, t.lastSeen[pos])
	}
	t.counts[pos] = t.counts[pos]*math.Exp2(-(at-t.lastSeen[pos])/t.halfLife) + 1
	t.lastSeen[pos] = at
	return nil
}

// Frequencies returns the normalized frequency estimate as of time
// now. Items never observed receive a small floor (one decayed
// pseudo-count split across them) so the result is a valid broadcast
// profile.
func (t *Tracker) Frequencies(now float64) []float64 {
	n := len(t.counts)
	out := make([]float64, n)
	var total float64
	for i := range out {
		c := t.counts[i]
		if c > 0 {
			dt := now - t.lastSeen[i]
			if dt > 0 {
				c *= math.Exp2(-dt / t.halfLife)
			}
		}
		out[i] = c
		total += c
	}
	// Floor: guarantee strictly positive frequencies.
	floor := total / float64(n) * 1e-6
	if total == 0 {
		floor = 1
	}
	total = 0
	for i := range out {
		out[i] += floor
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// ApplyTo returns a database with db's items re-weighted by the
// tracker's estimate as of time now (sizes and IDs unchanged).
func (t *Tracker) ApplyTo(db *core.Database, now float64) (*core.Database, error) {
	if db.Len() != len(t.counts) {
		return nil, fmt.Errorf("adapt: tracker covers %d items, database has %d", len(t.counts), db.Len())
	}
	freqs := t.Frequencies(now)
	items := db.Items()
	for i := range items {
		items[i].Freq = freqs[i]
	}
	return core.NewDatabase(items)
}

// Churn quantifies how much a re-allocation disturbed the running
// broadcast.
type Churn struct {
	// Moved is the number of items whose channel changed.
	Moved int
	// MovedMass is the summed access frequency of moved items (under
	// the new profile).
	MovedMass float64
}

// ErrShapeMismatch is returned when the new database does not have the
// same item count as the previous allocation's.
var ErrShapeMismatch = errors.New("adapt: new database shape differs from previous allocation")

// Replan adapts a previous allocation to an updated database (same
// items at the same positions, new frequencies — e.g. a Tracker
// estimate or a workload.Drift epoch): the old assignment is carried
// over and refined to a CDS local optimum on the new profile. It
// returns the new allocation and the churn relative to prev.
//
// Compared to rebuilding with DRP-CDS, Replan touches far fewer items
// (clients keep their cached channel locations for everything that
// did not move) and costs one CDS descent instead of a full
// partitioning; the adapt tests and BenchmarkReplan quantify the
// quality/churn trade.
func Replan(prev *core.Allocation, db *core.Database) (*core.Allocation, Churn, error) {
	if db.Len() != prev.Database().Len() {
		return nil, Churn{}, fmt.Errorf("%w: %d vs %d", ErrShapeMismatch, db.Len(), prev.Database().Len())
	}
	carried, err := core.NewAllocation(db, prev.K(), prev.Assignment())
	if err != nil {
		return nil, Churn{}, fmt.Errorf("adapt: carrying assignment: %w", err)
	}
	next, err := core.NewCDS().Refine(carried)
	if err != nil {
		return nil, Churn{}, fmt.Errorf("adapt: refining: %w", err)
	}
	return next, ChurnBetween(prev, next), nil
}

// ReplanFromFrequencies adapts a previous allocation to a fresh
// frequency profile over the same items (database order, e.g. a
// costmon estimator's Frequencies snapshot): it re-weights the
// previous database and runs Replan. This is the re-allocation half
// of the sense→replan control loop; the sensing half lives in
// internal/obs/costmon.
func ReplanFromFrequencies(prev *core.Allocation, freqs []float64) (*core.Allocation, Churn, error) {
	db := prev.Database()
	if len(freqs) != db.Len() {
		return nil, Churn{}, fmt.Errorf("%w: %d frequencies vs %d items", ErrShapeMismatch, len(freqs), db.Len())
	}
	items := db.Items()
	for i := range items {
		items[i].Freq = freqs[i]
	}
	next, err := core.NewDatabase(items)
	if err != nil {
		return nil, Churn{}, fmt.Errorf("adapt: re-weighting database: %w", err)
	}
	return Replan(prev, next)
}

// ChurnBetween measures the placement difference between two
// allocations over databases of the same length. Frequencies are taken
// from b's database (the current profile).
func ChurnBetween(a, b *core.Allocation) Churn {
	var ch Churn
	db := b.Database()
	for pos := 0; pos < db.Len(); pos++ {
		if a.ChannelOf(pos) != b.ChannelOf(pos) {
			ch.Moved++
			ch.MovedMass += db.Item(pos).Freq
		}
	}
	return ch
}

package adapt_test

import (
	"math"
	"testing"

	"diversecast/internal/adapt"
	"diversecast/internal/core"
	"diversecast/internal/obs/costmon"
)

// TestReplanFromFrequencies closes the sense→replan loop: feed a
// costmon estimator a skewed workload, hand its frequency snapshot to
// ReplanFromFrequencies, and check the result is a valid allocation
// over the new profile that never costs more than carrying the stale
// assignment unrefined.
func TestReplanFromFrequencies(t *testing.T) {
	db := core.PaperExampleDatabase()
	prev, err := core.NewDRPCDS().Allocate(db, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Sense a workload where item 9 (cold in the paper profile) has
	// become the hottest item.
	e := costmon.NewEstimator(db.Len(), 60, 4)
	for i := 0; i < 2000; i++ {
		e.Observe(9)
		e.Observe(i % 3)
	}
	freqs := e.Frequencies(0)

	next, churn, err := adapt.ReplanFromFrequencies(prev, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if next.K() != prev.K() || next.Database().Len() != db.Len() {
		t.Fatalf("replan changed shape: K=%d len=%d", next.K(), next.Database().Len())
	}
	// The new database carries the sensed (normalized) profile.
	for i := 0; i < db.Len(); i++ {
		if got := next.Database().Item(i).Freq; math.Abs(got-freqs[i]/sum(freqs)) > 1e-9 {
			t.Fatalf("item %d freq %v, want sensed %v", i, got, freqs[i])
		}
	}

	// CDS refinement can only improve on the carried assignment.
	carried, err := core.NewAllocation(next.Database(), prev.K(), prev.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if cNext, cCarried := core.Cost(next), core.Cost(carried); cNext > cCarried+1e-9 {
		t.Fatalf("replanned cost %v exceeds carried cost %v", cNext, cCarried)
	}

	// Churn bookkeeping is consistent with the assignments.
	moved := 0
	for pos := 0; pos < db.Len(); pos++ {
		if prev.ChannelOf(pos) != next.ChannelOf(pos) {
			moved++
		}
	}
	if churn.Moved != moved {
		t.Fatalf("churn.Moved = %d, recount = %d", churn.Moved, moved)
	}

	// Shape mismatch is rejected.
	if _, _, err := adapt.ReplanFromFrequencies(prev, []float64{1, 2}); err == nil {
		t.Fatal("short frequency profile accepted")
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

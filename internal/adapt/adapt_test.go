package adapt

import (
	"math"
	"testing"
	"testing/quick"

	"diversecast/internal/core"
	"diversecast/internal/workload"
)

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 10); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewTracker(5, 0); err == nil {
		t.Error("zero half-life should fail")
	}
	if _, err := NewTracker(5, math.Inf(1)); err == nil {
		t.Error("infinite half-life should fail")
	}
}

func TestTrackerObserveValidation(t *testing.T) {
	tr, err := NewTracker(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(-1, 0); err == nil {
		t.Error("negative position should fail")
	}
	if err := tr.Observe(3, 0); err == nil {
		t.Error("out-of-range position should fail")
	}
	if err := tr.Observe(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(1, 4); err == nil {
		t.Error("time going backwards for an item should fail")
	}
}

func TestTrackerUnobservedIsUniform(t *testing.T) {
	tr, err := NewTracker(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Frequencies(0)
	for i, v := range f {
		if math.Abs(v-0.25) > 1e-9 {
			t.Fatalf("f[%d] = %v, want 0.25 with no observations", i, v)
		}
	}
}

func TestTrackerConvergesToTrueFrequencies(t *testing.T) {
	db := workload.Config{N: 30, Theta: 1.0, Phi: 1, Seed: 1}.MustGenerate()
	trace, err := workload.GenerateTrace(db, workload.TraceConfig{Requests: 60000, Rate: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Long half-life relative to the trace: effectively plain counts.
	tr, err := NewTracker(db.Len(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for _, req := range trace {
		if err := tr.Observe(req.Pos, req.Time); err != nil {
			t.Fatal(err)
		}
		last = req.Time
	}
	est := tr.Frequencies(last)
	for i := 0; i < 10; i++ { // popular head has tight estimates
		want := db.Item(i).Freq
		if math.Abs(est[i]-want) > 0.01+0.15*want {
			t.Errorf("item %d: estimate %v, true %v", i, est[i], want)
		}
	}
}

func TestTrackerDecayFollowsShift(t *testing.T) {
	// Item 0 is hot early, item 1 hot late; with a short half-life the
	// estimate at the end must rank item 1 far above item 0.
	tr, err := NewTracker(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Observe(0, float64(i)*0.1); err != nil { // t in [0,20)
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := tr.Observe(1, 100+float64(i)*0.1); err != nil { // t in [100,120)
			t.Fatal(err)
		}
	}
	f := tr.Frequencies(120)
	if f[1] < 0.9 {
		t.Fatalf("late-hot item estimated at %v, want > 0.9 after decay", f[1])
	}
}

func TestTrackerApplyTo(t *testing.T) {
	db := workload.Config{N: 10, Theta: 0.8, Phi: 1, Seed: 3}.MustGenerate()
	tr, err := NewTracker(db.Len(), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Observe(3, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := tr.ApplyTo(db, 50)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatal("ApplyTo changed item count")
	}
	for i := 0; i < db.Len(); i++ {
		if db2.Item(i).Size != db.Item(i).Size || db2.Item(i).ID != db.Item(i).ID {
			t.Fatal("ApplyTo changed sizes or IDs")
		}
	}
	if db2.Item(3).Freq < 0.9 {
		t.Fatalf("observed item frequency %v, want ≈ 1", db2.Item(3).Freq)
	}
	short, err := NewTracker(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := short.ApplyTo(db, 0); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestDriftProducesValidProfiles(t *testing.T) {
	db := workload.Config{N: 50, Theta: 0.8, Phi: 2, Seed: 4}.MustGenerate()
	check := func(rawSigma uint8, seed int64) bool {
		sigma := float64(rawSigma) / 128 // 0..2
		d, err := workload.Drift(db, sigma, seed)
		if err != nil {
			return false
		}
		return d.Len() == db.Len() && math.Abs(d.TotalFreq()-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Drift(db, -1, 1); err == nil {
		t.Error("negative sigma should fail")
	}
	same, err := workload.Drift(db, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		if math.Abs(same.Item(i).Freq-db.Item(i).Freq) > 1e-12 {
			t.Fatal("sigma=0 should preserve the profile")
		}
	}
}

func TestSwapHotspots(t *testing.T) {
	db := workload.Config{N: 40, Theta: 1.2, Phi: 2, Seed: 5}.MustGenerate()
	swapped, err := workload.SwapHotspots(db, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(swapped.TotalFreq()-1) > 1e-9 {
		t.Fatal("swap changed total mass")
	}
	changed := 0
	for i := 0; i < db.Len(); i++ {
		if swapped.Item(i).Freq != db.Item(i).Freq {
			changed++
		}
		if swapped.Item(i).Size != db.Item(i).Size {
			t.Fatal("swap changed a size")
		}
	}
	if changed == 0 {
		t.Fatal("no frequencies changed")
	}
	if _, err := workload.SwapHotspots(db, -1, 1); err == nil {
		t.Error("negative pair count should fail")
	}
}

func TestReplanShapeMismatch(t *testing.T) {
	db := workload.Config{N: 20, Theta: 0.8, Phi: 2, Seed: 7}.MustGenerate()
	prev, err := core.NewDRPCDS().Allocate(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	other := workload.Config{N: 21, Theta: 0.8, Phi: 2, Seed: 7}.MustGenerate()
	if _, _, err := Replan(prev, other); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestReplanImprovesOnStaleAllocation(t *testing.T) {
	db := workload.Config{N: 80, Theta: 0.9, Phi: 2, Seed: 8}.MustGenerate()
	prev, err := core.NewDRPCDS().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := workload.SwapHotspots(db, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Stale cost: keep the old assignment under the new profile.
	stale, err := core.NewAllocation(drifted, prev.K(), prev.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	next, churn, err := Replan(prev, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	if core.Cost(next) > core.Cost(stale)+1e-9 {
		t.Fatalf("replan (%v) worse than stale (%v)", core.Cost(next), core.Cost(stale))
	}
	if churn.Moved == 0 {
		t.Fatal("hotspot swap should force some moves")
	}
	if churn.MovedMass <= 0 || churn.MovedMass > 1 {
		t.Fatalf("moved mass %v outside (0,1]", churn.MovedMass)
	}
}

func TestReplanNearRebuildQualityWithLowerChurn(t *testing.T) {
	db := workload.Config{N: 100, Theta: 0.8, Phi: 2, Seed: 10}.MustGenerate()
	prev, err := core.NewDRPCDS().Allocate(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	var worstGap float64
	for epoch := int64(0); epoch < 5; epoch++ {
		drifted, err := workload.Drift(db, 0.25, 100+epoch)
		if err != nil {
			t.Fatal(err)
		}
		next, churn, err := Replan(prev, drifted)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := core.NewDRPCDS().Allocate(drifted, 6)
		if err != nil {
			t.Fatal(err)
		}
		rebuildChurn := ChurnBetween(prev, rebuilt)

		gap := core.Cost(next)/core.Cost(rebuilt) - 1
		if gap > worstGap {
			worstGap = gap
		}
		// The whole point: far fewer items move than a rebuild moves.
		if churn.Moved >= rebuildChurn.Moved {
			t.Fatalf("epoch %d: replan moved %d items, rebuild moved %d",
				epoch, churn.Moved, rebuildChurn.Moved)
		}
	}
	// Quality stays within a few percent of a full rebuild.
	if worstGap > 0.06 {
		t.Fatalf("replan quality gap %.1f%% exceeds 6%%", worstGap*100)
	}
}

func TestReplanNoChangeIsStable(t *testing.T) {
	db := workload.Config{N: 50, Theta: 0.8, Phi: 2, Seed: 11}.MustGenerate()
	prev, err := core.NewDRPCDS().Allocate(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	next, churn, err := Replan(prev, db)
	if err != nil {
		t.Fatal(err)
	}
	// prev is already a CDS local optimum, so nothing should move.
	if churn.Moved != 0 {
		t.Fatalf("replan on an unchanged profile moved %d items", churn.Moved)
	}
	for pos := 0; pos < db.Len(); pos++ {
		if next.ChannelOf(pos) != prev.ChannelOf(pos) {
			t.Fatal("assignment changed despite zero churn")
		}
	}
}

func BenchmarkReplanVsRebuild(b *testing.B) {
	db := workload.Config{N: 120, Theta: 0.8, Phi: 2, Seed: 12}.MustGenerate()
	prev, err := core.NewDRPCDS().Allocate(db, 6)
	if err != nil {
		b.Fatal(err)
	}
	drifted, err := workload.Drift(db, 0.25, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("replan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Replan(prev, drifted); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewDRPCDS().Allocate(drifted, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Alias samples from a fixed discrete distribution in O(1) per draw
// using Walker–Vose alias tables. The broadcast simulators draw one
// item per client request, so request generation stays linear in the
// trace length regardless of database size.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights,
// which need not be normalized but must have a positive finite sum.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: alias table needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: weight %d is %v; weights must be finite and non-negative", i, w)
		}
		sum += w
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("dist: weights sum to %v; need a positive total", sum)
	}

	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Scaled probabilities; the classic two-worklist construction.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Whatever remains is 1 up to rounding.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Len reports the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one outcome index using rng.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

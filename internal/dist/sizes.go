package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// LogUniformSizes returns n item sizes drawn as z = 10^φ with
// φ ~ Uniform[0, phi], the paper's diversity model (Section 4.1). The
// diversity parameter phi (the paper's Φ) controls the exponent range:
// phi = 0 makes every item exactly 1 size unit (the conventional
// equal-size environment); phi = 3 spreads sizes over [1, 1000).
func LogUniformSizes(rng *rand.Rand, n int, phi float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: LogUniformSizes needs n >= 1, got %d", n)
	}
	if phi < 0 || math.IsNaN(phi) || math.IsInf(phi, 0) {
		return nil, fmt.Errorf("dist: diversity parameter must be a finite non-negative number, got %v", phi)
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = math.Pow(10, rng.Float64()*phi)
	}
	return z, nil
}

// UniformSizes returns n sizes drawn uniformly from [lo, hi). It is
// used by scenario workloads that model a known size band (for
// example thumbnails around a few KB) rather than the paper's
// exponent-range model.
func UniformSizes(rng *rand.Rand, n int, lo, hi float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: UniformSizes needs n >= 1, got %d", n)
	}
	if !(lo > 0) || !(hi > lo) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("dist: need 0 < lo < hi, got [%v, %v)", lo, hi)
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = lo + rng.Float64()*(hi-lo)
	}
	return z, nil
}

// ExponentialInterarrivals returns n interarrival gaps of a Poisson
// process with the given rate (requests per second). It drives the
// client request traces in the broadcast simulations.
func ExponentialInterarrivals(rng *rand.Rand, n int, rate float64) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("dist: negative count %d", n)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("dist: rate must be positive and finite, got %v", rate)
	}
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = rng.ExpFloat64() / rate
	}
	return gaps, nil
}

package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfValidation(t *testing.T) {
	if _, err := Zipf(0, 1); err == nil {
		t.Error("Zipf(0, 1) should fail")
	}
	if _, err := Zipf(10, -0.5); err == nil {
		t.Error("negative skew should fail")
	}
	if _, err := Zipf(10, math.NaN()); err == nil {
		t.Error("NaN skew should fail")
	}
	if _, err := Zipf(10, math.Inf(1)); err == nil {
		t.Error("infinite skew should fail")
	}
}

func TestZipfSumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.8, 1.2, 1.6, 3} {
		for _, n := range []int{1, 2, 60, 180, 1000} {
			f := MustZipf(n, theta)
			var sum float64
			for _, v := range f {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("n=%d θ=%v: sum = %v", n, theta, sum)
			}
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	f := MustZipf(100, 0.8)
	for i := 1; i < len(f); i++ {
		if f[i] > f[i-1] {
			t.Fatalf("f[%d]=%v > f[%d]=%v", i, f[i], i-1, f[i-1])
		}
	}
}

func TestZipfFlatAtZeroTheta(t *testing.T) {
	f := MustZipf(50, 0)
	for i, v := range f {
		if math.Abs(v-1.0/50) > 1e-12 {
			t.Fatalf("θ=0: f[%d] = %v, want %v", i, v, 1.0/50)
		}
	}
}

func TestZipfMatchesClosedForm(t *testing.T) {
	// Spot-check the paper's formula directly.
	const n, theta = 5, 1.0
	f := MustZipf(n, theta)
	h := 1 + 1.0/2 + 1.0/3 + 1.0/4 + 1.0/5
	for i := 0; i < n; i++ {
		want := (1 / float64(i+1)) / h
		if math.Abs(f[i]-want) > 1e-12 {
			t.Fatalf("f[%d] = %v, want %v", i, f[i], want)
		}
	}
}

func TestLogUniformSizesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, phi := range []float64{0, 0.5, 1, 2, 3} {
		z, err := LogUniformSizes(rng, 2000, phi)
		if err != nil {
			t.Fatal(err)
		}
		maxAllowed := math.Pow(10, phi)
		for i, v := range z {
			if v < 1 || v >= maxAllowed*(1+1e-12) {
				t.Fatalf("Φ=%v: z[%d] = %v outside [1, 10^Φ)", phi, i, v)
			}
		}
	}
}

func TestLogUniformSizesDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := LogUniformSizes(rng, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range z {
		if v != 1 {
			t.Fatalf("Φ=0 must yield unit sizes, got %v", v)
		}
	}
	if _, err := LogUniformSizes(rng, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := LogUniformSizes(rng, 5, -1); err == nil {
		t.Error("negative Φ should fail")
	}
}

func TestLogUniformMedianGrowsWithPhi(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mean := func(phi float64) float64 {
		z, err := LogUniformSizes(rng, 5000, phi)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range z {
			s += v
		}
		return s / float64(len(z))
	}
	if !(mean(0) < mean(1) && mean(1) < mean(2) && mean(2) < mean(3)) {
		t.Fatal("mean size should grow with diversity Φ")
	}
}

func TestUniformSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z, err := UniformSizes(rng, 1000, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range z {
		if v < 2 || v >= 8 {
			t.Fatalf("size %v outside [2, 8)", v)
		}
	}
	if _, err := UniformSizes(rng, 10, 5, 5); err == nil {
		t.Error("lo == hi should fail")
	}
	if _, err := UniformSizes(rng, 10, 0, 5); err == nil {
		t.Error("lo == 0 should fail")
	}
}

func TestExponentialInterarrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rate = 4.0
	gaps, err := ExponentialInterarrivals(rng, 20000, rate)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative interarrival gap")
		}
		sum += g
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("mean gap %v, want ≈ %v", mean, 1/rate)
	}
	if _, err := ExponentialInterarrivals(rng, 5, 0); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
	if _, err := NewAlias([]float64{1, -2}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{5, 1, 3, 0, 1}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != len(weights) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(weights))
	}
	rng := rand.New(rand.NewSource(11))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(rng)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %v, want %v", i, got, want)
		}
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[3])
	}
}

// Property: alias tables never return an out-of-range index and handle
// arbitrary positive weight vectors.
func TestAliasIndexRange(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			weights[i] = float64(v)
			sum += weights[i]
		}
		if sum == 0 {
			return true
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			idx := a.Sample(rng)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a, err := NewAlias(MustZipf(1000, 0.8))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(rng)
	}
}

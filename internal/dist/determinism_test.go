package dist

import (
	"math/rand"
	"testing"
)

// The generators in this package must draw exclusively from the
// *rand.Rand handed to them — never from the global math/rand source —
// so that a seed pins down the entire workload. (The diverselint
// floatdet/obsnames sweep audited this; these tests are the runtime
// regression guard.)

// TestSameSeedSameDraws re-runs every seeded generator with an
// identical source and demands bit-identical output.
func TestSameSeedSameDraws(t *testing.T) {
	const seed = 271828
	run := func() (sizes, uni, gaps []float64, picks []int) {
		rng := rand.New(rand.NewSource(seed))
		var err error
		sizes, err = LogUniformSizes(rng, 200, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		uni, err = UniformSizes(rng, 200, 1, 9)
		if err != nil {
			t.Fatal(err)
		}
		gaps, err = ExponentialInterarrivals(rng, 200, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		alias, err := NewAlias(MustZipf(50, 0.8))
		if err != nil {
			t.Fatal(err)
		}
		picks = make([]int, 500)
		for i := range picks {
			picks[i] = alias.Sample(rng)
		}
		return sizes, uni, gaps, picks
	}

	s1, u1, g1, p1 := run()
	s2, u2, g2, p2 := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("LogUniformSizes[%d]: %v vs %v — generator is not seed-deterministic", i, s1[i], s2[i])
		}
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("UniformSizes[%d]: %v vs %v", i, u1[i], u2[i])
		}
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("ExponentialInterarrivals[%d]: %v vs %v", i, g1[i], g2[i])
		}
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("Alias.Sample #%d: %d vs %d", i, p1[i], p2[i])
		}
	}
}

// TestGeneratorsIgnoreGlobalSource interleaves two same-seed runs with
// a perturbed global math/rand state: if any generator secretly read
// the global source, the interleaving would desynchronize the streams.
func TestGeneratorsIgnoreGlobalSource(t *testing.T) {
	const seed = 31337
	draw := func(perturb bool) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, 0, 300)
		for i := 0; i < 3; i++ {
			if perturb {
				rand.Float64() // advance the GLOBAL source between calls
			}
			s, err := LogUniformSizes(rng, 50, 1.5)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ExponentialInterarrivals(rng, 50, 2.0)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s...)
			out = append(out, g...)
		}
		return out
	}
	a, b := draw(false), draw(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs (%v vs %v): a generator consumed global math/rand state", i, a[i], b[i])
		}
	}
}

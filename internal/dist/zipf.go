// Package dist provides the probability distributions the paper's
// simulation environment is built from: Zipf access frequencies,
// log-uniform ("diverse") item sizes, and an O(1) alias-method sampler
// used to draw client requests from an access-frequency vector.
package dist

import (
	"fmt"
	"math"
)

// Zipf returns the paper's access-frequency vector (Section 4.1):
//
//	f_i = (1/i)^θ / Σ_{j=1..n} (1/j)^θ
//
// for i = 1..n. θ = 0 yields a flat distribution; larger θ skews the
// mass toward low indices. The result sums to 1 (within floating-point
// error) and is strictly decreasing for θ > 0.
func Zipf(n int, theta float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: Zipf needs n >= 1, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("dist: Zipf skewness must be a finite non-negative number, got %v", theta)
	}
	f := make([]float64, n)
	var sum float64
	for i := range f {
		f[i] = math.Pow(1/float64(i+1), theta)
		sum += f[i]
	}
	for i := range f {
		f[i] /= sum
	}
	return f, nil
}

// MustZipf is Zipf but panics on invalid arguments; for hard-coded
// experiment configurations.
func MustZipf(n int, theta float64) []float64 {
	f, err := Zipf(n, theta)
	if err != nil {
		panic(err)
	}
	return f
}

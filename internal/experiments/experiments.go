// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4): waiting-time sweeps over channel
// count, database size, diversity and skewness (Figures 2–5), and
// execution-time sweeps (Figures 6–7), plus the worked example
// (Tables 2–4). Results are returned as Figure values that render to
// ASCII tables or CSV.
package experiments

import (
	"fmt"
	"time"

	"diversecast/internal/baseline"
	"diversecast/internal/core"
	"diversecast/internal/gopt"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Config fixes the non-swept simulation parameters. The paper's Table
// 5 gives ranges; the fixed values used when a figure sweeps one
// parameter are this repository's choice (recorded in EXPERIMENTS.md).
type Config struct {
	// BaseN, BaseK, BasePhi, BaseTheta are the defaults used when a
	// figure does not sweep that parameter.
	BaseN     int
	BaseK     int
	BasePhi   float64
	BaseTheta float64
	// Bandwidth is the channel bandwidth (Table 5: 10 units/s).
	Bandwidth float64
	// Seeds are the replication seeds; reported values are means
	// across them.
	Seeds []int64
	// GOPT search budget (see internal/gopt).
	GOPTPopulation  int
	GOPTGenerations int
	GOPTStagnation  int
	GOPTPolish      bool
}

// Default returns the full-scale configuration used to regenerate the
// paper's figures.
func Default() Config {
	return Config{
		BaseN:     120,
		BaseK:     6,
		BasePhi:   2.0,
		BaseTheta: 0.8,
		Bandwidth: workload.PaperBandwidth,
		Seeds:     []int64{11, 23, 37, 41, 53},
		// Generous GA budget so GOPT plays its optimum-reference role.
		GOPTPopulation:  120,
		GOPTGenerations: 600,
		GOPTStagnation:  80,
		GOPTPolish:      true,
	}
}

// Quick returns a reduced configuration for tests and smoke runs.
func Quick() Config {
	return Config{
		BaseN:           60,
		BaseK:           5,
		BasePhi:         2.0,
		BaseTheta:       0.8,
		Bandwidth:       workload.PaperBandwidth,
		Seeds:           []int64{11, 23},
		GOPTPopulation:  40,
		GOPTGenerations: 150,
		GOPTStagnation:  40,
		GOPTPolish:      true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BaseN < 1 || c.BaseK < 1 || c.BaseK > c.BaseN {
		return fmt.Errorf("experiments: bad base N=%d K=%d", c.BaseN, c.BaseK)
	}
	if !(c.Bandwidth > 0) {
		return fmt.Errorf("experiments: bad bandwidth %v", c.Bandwidth)
	}
	if len(c.Seeds) == 0 {
		return fmt.Errorf("experiments: need at least one seed")
	}
	return nil
}

// AlgorithmNames is the fixed comparison set of the paper's figures,
// in presentation order.
var AlgorithmNames = []string{"VFK", "DRP", "DRP-CDS", "GOPT"}

// allocators builds one instance of each comparison algorithm; GOPT's
// randomness is derived from the replication seed.
func (c Config) allocators(seed int64) map[string]core.Allocator {
	return map[string]core.Allocator{
		"VFK":     baseline.NewVFK(),
		"DRP":     core.NewDRP(),
		"DRP-CDS": core.NewDRPCDS(),
		"GOPT": &gopt.GOPT{
			PopulationSize: c.GOPTPopulation,
			Generations:    c.GOPTGenerations,
			Stagnation:     c.GOPTStagnation,
			Polish:         c.GOPTPolish,
			Seed:           seed,
		},
	}
}

// Row is one swept point: X is the swept parameter value and Values
// maps algorithm name to the measured mean (W_b seconds for Figures
// 2–5, milliseconds for Figures 6–7).
type Row struct {
	X      float64
	Values map[string]float64
}

// Figure is one regenerated evaluation figure.
type Figure struct {
	ID         string
	Title      string
	XLabel     string
	YLabel     string
	Algorithms []string
	Rows       []Row
}

// sweepWait runs the four algorithms over the given per-point
// workload configurations and records mean analytical waiting time
// (Eq. 2) across seeds.
func (c Config) sweepWait(id, title, xlabel string, xs []float64, mk func(x float64, seed int64) (workload.Config, int)) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title, XLabel: xlabel,
		YLabel:     "average waiting time (s)",
		Algorithms: AlgorithmNames,
	}
	for _, x := range xs {
		accs := make(map[string]*stats.Accumulator, len(AlgorithmNames))
		for _, name := range AlgorithmNames {
			accs[name] = &stats.Accumulator{}
		}
		for _, seed := range c.Seeds {
			wcfg, k := mk(x, seed)
			db, err := wcfg.Generate()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %v: %w", id, x, err)
			}
			for name, alg := range c.allocators(seed) {
				a, err := alg.Allocate(db, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s at %v: %s: %w", id, x, name, err)
				}
				accs[name].Add(core.WaitingTime(a, c.Bandwidth))
			}
		}
		row := Row{X: x, Values: make(map[string]float64, len(accs))}
		for name, acc := range accs {
			row.Values[name] = acc.Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure2 sweeps the channel count K from 4 to 10 (paper Figure 2).
func Figure2(c Config) (*Figure, error) {
	xs := []float64{4, 5, 6, 7, 8, 9, 10}
	return c.sweepWait("fig2", "channel number vs. average waiting time", "K", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, int(x)
		})
}

// Figure3 sweeps the database size N from 60 to 180 (paper Figure 3).
func Figure3(c Config) (*Figure, error) {
	xs := []float64{60, 90, 120, 150, 180}
	return c.sweepWait("fig3", "number of broadcast items vs. average waiting time", "N", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: int(x), Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, c.BaseK
		})
}

// Figure4 sweeps the diversity parameter Φ from 0 to 3 (paper
// Figure 4).
func Figure4(c Config) (*Figure, error) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	return c.sweepWait("fig4", "diversity vs. average waiting time", "Phi", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: x, Seed: seed}, c.BaseK
		})
}

// Figure5 sweeps the skewness parameter θ from 0.4 to 1.6 (paper
// Figure 5).
func Figure5(c Config) (*Figure, error) {
	xs := []float64{0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}
	return c.sweepWait("fig5", "skewness vs. average waiting time", "Theta", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: x, Phi: c.BasePhi, Seed: seed}, c.BaseK
		})
}

// TimedAlgorithms is the comparison set of the complexity experiments
// (the paper's Figures 6–7 plot DRP-CDS against GOPT).
var TimedAlgorithms = []string{"DRP-CDS", "GOPT"}

// sweepTime measures mean wall-clock allocation time in milliseconds.
func (c Config) sweepTime(id, title, xlabel string, xs []float64, mk func(x float64, seed int64) (workload.Config, int)) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title, XLabel: xlabel,
		YLabel:     "execution time (ms)",
		Algorithms: TimedAlgorithms,
	}
	for _, x := range xs {
		accs := make(map[string]*stats.Accumulator, len(TimedAlgorithms))
		for _, name := range TimedAlgorithms {
			accs[name] = &stats.Accumulator{}
		}
		for _, seed := range c.Seeds {
			wcfg, k := mk(x, seed)
			db, err := wcfg.Generate()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %v: %w", id, x, err)
			}
			algs := c.allocators(seed)
			for _, name := range TimedAlgorithms {
				start := time.Now()
				if _, err := algs[name].Allocate(db, k); err != nil {
					return nil, fmt.Errorf("experiments: %s at %v: %s: %w", id, x, name, err)
				}
				accs[name].Add(float64(time.Since(start)) / float64(time.Millisecond))
			}
		}
		row := Row{X: x, Values: make(map[string]float64, len(accs))}
		for name, acc := range accs {
			row.Values[name] = acc.Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure6 sweeps K and reports execution time (paper Figure 6).
func Figure6(c Config) (*Figure, error) {
	xs := []float64{4, 5, 6, 7, 8, 9, 10}
	return c.sweepTime("fig6", "channel number vs. execution time", "K", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, int(x)
		})
}

// Figure7 sweeps N and reports execution time (paper Figure 7).
func Figure7(c Config) (*Figure, error) {
	xs := []float64{60, 90, 120, 150, 180}
	return c.sweepTime("fig7", "number of broadcast items vs. execution time", "N", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: int(x), Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, c.BaseK
		})
}

// Run regenerates one figure by id ("fig2".."fig7").
func Run(id string, c Config) (*Figure, error) {
	switch id {
	case "fig2":
		return Figure2(c)
	case "fig3":
		return Figure3(c)
	case "fig4":
		return Figure4(c)
	case "fig5":
		return Figure5(c)
	case "fig6":
		return Figure6(c)
	case "fig7":
		return Figure7(c)
	case "abl1":
		return Ablation1(c)
	case "abl2":
		return Ablation2(c)
	case "abl3":
		return Ablation3(c)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (have fig2..fig7, abl1..abl3)", id)
	}
}

// FigureIDs lists the regenerable figures in paper order.
func FigureIDs() []string { return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} }

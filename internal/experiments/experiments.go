// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4): waiting-time sweeps over channel
// count, database size, diversity and skewness (Figures 2–5), and
// execution-time sweeps (Figures 6–7), plus the worked example
// (Tables 2–4). Results are returned as Figure values that render to
// ASCII tables or CSV.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"diversecast/internal/baseline"
	"diversecast/internal/core"
	"diversecast/internal/gopt"
	"diversecast/internal/pool"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// Config fixes the non-swept simulation parameters. The paper's Table
// 5 gives ranges; the fixed values used when a figure sweeps one
// parameter are this repository's choice (recorded in EXPERIMENTS.md).
type Config struct {
	// BaseN, BaseK, BasePhi, BaseTheta are the defaults used when a
	// figure does not sweep that parameter.
	BaseN     int
	BaseK     int
	BasePhi   float64
	BaseTheta float64
	// Bandwidth is the channel bandwidth (Table 5: 10 units/s).
	Bandwidth float64
	// Seeds are the replication seeds; reported values are means
	// across them.
	Seeds []int64
	// GOPT search budget (see internal/gopt).
	GOPTPopulation  int
	GOPTGenerations int
	GOPTStagnation  int
	GOPTPolish      bool
	// Workers bounds the sweep worker pool for the quality figures
	// (2–5): the (x-point × seed) grid is embarrassingly parallel and
	// every cell is folded back in deterministic (x, seed) order, so
	// results are identical for any pool size. 0 uses GOMAXPROCS, 1
	// runs serially. The execution-time figures (6–7) ignore it and
	// always run serially — wall-clock measurements on a loaded
	// machine would be noise, not data.
	Workers int
}

// Default returns the full-scale configuration used to regenerate the
// paper's figures.
func Default() Config {
	return Config{
		BaseN:     120,
		BaseK:     6,
		BasePhi:   2.0,
		BaseTheta: 0.8,
		Bandwidth: workload.PaperBandwidth,
		Seeds:     []int64{11, 23, 37, 41, 53},
		// Generous GA budget so GOPT plays its optimum-reference role.
		GOPTPopulation:  120,
		GOPTGenerations: 600,
		GOPTStagnation:  80,
		GOPTPolish:      true,
	}
}

// Quick returns a reduced configuration for tests and smoke runs.
func Quick() Config {
	return Config{
		BaseN:           60,
		BaseK:           5,
		BasePhi:         2.0,
		BaseTheta:       0.8,
		Bandwidth:       workload.PaperBandwidth,
		Seeds:           []int64{11, 23},
		GOPTPopulation:  40,
		GOPTGenerations: 150,
		GOPTStagnation:  40,
		GOPTPolish:      true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BaseN < 1 || c.BaseK < 1 || c.BaseK > c.BaseN {
		return fmt.Errorf("experiments: bad base N=%d K=%d", c.BaseN, c.BaseK)
	}
	if !(c.Bandwidth > 0) {
		return fmt.Errorf("experiments: bad bandwidth %v", c.Bandwidth)
	}
	if len(c.Seeds) == 0 {
		return fmt.Errorf("experiments: need at least one seed")
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be >= 0, got %d", c.Workers)
	}
	return nil
}

// AlgorithmNames is the fixed comparison set of the paper's figures,
// in presentation order.
var AlgorithmNames = []string{"VFK", "DRP", "DRP-CDS", "GOPT"}

// allocators builds one instance of each comparison algorithm; GOPT's
// randomness is derived from the replication seed. gaWorkers bounds
// GOPT's fitness worker pool: quality sweeps pass 0 (use every core —
// the result is identical), timing sweeps pass 1 (serial, so the
// measured wall-clock is single-thread work, comparable across
// machines and runs).
func (c Config) allocators(seed int64, gaWorkers int) map[string]core.Allocator {
	return map[string]core.Allocator{
		"VFK":     baseline.NewVFK(),
		"DRP":     core.NewDRP(),
		"DRP-CDS": core.NewDRPCDS(),
		"GOPT": &gopt.GOPT{
			PopulationSize: c.GOPTPopulation,
			Generations:    c.GOPTGenerations,
			Stagnation:     c.GOPTStagnation,
			Polish:         c.GOPTPolish,
			Seed:           seed,
			Workers:        gaWorkers,
		},
	}
}

// Row is one swept point: X is the swept parameter value and Values
// maps algorithm name to the measured mean (W_b seconds for Figures
// 2–5, milliseconds for Figures 6–7).
type Row struct {
	X      float64
	Values map[string]float64
}

// Figure is one regenerated evaluation figure.
type Figure struct {
	ID         string
	Title      string
	XLabel     string
	YLabel     string
	Algorithms []string
	Rows       []Row
}

// sweepWait runs the four algorithms over the given per-point
// workload configurations and records mean analytical waiting time
// (Eq. 2) across seeds. The (x-point × seed) grid is evaluated on a
// bounded worker pool; each cell writes its own slot and the fold
// into per-x accumulators happens serially in (x, seed) order, so the
// figure is bit-identical to a fully serial sweep.
func (c Config) sweepWait(id, title, xlabel string, xs []float64, mk func(x float64, seed int64) (workload.Config, int)) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title, XLabel: xlabel,
		YLabel:     "average waiting time (s)",
		Algorithms: AlgorithmNames,
	}

	type cell struct {
		values map[string]float64
		err    error
	}
	cells := make([]cell, len(xs)*len(c.Seeds))
	workers := c.sweepWorkers(len(cells))
	// Parallelize at the outermost level only: with several cells per
	// core in flight, letting each GOPT also fan out would just
	// oversubscribe the scheduler. A serial sweep (workers == 1)
	// instead hands GOPT the whole machine.
	gaWorkers := 1
	if workers == 1 {
		gaWorkers = 0
	}
	runCells(workers, cells, func(idx int) {
		xi, si := idx/len(c.Seeds), idx%len(c.Seeds)
		x, seed := xs[xi], c.Seeds[si]
		wcfg, k := mk(x, seed)
		db, err := wcfg.Generate()
		if err != nil {
			cells[idx].err = fmt.Errorf("experiments: %s at %v: %w", id, x, err)
			return
		}
		algs := c.allocators(seed, gaWorkers)
		values := make(map[string]float64, len(AlgorithmNames))
		for _, name := range AlgorithmNames {
			a, err := algs[name].Allocate(db, k)
			if err != nil {
				cells[idx].err = fmt.Errorf("experiments: %s at %v: %s: %w", id, x, name, err)
				return
			}
			values[name] = core.WaitingTime(a, c.Bandwidth)
		}
		cells[idx].values = values
	})

	for xi, x := range xs {
		accs := make(map[string]*stats.Accumulator, len(AlgorithmNames))
		for _, name := range AlgorithmNames {
			accs[name] = &stats.Accumulator{}
		}
		for si := range c.Seeds {
			cl := cells[xi*len(c.Seeds)+si]
			if cl.err != nil {
				return nil, cl.err
			}
			for _, name := range AlgorithmNames {
				accs[name].Add(cl.values[name])
			}
		}
		row := Row{X: x, Values: make(map[string]float64, len(accs))}
		for name, acc := range accs {
			row.Values[name] = acc.Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// sweepWorkers resolves the configured pool size against the grid.
func (c Config) sweepWorkers(cellCount int) int {
	workers := c.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cellCount {
		workers = cellCount
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runCells executes run(i) for every cell index on the shared
// by-index worker pool (internal/pool). Cells only write their own
// slot, so any width yields the same cells.
func runCells[T any](workers int, cells []T, run func(idx int)) {
	sweepWorkers.Set(int64(workers))
	if workers <= 1 {
		for i := range cells {
			run(i)
		}
		return
	}
	sweepQueueDepth.Set(int64(len(cells)))
	pool.Run(workers, len(cells), func(i int) {
		run(i)
		sweepQueueDepth.Dec()
	})
}

// Figure2 sweeps the channel count K from 4 to 10 (paper Figure 2).
func Figure2(c Config) (*Figure, error) {
	xs := []float64{4, 5, 6, 7, 8, 9, 10}
	return c.sweepWait("fig2", "channel number vs. average waiting time", "K", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, int(x)
		})
}

// Figure3 sweeps the database size N from 60 to 180 (paper Figure 3).
func Figure3(c Config) (*Figure, error) {
	xs := []float64{60, 90, 120, 150, 180}
	return c.sweepWait("fig3", "number of broadcast items vs. average waiting time", "N", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: int(x), Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, c.BaseK
		})
}

// Figure4 sweeps the diversity parameter Φ from 0 to 3 (paper
// Figure 4).
func Figure4(c Config) (*Figure, error) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	return c.sweepWait("fig4", "diversity vs. average waiting time", "Phi", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: x, Seed: seed}, c.BaseK
		})
}

// Figure5 sweeps the skewness parameter θ from 0.4 to 1.6 (paper
// Figure 5).
func Figure5(c Config) (*Figure, error) {
	xs := []float64{0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}
	return c.sweepWait("fig5", "skewness vs. average waiting time", "Theta", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: x, Phi: c.BasePhi, Seed: seed}, c.BaseK
		})
}

// TimedAlgorithms is the comparison set of the complexity experiments
// (the paper's Figures 6–7 plot DRP-CDS against GOPT).
var TimedAlgorithms = []string{"DRP-CDS", "GOPT"}

// sweepTime measures mean wall-clock allocation time in milliseconds.
//
// Timing sweeps are pinned serial regardless of Config.Workers, and
// GOPT's own worker pool is pinned to 1: Figures 6–7 plot execution
// time, and concurrent cells would contend for cores and inflate each
// other's wall-clock. Only the quality figures parallelize.
func (c Config) sweepTime(id, title, xlabel string, xs []float64, mk func(x float64, seed int64) (workload.Config, int)) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: id, Title: title, XLabel: xlabel,
		YLabel:     "execution time (ms)",
		Algorithms: TimedAlgorithms,
	}
	for _, x := range xs {
		accs := make(map[string]*stats.Accumulator, len(TimedAlgorithms))
		for _, name := range TimedAlgorithms {
			accs[name] = &stats.Accumulator{}
		}
		for _, seed := range c.Seeds {
			wcfg, k := mk(x, seed)
			db, err := wcfg.Generate()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %v: %w", id, x, err)
			}
			algs := c.allocators(seed, 1)
			for _, name := range TimedAlgorithms {
				start := time.Now()
				if _, err := algs[name].Allocate(db, k); err != nil {
					return nil, fmt.Errorf("experiments: %s at %v: %s: %w", id, x, name, err)
				}
				accs[name].Add(float64(time.Since(start)) / float64(time.Millisecond))
			}
		}
		row := Row{X: x, Values: make(map[string]float64, len(accs))}
		for name, acc := range accs {
			row.Values[name] = acc.Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure6 sweeps K and reports execution time (paper Figure 6).
func Figure6(c Config) (*Figure, error) {
	xs := []float64{4, 5, 6, 7, 8, 9, 10}
	return c.sweepTime("fig6", "channel number vs. execution time", "K", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, int(x)
		})
}

// Figure7 sweeps N and reports execution time (paper Figure 7).
func Figure7(c Config) (*Figure, error) {
	xs := []float64{60, 90, 120, 150, 180}
	return c.sweepTime("fig7", "number of broadcast items vs. execution time", "N", xs,
		func(x float64, seed int64) (workload.Config, int) {
			return workload.Config{N: int(x), Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}, c.BaseK
		})
}

// Run regenerates one figure by id ("fig2".."fig7").
func Run(id string, c Config) (*Figure, error) {
	switch id {
	case "fig2":
		return Figure2(c)
	case "fig3":
		return Figure3(c)
	case "fig4":
		return Figure4(c)
	case "fig5":
		return Figure5(c)
	case "fig6":
		return Figure6(c)
	case "fig7":
		return Figure7(c)
	case "abl1":
		return Ablation1(c)
	case "abl2":
		return Ablation2(c)
	case "abl3":
		return Ablation3(c)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (have fig2..fig7, abl1..abl3)", id)
	}
}

// FigureIDs lists the regenerable figures in paper order.
func FigureIDs() []string { return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} }

package experiments

import (
	"fmt"

	"diversecast/internal/adapt"
	"diversecast/internal/airsim"
	"diversecast/internal/baseline"
	"diversecast/internal/broadcast"
	"diversecast/internal/core"
	"diversecast/internal/hybrid"
	"diversecast/internal/ondemand"
	"diversecast/internal/stats"
	"diversecast/internal/workload"
)

// This file holds experiments beyond the paper: ablations that
// attribute DRP-CDS's quality to its parts, and an adaptation study
// for the incremental replanning extension (internal/adapt).

// AblationIDs lists the extra experiments, regenerable via Run like
// the paper figures.
func AblationIDs() []string { return []string{"abl1", "abl2", "abl3"} }

// ablationAllocators is the comparison set of abl1: the paper's
// pipeline stages against the contiguity upper bound and the naive
// baselines.
var ablationAllocators = []string{"FLAT", "GREEDY", "DRP", "CONTIG-DP", "DRP-CDS"}

// Ablation1 decomposes the DRP-CDS design over the diversity sweep:
// FLAT (ignore everything), GREEDY (non-contiguous list scheduling),
// DRP (greedy contiguous splits), CONTIG-DP (optimal contiguous
// partition — the ceiling of DRP's search space) and DRP-CDS (escapes
// contiguity via local moves).
func Ablation1(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	algs := map[string]core.Allocator{
		"FLAT":      baseline.NewFlat(),
		"GREEDY":    baseline.NewGreedy(),
		"DRP":       core.NewDRP(),
		"CONTIG-DP": baseline.NewContigDP(),
		"DRP-CDS":   core.NewDRPCDS(),
	}
	fig := &Figure{
		ID:         "abl1",
		Title:      "ablation: allocator families vs. diversity",
		XLabel:     "Phi",
		YLabel:     "average waiting time (s)",
		Algorithms: ablationAllocators,
	}
	for _, phi := range []float64{0, 1, 2, 3} {
		accs := make(map[string]*stats.Accumulator, len(algs))
		for name := range algs {
			accs[name] = &stats.Accumulator{}
		}
		for _, seed := range c.Seeds {
			db, err := (workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: phi, Seed: seed}).Generate()
			if err != nil {
				return nil, fmt.Errorf("experiments: abl1 at %v: %w", phi, err)
			}
			for name, alg := range algs {
				a, err := alg.Allocate(db, c.BaseK)
				if err != nil {
					return nil, fmt.Errorf("experiments: abl1 %s: %w", name, err)
				}
				accs[name].Add(core.WaitingTime(a, c.Bandwidth))
			}
		}
		row := Row{X: phi, Values: make(map[string]float64, len(accs))}
		for name, acc := range accs {
			row.Values[name] = acc.Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Ablation2 evaluates the adaptation extension over drift epochs: the
// waiting time (under the drifted truth) of a frozen allocation, of
// CDS-based incremental replanning, and of a full DRP-CDS rebuild —
// plus the churn (moved items) of the latter two as separate series.
func Ablation2(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	const epochs = 6
	names := []string{"FROZEN", "REPLAN", "REBUILD", "REPLAN-moved", "REBUILD-moved"}
	fig := &Figure{
		ID:         "abl2",
		Title:      "adaptation: waiting time and churn under popularity drift",
		XLabel:     "epoch",
		YLabel:     "average waiting time (s) / moved items",
		Algorithms: names,
	}

	accs := make([]map[string]*stats.Accumulator, epochs)
	for e := range accs {
		accs[e] = make(map[string]*stats.Accumulator, len(names))
		for _, n := range names {
			accs[e][n] = &stats.Accumulator{}
		}
	}

	for _, seed := range c.Seeds {
		db, err := (workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}).Generate()
		if err != nil {
			return nil, err
		}
		frozen, err := core.NewDRPCDS().Allocate(db, c.BaseK)
		if err != nil {
			return nil, err
		}
		replanned, rebuilt := frozen, frozen
		truth := db
		for e := 0; e < epochs; e++ {
			truth, err = workload.Drift(truth, 0.3, seed*100+int64(e))
			if err != nil {
				return nil, err
			}
			var replanChurn adapt.Churn
			replanned, replanChurn, err = adapt.Replan(replanned, truth)
			if err != nil {
				return nil, err
			}
			prevRebuilt := rebuilt
			rebuilt, err = core.NewDRPCDS().Allocate(truth, c.BaseK)
			if err != nil {
				return nil, err
			}
			rebuildChurn := adapt.ChurnBetween(prevRebuilt, rebuilt)

			frozenOnTruth, err := core.NewAllocation(truth, c.BaseK, frozen.Assignment())
			if err != nil {
				return nil, err
			}
			accs[e]["FROZEN"].Add(core.WaitingTime(frozenOnTruth, c.Bandwidth))
			accs[e]["REPLAN"].Add(core.WaitingTime(replanned, c.Bandwidth))
			accs[e]["REBUILD"].Add(core.WaitingTime(rebuilt, c.Bandwidth))
			accs[e]["REPLAN-moved"].Add(float64(replanChurn.Moved))
			accs[e]["REBUILD-moved"].Add(float64(rebuildChurn.Moved))
		}
	}
	for e := 0; e < epochs; e++ {
		row := Row{X: float64(e + 1), Values: make(map[string]float64, len(names))}
		for _, n := range names {
			row.Values[n] = accs[e][n].Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Ablation3 compares the three dissemination modes over the aggregate
// request rate: pure push (DRP-CDS over all channels — its wait is
// load-independent), pure on-demand (RxW over the same total
// bandwidth), and a hybrid (one channel peeled off for pull, push set
// fixed at the items holding ~85% of the demand). The series exposes
// where each architecture wins.
func Ablation3(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	names := []string{"PUSH", "ON-DEMAND", "HYBRID"}
	fig := &Figure{
		ID:         "abl3",
		Title:      "dissemination modes vs. aggregate request rate",
		XLabel:     "req/s",
		YLabel:     "average waiting time (s)",
		Algorithms: names,
	}
	rates := []float64{0.05, 0.2, 1, 5, 20}
	const requests = 4000

	for _, rate := range rates {
		accs := map[string]*stats.Accumulator{}
		for _, n := range names {
			accs[n] = &stats.Accumulator{}
		}
		for _, seed := range c.Seeds {
			db, err := (workload.Config{N: c.BaseN, Theta: c.BaseTheta, Phi: c.BasePhi, Seed: seed}).Generate()
			if err != nil {
				return nil, err
			}
			trace, err := workload.GenerateTrace(db, workload.TraceConfig{
				Requests: requests, Rate: rate, Seed: seed + 1,
			})
			if err != nil {
				return nil, err
			}

			// Pure push over all K channels.
			alloc, err := core.NewDRPCDS().Allocate(db, c.BaseK)
			if err != nil {
				return nil, err
			}
			prog, err := broadcast.Build(alloc, c.Bandwidth, broadcast.ByPosition)
			if err != nil {
				return nil, err
			}
			pushRes, err := airsim.Measure(prog, trace)
			if err != nil {
				return nil, err
			}
			accs["PUSH"].Add(pushRes.Wait.Mean)

			// Pure on-demand with the same total bandwidth on one fat
			// channel.
			odRes, err := ondemand.Run(db, trace, ondemand.RxW{}, c.Bandwidth*float64(c.BaseK))
			if err != nil {
				return nil, err
			}
			accs["ON-DEMAND"].Add(odRes.Wait.Mean)

			// Hybrid: K−1 push channels + 1 pull channel; push the
			// hottest items covering ~85% of demand.
			cut := massCut(db, 0.85)
			if cut < c.BaseK-1 {
				cut = c.BaseK - 1
			}
			if cut >= db.Len() {
				cut = db.Len() - 1
			}
			plan, err := hybrid.Build(db, hybrid.Config{
				PushChannels: c.BaseK - 1,
				Bandwidth:    c.Bandwidth,
			}, cut)
			if err != nil {
				return nil, err
			}
			hybRes, err := plan.Evaluate(trace)
			if err != nil {
				return nil, err
			}
			accs["HYBRID"].Add(hybRes.Wait.Mean)
		}
		row := Row{X: rate, Values: map[string]float64{}}
		for _, n := range names {
			row.Values[n] = accs[n].Mean()
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// massCut returns the smallest prefix length of the frequency-sorted
// items whose demand mass reaches the target fraction.
func massCut(db *core.Database, target float64) int {
	var mass float64
	for i, pos := range db.ByFreq() {
		mass += db.Item(pos).Freq
		if mass >= target {
			return i + 1
		}
	}
	return db.Len()
}

package experiments

import (
	"strings"
	"testing"
)

// The tests in this file assert the qualitative shapes the paper
// reports, on the Quick configuration: who wins, in which direction
// curves move, and where the gaps open. Absolute values differ from
// the paper (different hardware and random instances); shapes must
// hold.

func quickFig(t *testing.T, id string) *Figure {
	t.Helper()
	fig, err := Run(id, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) == 0 {
		t.Fatal("empty figure")
	}
	return fig
}

func first(f *Figure, alg string) float64 { return f.Rows[0].Values[alg] }
func last(f *Figure, alg string) float64  { return f.Rows[len(f.Rows)-1].Values[alg] }

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", Quick()); err == nil {
		t.Fatal("unknown figure should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Quick()
	bad.Seeds = nil
	if _, err := Figure2(bad); err == nil {
		t.Fatal("no seeds should fail")
	}
	bad = Quick()
	bad.BaseK = 0
	if _, err := Figure3(bad); err == nil {
		t.Fatal("K=0 should fail")
	}
	bad = Quick()
	bad.Bandwidth = 0
	if _, err := Figure4(bad); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
}

func TestFigure2Shape(t *testing.T) {
	fig := quickFig(t, "fig2")
	// (a) More channels → shorter waits, for every algorithm.
	for _, alg := range AlgorithmNames {
		if !(last(fig, alg) < first(fig, alg)) {
			t.Errorf("%s: wait did not fall from K=4 (%v) to K=10 (%v)",
				alg, first(fig, alg), last(fig, alg))
		}
	}
	for _, row := range fig.Rows {
		// (b) The proposed scheme beats the conventional allocator.
		if row.Values["DRP-CDS"] > row.Values["VFK"]*1.001 {
			t.Errorf("K=%v: DRP-CDS (%v) worse than VFK (%v)", row.X, row.Values["DRP-CDS"], row.Values["VFK"])
		}
		// (c) CDS refinement never hurts DRP.
		if row.Values["DRP-CDS"] > row.Values["DRP"]*1.001 {
			t.Errorf("K=%v: CDS hurt DRP (%v vs %v)", row.X, row.Values["DRP-CDS"], row.Values["DRP"])
		}
		// (d) DRP-CDS tracks the optimum reference within a few
		// percent (paper: ~3%).
		if row.Values["DRP-CDS"] > row.Values["GOPT"]*1.08 {
			t.Errorf("K=%v: DRP-CDS (%v) more than 8%% above GOPT (%v)",
				row.X, row.Values["DRP-CDS"], row.Values["GOPT"])
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	fig := quickFig(t, "fig3")
	// More items → longer waits, for every algorithm.
	for _, alg := range AlgorithmNames {
		if !(last(fig, alg) > first(fig, alg)) {
			t.Errorf("%s: wait did not grow from N=60 (%v) to N=180 (%v)",
				alg, first(fig, alg), last(fig, alg))
		}
	}
	// DRP-CDS stays near GOPT at every N (CDS is what keeps DRP
	// scalable in N, per the paper's discussion).
	for _, row := range fig.Rows {
		if row.Values["DRP-CDS"] > row.Values["GOPT"]*1.08 {
			t.Errorf("N=%v: DRP-CDS (%v) more than 8%% above GOPT (%v)",
				row.X, row.Values["DRP-CDS"], row.Values["GOPT"])
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	fig := quickFig(t, "fig4")
	// (a) Higher diversity → longer waits (bigger items, same
	// bandwidth).
	for _, alg := range AlgorithmNames {
		if !(last(fig, alg) > first(fig, alg)) {
			t.Errorf("%s: wait did not grow with diversity", alg)
		}
	}
	// (b) At Φ=0 (the conventional environment) VFK coincides with
	// DRP exactly — with unit sizes the shadow database is the real
	// one — and stays within several percent of the refined DRP-CDS.
	flat := fig.Rows[0]
	if diff := flat.Values["VFK"] - flat.Values["DRP"]; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Φ=0: VFK (%v) should equal DRP (%v)", flat.Values["VFK"], flat.Values["DRP"])
	}
	if flat.Values["VFK"] > flat.Values["DRP-CDS"]*1.08 {
		t.Errorf("Φ=0: VFK (%v) should be near DRP-CDS (%v)", flat.Values["VFK"], flat.Values["DRP-CDS"])
	}
	// (c) At Φ=3 VFK collapses: clearly worse than DRP-CDS.
	diverse := fig.Rows[len(fig.Rows)-1]
	if diverse.Values["VFK"] < diverse.Values["DRP-CDS"]*1.10 {
		t.Errorf("Φ=3: VFK (%v) should clearly trail DRP-CDS (%v)",
			diverse.Values["VFK"], diverse.Values["DRP-CDS"])
	}
	// (d) The relative VFK gap grows with diversity.
	gapFlat := flat.Values["VFK"] / flat.Values["DRP-CDS"]
	gapDiverse := diverse.Values["VFK"] / diverse.Values["DRP-CDS"]
	if gapDiverse <= gapFlat {
		t.Errorf("VFK gap did not widen with diversity: %v → %v", gapFlat, gapDiverse)
	}
}

func TestFigure5Shape(t *testing.T) {
	fig := quickFig(t, "fig5")
	// (a) Higher skew → shorter waits for the adaptive algorithms.
	for _, alg := range []string{"DRP", "DRP-CDS", "GOPT"} {
		if !(last(fig, alg) < first(fig, alg)) {
			t.Errorf("%s: wait did not fall with skewness", alg)
		}
	}
	// (b) The DRP-CDS gap to GOPT shrinks as skew grows (paper: 0.04
	// at θ=0.4 down to 0.005 at θ=1.6). Compare relative gaps at the
	// extremes with slack for noise.
	gapLow := fig.Rows[0].Values["DRP-CDS"] - fig.Rows[0].Values["GOPT"]
	gapHigh := last(fig, "DRP-CDS") - last(fig, "GOPT")
	if gapHigh > gapLow+0.02 {
		t.Errorf("gap to GOPT grew with skewness: %v → %v", gapLow, gapHigh)
	}
}

func TestFigure6And7Shape(t *testing.T) {
	fig6 := quickFig(t, "fig6")
	fig7 := quickFig(t, "fig7")
	// GOPT is far more expensive than DRP-CDS at every point.
	for _, fig := range []*Figure{fig6, fig7} {
		for _, row := range fig.Rows {
			if row.Values["GOPT"] < row.Values["DRP-CDS"]*5 {
				t.Errorf("%s %s=%v: GOPT (%vms) not clearly slower than DRP-CDS (%vms)",
					fig.ID, fig.XLabel, row.X, row.Values["GOPT"], row.Values["DRP-CDS"])
			}
		}
	}
	// GOPT's cost grows with N (fig7): last point slower than first.
	if !(last(fig7, "GOPT") > first(fig7, "GOPT")) {
		t.Errorf("GOPT execution time did not grow with N: %v → %v",
			first(fig7, "GOPT"), last(fig7, "GOPT"))
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	fig := &Figure{
		ID: "fig2", Title: "t", XLabel: "K", YLabel: "wait",
		Algorithms: []string{"A", "B"},
		Rows: []Row{
			{X: 4, Values: map[string]float64{"A": 1.5, "B": 2.5}},
			{X: 6, Values: map[string]float64{"A": 1.25, "B": 2}},
		},
	}
	table := fig.Table()
	for _, want := range []string{"fig2", "K", "A", "B", "1.5000", "2.0000"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), csv)
	}
	if lines[0] != "K,A,B" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,1.5,") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestFigureIDsRunnable(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 6 {
		t.Fatalf("expected 6 figures, got %v", ids)
	}
	// Spot-check one full dispatch round trip (cheapest figure).
	cfg := Quick()
	cfg.Seeds = cfg.Seeds[:1]
	for _, id := range ids[:1] {
		fig, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fig.ID != id {
			t.Errorf("figure ID %q, want %q", fig.ID, id)
		}
	}
}

package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Table renders the figure as a fixed-width ASCII table, one row per
// swept point and one column per algorithm.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "y: %s\n", f.YLabel)

	fmt.Fprintf(&b, "%10s", f.XLabel)
	for _, name := range f.Algorithms {
		fmt.Fprintf(&b, "  %12s", name)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 10+14*len(f.Algorithms)))
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%10s", trimFloat(row.X))
		for _, name := range f.Algorithms {
			fmt.Fprintf(&b, "  %12.4f", row.Values[name])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, name := range f.Algorithms {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	for _, row := range f.Rows {
		b.WriteString(trimFloat(row.X))
		for _, name := range f.Algorithms {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(row.Values[name], 'g', 8, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', 6, 64)
}

package experiments

import "testing"

func TestAblation1Shape(t *testing.T) {
	fig := quickFig(t, "abl1")
	if len(fig.Rows) != 4 {
		t.Fatalf("expected 4 diversity points, got %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		// The quality ladder of the design: FLAT worst, then the
		// stages improve, with CONTIG-DP bounding DRP from below.
		if !(row.Values["DRP"] <= row.Values["FLAT"]+1e-9) {
			t.Errorf("Φ=%v: DRP (%v) worse than FLAT (%v)", row.X, row.Values["DRP"], row.Values["FLAT"])
		}
		if !(row.Values["CONTIG-DP"] <= row.Values["DRP"]+1e-9) {
			t.Errorf("Φ=%v: CONTIG-DP (%v) above DRP (%v) — impossible, DP is exact on DRP's space",
				row.X, row.Values["CONTIG-DP"], row.Values["DRP"])
		}
		if !(row.Values["DRP-CDS"] <= row.Values["DRP"]+1e-9) {
			t.Errorf("Φ=%v: CDS hurt DRP", row.X)
		}
	}
}

func TestAblation2Shape(t *testing.T) {
	fig := quickFig(t, "abl2")
	if len(fig.Rows) != 6 {
		t.Fatalf("expected 6 epochs, got %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		// Adaptation (either kind) beats staying frozen.
		if !(row.Values["REPLAN"] <= row.Values["FROZEN"]+1e-9) {
			t.Errorf("epoch %v: replanning (%v) worse than frozen (%v)",
				row.X, row.Values["REPLAN"], row.Values["FROZEN"])
		}
		// Replanning tracks a rebuild within a few percent.
		if row.Values["REPLAN"] > row.Values["REBUILD"]*1.08 {
			t.Errorf("epoch %v: replanning (%v) more than 8%% above rebuild (%v)",
				row.X, row.Values["REPLAN"], row.Values["REBUILD"])
		}
		// And with strictly lower churn on average.
		if row.Values["REPLAN-moved"] >= row.Values["REBUILD-moved"] {
			t.Errorf("epoch %v: replan churn (%v) not below rebuild churn (%v)",
				row.X, row.Values["REPLAN-moved"], row.Values["REBUILD-moved"])
		}
	}
}

func TestAblationIDsDispatch(t *testing.T) {
	ids := AblationIDs()
	if len(ids) != 3 {
		t.Fatalf("AblationIDs = %v", ids)
	}
	cfg := Quick()
	cfg.Seeds = cfg.Seeds[:1]
	for _, id := range ids {
		fig, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("figure ID %q, want %q", fig.ID, id)
		}
	}
}

func TestAblation3Shape(t *testing.T) {
	fig := quickFig(t, "abl3")
	if len(fig.Rows) != 5 {
		t.Fatalf("expected 5 rate points, got %d", len(fig.Rows))
	}
	lowest := fig.Rows[0]
	highest := fig.Rows[len(fig.Rows)-1]
	// Push is load-independent: its wait barely moves across rates.
	if rel := highest.Values["PUSH"]/lowest.Values["PUSH"] - 1; rel > 0.1 || rel < -0.1 {
		t.Errorf("push wait moved %.1f%% with load; should be flat", 100*rel)
	}
	// At very low load on-demand crushes push.
	if !(lowest.Values["ON-DEMAND"] < lowest.Values["PUSH"]/3) {
		t.Errorf("low load: on-demand (%v) should crush push (%v)",
			lowest.Values["ON-DEMAND"], lowest.Values["PUSH"])
	}
	// On-demand wait grows with load.
	if !(highest.Values["ON-DEMAND"] > lowest.Values["ON-DEMAND"]) {
		t.Error("on-demand wait did not grow with load")
	}
	// Hybrid stays at or below pure push at every rate (the pull
	// channel only carries the cold tail).
	for _, row := range fig.Rows {
		if row.Values["HYBRID"] > row.Values["PUSH"]*1.15 {
			t.Errorf("rate %v: hybrid (%v) far above push (%v)",
				row.X, row.Values["HYBRID"], row.Values["PUSH"])
		}
	}
}

package experiments

import (
	"runtime"
	"strconv"
	"testing"

	"diversecast/internal/workload"
)

// tinyConfig is a deliberately small configuration so the sweep-
// determinism test can afford several full figure runs.
func tinyConfig() Config {
	return Config{
		BaseN:           24,
		BaseK:           4,
		BasePhi:         2.0,
		BaseTheta:       0.8,
		Bandwidth:       workload.PaperBandwidth,
		Seeds:           []int64{11, 23},
		GOPTPopulation:  12,
		GOPTGenerations: 20,
		GOPTStagnation:  10,
		GOPTPolish:      true,
	}
}

// assertSameFigure compares two figures bit-for-bit.
func assertSameFigure(t *testing.T, a, b *Figure, label string) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row counts %d vs %d", label, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].X != b.Rows[i].X {
			t.Fatalf("%s: row %d X %v vs %v", label, i, a.Rows[i].X, b.Rows[i].X)
		}
		for _, name := range a.Algorithms {
			av, bv := a.Rows[i].Values[name], b.Rows[i].Values[name]
			if av != bv {
				t.Fatalf("%s: row %d %s bits differ: %v vs %v", label, i, name, av, bv)
			}
		}
	}
}

// TestSweepDeterministicAcrossWorkers pins the parallel sweep fabric:
// a quality figure computed serially, on NumCPU workers, and with the
// GOMAXPROCS-sized default pool is bit-identical — parallelism only
// changes wall-clock, never data.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	serialCfg := tinyConfig()
	serialCfg.Workers = 1
	serial, err := Figure4(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, runtime.NumCPU()} {
		cfg := tinyConfig()
		cfg.Workers = workers
		fig, err := Figure4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameFigure(t, serial, fig, "Workers="+strconv.Itoa(workers))
	}
}

// TestSweepWorkersValidation rejects a negative pool size.
func TestSweepWorkersValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = -2
	if _, err := Figure2(cfg); err == nil {
		t.Fatal("Workers=-2 accepted")
	}
}


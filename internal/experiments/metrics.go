package experiments

import "diversecast/internal/obs"

// Sweep-fabric instrumentation on the process-wide registry: pool
// width and remaining cells of the in-flight quality sweep. Handles
// resolved once at package init.
var (
	sweepWorkers = obs.Default().Gauge("experiments_sweep_workers",
		"worker-pool size of the most recent quality-figure sweep")
	sweepQueueDepth = obs.Default().Gauge("experiments_sweep_queue_depth",
		"sweep cells of the in-flight quality figure not yet completed")
)

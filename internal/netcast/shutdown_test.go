package netcast

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diversecast/internal/obs"
	"diversecast/internal/obs/trace"
)

// TestTuneCloseRaceStress hammers Tune concurrently with Close. Before
// the caster carried a closed flag, a handshake finishing after
// dropAll registered a subscriber nobody would ever stop, and Close
// deadlocked in wg.Wait(); this test hung (and leaked goroutines).
// Run under -race: the flag is read and written under ca.mu.
func TestTuneCloseRaceStress(t *testing.T) {
	_, p := testProgram(t)
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		srv, err := Serve("127.0.0.1:0", ServerConfig{
			Program:   p,
			TimeScale: 0.01,
			Metrics:   obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr().String()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(ch int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, err := Tune(addr, ch%2, time.Second)
					if err != nil {
						// The server is shutting down; expected.
						return
					}
					c.Close()
				}
			}(i)
		}

		// Let some handshakes land mid-flight, then yank the server.
		time.Sleep(time.Duration(round) * 3 * time.Millisecond)
		done := make(chan struct{})
		go func() {
			srv.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Server.Close deadlocked while clients were tuning")
		}
		close(stop)
		wg.Wait()
	}
}

// TestAddAfterCloseRefusesSubscriber drives the race deterministically:
// a registration arriving after dropAll must be refused, not stranded.
func TestAddAfterCloseRefusesSubscriber(t *testing.T) {
	_, p := testProgram(t)
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", ServerConfig{Program: p, TimeScale: 0.01, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ca := srv.casters[0]
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	defer client.Close()
	if ca.add(server, trace.Span{}, -1) {
		t.Fatal("caster accepted a subscriber after shutdown")
	}
	ca.mu.Lock()
	n := len(ca.subs)
	ca.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d subscribers registered on a closed caster", n)
	}
}

// scriptedListener feeds acceptLoop a scripted error sequence.
type scriptedListener struct {
	mu     sync.Mutex
	script []error // nil entry = deliver a connection
	conns  chan net.Conn
	closed atomic.Bool
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

var errPermanent = errors.New("accept: permanently broken")

func (l *scriptedListener) Accept() (net.Conn, error) {
	if l.closed.Load() {
		return nil, net.ErrClosed
	}
	l.mu.Lock()
	if len(l.script) == 0 {
		l.mu.Unlock()
		// Script exhausted: block until Close like a quiet listener.
		c, ok := <-l.conns
		if !ok {
			return nil, net.ErrClosed
		}
		return c, nil
	}
	next := l.script[0]
	l.script = l.script[1:]
	l.mu.Unlock()
	if next != nil {
		return nil, next
	}
	c, ok := <-l.conns
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (l *scriptedListener) Close() error {
	if l.closed.CompareAndSwap(false, true) {
		close(l.conns)
	}
	return nil
}

func (l *scriptedListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// scriptedServer assembles a Server around a scripted listener without
// going through net.Listen.
func scriptedServer(t *testing.T, script []error) (*Server, *scriptedListener, *obs.Registry) {
	t.Helper()
	_, p := testProgram(t)
	reg := obs.NewRegistry()
	cfg, err := ServerConfig{Program: p, TimeScale: 0.01, Metrics: reg}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ln := &scriptedListener{script: script, conns: make(chan net.Conn)}
	return newServer(cfg, ln), ln, reg
}

// TestAcceptLoopBacksOffOnTemporaryErrors: a burst of EMFILE-style
// temporary errors must be absorbed with backoff — the loop keeps
// going, counts each retry, and does not exit.
func TestAcceptLoopBacksOffOnTemporaryErrors(t *testing.T) {
	script := []error{tempErr{}, tempErr{}, tempErr{}, tempErr{}}
	s, ln, reg := scriptedServer(t, script)
	start := time.Now()
	loopDone := make(chan struct{})
	go func() {
		s.acceptLoop()
		close(loopDone)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counter("netcast_accept_retries_total") < int64(len(script)) {
		if time.Now().After(deadline) {
			t.Fatalf("retries = %d, want %d",
				reg.Snapshot().Counter("netcast_accept_retries_total"), len(script))
		}
		time.Sleep(time.Millisecond)
	}
	// Doubling from 1ms, and each retry is counted before its sleep:
	// by the time the 4th retry is visible the loop has slept
	// 1+2+4 = 7ms rather than spinning. Allow scheduling slop.
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("4 retries absorbed in %v; backoff is not sleeping", elapsed)
	}
	select {
	case <-loopDone:
		t.Fatal("accept loop exited on temporary errors")
	default:
	}
	if got := reg.Snapshot().Counter("netcast_accept_permanent_failures_total"); got != 0 {
		t.Fatalf("permanent failures = %d on a temporary-error script", got)
	}

	close(s.closed)
	ln.Close()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop did not exit on close")
	}
}

// TestAcceptLoopExitsOnPermanentError: a non-temporary error must end
// the loop cleanly (no spin, no panic) and be counted.
func TestAcceptLoopExitsOnPermanentError(t *testing.T) {
	s, _, reg := scriptedServer(t, []error{tempErr{}, errPermanent})
	loopDone := make(chan struct{})
	go func() {
		s.acceptLoop()
		close(loopDone)
	}()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop kept running past a permanent error")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("netcast_accept_permanent_failures_total"); got != 1 {
		t.Fatalf("permanent failures = %d, want 1", got)
	}
	if got := snap.Counter("netcast_accept_retries_total"); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
}

// TestAcceptLoopShutdownDuringBackoff: Close must interrupt a pending
// backoff sleep promptly.
func TestAcceptLoopShutdownDuringBackoff(t *testing.T) {
	// An endless temporary-error script keeps the loop in backoff.
	script := make([]error, 64)
	for i := range script {
		script[i] = tempErr{}
	}
	s, ln, _ := scriptedServer(t, script)
	loopDone := make(chan struct{})
	go func() {
		s.acceptLoop()
		close(loopDone)
	}()
	time.Sleep(5 * time.Millisecond)
	close(s.closed)
	ln.Close()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop ignored shutdown while backing off")
	}
}

// TestServerMetricsAccounting: a normal session must leave nonzero
// frame/byte/subscriber counters and a zero live-subscriber gauge
// after close.
func TestServerMetricsAccounting(t *testing.T) {
	_, p := testProgram(t)
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", ServerConfig{Program: p, TimeScale: 0.005, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Tune(srv.Addr().String(), 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.NextItem(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter(`netcast_subscribers_added_total{channel="0"}`); got != 1 {
		t.Fatalf("subscribers added = %d, want 1", got)
	}
	if got := snap.Gauge(`netcast_subscribers{channel="0"}`); got != 1 {
		t.Fatalf("live subscribers = %d, want 1", got)
	}
	if got := snap.Counter(`netcast_frames_sent_total{channel="0"}`); got < 3 {
		t.Fatalf("frames sent = %d, want ≥ 3", got)
	}
	if got := snap.Counter(`netcast_bytes_sent_total{channel="0"}`); got == 0 {
		t.Fatal("bytes sent = 0")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Gauge(`netcast_subscribers{channel="0"}`); got != 0 {
		t.Fatalf("live subscribers after close = %d, want 0", got)
	}
	if got := snap.Counter(`netcast_subscribers_dropped_total{channel="0"}`); got != 1 {
		t.Fatalf("subscribers dropped = %d, want 1", got)
	}
}
